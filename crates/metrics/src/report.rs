//! The serializable snapshot of the metrics sink.

use crate::json::Json;
use std::collections::BTreeMap;

/// Aggregated timing of one [`crate::Phase`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TimerStat {
    /// Completed spans.
    pub calls: u64,
    /// Total duration, nanoseconds.
    pub total_ns: u64,
    /// Log2 duration histogram: `buckets[k]` counts spans in
    /// `[2^(k-1), 2^k)` ns; trailing zero buckets are trimmed.
    pub buckets: Vec<u64>,
}

/// A point-in-time snapshot of the metrics sink, ready to serialize.
///
/// The JSON form has three top-level sections:
///
/// * `counters` — deterministic work counts (plus each phase's call count
///   under `phase.<name>.calls`). For a fixed seed and configuration this
///   entire section is bitwise-identical at any worker count; CI diffs it.
/// * `gauges` — run-level derived values the emitter fills in (wall
///   seconds, samples/sec). Machine-dependent.
/// * `timers` — per-phase `calls` / `total_ns` / log2 `buckets`.
///   Machine-dependent.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// Deterministic counters by dotted name.
    pub counters: BTreeMap<String, u64>,
    /// Run-level derived values (not deterministic; excluded from diffs).
    pub gauges: BTreeMap<String, f64>,
    /// Per-phase timing by phase name.
    pub timers: BTreeMap<String, TimerStat>,
}

impl MetricsReport {
    /// Builds a report from raw sections, mirroring each timer's call count
    /// into the deterministic `counters` section as `phase.<name>.calls`.
    pub fn new(
        mut counters: BTreeMap<String, u64>,
        timers: BTreeMap<String, TimerStat>,
    ) -> MetricsReport {
        for (name, t) in &timers {
            counters.insert(format!("phase.{name}.calls"), t.calls);
        }
        MetricsReport {
            counters,
            gauges: BTreeMap::new(),
            timers,
        }
    }

    /// Sets (or overwrites) a gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) -> &mut Self {
        self.gauges.insert(name.to_string(), value);
        self
    }

    /// The report as a canonical [`Json`] object (sorted keys).
    pub fn to_json_value(&self) -> Json {
        let mut counters = Json::obj();
        for (k, v) in &self.counters {
            counters.set(k, *v);
        }
        let mut gauges = Json::obj();
        for (k, v) in &self.gauges {
            gauges.set(k, *v);
        }
        let mut timers = Json::obj();
        for (k, t) in &self.timers {
            let mut entry = Json::obj();
            entry
                .set("buckets", t.buckets.clone())
                .set("calls", t.calls)
                .set("total_ns", t.total_ns);
            timers.set(k, entry);
        }
        let mut root = Json::obj();
        root.set("counters", counters)
            .set("gauges", gauges)
            .set("timers", timers);
        root
    }

    /// Canonical JSON text (two-space indent, sorted keys, trailing
    /// newline). Two identical reports always render to identical bytes.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// The `counters` section alone, as canonical JSON — what CI diffs
    /// between same-seed runs at different worker counts.
    pub fn counters_json(&self) -> String {
        let mut counters = Json::obj();
        for (k, v) in &self.counters {
            counters.set(k, *v);
        }
        counters.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsReport {
        let mut counters = BTreeMap::new();
        counters.insert("dc.gmin_stepping".to_string(), 3u64);
        let mut timers = BTreeMap::new();
        timers.insert(
            "lu_factor".to_string(),
            TimerStat {
                calls: 2,
                total_ns: 150,
                buckets: vec![0, 0, 0, 0, 0, 0, 1, 1],
            },
        );
        MetricsReport::new(counters, timers)
    }

    #[test]
    fn phase_calls_are_mirrored_into_counters() {
        let r = sample();
        assert_eq!(r.counters["phase.lu_factor.calls"], 2);
    }

    #[test]
    fn json_has_all_three_sections_in_order() {
        let text = sample().to_json();
        let c = text.find("\"counters\"").unwrap();
        let g = text.find("\"gauges\"").unwrap();
        let t = text.find("\"timers\"").unwrap();
        assert!(c < g && g < t, "{text}");
    }

    #[test]
    fn serialization_is_stable() {
        let r = sample();
        assert_eq!(r.to_json(), r.clone().to_json());
        assert_eq!(r.counters_json(), r.counters_json());
    }

    #[test]
    fn counters_json_excludes_timers_and_gauges() {
        let mut r = sample();
        r.set_gauge("samples_per_sec", 12.5);
        let c = r.counters_json();
        assert!(c.contains("dc.gmin_stepping"));
        assert!(!c.contains("samples_per_sec"));
        assert!(!c.contains("total_ns"));
    }
}
