//! Lock-free observability layer for the linvar solver stack.
//!
//! The simulation crates (`numeric`, `mor`, `teta`, `spice`, `stats`,
//! `core`) record *where time goes* (phase timers: LU factor/solve, eigen,
//! PRIMA/PACT projection, pole-residue stabilization, SPICE DC/transient,
//! stage and sample evaluation, checkpoint writes) and *how often the
//! recovery machinery fires* (counters: Newton iterations, SC chord
//! iterations, timestep halvings, DC-ladder rungs, MOR order drops,
//! engine-rung selections, sample retries). A benchmark binary enables the
//! sink, runs its campaign, and serializes a [`MetricsReport`] snapshot to
//! canonical sorted-key JSON — the machine-readable perf trajectory diffed
//! across PRs by `ci.sh`.
//!
//! # Design contract
//!
//! * **Wait-free hot path.** Events accumulate into plain thread-local
//!   arrays — no atomics, no locks, no allocation per event. A thread's
//!   buffer is folded into the global atomic accumulators when it calls
//!   [`flush_local`] (the Monte-Carlo worker loops do this as their last
//!   action, which `thread::scope`'s join synchronizes with), when the
//!   coordinating thread calls [`snapshot`], and — as a fallback for
//!   free-running threads — when the thread exits and its TLS drops.
//!   Note that `thread::scope` can return *before* a finished worker's TLS
//!   destructors run, so scoped workers must use the explicit flush.
//! * **Zero-cost when disabled.** Every recording entry point first does a
//!   single relaxed load of a global flag; the sink starts disabled, so
//!   library users who never call [`enable`] pay one predictable branch.
//! * **Deterministic counters, best-effort timers.** Counter values count
//!   *work*, which the workspace determinism contract fixes per seed
//!   regardless of worker count — the `counters` section of the JSON
//!   snapshot is bitwise-diffable across thread counts. Timer values count
//!   *nanoseconds*, which are machine- and run-dependent; they live in a
//!   separate `timers` section that trend tooling reads but CI never diffs.
//!
//! # Snapshot semantics
//!
//! [`snapshot`] folds the calling thread's buffer and reads the global
//! accumulators. Threads still running concurrently may hold unflushed
//! events; take snapshots from the coordinating thread after worker scopes
//! have joined (the bench bins and campaign driver do exactly that).
//! [`reset`] zeroes the globals and the calling thread's buffer — call it
//! from the same coordinating thread between measured sections.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod json;
mod report;

pub use json::Json;
pub use report::{MetricsReport, TimerStat};

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Timed solver phases. Each gets a call count, a total-nanoseconds
/// accumulator, and a log2-bucketed duration histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// LU factorization ([`linvar-numeric`]'s `LuFactor::new`).
    LuFactor,
    /// Triangular solve against an existing factorization.
    LuSolve,
    /// Dense nonsymmetric eigendecomposition (pole extraction).
    Eigen,
    /// PRIMA block-Arnoldi basis + congruence projection.
    PrimaProject,
    /// PACT pole-analysis reduction.
    PactProject,
    /// Pole-residue stabilization filter.
    Stabilize,
    /// One TETA stage evaluation (successive-chords transient).
    StageEval,
    /// One whole-path Monte-Carlo sample evaluation.
    SampleEval,
    /// SPICE DC operating-point ladder.
    SpiceDc,
    /// SPICE transient run (after DC).
    SpiceTran,
    /// Campaign checkpoint serialization + atomic write.
    CheckpointWrite,
    /// Sparse-LU symbolic analysis (fill-reducing ordering).
    SparseSymbolic,
    /// Sparse-LU numeric factorization (first factor or pattern-reuse
    /// refactor).
    SparseNumericFactor,
    /// Sparse-LU triangular solve.
    SparseSolve,
    /// One supervised shard attempt (launch through delivery or death).
    ShardRun,
    /// One accepted connection on the campaign service listener (accept
    /// through handler dispatch).
    ServeAccept,
    /// One HTTP request handled by the campaign service (parse through
    /// response write).
    ServeHandle,
    /// Spectral-coefficient solve: gPC projection or the stochastic-
    /// testing Vandermonde solve, node values in, coefficients out.
    SpectralSolve,
    /// AC small-signal factorization: real-embedded complex MNA factor
    /// (first factor or pattern-reuse refactor at a new frequency).
    AcFactor,
    /// AC small-signal solve against an existing complex factorization.
    AcSolve,
}

/// Number of [`Phase`] variants.
pub const N_PHASES: usize = 20;

impl Phase {
    /// Every phase, in declaration order (= index order).
    pub const ALL: [Phase; N_PHASES] = [
        Phase::LuFactor,
        Phase::LuSolve,
        Phase::Eigen,
        Phase::PrimaProject,
        Phase::PactProject,
        Phase::Stabilize,
        Phase::StageEval,
        Phase::SampleEval,
        Phase::SpiceDc,
        Phase::SpiceTran,
        Phase::CheckpointWrite,
        Phase::SparseSymbolic,
        Phase::SparseNumericFactor,
        Phase::SparseSolve,
        Phase::ShardRun,
        Phase::ServeAccept,
        Phase::ServeHandle,
        Phase::SpectralSolve,
        Phase::AcFactor,
        Phase::AcSolve,
    ];

    /// Stable snake_case name used as the JSON key.
    pub fn name(self) -> &'static str {
        match self {
            Phase::LuFactor => "lu_factor",
            Phase::LuSolve => "lu_solve",
            Phase::Eigen => "eigen",
            Phase::PrimaProject => "prima_project",
            Phase::PactProject => "pact_project",
            Phase::Stabilize => "stabilize",
            Phase::StageEval => "stage_eval",
            Phase::SampleEval => "sample_eval",
            Phase::SpiceDc => "spice_dc",
            Phase::SpiceTran => "spice_tran",
            Phase::CheckpointWrite => "checkpoint_write",
            // The sparse phases keep the short names the chains benchmark
            // records into `BENCH_chains.json`.
            Phase::SparseSymbolic => "symbolic",
            Phase::SparseNumericFactor => "numeric_factor",
            Phase::SparseSolve => "solve",
            Phase::ShardRun => "shard_run",
            Phase::ServeAccept => "serve_accept",
            Phase::ServeHandle => "serve_handle",
            Phase::SpectralSolve => "spectral_solve",
            Phase::AcFactor => "ac_factor",
            Phase::AcSolve => "ac_solve",
        }
    }
}

/// Monotone event counters. All are *work* counts: for a fixed seed and
/// configuration they are identical at any worker count, so the `counters`
/// JSON section is diffable across runs (the workspace determinism
/// contract, extended to observability).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// LU factorizations that needed the diagonal-perturbation retry.
    LuFactorRecoveries,
    /// Eigendecompositions served by the perturbed retry.
    EigenRecoveries,
    /// MOR stabilization ladder served a lower order than requested.
    MorOrderDrops,
    /// Unstable poles removed by the stabilization filter.
    MorUnstablePolesRemoved,
    /// TETA successive-chords iterations (all stages, all timesteps).
    ScChordIterations,
    /// TETA stage evaluations that walked past the first ladder attempt.
    ScStageRetries,
    /// SPICE Newton iterations (DC + transient).
    NewtonIterations,
    /// SPICE transient timestep halvings.
    TimestepHalvings,
    /// SPICE DC runs solved by direct Newton.
    DcDirectNewton,
    /// SPICE DC runs that needed gmin stepping.
    DcGminStepping,
    /// SPICE DC runs that needed source stepping.
    DcSourceStepping,
    /// Samples served at the `VariationalRom` rung (clean fast path).
    RungVariationalRom,
    /// Samples served at the `RefinedSc` rung.
    RungRefinedSc,
    /// Samples served at the `ExactReduction` rung.
    RungExactReduction,
    /// Samples served at the `DegradedOrder` rung.
    RungDegradedOrder,
    /// Samples served at the `UnreducedMna` rung.
    RungUnreducedMna,
    /// Samples served by the whole-path SPICE baseline rescue.
    RungSpiceBaseline,
    /// Per-stage SPICE rescues inside otherwise-TETA samples.
    StageSpiceRescues,
    /// Monte-Carlo samples completed (success or quarantined failure).
    McSamplesCompleted,
    /// Monte-Carlo samples that exhausted their attempt budget.
    McSamplesFailed,
    /// Extra per-sample attempts beyond the first (retry pressure).
    McSampleRetries,
    /// Campaign snapshots written (periodic + final).
    CheckpointsWritten,
    /// Bytes of checkpoint payload written.
    CheckpointBytes,
    /// Shard attempts launched by the supervisor (first tries + retries
    /// + re-dispatches all pass through here).
    ShardsLaunched,
    /// Shards whose sample range was fully delivered.
    ShardsCompleted,
    /// Shard retry-ladder attempts beyond each shard's first.
    ShardRetries,
    /// Straggler shards re-dispatched by the watchdog.
    ShardsRedispatched,
    /// Faults injected by the shard fault harness.
    ShardFaultsInjected,
    /// Sample deliveries dropped by first-writer-wins dedup.
    ShardMergeDuplicates,
    /// Sample records accepted into the merged result.
    ShardMergedSamples,
    /// Orphaned `*.tmp` snapshot siblings reaped by the checkpoint
    /// hygiene pass (resume and server recovery scans).
    CampaignTmpReaped,
    /// HTTP requests handled by the campaign service (any status).
    ServeRequests,
    /// Campaign jobs admitted by the service (journaled as queued).
    ServeJobsSubmitted,
    /// Submissions answered with an existing job (idempotent dedup by
    /// campaign fingerprint).
    ServeDuplicateSubmits,
    /// Submissions shed with HTTP 429 by admission control.
    ServeShed429,
    /// Jobs that ran to a `Done` terminal state.
    ServeJobsCompleted,
    /// Jobs that ended `Failed`.
    ServeJobsFailed,
    /// Jobs that ended `Cancelled`.
    ServeJobsCancelled,
    /// In-flight jobs re-queued by the startup recovery scan.
    ServeJobsRecovered,
    /// Faults injected by the serve fault harness.
    ServeFaultsInjected,
    /// Requests rejected as malformed, oversized, or timed out (HTTP
    /// 4xx other than 404/429).
    ServeBadRequests,
    /// Collocation/testing nodes whose model evaluation completed
    /// (success or quarantined failure) in a spectral engine run.
    SpectralNodesEvaluated,
    /// Spectral-coefficient solves (one per completed gPC run).
    SpectralSolves,
    /// gPC coefficients produced across all spectral solves.
    SpectralCoefficients,
    /// Deterministic surrogate evaluations behind spectral quantiles.
    SpectralSurrogateSamples,
    /// AC frequency points solved (one per sweep point per run).
    AcPointsSolved,
    /// AC sweep points served by the pattern-reuse refactor fast path
    /// (every point after the first at a fixed sparsity pattern).
    AcRefactors,
    /// AC factorizations that needed the diagonal-perturbation retry.
    AcFactorRecoveries,
}

/// Number of [`Counter`] variants.
pub const N_COUNTERS: usize = 48;

impl Counter {
    /// Every counter, in declaration order (= index order).
    pub const ALL: [Counter; N_COUNTERS] = [
        Counter::LuFactorRecoveries,
        Counter::EigenRecoveries,
        Counter::MorOrderDrops,
        Counter::MorUnstablePolesRemoved,
        Counter::ScChordIterations,
        Counter::ScStageRetries,
        Counter::NewtonIterations,
        Counter::TimestepHalvings,
        Counter::DcDirectNewton,
        Counter::DcGminStepping,
        Counter::DcSourceStepping,
        Counter::RungVariationalRom,
        Counter::RungRefinedSc,
        Counter::RungExactReduction,
        Counter::RungDegradedOrder,
        Counter::RungUnreducedMna,
        Counter::RungSpiceBaseline,
        Counter::StageSpiceRescues,
        Counter::McSamplesCompleted,
        Counter::McSamplesFailed,
        Counter::McSampleRetries,
        Counter::CheckpointsWritten,
        Counter::CheckpointBytes,
        Counter::ShardsLaunched,
        Counter::ShardsCompleted,
        Counter::ShardRetries,
        Counter::ShardsRedispatched,
        Counter::ShardFaultsInjected,
        Counter::ShardMergeDuplicates,
        Counter::ShardMergedSamples,
        Counter::CampaignTmpReaped,
        Counter::ServeRequests,
        Counter::ServeJobsSubmitted,
        Counter::ServeDuplicateSubmits,
        Counter::ServeShed429,
        Counter::ServeJobsCompleted,
        Counter::ServeJobsFailed,
        Counter::ServeJobsCancelled,
        Counter::ServeJobsRecovered,
        Counter::ServeFaultsInjected,
        Counter::ServeBadRequests,
        Counter::SpectralNodesEvaluated,
        Counter::SpectralSolves,
        Counter::SpectralCoefficients,
        Counter::SpectralSurrogateSamples,
        Counter::AcPointsSolved,
        Counter::AcRefactors,
        Counter::AcFactorRecoveries,
    ];

    /// Stable dotted name used as the JSON key.
    pub fn name(self) -> &'static str {
        match self {
            Counter::LuFactorRecoveries => "lu.factor_recoveries",
            Counter::EigenRecoveries => "eigen.recoveries",
            Counter::MorOrderDrops => "mor.order_drops",
            Counter::MorUnstablePolesRemoved => "mor.unstable_poles_removed",
            Counter::ScChordIterations => "sc.chord_iterations",
            Counter::ScStageRetries => "sc.stage_retries",
            Counter::NewtonIterations => "spice.newton_iterations",
            Counter::TimestepHalvings => "spice.timestep_halvings",
            Counter::DcDirectNewton => "dc.direct_newton",
            Counter::DcGminStepping => "dc.gmin_stepping",
            Counter::DcSourceStepping => "dc.source_stepping",
            Counter::RungVariationalRom => "rung.variational_rom",
            Counter::RungRefinedSc => "rung.refined_sc",
            Counter::RungExactReduction => "rung.exact_reduction",
            Counter::RungDegradedOrder => "rung.degraded_order",
            Counter::RungUnreducedMna => "rung.unreduced_mna",
            Counter::RungSpiceBaseline => "rung.spice_baseline",
            Counter::StageSpiceRescues => "rung.stage_spice_rescues",
            Counter::McSamplesCompleted => "mc.samples_completed",
            Counter::McSamplesFailed => "mc.samples_failed",
            Counter::McSampleRetries => "mc.sample_retries",
            Counter::CheckpointsWritten => "campaign.checkpoints_written",
            Counter::CheckpointBytes => "campaign.checkpoint_bytes",
            Counter::ShardsLaunched => "shard.launched",
            Counter::ShardsCompleted => "shard.completed",
            Counter::ShardRetries => "shard.retries",
            Counter::ShardsRedispatched => "shard.redispatched",
            Counter::ShardFaultsInjected => "shard.faults_injected",
            Counter::ShardMergeDuplicates => "shard.merge_duplicates",
            Counter::ShardMergedSamples => "shard.merged_samples",
            Counter::CampaignTmpReaped => "campaign.tmp_reaped",
            Counter::ServeRequests => "serve.requests",
            Counter::ServeJobsSubmitted => "serve.jobs_submitted",
            Counter::ServeDuplicateSubmits => "serve.duplicate_submits",
            Counter::ServeShed429 => "serve.shed_429",
            Counter::ServeJobsCompleted => "serve.jobs_completed",
            Counter::ServeJobsFailed => "serve.jobs_failed",
            Counter::ServeJobsCancelled => "serve.jobs_cancelled",
            Counter::ServeJobsRecovered => "serve.jobs_recovered",
            Counter::ServeFaultsInjected => "serve.faults_injected",
            Counter::ServeBadRequests => "serve.bad_requests",
            Counter::SpectralNodesEvaluated => "spectral.nodes_evaluated",
            Counter::SpectralSolves => "spectral.solves",
            Counter::SpectralCoefficients => "spectral.coefficients",
            Counter::SpectralSurrogateSamples => "spectral.surrogate_samples",
            Counter::AcPointsSolved => "ac.points_solved",
            Counter::AcRefactors => "ac.refactors",
            Counter::AcFactorRecoveries => "ac.factor_recoveries",
        }
    }
}

/// Run-dependent scalar gauges. Unlike [`Counter`]s these are *not*
/// deterministic work counts — they describe how a particular run used
/// the machine (workspace-arena residency, pool hit rates), so they
/// live in the report's `gauges` section, which CI never diffs.
///
/// Per-worker workspace warm-up misses vary with the worker count, so
/// putting these next to `wall_seconds`/`mc.samples_per_sec` (rather
/// than in `counters`) is what keeps the counters section bitwise
/// identical across thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gauge {
    /// High-water mark of bytes held across all workspace arenas.
    WsBytesHeld,
    /// Workspace takes served from a pool.
    WsHits,
    /// Workspace takes that had to allocate.
    WsMisses,
}

/// Number of [`Gauge`] variants.
pub const N_GAUGES: usize = 3;

impl Gauge {
    /// Every gauge, in declaration order (= index order).
    pub const ALL: [Gauge; N_GAUGES] = [Gauge::WsBytesHeld, Gauge::WsHits, Gauge::WsMisses];

    /// Stable dotted name used as the JSON key.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::WsBytesHeld => "ws.bytes_held",
            Gauge::WsHits => "ws.hits",
            Gauge::WsMisses => "ws.misses",
        }
    }
}

/// Log2 duration-histogram buckets per phase: bucket `k` counts durations
/// in `[2^(k-1), 2^k)` nanoseconds (bucket 0 is `< 1 ns`); the last bucket
/// absorbs everything from ~9 minutes up.
pub const N_BUCKETS: usize = 40;

fn bucket_of(ns: u64) -> usize {
    ((u64::BITS - ns.leading_zeros()) as usize).min(N_BUCKETS - 1)
}

// ---------------------------------------------------------------------------
// Global accumulators (merge targets) and the enable flag.
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static G_COUNTERS: [AtomicU64; N_COUNTERS] = [const { AtomicU64::new(0) }; N_COUNTERS];
static G_GAUGES: [AtomicU64; N_GAUGES] = [const { AtomicU64::new(0) }; N_GAUGES];
static G_CALLS: [AtomicU64; N_PHASES] = [const { AtomicU64::new(0) }; N_PHASES];
static G_NS: [AtomicU64; N_PHASES] = [const { AtomicU64::new(0) }; N_PHASES];
#[allow(clippy::large_stack_arrays)]
static G_BUCKETS: [[AtomicU64; N_BUCKETS]; N_PHASES] =
    [const { [const { AtomicU64::new(0) }; N_BUCKETS] }; N_PHASES];

// ---------------------------------------------------------------------------
// Thread-local buffer (the wait-free hot path).
// ---------------------------------------------------------------------------

struct LocalBuf {
    counters: [u64; N_COUNTERS],
    calls: [u64; N_PHASES],
    ns: [u64; N_PHASES],
    buckets: [[u64; N_BUCKETS]; N_PHASES],
    dirty: bool,
}

impl LocalBuf {
    const fn zeroed() -> Self {
        LocalBuf {
            counters: [0; N_COUNTERS],
            calls: [0; N_PHASES],
            ns: [0; N_PHASES],
            buckets: [[0; N_BUCKETS]; N_PHASES],
            dirty: false,
        }
    }

    /// Folds this buffer into the global atomics and zeroes it.
    fn flush(&mut self) {
        if !self.dirty {
            return;
        }
        for (i, v) in self.counters.iter_mut().enumerate() {
            if *v != 0 {
                G_COUNTERS[i].fetch_add(*v, Ordering::Relaxed);
                *v = 0;
            }
        }
        for (i, v) in self.calls.iter_mut().enumerate() {
            if *v != 0 {
                G_CALLS[i].fetch_add(*v, Ordering::Relaxed);
                *v = 0;
            }
        }
        for (i, v) in self.ns.iter_mut().enumerate() {
            if *v != 0 {
                G_NS[i].fetch_add(*v, Ordering::Relaxed);
                *v = 0;
            }
        }
        for (p, row) in self.buckets.iter_mut().enumerate() {
            for (b, v) in row.iter_mut().enumerate() {
                if *v != 0 {
                    G_BUCKETS[p][b].fetch_add(*v, Ordering::Relaxed);
                    *v = 0;
                }
            }
        }
        self.dirty = false;
    }
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        // Fallback merge for free-running threads. Scoped workers cannot
        // rely on this (their scope may be observed as joined before TLS
        // teardown) and call `flush_local()` explicitly instead.
        self.flush();
    }
}

thread_local! {
    static LOCAL: RefCell<LocalBuf> = const { RefCell::new(LocalBuf::zeroed()) };
}

// ---------------------------------------------------------------------------
// Public recording API.
// ---------------------------------------------------------------------------

/// Turns the sink on. Off by default; recording entry points are a single
/// relaxed load + branch while off.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns the sink off (already-recorded events are kept until [`reset`]).
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether the sink is currently recording.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zeroes the global accumulators and the calling thread's buffer.
///
/// Call from the coordinating thread between measured sections, after any
/// worker scopes have joined (concurrent recorders would survive partly).
pub fn reset() {
    LOCAL.with(|l| *l.borrow_mut() = LocalBuf::zeroed());
    for a in &G_COUNTERS {
        a.store(0, Ordering::Relaxed);
    }
    for a in &G_GAUGES {
        a.store(0, Ordering::Relaxed);
    }
    for a in &G_CALLS {
        a.store(0, Ordering::Relaxed);
    }
    for a in &G_NS {
        a.store(0, Ordering::Relaxed);
    }
    for row in &G_BUCKETS {
        for a in row {
            a.store(0, Ordering::Relaxed);
        }
    }
}

/// Adds `n` to a counter. Wait-free (thread-local) when enabled; a single
/// relaxed load when disabled.
#[inline]
pub fn count(c: Counter, n: u64) {
    if !enabled() || n == 0 {
        return;
    }
    let idx = c as usize;
    let fell_through = LOCAL
        .try_with(|l| {
            let mut l = l.borrow_mut();
            l.counters[idx] += n;
            l.dirty = true;
        })
        .is_err();
    if fell_through {
        // TLS teardown (thread exiting): merge straight into the globals.
        G_COUNTERS[idx].fetch_add(n, Ordering::Relaxed);
    }
}

/// Adds 1 to a counter.
#[inline]
pub fn incr(c: Counter) {
    count(c, 1);
}

/// Adds `n` to a gauge. Gauges are updated at coarse boundaries (a
/// workspace scope exit, not per event), so they go straight to the
/// global atomics — no thread-local buffering, nothing to flush.
#[inline]
pub fn gauge_add(g: Gauge, n: u64) {
    if enabled() && n != 0 {
        G_GAUGES[g as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Raises a gauge to at least `v` (high-water-mark semantics).
#[inline]
pub fn gauge_max(g: Gauge, v: u64) {
    if enabled() {
        G_GAUGES[g as usize].fetch_max(v, Ordering::Relaxed);
    }
}

/// Current value of a gauge.
pub fn gauge_value(g: Gauge) -> u64 {
    G_GAUGES[g as usize].load(Ordering::Relaxed)
}

/// Records one completed `phase` span of `ns` nanoseconds.
#[inline]
pub fn record_ns(p: Phase, ns: u64) {
    if !enabled() {
        return;
    }
    let idx = p as usize;
    let b = bucket_of(ns);
    let fell_through = LOCAL
        .try_with(|l| {
            let mut l = l.borrow_mut();
            l.calls[idx] += 1;
            l.ns[idx] += ns;
            l.buckets[idx][b] += 1;
            l.dirty = true;
        })
        .is_err();
    if fell_through {
        G_CALLS[idx].fetch_add(1, Ordering::Relaxed);
        G_NS[idx].fetch_add(ns, Ordering::Relaxed);
        G_BUCKETS[idx][b].fetch_add(1, Ordering::Relaxed);
    }
}

/// RAII span timer: measures from construction to drop and records into
/// `phase`. When the sink is disabled at construction the guard holds
/// nothing and drop is free.
#[must_use = "the span is measured until the guard drops"]
pub struct PhaseTimer {
    armed: Option<(Phase, Instant)>,
}

impl Drop for PhaseTimer {
    fn drop(&mut self) {
        if let Some((p, t0)) = self.armed.take() {
            let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            record_ns(p, ns);
        }
    }
}

/// Starts a [`PhaseTimer`] for `phase` (no-op guard when disabled).
#[inline]
pub fn timer(p: Phase) -> PhaseTimer {
    PhaseTimer {
        armed: enabled().then(|| (p, Instant::now())),
    }
}

/// Folds the calling thread's buffer into the global accumulators.
///
/// Worker closures spawned under `std::thread::scope` must call this as
/// their final action: the scope's join synchronizes with the closure's
/// *return*, not with TLS teardown, so the drop-time fallback flush is not
/// guaranteed to be visible to a snapshot taken right after the scope.
pub fn flush_local() {
    let _ = LOCAL.try_with(|l| l.borrow_mut().flush());
}

/// RAII guard returned by [`flush_on_drop`].
pub struct FlushGuard(());

impl Drop for FlushGuard {
    fn drop(&mut self) {
        flush_local();
    }
}

/// Returns a guard that runs [`flush_local`] when dropped — hold it as the
/// first local of a scoped worker closure so every exit path (including
/// `break`s and early returns) merges the thread's buffer before the scope
/// joins.
pub fn flush_on_drop() -> FlushGuard {
    FlushGuard(())
}

/// Flushes the calling thread and captures the merged state as a
/// [`MetricsReport`]. See the module docs for the visibility contract.
pub fn snapshot() -> MetricsReport {
    flush_local();
    let counters = Counter::ALL
        .iter()
        .map(|&c| {
            (
                c.name().to_string(),
                G_COUNTERS[c as usize].load(Ordering::Relaxed),
            )
        })
        .collect();
    let timers = Phase::ALL
        .iter()
        .map(|&p| {
            let i = p as usize;
            let mut buckets: Vec<u64> = G_BUCKETS[i]
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect();
            while buckets.last() == Some(&0) {
                buckets.pop();
            }
            (
                p.name().to_string(),
                TimerStat {
                    calls: G_CALLS[i].load(Ordering::Relaxed),
                    total_ns: G_NS[i].load(Ordering::Relaxed),
                    buckets,
                },
            )
        })
        .collect();
    let mut report = MetricsReport::new(counters, timers);
    for g in Gauge::ALL {
        #[allow(clippy::cast_precision_loss)]
        report.set_gauge(g.name(), gauge_value(g) as f64);
    }
    report
}

/// Serializes tests that touch the process-global sink (cargo's test
/// harness runs `#[test]` fns on parallel threads). Hold the returned
/// guard for the whole test; a poisoned lock is recovered, since sink
/// state is reset at the start of each test anyway.
pub fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_indices_match_all_order() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "{:?}", c);
        }
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(*p as usize, i, "{:?}", p);
        }
        for (i, g) in Gauge::ALL.iter().enumerate() {
            assert_eq!(*g as usize, i, "{:?}", g);
        }
    }

    #[test]
    fn counter_names_are_unique_and_stable() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.extend(Phase::ALL.iter().map(|p| p.name()));
        names.extend(Gauge::ALL.iter().map(|g| g.name()));
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate metric name");
    }

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), N_BUCKETS - 1);
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let _g = test_lock();
        disable();
        reset();
        incr(Counter::NewtonIterations);
        record_ns(Phase::LuFactor, 123);
        {
            let _t = timer(Phase::Eigen);
        }
        let rep = snapshot();
        assert!(rep.counters.values().all(|&v| v == 0));
        assert!(rep.timers.values().all(|t| t.calls == 0 && t.total_ns == 0));
    }

    #[test]
    fn enabled_sink_counts_and_times() {
        let _g = test_lock();
        reset();
        enable();
        count(Counter::ScChordIterations, 7);
        incr(Counter::ScChordIterations);
        record_ns(Phase::LuSolve, 100);
        record_ns(Phase::LuSolve, 5);
        {
            let _t = timer(Phase::StageEval);
        }
        let rep = snapshot();
        disable();
        assert_eq!(rep.counters["sc.chord_iterations"], 8);
        let lu = &rep.timers["lu_solve"];
        assert_eq!(lu.calls, 2);
        assert_eq!(lu.total_ns, 105);
        assert_eq!(lu.buckets.iter().sum::<u64>(), 2);
        assert_eq!(rep.timers["stage_eval"].calls, 1);
        reset();
    }

    #[test]
    fn worker_threads_merge_on_exit() {
        let _g = test_lock();
        reset();
        enable();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        incr(Counter::NewtonIterations);
                    }
                    record_ns(Phase::SampleEval, 50);
                    flush_local();
                });
            }
        });
        let rep = snapshot();
        disable();
        assert_eq!(rep.counters["spice.newton_iterations"], 4000);
        assert_eq!(rep.timers["sample_eval"].calls, 4);
        reset();
    }

    #[test]
    fn gauges_accumulate_max_and_snapshot() {
        let _g = test_lock();
        reset();
        enable();
        gauge_add(Gauge::WsHits, 5);
        gauge_add(Gauge::WsHits, 2);
        gauge_max(Gauge::WsBytesHeld, 100);
        gauge_max(Gauge::WsBytesHeld, 40); // lower: must not regress
        let rep = snapshot();
        disable();
        assert_eq!(gauge_value(Gauge::WsHits), 7);
        assert_eq!(gauge_value(Gauge::WsBytesHeld), 100);
        assert_eq!(rep.gauges["ws.hits"], 7.0);
        assert_eq!(rep.gauges["ws.bytes_held"], 100.0);
        assert_eq!(rep.gauges["ws.misses"], 0.0);
        reset();
        assert_eq!(gauge_value(Gauge::WsHits), 0, "reset must zero gauges");
    }

    #[test]
    fn disabled_sink_ignores_gauges() {
        let _g = test_lock();
        disable();
        reset();
        gauge_add(Gauge::WsMisses, 9);
        gauge_max(Gauge::WsBytesHeld, 9);
        assert_eq!(gauge_value(Gauge::WsMisses), 0);
        assert_eq!(gauge_value(Gauge::WsBytesHeld), 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let _g = test_lock();
        enable();
        incr(Counter::McSamplesCompleted);
        record_ns(Phase::SpiceTran, 9);
        reset();
        let rep = snapshot();
        disable();
        assert!(rep.counters.values().all(|&v| v == 0));
        assert!(rep.timers.values().all(|t| t.calls == 0));
    }
}
