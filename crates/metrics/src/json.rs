//! Minimal canonical JSON value + writer.
//!
//! The workspace has no serialization dependency (the build environment has
//! no registry access), so the metrics layer renders its own JSON. The
//! output is *canonical*: object keys are sorted (a `BTreeMap` underneath),
//! objects are written one key per line at two-space indentation, arrays of
//! scalars are written inline, and `f64` uses Rust's shortest-roundtrip
//! `Display` — the same value always renders to the same bytes, so two
//! snapshots can be compared with `diff`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Construct with the `From` impls and [`Json::obj`]; render
/// with [`Json::render`].
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer (counters, call counts, byte totals).
    U64(u64),
    /// Floating-point number; non-finite values render as `null` (JSON has
    /// no NaN/inf).
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with sorted keys.
    Obj(BTreeMap<String, Json>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::U64(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::F64(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// Empty object.
    pub fn obj() -> Json {
        Json::Obj(BTreeMap::new())
    }

    /// Inserts `key` into an object value; panics on non-objects (programmer
    /// error, not data-dependent).
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Self {
        match self {
            Json::Obj(m) => {
                m.insert(key.to_string(), value.into());
            }
            other => unreachable!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Renders the canonical text form (two-space indent, sorted keys,
    /// trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn is_scalar(&self) -> bool {
        !matches!(self, Json::Arr(_) | Json::Obj(_))
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // Shortest-roundtrip Display; force a decimal point so
                    // the value reads back as a float.
                    let s = format!("{v}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.iter().all(Json::is_scalar) {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        item.write(out, indent);
                    }
                    out.push(']');
                } else {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push('\n');
                        push_indent(out, indent + 1);
                        item.write(out, indent + 1);
                    }
                    out.push('\n');
                    push_indent(out, indent);
                    out.push(']');
                }
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_object_rendering() {
        let mut j = Json::obj();
        j.set("zeta", 1u64).set("alpha", 2u64);
        // Keys come out sorted regardless of insertion order.
        assert_eq!(j.render(), "{\n  \"alpha\": 2,\n  \"zeta\": 1\n}\n");
    }

    #[test]
    fn scalar_arrays_are_inline() {
        let j: Json = vec![1u64, 2, 3].into();
        assert_eq!(j.render(), "[1, 2, 3]\n");
    }

    #[test]
    fn floats_roundtrip_and_nonfinite_is_null() {
        assert_eq!(Json::F64(2.5).render(), "2.5\n");
        assert_eq!(Json::F64(2.0).render(), "2.0\n");
        assert_eq!(Json::F64(1e-12).render(), "0.000000000001\n");
        assert_eq!(Json::F64(f64::NAN).render(), "null\n");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(
            Json::Str("a\"b\\c\n".into()).render(),
            "\"a\\\"b\\\\c\\n\"\n"
        );
    }

    #[test]
    fn rendering_is_deterministic() {
        let mut j = Json::obj();
        j.set("b", 0.1f64).set("a", "x");
        assert_eq!(j.render(), j.clone().render());
    }
}
