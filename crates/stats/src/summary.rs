//! Summary statistics of a sample.

use linvar_numeric::vector::{mean, std_dev};

/// Summary statistics of a scalar sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample standard deviation.
    pub std: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Standard error of the mean (`std / √n`).
    pub std_err_mean: f64,
    /// Approximate relative standard error of the std estimate
    /// (`1/√(2(n−1))` under normality — the paper's "within 1 %" check for
    /// 100 samples corresponds to this quantity).
    pub rel_err_std: f64,
}

impl Summary {
    /// Computes the summary of a sample. Returns a zeroed summary for an
    /// empty slice.
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                max: 0.0,
                std_err_mean: 0.0,
                rel_err_std: 0.0,
            };
        }
        let n = xs.len();
        let m = mean(xs);
        let s = std_dev(xs);
        Summary {
            n,
            mean: m,
            std: s,
            min: xs.iter().cloned().fold(f64::INFINITY, f64::min),
            max: xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            std_err_mean: if n > 0 { s / (n as f64).sqrt() } else { 0.0 },
            rel_err_std: if n > 1 {
                1.0 / (2.0 * (n as f64 - 1.0)).sqrt()
            } else {
                0.0
            },
        }
    }
}

impl Summary {
    /// Merges two disjoint-sample summaries into the summary of the pooled
    /// sample (Chan et al. pairwise update: pooled mean from weighted
    /// means, pooled sum of squared deviations from the parts plus the
    /// between-part term).
    ///
    /// Up to floating-point rounding, `of(a ++ b) == of(a).merge(of(b))`
    /// and the operation is associative — the algebra the parallel
    /// Monte-Carlo driver's ordered result merge relies on (property
    /// tested in `crates/stats/tests/parallel_properties.rs`).
    pub fn merge(&self, other: &Summary) -> Summary {
        if self.n == 0 {
            return *other;
        }
        if other.n == 0 {
            return *self;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let n = self.n + other.n;
        let nf = n1 + n2;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * n2 / nf;
        // Sums of squared deviations about each part's own mean.
        let m2_1 = self.std * self.std * (n1 - 1.0).max(0.0);
        let m2_2 = other.std * other.std * (n2 - 1.0).max(0.0);
        let m2 = m2_1 + m2_2 + delta * delta * n1 * n2 / nf;
        let std = if n > 1 { (m2 / (nf - 1.0)).sqrt() } else { 0.0 };
        Summary {
            n,
            mean,
            std,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            std_err_mean: std / nf.sqrt(),
            rel_err_std: if n > 1 {
                1.0 / (2.0 * (nf - 1.0)).sqrt()
            } else {
                0.0
            },
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.6e} std={:.6e} min={:.6e} max={:.6e}",
            self.n, self.mean, self.std, self.min, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std - (32.0_f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!(s.std_err_mean > 0.0);
    }

    #[test]
    fn hundred_samples_std_error_matches_paper_claim() {
        // The paper: "100 samples … estimate the standard deviation of the
        // distribution within 1%"? — with n = 100, 1/√(2·99) ≈ 7.1 %
        // relative error at 1σ; the paper's 1 % claim refers to the clock
        // network context. We simply expose the estimator error.
        let xs = vec![0.0; 100];
        let s = Summary::of(&xs);
        assert!((s.rel_err_std - 1.0 / (198.0_f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        let s = Summary::of(&[3.0]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn merge_agrees_with_pooled_summary() {
        let a = [2.0, 4.0, 4.0, 4.0];
        let b = [5.0, 5.0, 7.0, 9.0];
        let pooled = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        let merged = Summary::of(&a).merge(&Summary::of(&b));
        assert_eq!(merged.n, pooled.n);
        assert!((merged.mean - pooled.mean).abs() < 1e-12);
        assert!((merged.std - pooled.std).abs() < 1e-12);
        assert_eq!(merged.min, pooled.min);
        assert_eq!(merged.max, pooled.max);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        let e = Summary::of(&[]);
        assert_eq!(s.merge(&e), s);
        assert_eq!(e.merge(&s), s);
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", Summary::of(&[1.0, 2.0])).is_empty());
    }
}
