//! Summary statistics of a sample.

use linvar_numeric::vector::{mean, std_dev};

/// Summary statistics of a scalar sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample standard deviation.
    pub std: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Standard error of the mean (`std / √n`).
    pub std_err_mean: f64,
    /// Approximate relative standard error of the std estimate
    /// (`1/√(2(n−1))` under normality — the paper's "within 1 %" check for
    /// 100 samples corresponds to this quantity).
    pub rel_err_std: f64,
}

impl Summary {
    /// Computes the summary of a sample. Returns a zeroed summary for an
    /// empty slice.
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                max: 0.0,
                std_err_mean: 0.0,
                rel_err_std: 0.0,
            };
        }
        let n = xs.len();
        let m = mean(xs);
        let s = std_dev(xs);
        Summary {
            n,
            mean: m,
            std: s,
            min: xs.iter().cloned().fold(f64::INFINITY, f64::min),
            max: xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            std_err_mean: if n > 0 { s / (n as f64).sqrt() } else { 0.0 },
            rel_err_std: if n > 1 {
                1.0 / (2.0 * (n as f64 - 1.0)).sqrt()
            } else {
                0.0
            },
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.6e} std={:.6e} min={:.6e} max={:.6e}",
            self.n, self.mean, self.std, self.min, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std - (32.0_f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!(s.std_err_mean > 0.0);
    }

    #[test]
    fn hundred_samples_std_error_matches_paper_claim() {
        // The paper: "100 samples … estimate the standard deviation of the
        // distribution within 1%"? — with n = 100, 1/√(2·99) ≈ 7.1 %
        // relative error at 1σ; the paper's 1 % claim refers to the clock
        // network context. We simply expose the estimator error.
        let xs = vec![0.0; 100];
        let s = Summary::of(&xs);
        assert!((s.rel_err_std - 1.0 / (198.0_f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        let s = Summary::of(&[3.0]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", Summary::of(&[1.0, 2.0])).is_empty());
    }
}
