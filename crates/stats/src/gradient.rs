//! Gradient Analysis (paper §4.1.3, eq. 24).
//!
//! With uncorrelated variation sources `w_l` of standard deviation
//! `σ_{w_l}` and first-order performance sensitivities `∂D/∂w_l`, the
//! performance standard deviation is
//!
//! ```text
//! σ_D = sqrt( Σ_l σ_{w_l}² · (∂D/∂w_l)² )
//! ```
//!
//! The sensitivities are typically computed by central finite differences
//! around the nominal point — far fewer evaluations than a Monte-Carlo
//! analysis, at the cost of a linearity assumption that degrades for long
//! paths and many sources (the trade-off Table 5 of the paper quantifies).

/// Combines per-source standard deviations and sensitivities per eq. (24).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn gradient_std(sigmas: &[f64], sensitivities: &[f64]) -> f64 {
    assert_eq!(
        sigmas.len(),
        sensitivities.len(),
        "one sensitivity per source"
    );
    sigmas
        .iter()
        .zip(sensitivities)
        .map(|(s, g)| (s * g) * (s * g))
        .sum::<f64>()
        .sqrt()
}

/// Central-difference sensitivities of `f` at the nominal point (all
/// sources zero), using step `±delta` on one source at a time.
///
/// Evaluation count: `2 · n_sources` calls of `f` (the paper quotes "five
/// simulations per each variation source" for the stage-level version,
/// which also perturbs the input-waveform parameters; see
/// `linvar-core::path_analysis`).
pub fn central_difference_sensitivities<E>(
    n_sources: usize,
    delta: f64,
    mut f: impl FnMut(&[f64]) -> Result<f64, E>,
) -> Result<Vec<f64>, E> {
    let mut grads = Vec::with_capacity(n_sources);
    let mut w = vec![0.0; n_sources];
    for l in 0..n_sources {
        w[l] = delta;
        let hi = f(&w)?;
        w[l] = -delta;
        let lo = f(&w)?;
        w[l] = 0.0;
        grads.push((hi - lo) / (2.0 * delta));
    }
    Ok(grads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq24_known_case() {
        // σ = sqrt((0.33·2)² + (0.33·(-1))²) for two sources.
        let s = gradient_std(&[0.33, 0.33], &[2.0, -1.0]);
        let expect = (0.33_f64 * 0.33 * (4.0 + 1.0)).sqrt();
        assert!((s - expect).abs() < 1e-12);
    }

    #[test]
    fn zero_sensitivity_contributes_nothing() {
        assert_eq!(gradient_std(&[1.0, 5.0], &[3.0, 0.0]), 3.0);
    }

    #[test]
    #[should_panic(expected = "one sensitivity per source")]
    fn mismatched_lengths_panic() {
        let _ = gradient_std(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn central_difference_on_quadratic() {
        // f(w) = 5 + 3w0 - 2w1 + w0²: exact gradient at 0 is (3, -2);
        // central differences are exact for the quadratic term.
        let grads = central_difference_sensitivities::<()>(2, 0.1, |w| {
            Ok(5.0 + 3.0 * w[0] - 2.0 * w[1] + w[0] * w[0])
        })
        .unwrap();
        assert!((grads[0] - 3.0).abs() < 1e-12);
        assert!((grads[1] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn ga_matches_mc_for_linear_model() {
        // For a purely linear performance the GA σ must equal the exact σ.
        let sigmas = [0.2, 0.5, 0.1];
        let coeffs = [1.0, -2.0, 4.0];
        let grads = central_difference_sensitivities::<()>(3, 0.05, |w| {
            Ok(w.iter().zip(&coeffs).map(|(x, c)| x * c).sum())
        })
        .unwrap();
        let ga = gradient_std(&sigmas, &grads);
        let exact = sigmas
            .iter()
            .zip(&coeffs)
            .map(|(s, c)| (s * c) * (s * c))
            .sum::<f64>()
            .sqrt();
        assert!((ga - exact).abs() < 1e-12);
    }

    #[test]
    fn errors_propagate() {
        let res = central_difference_sensitivities(1, 0.1, |_| Err("boom"));
        assert_eq!(res.unwrap_err(), "boom");
    }
}
