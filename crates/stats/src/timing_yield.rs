//! Timing-yield estimation from delay statistics.
//!
//! The paper's stated purpose for accurate path-delay distributions is
//! "to predict the timing yield of the critical path delay" (§4, citing
//! its ref \[13\], Gattiker et al., "Timing yield estimation from static
//! timing analysis"). Given a clock period, the yield is the probability
//! that the critical path meets it: empirically from a Monte-Carlo sample,
//! or analytically from a normal model fitted to (mean, σ) — the natural
//! consumer of the Gradient Analysis output.

use crate::sampling::inverse_normal_cdf;

/// Standard normal CDF Φ(x) (Abramowitz–Stegun 7.1.26 erf approximation,
/// |ε| < 1.5e-7).
pub fn normal_cdf(x: f64) -> f64 {
    let z = x / std::f64::consts::SQRT_2;
    0.5 * (1.0 + erf(z))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Empirical timing yield: the fraction of Monte-Carlo delay samples that
/// meet the clock period. Returns 0 for an empty sample.
pub fn empirical_yield(delays: &[f64], period: f64) -> f64 {
    if delays.is_empty() {
        return 0.0;
    }
    let pass = delays.iter().filter(|&&d| d <= period).count();
    pass as f64 / delays.len() as f64
}

/// Analytical timing yield under a normal delay model `N(mean, std²)`.
/// A zero `std` degenerates to a step at `mean`.
pub fn normal_yield(mean: f64, std: f64, period: f64) -> f64 {
    if std <= 0.0 {
        return if period >= mean { 1.0 } else { 0.0 };
    }
    normal_cdf((period - mean) / std)
}

/// Clock period achieving the target yield under a normal delay model:
/// `T = mean + std·Φ⁻¹(yield)`.
///
/// # Panics
///
/// Panics (debug assertion) if `target_yield` is outside `(0, 1)`.
pub fn period_for_yield(mean: f64, std: f64, target_yield: f64) -> f64 {
    debug_assert!(
        target_yield > 0.0 && target_yield < 1.0,
        "target yield must be in (0, 1)"
    );
    mean + std * inverse_normal_cdf(target_yield)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::{normal_samples, rng_from_seed};

    #[test]
    fn normal_cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.0) - 0.841345).abs() < 1e-5);
        assert!((normal_cdf(-1.0) - 0.158655).abs() < 1e-5);
        assert!((normal_cdf(3.0) - 0.998650).abs() < 1e-5);
        assert!(normal_cdf(8.0) > 0.9999999);
    }

    #[test]
    fn empirical_yield_counts() {
        let delays = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(empirical_yield(&delays, 2.5), 0.5);
        assert_eq!(empirical_yield(&delays, 0.5), 0.0);
        assert_eq!(empirical_yield(&delays, 10.0), 1.0);
        assert_eq!(empirical_yield(&[], 1.0), 0.0);
    }

    #[test]
    fn empirical_matches_normal_model_on_normal_data() {
        let mut rng = rng_from_seed(77);
        let (mean, std) = (100.0, 7.0);
        let delays: Vec<f64> = normal_samples(&mut rng, 20_000)
            .into_iter()
            .map(|z| mean + std * z)
            .collect();
        for period in [90.0, 100.0, 107.0, 114.0] {
            let emp = empirical_yield(&delays, period);
            let ana = normal_yield(mean, std, period);
            assert!(
                (emp - ana).abs() < 0.01,
                "period {period}: empirical {emp} vs normal {ana}"
            );
        }
    }

    #[test]
    fn period_for_yield_inverts_normal_yield() {
        let (mean, std) = (500.0, 20.0);
        for target in [0.5, 0.9, 0.99, 0.999] {
            let period = period_for_yield(mean, std, target);
            let back = normal_yield(mean, std, period);
            assert!(
                (back - target).abs() < 1e-4,
                "{target} -> {period} -> {back}"
            );
        }
        // 50 % yield at exactly the mean.
        assert!((period_for_yield(mean, std, 0.5) - mean).abs() < 1e-6);
        // Three-sigma period covers 99.87 %.
        let p3 = period_for_yield(mean, std, 0.99865);
        assert!((p3 - (mean + 3.0 * std)).abs() < 0.02 * std);
    }

    #[test]
    fn degenerate_std() {
        assert_eq!(normal_yield(10.0, 0.0, 11.0), 1.0);
        assert_eq!(normal_yield(10.0, 0.0, 9.0), 0.0);
    }
}
