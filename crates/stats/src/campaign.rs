//! Durable Monte-Carlo campaigns: checkpoint/resume, deadline budgets
//! and a cooperative per-sample watchdog.
//!
//! The parallel drivers in [`crate::montecarlo`] make *individual
//! samples* resilient; this module makes the *campaign itself*
//! survivable. A [`run_campaign`] call periodically writes atomic,
//! checksummed snapshots of every completed sample, can resume from such
//! a snapshot by re-running only the missing indices, and enforces a
//! wall-clock deadline with graceful truncation — on deadline, in-flight
//! samples finish, the run returns valid partial statistics plus a final
//! checkpoint so the campaign can be continued later.
//!
//! **Resume invariant.** Sample outcomes are pure functions of
//! `(sample, attempt)` and the sample set is a pure function of the
//! master seed, so a campaign interrupted at *any* point and resumed
//! from its snapshot produces a [`crate::Summary`] **bitwise-identical**
//! to an uninterrupted run, at any worker count. Checkpoints store
//! `f64` results as raw bit patterns to keep the round-trip exact, and
//! carry seed/policy/model fingerprints so a snapshot can never be
//! resumed against the wrong campaign (typed
//! [`CheckpointError::FingerprintMismatch`]).
//!
//! **Atomicity.** Snapshots are written to a temporary sibling file,
//! fsynced, then renamed over the target (and the directory fsynced), so
//! a crash mid-write leaves either the old snapshot or the new one —
//! never a torn file. Torn or bit-flipped files are rejected by an
//! FNV-1a checksum with a typed error; no partial load is possible.
//!
//! See DESIGN.md, "Durable campaigns: checkpoint format & resume
//! invariants".

use crate::montecarlo::panic_message;
use crate::summary::Summary;
use crate::{HealthSummary, RecoveryPolicy, SampleHealth, SampleStatus};
use std::fmt::{self, Display};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// On-disk format tag, first line of every snapshot.
pub const FORMAT_VERSION: &str = "linvar-campaign-v1";

/// Identity of the RNG/sampling scheme the campaign's sample set is
/// drawn with. Stored in every snapshot: a resume under a different
/// scheme would silently change the sample set, so mismatches refuse.
pub const SEED_SCHEME: &str = "stdrng-lhs-v1";

/// FNV-1a 64-bit hash of a byte slice (the checkpoint checksum).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a 64-bit hash of a word sequence — the helper model/config
/// fingerprints are built from.
pub fn fingerprint_words<I: IntoIterator<Item = u64>>(words: I) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// FNV-1a 64-bit hash of a string's bytes, for folding names into a
/// fingerprint.
pub fn fingerprint_str(s: &str) -> u64 {
    fnv1a64(s.as_bytes())
}

/// Which analysis a campaign's per-sample scalar comes from.
///
/// Folded into the [`CampaignFingerprint::model`] hash (via
/// [`AnalysisKind::fingerprint_word`]) by every campaign that can run
/// more than one analysis over the same circuit: a transient-delay
/// checkpoint must never resume an AC-response or IR-drop campaign whose
/// circuit and sample set happen to match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnalysisKind {
    /// Transient analysis; the scalar is a delay (threshold crossing).
    #[default]
    Transient,
    /// AC small-signal analysis; the scalar is a frequency-response
    /// metric (e.g. magnitude at a probe frequency).
    Ac,
    /// DC IR-drop analysis; the scalar is a worst-case supply droop.
    IrDrop,
}

impl AnalysisKind {
    /// Every kind, in declaration order.
    pub const ALL: [AnalysisKind; 3] = [
        AnalysisKind::Transient,
        AnalysisKind::Ac,
        AnalysisKind::IrDrop,
    ];

    /// Stable lowercase name (CLI values and fingerprint salt).
    pub fn name(self) -> &'static str {
        match self {
            AnalysisKind::Transient => "tran",
            AnalysisKind::Ac => "ac",
            AnalysisKind::IrDrop => "irdrop",
        }
    }

    /// Parses a CLI-style name.
    pub fn parse(s: &str) -> Option<AnalysisKind> {
        AnalysisKind::ALL
            .into_iter()
            .find(|k| k.name() == s.trim().to_ascii_lowercase())
    }

    /// The word this kind contributes to a model fingerprint.
    pub fn fingerprint_word(self) -> u64 {
        fingerprint_str(self.name())
    }
}

/// What a checkpoint must agree with before a resume is allowed.
///
/// `model` is an opaque caller-computed hash of everything that shapes a
/// sample's value beyond `(seed, index)` — circuit, sources, engine
/// configuration. [`fingerprint_words`] / [`fingerprint_str`] are the
/// intended building blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignFingerprint {
    /// Master seed the sample set is drawn from.
    pub master_seed: u64,
    /// Total samples in the campaign.
    pub n_samples: usize,
    /// Recovery policy the attempts run under.
    pub policy: RecoveryPolicy,
    /// Opaque model/configuration hash.
    pub model: u64,
}

/// Typed error of the checkpoint layer. Every failure mode — I/O, torn
/// or corrupted files, version or fingerprint disagreement — is its own
/// variant; nothing in this module panics on a bad file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// An I/O operation failed (kind and detail captured as text so the
    /// error stays `Clone`/`PartialEq` for upward conversion).
    Io {
        /// What was being attempted (`"read"`, `"create"`, `"rename"`, …).
        op: &'static str,
        /// Path involved.
        path: String,
        /// OS-level detail.
        detail: String,
    },
    /// The file does not parse as a checkpoint (truncation, garbage,
    /// duplicate or out-of-range sample indices, …).
    Malformed {
        /// What was wrong.
        reason: String,
    },
    /// The payload does not match its recorded checksum (bit rot or a
    /// partial overwrite).
    ChecksumMismatch {
        /// Checksum recorded in the file.
        expected: u64,
        /// Checksum of the payload as read.
        found: u64,
    },
    /// The file is a checkpoint of an unsupported format version.
    VersionMismatch {
        /// Version tag found in the file.
        found: String,
    },
    /// The snapshot belongs to a different campaign (seed, sample count,
    /// policy, model or RNG scheme disagree). Resuming would silently
    /// corrupt the statistics, so it is refused.
    FingerprintMismatch {
        /// Which fingerprint field disagreed.
        field: &'static str,
        /// Value the running campaign expects.
        expected: String,
        /// Value recorded in the snapshot.
        found: String,
    },
}

impl Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { op, path, detail } => {
                write!(f, "checkpoint {op} failed for {path}: {detail}")
            }
            CheckpointError::Malformed { reason } => {
                write!(f, "malformed checkpoint: {reason}")
            }
            CheckpointError::ChecksumMismatch { expected, found } => write!(
                f,
                "checkpoint checksum mismatch: recorded {expected:016x}, payload hashes to {found:016x}"
            ),
            CheckpointError::VersionMismatch { found } => {
                write!(f, "unsupported checkpoint version {found:?} (want {FORMAT_VERSION:?})")
            }
            CheckpointError::FingerprintMismatch {
                field,
                expected,
                found,
            } => write!(
                f,
                "checkpoint belongs to a different campaign: {field} is {found}, expected {expected}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

fn io_err(op: &'static str, path: &Path, e: std::io::Error) -> CheckpointError {
    CheckpointError::Io {
        op,
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

/// One completed sample as stored in (and restored from) a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleRecord {
    /// Final status of the sample.
    pub status: SampleStatus,
    /// Attempts spent.
    pub attempts: usize,
    /// Value, or the terminal diagnostic.
    pub outcome: Result<f64, String>,
}

/// A loaded snapshot: fingerprint plus per-index outcomes (`None` =
/// sample not yet evaluated).
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Campaign identity recorded in the snapshot.
    pub fingerprint: CampaignFingerprint,
    /// Per-index outcomes, length `fingerprint.n_samples`.
    pub outcomes: Vec<Option<SampleRecord>>,
}

impl Checkpoint {
    /// Number of completed samples in the snapshot.
    pub fn completed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_some()).count()
    }

    /// Refuses (with a typed error) unless the snapshot's fingerprint
    /// matches the running campaign's on every field.
    pub fn validate(&self, expected: &CampaignFingerprint) -> Result<(), CheckpointError> {
        let fp = &self.fingerprint;
        let mismatch = |field, exp: String, found: String| {
            Err(CheckpointError::FingerprintMismatch {
                field,
                expected: exp,
                found,
            })
        };
        if fp.master_seed != expected.master_seed {
            return mismatch(
                "master seed",
                expected.master_seed.to_string(),
                fp.master_seed.to_string(),
            );
        }
        if fp.n_samples != expected.n_samples {
            return mismatch(
                "sample count",
                expected.n_samples.to_string(),
                fp.n_samples.to_string(),
            );
        }
        if fp.policy != expected.policy {
            return mismatch(
                "recovery policy",
                format!("{:?}", expected.policy),
                format!("{:?}", fp.policy),
            );
        }
        if fp.model != expected.model {
            return mismatch(
                "model fingerprint",
                format!("{:016x}", expected.model),
                format!("{:016x}", fp.model),
            );
        }
        Ok(())
    }
}

fn status_tag(status: SampleStatus) -> char {
    match status {
        SampleStatus::Clean => 'C',
        SampleStatus::Recovered => 'R',
        SampleStatus::Degraded => 'D',
        SampleStatus::TimedOut => 'T',
        SampleStatus::Failed => 'F',
    }
}

fn status_from_tag(tag: &str) -> Option<SampleStatus> {
    match tag {
        "C" => Some(SampleStatus::Clean),
        "R" => Some(SampleStatus::Recovered),
        "D" => Some(SampleStatus::Degraded),
        "T" => Some(SampleStatus::TimedOut),
        "F" => Some(SampleStatus::Failed),
        _ => None,
    }
}

fn escape(msg: &str) -> String {
    msg.replace('\\', "\\\\")
        .replace('\n', "\\n")
        .replace('\r', "\\r")
}

fn unescape(msg: &str) -> String {
    let mut out = String::with_capacity(msg.len());
    let mut chars = msg.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn serialize(fp: &CampaignFingerprint, outcomes: &[Option<SampleRecord>]) -> String {
    let mut body = String::with_capacity(64 + outcomes.len() * 32);
    body.push_str(FORMAT_VERSION);
    body.push('\n');
    body.push_str(&format!("scheme={SEED_SCHEME}\n"));
    body.push_str(&format!("seed={}\n", fp.master_seed));
    body.push_str(&format!("n={}\n", fp.n_samples));
    body.push_str(&format!(
        "policy={} {} {}\n",
        fp.policy.max_retries,
        u8::from(fp.policy.allow_fallback),
        u8::from(fp.policy.fail_fast)
    ));
    body.push_str(&format!("model={:016x}\n", fp.model));
    for (idx, rec) in outcomes.iter().enumerate() {
        let Some(rec) = rec else { continue };
        match &rec.outcome {
            Ok(v) => body.push_str(&format!(
                "s {idx} {} {} v {:016x}\n",
                status_tag(rec.status),
                rec.attempts,
                v.to_bits()
            )),
            Err(msg) => body.push_str(&format!(
                "s {idx} {} {} e {}\n",
                status_tag(rec.status),
                rec.attempts,
                escape(msg)
            )),
        }
    }
    let sum = fnv1a64(body.as_bytes());
    body.push_str(&format!("sum={sum:016x}\n"));
    body
}

/// Writes a snapshot atomically: temp sibling + fsync + rename + parent
/// directory fsync. A crash at any point leaves either the previous
/// snapshot or the complete new one.
pub fn save_checkpoint(
    path: &Path,
    fingerprint: &CampaignFingerprint,
    outcomes: &[Option<SampleRecord>],
) -> Result<(), CheckpointError> {
    use std::io::Write as _;
    let _span = linvar_metrics::timer(linvar_metrics::Phase::CheckpointWrite);
    let body = serialize(fingerprint, outcomes);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut f = std::fs::File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
        f.write_all(body.as_bytes())
            .map_err(|e| io_err("write", &tmp, e))?;
        f.sync_all().map_err(|e| io_err("fsync", &tmp, e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| io_err("rename", path, e))?;
    linvar_metrics::incr(linvar_metrics::Counter::CheckpointsWritten);
    linvar_metrics::count(linvar_metrics::Counter::CheckpointBytes, body.len() as u64);
    // Make the rename itself durable: until the parent directory's entry
    // table reaches disk, a crash can forget the just-renamed snapshot
    // even though its data blocks were fsynced. Invariant: after
    // `save_checkpoint` returns Ok, a crash at any later point leaves the
    // complete new snapshot visible under `path`. Directory fsync is a
    // unix-ism; elsewhere (and on filesystems that refuse it) the rename
    // already happened, so a failure here is not worth losing the run
    // over. A bare relative filename has an empty `parent()`, which
    // means the current directory — fsync "." rather than silently
    // skipping the directory sync for that spelling.
    #[cfg(unix)]
    {
        let dir = match path.parent() {
            Some(d) if !d.as_os_str().is_empty() => d,
            _ => Path::new("."),
        };
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Removes the orphaned `<checkpoint>.tmp` sibling a crash mid-write
/// can leave behind. Returns whether a file was reaped.
///
/// Safe at any point where no writer is active on `checkpoint`: the
/// temp sibling is only ever a *staging* file — [`save_checkpoint`]
/// recreates it from scratch on every write — so an orphan carries no
/// information the real snapshot doesn't. Counted under
/// `campaign.tmp_reaped`.
pub fn reap_orphan_tmp(checkpoint: &Path) -> bool {
    let mut tmp = checkpoint.as_os_str().to_owned();
    tmp.push(".tmp");
    let reaped = std::fs::remove_file(Path::new(&tmp)).is_ok();
    if reaped {
        linvar_metrics::incr(linvar_metrics::Counter::CampaignTmpReaped);
    }
    reaped
}

/// Reaps every `*.tmp` file directly inside `dir` (non-recursive) — the
/// directory-wide sweep a server's recovery scan runs over its job
/// store before resuming anything. Returns the number reaped; counts
/// each under `campaign.tmp_reaped`. Unreadable directories reap
/// nothing (recovery must not die over hygiene).
pub fn reap_tmp_in_dir(dir: &Path) -> usize {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut reaped = 0usize;
    for entry in entries.flatten() {
        let path = entry.path();
        let is_tmp = path.extension().is_some_and(|e| e == "tmp");
        if is_tmp && path.is_file() && std::fs::remove_file(&path).is_ok() {
            reaped += 1;
        }
    }
    linvar_metrics::count(linvar_metrics::Counter::CampaignTmpReaped, reaped as u64);
    reaped
}

/// Loads and checksum-verifies a snapshot. Truncated, bit-flipped or
/// otherwise damaged files are rejected with a typed error — a partial
/// load is never returned.
pub fn load_checkpoint(path: &Path) -> Result<Checkpoint, CheckpointError> {
    let bytes = std::fs::read(path).map_err(|e| io_err("read", path, e))?;
    let text = String::from_utf8(bytes).map_err(|_| CheckpointError::Malformed {
        reason: "not valid UTF-8".into(),
    })?;
    // The checksum line is the last line of the file; everything before
    // it is the hashed payload.
    let sum_at = text.rfind("sum=").ok_or(CheckpointError::Malformed {
        reason: "missing checksum line (file truncated?)".into(),
    })?;
    if sum_at > 0 && text.as_bytes()[sum_at - 1] != b'\n' {
        return Err(CheckpointError::Malformed {
            reason: "checksum line does not start a line".into(),
        });
    }
    let sum_line = text[sum_at..].trim_end();
    let recorded = u64::from_str_radix(sum_line.trim_start_matches("sum="), 16).map_err(|_| {
        CheckpointError::Malformed {
            reason: format!("unparseable checksum line {sum_line:?}"),
        }
    })?;
    if text[sum_at..].trim_end().len() != "sum=".len() + 16 || !text[sum_at..].ends_with('\n') {
        return Err(CheckpointError::Malformed {
            reason: "trailing bytes after the checksum line".into(),
        });
    }
    let payload = &text[..sum_at];
    let found = fnv1a64(payload.as_bytes());
    if found != recorded {
        return Err(CheckpointError::ChecksumMismatch {
            expected: recorded,
            found,
        });
    }
    parse_payload(payload)
}

fn parse_payload(payload: &str) -> Result<Checkpoint, CheckpointError> {
    let malformed = |reason: String| CheckpointError::Malformed { reason };
    let mut lines = payload.lines();
    let version = lines
        .next()
        .ok_or_else(|| malformed("empty payload".into()))?;
    if version != FORMAT_VERSION {
        return Err(CheckpointError::VersionMismatch {
            found: version.to_string(),
        });
    }
    let mut scheme = None;
    let mut seed = None;
    let mut n = None;
    let mut policy = None;
    let mut model = None;
    let mut outcomes: Option<Vec<Option<SampleRecord>>> = None;
    for (lineno, line) in lines.enumerate() {
        if let Some(rest) = line.strip_prefix("s ") {
            let n = n.ok_or_else(|| malformed("sample line before the n= header".into()))?;
            let outcomes = outcomes.get_or_insert_with(|| vec![None; n]);
            let mut parts = rest.splitn(5, ' ');
            let bad = || malformed(format!("unparseable sample line {}: {line:?}", lineno + 2));
            let idx: usize = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
            let status = parts.next().and_then(status_from_tag).ok_or_else(bad)?;
            let attempts: usize = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
            let kind = parts.next().ok_or_else(bad)?;
            let rest = parts.next().ok_or_else(bad)?;
            let outcome = match kind {
                "v" => Ok(f64::from_bits(
                    u64::from_str_radix(rest, 16).map_err(|_| bad())?,
                )),
                "e" => Err(unescape(rest)),
                _ => return Err(bad()),
            };
            if idx >= n {
                return Err(malformed(format!(
                    "sample index {idx} out of range (n={n})"
                )));
            }
            if outcomes[idx].is_some() {
                return Err(malformed(format!("duplicate sample index {idx}")));
            }
            outcomes[idx] = Some(SampleRecord {
                status,
                attempts,
                outcome,
            });
        } else if let Some(v) = line.strip_prefix("scheme=") {
            scheme = Some(v.to_string());
        } else if let Some(v) = line.strip_prefix("seed=") {
            seed = Some(
                v.parse::<u64>()
                    .map_err(|_| malformed(format!("bad seed {v:?}")))?,
            );
        } else if let Some(v) = line.strip_prefix("n=") {
            n = Some(
                v.parse::<usize>()
                    .map_err(|_| malformed(format!("bad n {v:?}")))?,
            );
        } else if let Some(v) = line.strip_prefix("policy=") {
            let mut it = v.split(' ');
            let bad = || malformed(format!("bad policy line {v:?}"));
            let max_retries: usize = it.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
            let allow_fallback = match it.next() {
                Some("0") => false,
                Some("1") => true,
                _ => return Err(bad()),
            };
            let fail_fast = match it.next() {
                Some("0") => false,
                Some("1") => true,
                _ => return Err(bad()),
            };
            policy = Some(RecoveryPolicy {
                max_retries,
                allow_fallback,
                fail_fast,
            });
        } else if let Some(v) = line.strip_prefix("model=") {
            model = Some(
                u64::from_str_radix(v, 16).map_err(|_| malformed(format!("bad model {v:?}")))?,
            );
        } else if !line.is_empty() {
            return Err(malformed(format!("unrecognized line: {line:?}")));
        }
    }
    let scheme = scheme.ok_or_else(|| malformed("missing scheme= header".into()))?;
    if scheme != SEED_SCHEME {
        return Err(CheckpointError::FingerprintMismatch {
            field: "RNG scheme",
            expected: SEED_SCHEME.to_string(),
            found: scheme,
        });
    }
    let fingerprint = CampaignFingerprint {
        master_seed: seed.ok_or_else(|| malformed("missing seed= header".into()))?,
        n_samples: n.ok_or_else(|| malformed("missing n= header".into()))?,
        policy: policy.ok_or_else(|| malformed("missing policy= header".into()))?,
        model: model.ok_or_else(|| malformed("missing model= header".into()))?,
    };
    Ok(Checkpoint {
        outcomes: outcomes.unwrap_or_else(|| vec![None; fingerprint.n_samples]),
        fingerprint,
    })
}

/// How a campaign run persists, resumes, and bounds itself.
#[derive(Debug, Clone, Default)]
pub struct CampaignConfig {
    /// Where to write snapshots (periodic + final). `None` = no
    /// persistence.
    pub checkpoint: Option<PathBuf>,
    /// Snapshot to resume from. The file must exist and match the
    /// campaign's fingerprint; mismatches refuse with a typed error.
    pub resume: Option<PathBuf>,
    /// Completed samples between periodic snapshots (0 = default, 32).
    pub checkpoint_every: usize,
    /// Wall-clock budget for this run, measured from the start of
    /// [`run_campaign`]. On expiry workers stop claiming new samples;
    /// in-flight samples finish, a final snapshot is written, and the
    /// result carries a [`CampaignVerdict::Truncated`] verdict with
    /// valid statistics over the completed prefix of work.
    pub deadline: Option<Duration>,
    /// Cooperative per-sample watchdog: a *soft* timeout per attempt.
    /// Attempts are never interrupted (evaluators stay pure functions),
    /// but an attempt that overruns the budget is recorded: a
    /// slow-but-successful sample keeps its value with its status
    /// floored to [`SampleStatus::TimedOut`], and an overrunning
    /// *failed* attempt falls through to the next (lower-rung, cheaper)
    /// attempt in the policy budget rather than stalling the queue.
    /// Enabling the watchdog makes health bookkeeping timing-dependent;
    /// values stay deterministic.
    pub sample_timeout: Option<Duration>,
    /// Evaluate at most this many samples in this run, then truncate
    /// (deterministic preemption — the test harness's "kill point", and
    /// an operator's per-shift work budget).
    pub sample_budget: Option<usize>,
    /// Cooperative cancellation: when the flag reads `true`, workers
    /// stop claiming new samples exactly as on deadline expiry —
    /// in-flight samples finish, the final snapshot is written, and the
    /// verdict is [`CampaignVerdict::Truncated`]. This is how a serving
    /// layer implements both job cancel and graceful shutdown without
    /// losing completed work.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl CampaignConfig {
    fn every(&self) -> usize {
        if self.checkpoint_every == 0 {
            32
        } else {
            self.checkpoint_every
        }
    }
}

/// Did the campaign finish?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignVerdict {
    /// Every sample is accounted for.
    Complete,
    /// The run stopped early (deadline or sample budget); the statistics
    /// cover the completed samples and the final snapshot makes the
    /// remainder resumable.
    Truncated {
        /// Samples not yet evaluated.
        remaining: usize,
    },
}

/// Result of a (possibly resumed, possibly truncated) campaign run.
///
/// Statistics cover every *completed* sample — both those restored from
/// the resume snapshot and those evaluated in this run — merged in
/// sample-index order, exactly as an uninterrupted run would produce
/// them.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Value per successful sample, in sample-index order.
    pub values: Vec<f64>,
    /// Summary statistics of `values`.
    pub summary: Summary,
    /// Samples that exhausted their attempt budget.
    pub failures: usize,
    /// Indices of the failed samples, ascending.
    pub failed_indices: Vec<usize>,
    /// Diagnostic of the lowest-index failure, if any.
    pub first_error: Option<String>,
    /// Per-sample status and attempt count for completed samples, in
    /// sample-index order.
    pub sample_health: Vec<SampleHealth>,
    /// Run-level health tally of the completed samples.
    pub health: HealthSummary,
    /// Whether the campaign is complete or resumable-truncated.
    pub verdict: CampaignVerdict,
    /// Completed samples (resumed + evaluated this run).
    pub completed: usize,
    /// Samples restored from the resume snapshot.
    pub resumed: usize,
    /// Samples evaluated in this run.
    pub evaluated: usize,
    /// Snapshots written in this run (periodic + final).
    pub checkpoints_written: usize,
}

struct CampaignState {
    records: Vec<Option<SampleRecord>>,
    since_snapshot: usize,
}

/// Runs one sample under the policy's attempt budget with per-attempt
/// panic containment and the optional soft watchdog.
fn evaluate_sample<S, E: Display>(
    f: &(impl Fn(&S, usize) -> Result<(f64, SampleStatus), E> + Sync),
    s: &S,
    policy: RecoveryPolicy,
    soft_timeout: Option<Duration>,
) -> SampleRecord {
    let budget = policy.attempt_budget();
    let mut last: Option<String> = None;
    let mut timed_out = false;
    for attempt in 0..budget {
        let t0 = Instant::now();
        let res = match catch_unwind(AssertUnwindSafe(|| {
            f(s, attempt).map_err(|e| e.to_string())
        })) {
            Ok(res) => res,
            Err(payload) => Err(format!("panic: {}", panic_message(payload.as_ref()))),
        };
        let overran = soft_timeout.is_some_and(|lim| t0.elapsed() > lim);
        timed_out |= overran;
        match res {
            Ok((v, status)) => {
                let floor = if policy.is_fallback_attempt(attempt) {
                    SampleStatus::Degraded
                } else if attempt > 0 {
                    SampleStatus::Recovered
                } else {
                    SampleStatus::Clean
                };
                let mut status = status.max(floor);
                if timed_out {
                    status = status.max(SampleStatus::TimedOut);
                }
                return SampleRecord {
                    status,
                    attempts: attempt + 1,
                    outcome: Ok(v),
                };
            }
            Err(msg) => {
                last = Some(if overran {
                    format!("soft timeout overrun on attempt {attempt}: {msg}")
                } else {
                    msg
                })
            }
        }
    }
    SampleRecord {
        status: SampleStatus::Failed,
        attempts: budget,
        outcome: Err(last.unwrap_or_else(|| "empty attempt budget".to_string())),
    }
}

/// Runs a durable Monte-Carlo campaign over `samples`.
///
/// The evaluator contract is that of
/// [`crate::monte_carlo_par_with_policy`]: `f(sample, attempt)` must be a
/// deterministic pure function (attempt 0 the fast path, later attempts
/// the recovery rungs). Given that, the merged output over any
/// interrupted-and-resumed schedule is **bitwise-identical** to an
/// uninterrupted run at any worker count.
///
/// * `config.resume` — restore completed samples from a snapshot
///   (fingerprint-validated; mismatches refuse with a typed error) and
///   evaluate only the missing indices.
/// * `config.checkpoint` — write atomic checksummed snapshots every
///   `checkpoint_every` completions, plus a final one before returning.
///   Periodic write failures are tolerated (the run is worth more than a
///   snapshot); the *final* write's failure is returned as an error.
/// * `config.deadline` / `config.sample_budget` — stop claiming new
///   samples on expiry; in-flight samples finish; the verdict is
///   [`CampaignVerdict::Truncated`] and the final snapshot makes the
///   remainder resumable.
///
/// `policy.fail_fast` is ignored: a campaign's answer to a failing
/// sample is the quarantine-and-checkpoint bookkeeping, not truncation
/// (truncating at a failure would make "resume to completion" and "stop
/// at first failure" contradictory goals).
///
/// # Errors
///
/// Checkpoint load/validation failures, and the final snapshot write.
pub fn run_campaign<S, E>(
    samples: &[S],
    threads: usize,
    policy: RecoveryPolicy,
    config: &CampaignConfig,
    fingerprint: CampaignFingerprint,
    f: impl Fn(&S, usize) -> Result<(f64, SampleStatus), E> + Sync,
) -> Result<CampaignResult, CheckpointError>
where
    S: Sync,
    E: Display,
{
    let start = Instant::now();
    let n = samples.len();
    if fingerprint.n_samples != n {
        return Err(CheckpointError::Malformed {
            reason: format!(
                "fingerprint says {} samples but {} were provided",
                fingerprint.n_samples, n
            ),
        });
    }

    let mut records: Vec<Option<SampleRecord>> = vec![None; n];
    let mut resumed = 0usize;
    if let Some(resume_path) = &config.resume {
        // Checkpoint hygiene: a crash between `File::create(tmp)` and the
        // rename leaves an orphaned staging file next to the snapshot.
        // The resume boundary is the one place no writer can be active,
        // so reap it here (and at the checkpoint path, if different).
        reap_orphan_tmp(resume_path);
        if let Some(ck_path) = &config.checkpoint {
            if ck_path != resume_path {
                reap_orphan_tmp(ck_path);
            }
        }
        let ck = load_checkpoint(resume_path)?;
        ck.validate(&fingerprint)?;
        records = ck.outcomes;
        resumed = records.iter().filter(|r| r.is_some()).count();
    }

    let pending: Vec<usize> = (0..n).filter(|&i| records[i].is_none()).collect();
    let deadline = config.deadline.map(|d| start + d);
    let budget = config.sample_budget;
    let snapshots = AtomicUsize::new(0);

    if !pending.is_empty() && budget != Some(0) {
        let workers = crate::resolve_threads(threads).min(pending.len());
        let cursor = AtomicUsize::new(0);
        let started = AtomicUsize::new(0);
        let state = Mutex::new(CampaignState {
            records,
            since_snapshot: 0,
        });
        // Serializes snapshot writes (never held while evaluating).
        let write_gate = Mutex::new(());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    // Merge this worker's solver-phase metrics on every exit
                    // path before the scope joins (TLS teardown is not
                    // ordered before the join).
                    let _flush = linvar_metrics::flush_on_drop();
                    loop {
                        if deadline.is_some_and(|dl| Instant::now() >= dl) {
                            break;
                        }
                        if config
                            .cancel
                            .as_ref()
                            .is_some_and(|c| c.load(Ordering::Relaxed))
                        {
                            break;
                        }
                        if let Some(b) = budget {
                            if started.fetch_add(1, Ordering::Relaxed) >= b {
                                break;
                            }
                        }
                        let pos = cursor.fetch_add(1, Ordering::Relaxed);
                        if pos >= pending.len() {
                            break;
                        }
                        let idx = pending[pos];
                        let rec = evaluate_sample(&f, &samples[idx], policy, config.sample_timeout);
                        let snapshot = {
                            let mut st = state.lock().expect("campaign state lock");
                            st.records[idx] = Some(rec);
                            st.since_snapshot += 1;
                            if config.checkpoint.is_some() && st.since_snapshot >= config.every() {
                                st.since_snapshot = 0;
                                Some(st.records.clone())
                            } else {
                                None
                            }
                        };
                        if let (Some(snap), Some(path)) = (snapshot, &config.checkpoint) {
                            // Periodic snapshots are best-effort: a write
                            // failure must not kill the run it exists to
                            // protect. The final write below is authoritative.
                            let _gate = write_gate.lock().expect("checkpoint write gate");
                            if save_checkpoint(path, &fingerprint, &snap).is_ok() {
                                snapshots.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
        });
        records = state.into_inner().expect("workers joined").records;
    }

    let completed = records.iter().filter(|r| r.is_some()).count();
    if let Some(path) = &config.checkpoint {
        save_checkpoint(path, &fingerprint, &records)?;
        snapshots.fetch_add(1, Ordering::Relaxed);
    }

    let mut values = Vec::with_capacity(completed);
    let mut failed_indices = Vec::new();
    let mut first_error = None;
    let mut sample_health = Vec::with_capacity(completed);
    let mut health = HealthSummary::default();
    for (idx, rec) in records.iter().enumerate() {
        let Some(rec) = rec else { continue };
        // Counted at the merge point over *completed* samples (resumed +
        // evaluated), mirroring what the statistics themselves cover.
        linvar_metrics::incr(linvar_metrics::Counter::McSamplesCompleted);
        if rec.outcome.is_err() {
            linvar_metrics::incr(linvar_metrics::Counter::McSamplesFailed);
        }
        linvar_metrics::count(
            linvar_metrics::Counter::McSampleRetries,
            rec.attempts.saturating_sub(1) as u64,
        );
        health.count(rec.status);
        sample_health.push(SampleHealth {
            index: idx,
            status: rec.status,
            attempts: rec.attempts,
        });
        match &rec.outcome {
            Ok(v) => values.push(*v),
            Err(msg) => {
                if first_error.is_none() {
                    first_error = Some(msg.clone());
                }
                failed_indices.push(idx);
            }
        }
    }
    let summary = Summary::of(&values);
    let remaining = n - completed;
    Ok(CampaignResult {
        values,
        summary,
        failures: failed_indices.len(),
        failed_indices,
        first_error,
        sample_health,
        health,
        verdict: if remaining == 0 {
            CampaignVerdict::Complete
        } else {
            CampaignVerdict::Truncated { remaining }
        },
        completed,
        resumed,
        evaluated: completed - resumed,
        checkpoints_written: snapshots.into_inner(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> PathBuf {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let k = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "linvar-campaign-unit-{}-{tag}-{k}.ckpt",
            std::process::id()
        ))
    }

    fn fp(n: usize) -> CampaignFingerprint {
        CampaignFingerprint {
            master_seed: 42,
            n_samples: n,
            policy: RecoveryPolicy::default(),
            model: fingerprint_words([1, 2, 3]),
        }
    }

    fn eval(k: &usize, _attempt: usize) -> Result<(f64, SampleStatus), String> {
        Ok((*k as f64 * 1.5, SampleStatus::Clean))
    }

    #[test]
    fn checkpoint_roundtrip_is_bit_exact() {
        let path = tmp_path("roundtrip");
        let outcomes = vec![
            Some(SampleRecord {
                status: SampleStatus::Clean,
                attempts: 1,
                outcome: Ok(std::f64::consts::PI),
            }),
            None,
            Some(SampleRecord {
                status: SampleStatus::Failed,
                attempts: 3,
                outcome: Err("line1\nline2 \\ backslash".into()),
            }),
            Some(SampleRecord {
                status: SampleStatus::TimedOut,
                attempts: 2,
                outcome: Ok(-0.0),
            }),
        ];
        save_checkpoint(&path, &fp(4), &outcomes).unwrap();
        let ck = load_checkpoint(&path).unwrap();
        assert_eq!(ck.fingerprint, fp(4));
        assert_eq!(ck.outcomes, outcomes);
        assert_eq!(ck.completed(), 3);
        // Bit-exactness (−0.0 and π survive exactly).
        let restored = ck.outcomes[3].as_ref().unwrap();
        assert_eq!(
            restored.outcome.as_ref().unwrap().to_bits(),
            (-0.0f64).to_bits()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn campaign_without_config_matches_policy_driver_shape() {
        let samples: Vec<usize> = (0..20).collect();
        let res = run_campaign(
            &samples,
            2,
            RecoveryPolicy::default(),
            &CampaignConfig::default(),
            fp(20),
            eval,
        )
        .unwrap();
        assert_eq!(res.verdict, CampaignVerdict::Complete);
        assert_eq!(res.completed, 20);
        assert_eq!(res.resumed, 0);
        assert_eq!(res.evaluated, 20);
        assert_eq!(res.values.len(), 20);
        assert!(res.health.all_clean());
        assert_eq!(res.checkpoints_written, 0);
    }

    #[test]
    fn sample_budget_truncates_then_resume_completes_identically() {
        let samples: Vec<usize> = (0..30).collect();
        let clean = run_campaign(
            &samples,
            1,
            RecoveryPolicy::default(),
            &CampaignConfig::default(),
            fp(30),
            eval,
        )
        .unwrap();
        let path = tmp_path("budget");
        let first = run_campaign(
            &samples,
            3,
            RecoveryPolicy::default(),
            &CampaignConfig {
                checkpoint: Some(path.clone()),
                sample_budget: Some(11),
                ..CampaignConfig::default()
            },
            fp(30),
            eval,
        )
        .unwrap();
        assert_eq!(first.verdict, CampaignVerdict::Truncated { remaining: 19 });
        assert_eq!(first.completed, 11);
        assert!(first.checkpoints_written >= 1);
        let second = run_campaign(
            &samples,
            3,
            RecoveryPolicy::default(),
            &CampaignConfig {
                checkpoint: Some(path.clone()),
                resume: Some(path.clone()),
                ..CampaignConfig::default()
            },
            fp(30),
            eval,
        )
        .unwrap();
        assert_eq!(second.verdict, CampaignVerdict::Complete);
        assert_eq!(second.resumed, 11);
        assert_eq!(second.evaluated, 19);
        let a: Vec<u64> = clean.values.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = second.values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
        assert_eq!(clean.summary.mean.to_bits(), second.summary.mean.to_bits());
        assert_eq!(clean.sample_health, second.sample_health);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zero_deadline_truncates_gracefully() {
        let samples: Vec<usize> = (0..10).collect();
        let path = tmp_path("deadline");
        let res = run_campaign(
            &samples,
            2,
            RecoveryPolicy::default(),
            &CampaignConfig {
                checkpoint: Some(path.clone()),
                deadline: Some(Duration::ZERO),
                ..CampaignConfig::default()
            },
            fp(10),
            eval,
        )
        .unwrap();
        assert_eq!(res.verdict, CampaignVerdict::Truncated { remaining: 10 });
        assert_eq!(res.summary.n, 0);
        // The final snapshot exists and is resumable.
        let res = run_campaign(
            &samples,
            2,
            RecoveryPolicy::default(),
            &CampaignConfig {
                resume: Some(path.clone()),
                ..CampaignConfig::default()
            },
            fp(10),
            eval,
        )
        .unwrap();
        assert_eq!(res.verdict, CampaignVerdict::Complete);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn watchdog_floors_slow_samples_to_timed_out() {
        let samples: Vec<usize> = (0..6).collect();
        let res = run_campaign(
            &samples,
            2,
            RecoveryPolicy::default(),
            &CampaignConfig {
                sample_timeout: Some(Duration::from_millis(5)),
                ..CampaignConfig::default()
            },
            fp(6),
            |&k: &usize, _attempt: usize| -> Result<(f64, SampleStatus), String> {
                if k == 3 {
                    std::thread::sleep(Duration::from_millis(30));
                }
                Ok((k as f64, SampleStatus::Clean))
            },
        )
        .unwrap();
        assert_eq!(res.health.n_timed_out, 1);
        assert_eq!(res.health.n_clean, 5);
        assert_eq!(res.sample_health[3].status, SampleStatus::TimedOut);
        // The slow sample's value is kept, not discarded.
        assert_eq!(res.values.len(), 6);
        assert_eq!(res.failures, 0);
    }

    #[test]
    fn watchdog_overrunning_failure_falls_down_the_ladder() {
        let samples: Vec<usize> = (0..4).collect();
        let res = run_campaign(
            &samples,
            1,
            RecoveryPolicy {
                max_retries: 1,
                allow_fallback: false,
                fail_fast: false,
            },
            &CampaignConfig {
                sample_timeout: Some(Duration::from_millis(5)),
                ..CampaignConfig::default()
            },
            fp(4),
            |&k: &usize, attempt: usize| -> Result<(f64, SampleStatus), String> {
                if k == 2 && attempt == 0 {
                    // A stuck fast path: slow *and* failing.
                    std::thread::sleep(Duration::from_millis(30));
                    return Err("solver wedged".into());
                }
                Ok((k as f64, SampleStatus::Clean))
            },
        )
        .unwrap();
        // Attempt 1 (the lower rung) served it; the watchdog is recorded.
        assert_eq!(res.sample_health[2].status, SampleStatus::TimedOut);
        assert_eq!(res.sample_health[2].attempts, 2);
        assert_eq!(res.failures, 0);
        assert_eq!(res.health.n_timed_out, 1);
    }

    #[test]
    fn mismatched_fingerprint_refuses_resume() {
        let samples: Vec<usize> = (0..8).collect();
        let path = tmp_path("mismatch");
        run_campaign(
            &samples,
            1,
            RecoveryPolicy::default(),
            &CampaignConfig {
                checkpoint: Some(path.clone()),
                ..CampaignConfig::default()
            },
            fp(8),
            eval,
        )
        .unwrap();
        let mut wrong = fp(8);
        wrong.master_seed = 43;
        let err = run_campaign(
            &samples,
            1,
            RecoveryPolicy::default(),
            &CampaignConfig {
                resume: Some(path.clone()),
                ..CampaignConfig::default()
            },
            wrong,
            eval,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            CheckpointError::FingerprintMismatch {
                field: "master seed",
                ..
            }
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_resume_file_is_a_typed_io_error() {
        let samples: Vec<usize> = (0..2).collect();
        let err = run_campaign(
            &samples,
            1,
            RecoveryPolicy::default(),
            &CampaignConfig {
                resume: Some(tmp_path("never-written")),
                ..CampaignConfig::default()
            },
            fp(2),
            eval,
        )
        .unwrap_err();
        assert!(matches!(err, CheckpointError::Io { op: "read", .. }));
    }

    #[test]
    fn resume_reaps_orphan_tmp_sibling() {
        let samples: Vec<usize> = (0..6).collect();
        let path = tmp_path("reap");
        run_campaign(
            &samples,
            1,
            RecoveryPolicy::default(),
            &CampaignConfig {
                checkpoint: Some(path.clone()),
                sample_budget: Some(3),
                ..CampaignConfig::default()
            },
            fp(6),
            eval,
        )
        .unwrap();
        // Simulate a crash mid-write: a torn staging file next to the
        // (valid) snapshot.
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        std::fs::write(&tmp, b"torn partial checkpoint write\x00garbage").unwrap();
        let res = run_campaign(
            &samples,
            1,
            RecoveryPolicy::default(),
            &CampaignConfig {
                checkpoint: Some(path.clone()),
                resume: Some(path.clone()),
                ..CampaignConfig::default()
            },
            fp(6),
            eval,
        )
        .unwrap();
        assert_eq!(res.verdict, CampaignVerdict::Complete);
        assert!(!tmp.exists(), "orphaned .tmp must be reaped on resume");
        // Reaping again is a no-op, not an error.
        assert!(!reap_orphan_tmp(&path));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reap_tmp_in_dir_sweeps_only_tmp_files() {
        let dir = std::env::temp_dir().join(format!("linvar-reap-dir-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("a.ckpt"), b"keep").unwrap();
        std::fs::write(dir.join("a.ckpt.tmp"), b"torn").unwrap();
        std::fs::write(dir.join("b.ckpt.tmp"), b"torn").unwrap();
        assert_eq!(reap_tmp_in_dir(&dir), 2);
        assert!(dir.join("a.ckpt").exists(), "real snapshots are kept");
        assert!(!dir.join("a.ckpt.tmp").exists());
        assert_eq!(reap_tmp_in_dir(&dir), 0, "sweep is idempotent");
        assert_eq!(reap_tmp_in_dir(&dir.join("missing")), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cancel_flag_truncates_then_resume_completes_identically() {
        let samples: Vec<usize> = (0..24).collect();
        let clean = run_campaign(
            &samples,
            1,
            RecoveryPolicy::default(),
            &CampaignConfig::default(),
            fp(24),
            eval,
        )
        .unwrap();
        let path = tmp_path("cancel");
        let cancel = Arc::new(AtomicBool::new(false));
        let hits = AtomicUsize::new(0);
        let first = run_campaign(
            &samples,
            2,
            RecoveryPolicy::default(),
            &CampaignConfig {
                checkpoint: Some(path.clone()),
                cancel: Some(cancel.clone()),
                ..CampaignConfig::default()
            },
            fp(24),
            |k: &usize, attempt: usize| {
                // Trip the flag partway through: later claims must stop.
                if hits.fetch_add(1, Ordering::Relaxed) == 7 {
                    cancel.store(true, Ordering::Relaxed);
                }
                eval(k, attempt)
            },
        )
        .unwrap();
        assert!(
            matches!(first.verdict, CampaignVerdict::Truncated { .. }),
            "cancel mid-run must truncate, got {:?}",
            first.verdict
        );
        assert!(first.completed < 24 && first.completed >= 8);
        let second = run_campaign(
            &samples,
            2,
            RecoveryPolicy::default(),
            &CampaignConfig {
                resume: Some(path.clone()),
                ..CampaignConfig::default()
            },
            fp(24),
            eval,
        )
        .unwrap();
        assert_eq!(second.verdict, CampaignVerdict::Complete);
        let a: Vec<u64> = clean.values.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = second.values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b, "cancel + resume must be bitwise-identical");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pre_set_cancel_flag_evaluates_nothing() {
        let samples: Vec<usize> = (0..5).collect();
        let res = run_campaign(
            &samples,
            2,
            RecoveryPolicy::default(),
            &CampaignConfig {
                cancel: Some(Arc::new(AtomicBool::new(true))),
                ..CampaignConfig::default()
            },
            fp(5),
            eval,
        )
        .unwrap();
        assert_eq!(res.verdict, CampaignVerdict::Truncated { remaining: 5 });
        assert_eq!(res.evaluated, 0);
    }

    #[test]
    fn fingerprint_helpers_are_stable_and_sensitive() {
        assert_eq!(fingerprint_words([1, 2]), fingerprint_words([1, 2]));
        assert_ne!(fingerprint_words([1, 2]), fingerprint_words([2, 1]));
        assert_ne!(fingerprint_str("inv"), fingerprint_str("nand2"));
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
    }
}
