//! Seeded random sampling: normal/uniform sources and Latin Hypercube
//! Sampling.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The deterministic RNG used throughout the workspace. All experiments
/// seed it explicitly so every table and figure is reproducible.
pub type SampleRng = StdRng;

/// Creates the workspace RNG from a seed.
pub fn rng_from_seed(seed: u64) -> SampleRng {
    StdRng::seed_from_u64(seed)
}

/// Draws `n` standard-normal samples (Box-Muller on the uniform source).
pub fn normal_samples(rng: &mut SampleRng, n: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        // Box-Muller transform; guard against log(0).
        let u1: f64 = rng.random::<f64>().max(1e-300);
        let u2: f64 = rng.random();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        out.push(r * theta.cos());
        if out.len() < n {
            out.push(r * theta.sin());
        }
    }
    out
}

/// Draws `n` uniform samples in `[lo, hi)`.
pub fn uniform_samples(rng: &mut SampleRng, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..n).map(|_| lo + (hi - lo) * rng.random::<f64>()).collect()
}

/// Latin Hypercube Sampling: `n` samples in `dims` dimensions, each
/// marginal stratified into `n` equal-probability bins with one sample per
/// bin, bins randomly permuted per dimension.
///
/// `transform` maps the per-dimension uniform `[0, 1)` stratum draw to the
/// target distribution (identity for uniform on `[0,1)`); use
/// [`lhs_uniform`] / [`lhs_normal`] for the common cases.
pub fn latin_hypercube(
    rng: &mut SampleRng,
    n: usize,
    dims: usize,
    transform: impl Fn(usize, f64) -> f64,
) -> Vec<Vec<f64>> {
    let mut samples = vec![vec![0.0; dims]; n];
    for d in 0..dims {
        // A random permutation of the n strata.
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            perm.swap(i, j);
        }
        for (k, sample) in samples.iter_mut().enumerate() {
            let u = (perm[k] as f64 + rng.random::<f64>()) / n as f64;
            sample[d] = transform(d, u);
        }
    }
    samples
}

/// LHS with uniform marginals on `[lo, hi)`.
pub fn lhs_uniform(rng: &mut SampleRng, n: usize, dims: usize, lo: f64, hi: f64) -> Vec<Vec<f64>> {
    latin_hypercube(rng, n, dims, |_, u| lo + (hi - lo) * u)
}

/// LHS with standard-normal marginals (inverse-CDF via the
/// Acklam/Beasley-Springer-Moro rational approximation).
pub fn lhs_normal(rng: &mut SampleRng, n: usize, dims: usize, sigma: f64) -> Vec<Vec<f64>> {
    latin_hypercube(rng, n, dims, |_, u| sigma * inverse_normal_cdf(u))
}

/// Inverse standard-normal CDF (Acklam's rational approximation, |ε| < 1.2e-9).
pub fn inverse_normal_cdf(p: f64) -> f64 {
    let p = p.clamp(1e-300, 1.0 - 1e-16);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linvar_numeric::vector::{mean, std_dev};

    #[test]
    fn normal_samples_have_right_moments() {
        let mut rng = rng_from_seed(42);
        let xs = normal_samples(&mut rng, 20_000);
        assert!(mean(&xs).abs() < 0.03, "mean {}", mean(&xs));
        assert!((std_dev(&xs) - 1.0).abs() < 0.03, "std {}", std_dev(&xs));
    }

    #[test]
    fn uniform_samples_in_range() {
        let mut rng = rng_from_seed(1);
        let xs = uniform_samples(&mut rng, 5000, -1.0, 1.0);
        assert!(xs.iter().all(|&x| (-1.0..1.0).contains(&x)));
        assert!(mean(&xs).abs() < 0.05);
        // Uniform on [-1,1) has std 1/√3 ≈ 0.577.
        assert!((std_dev(&xs) - 1.0 / 3.0_f64.sqrt()).abs() < 0.02);
    }

    #[test]
    fn lhs_stratification_property() {
        // Every dimension must have exactly one sample per stratum.
        let mut rng = rng_from_seed(7);
        let n = 50;
        let samples = lhs_uniform(&mut rng, n, 3, 0.0, 1.0);
        for d in 0..3 {
            let mut seen = vec![false; n];
            for s in &samples {
                let bin = ((s[d] * n as f64) as usize).min(n - 1);
                assert!(!seen[bin], "stratum {bin} hit twice in dim {d}");
                seen[bin] = true;
            }
            assert!(seen.iter().all(|&b| b), "all strata covered in dim {d}");
        }
    }

    #[test]
    fn lhs_variance_reduction_on_mean() {
        // LHS mean estimate of a monotone function has lower variance than
        // plain MC for equal sample counts.
        let f = |x: &[f64]| x[0] + x[1] * x[1];
        let trials = 60;
        let n = 20;
        let mut lhs_means = Vec::new();
        let mut mc_means = Vec::new();
        for t in 0..trials {
            let mut rng = rng_from_seed(1000 + t);
            let lhs = lhs_uniform(&mut rng, n, 2, 0.0, 1.0);
            lhs_means.push(mean(&lhs.iter().map(|s| f(s)).collect::<Vec<_>>()));
            let mc: Vec<f64> = (0..n)
                .map(|_| {
                    let x = [rng.random::<f64>(), rng.random::<f64>()];
                    f(&x)
                })
                .collect();
            mc_means.push(mean(&mc));
        }
        assert!(
            std_dev(&lhs_means) < std_dev(&mc_means),
            "LHS {} vs MC {}",
            std_dev(&lhs_means),
            std_dev(&mc_means)
        );
    }

    #[test]
    fn lhs_normal_marginals() {
        let mut rng = rng_from_seed(3);
        let samples = lhs_normal(&mut rng, 2000, 1, 2.0);
        let xs: Vec<f64> = samples.iter().map(|s| s[0]).collect();
        assert!(mean(&xs).abs() < 0.05);
        assert!((std_dev(&xs) - 2.0).abs() < 0.05);
    }

    #[test]
    fn inverse_cdf_reference_points() {
        assert!(inverse_normal_cdf(0.5).abs() < 1e-8);
        assert!((inverse_normal_cdf(0.975) - 1.959964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.025) + 1.959964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.8413) - 1.0).abs() < 1e-3);
        // Extremes stay finite.
        assert!(inverse_normal_cdf(1e-300).is_finite());
        assert!(inverse_normal_cdf(1.0).is_finite());
    }

    #[test]
    fn determinism_under_seed() {
        let a = normal_samples(&mut rng_from_seed(9), 10);
        let b = normal_samples(&mut rng_from_seed(9), 10);
        assert_eq!(a, b);
    }
}
