//! Seeded random sampling: normal/uniform sources and Latin Hypercube
//! Sampling.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The deterministic RNG used throughout the workspace. All experiments
/// seed it explicitly so every table and figure is reproducible.
pub type SampleRng = StdRng;

/// Creates the workspace RNG from a seed.
pub fn rng_from_seed(seed: u64) -> SampleRng {
    StdRng::seed_from_u64(seed)
}

/// SplitMix64 finalizer: a bijective avalanche mix of a 64-bit word.
#[inline]
fn splitmix64_mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-sample seed streams: the determinism backbone of the parallel
/// Monte-Carlo engine.
///
/// `SampleRng::stream(master_seed, index)` derives an independent
/// generator whose output is a **pure function of `(master_seed, index)`**
/// — no shared state, no draw-order dependence. A parallel driver can hand
/// stream `k` to whichever worker evaluates sample `k` and obtain results
/// bitwise-identical to a serial run at any thread count.
///
/// The derivation applies the SplitMix64 avalanche mix twice
/// (`mix(mix(seed) ^ mix(index ^ tag))`), so structured inputs — seeds
/// 0/1/2, consecutive indices — still land far apart in state space.
pub trait SeedStream: Sized {
    /// Derives the generator for sample `index` under `master_seed`.
    fn stream(master_seed: u64, index: u64) -> Self;
}

impl SeedStream for SampleRng {
    fn stream(master_seed: u64, index: u64) -> SampleRng {
        // Distinct tags keep `stream(s, i)` decorrelated from
        // `stream(i, s)` and from plain `rng_from_seed(s)`.
        const INDEX_TAG: u64 = 0xA076_1D64_78BD_642F;
        let mixed = splitmix64_mix(splitmix64_mix(master_seed) ^ splitmix64_mix(index ^ INDEX_TAG));
        StdRng::seed_from_u64(mixed)
    }
}

/// Draws `n` standard-normal samples (Box-Muller on the uniform source).
pub fn normal_samples(rng: &mut SampleRng, n: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        // Box-Muller transform; guard against log(0).
        let u1: f64 = rng.random::<f64>().max(1e-300);
        let u2: f64 = rng.random();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        out.push(r * theta.cos());
        if out.len() < n {
            out.push(r * theta.sin());
        }
    }
    out
}

/// Draws `n` uniform samples in `[lo, hi)`.
pub fn uniform_samples(rng: &mut SampleRng, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..n)
        .map(|_| lo + (hi - lo) * rng.random::<f64>())
        .collect()
}

/// Latin Hypercube Sampling: `n` samples in `dims` dimensions, each
/// marginal stratified into `n` equal-probability bins with one sample per
/// bin, bins randomly permuted per dimension.
///
/// `transform` maps the per-dimension uniform `[0, 1)` stratum draw to the
/// target distribution (identity for uniform on `[0,1)`); use
/// [`lhs_uniform`] / [`lhs_normal`] for the common cases.
pub fn latin_hypercube(
    rng: &mut SampleRng,
    n: usize,
    dims: usize,
    transform: impl Fn(usize, f64) -> f64,
) -> Vec<Vec<f64>> {
    let mut samples = vec![vec![0.0; dims]; n];
    for d in 0..dims {
        // A random permutation of the n strata.
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            perm.swap(i, j);
        }
        for (k, sample) in samples.iter_mut().enumerate() {
            let u = (perm[k] as f64 + rng.random::<f64>()) / n as f64;
            sample[d] = transform(d, u);
        }
    }
    samples
}

/// Latin Hypercube Sampling on per-sample seed streams.
///
/// Functionally the same stratification as [`latin_hypercube`], but the
/// randomness is organized for parallel evaluation: the stratum
/// permutation of dimension `d` comes from the stream
/// `(master_seed ⊕ salt, d)` and the within-stratum jitter of sample `k`
/// comes from the stream `(master_seed, k)`. Sample `k` is therefore a
/// pure function of `(master_seed, k)` plus the per-dimension
/// permutations — independent of evaluation order and thread count.
pub fn latin_hypercube_streamed(
    master_seed: u64,
    n: usize,
    dims: usize,
    transform: impl Fn(usize, f64) -> f64,
) -> Vec<Vec<f64>> {
    // Salt separates the permutation streams from the per-sample jitter
    // streams; without it, dimension d and sample d would share a stream.
    const PERM_SALT: u64 = 0x5851_F42D_4C95_7F2D;
    let perms: Vec<Vec<usize>> = (0..dims)
        .map(|d| {
            let mut rng = SampleRng::stream(master_seed ^ PERM_SALT, d as u64);
            let mut perm: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                let j = rng.random_range(0..=i);
                perm.swap(i, j);
            }
            perm
        })
        .collect();
    (0..n)
        .map(|k| {
            let mut srng = SampleRng::stream(master_seed, k as u64);
            (0..dims)
                .map(|d| {
                    let u = (perms[d][k] as f64 + srng.random::<f64>()) / n as f64;
                    transform(d, u)
                })
                .collect()
        })
        .collect()
}

/// Streamed LHS with standard-normal marginals scaled by `sigma`
/// (see [`latin_hypercube_streamed`]).
pub fn lhs_normal_streamed(master_seed: u64, n: usize, dims: usize, sigma: f64) -> Vec<Vec<f64>> {
    latin_hypercube_streamed(master_seed, n, dims, |_, u| sigma * inverse_normal_cdf(u))
}

/// LHS with uniform marginals on `[lo, hi)`.
pub fn lhs_uniform(rng: &mut SampleRng, n: usize, dims: usize, lo: f64, hi: f64) -> Vec<Vec<f64>> {
    latin_hypercube(rng, n, dims, |_, u| lo + (hi - lo) * u)
}

/// Highest dimension count of the embedded Sobol direction numbers.
pub const SOBOL_MAX_DIMS: usize = 16;

/// Bits of Sobol resolution (direction numbers per dimension).
const SOBOL_BITS: usize = 32;

/// Primitive polynomials over GF(2) and initial direction values for
/// Sobol dimensions 2..=16 (Joe & Kuo style table; dimension 1 is the
/// van der Corput sequence). Each row is `(degree, a, m)` where `a`
/// encodes the middle polynomial coefficients and `m` the initial
/// odd direction integers.
const SOBOL_POLYS: [(u32, u32, [u32; 6]); 15] = [
    (1, 0, [1, 0, 0, 0, 0, 0]),
    (2, 1, [1, 3, 0, 0, 0, 0]),
    (3, 1, [1, 3, 1, 0, 0, 0]),
    (3, 2, [1, 1, 1, 0, 0, 0]),
    (4, 1, [1, 1, 3, 3, 0, 0]),
    (4, 4, [1, 3, 5, 13, 0, 0]),
    (5, 2, [1, 1, 5, 5, 17, 0]),
    (5, 4, [1, 1, 5, 5, 5, 0]),
    (5, 7, [1, 1, 7, 11, 19, 0]),
    (5, 11, [1, 1, 5, 1, 1, 0]),
    (5, 13, [1, 1, 1, 3, 11, 0]),
    (5, 14, [1, 3, 5, 5, 31, 0]),
    (6, 1, [1, 3, 3, 9, 7, 49]),
    (6, 13, [1, 1, 1, 15, 21, 21]),
    (6, 16, [1, 3, 1, 13, 27, 49]),
];

/// Direction numbers of one Sobol dimension (`dim` is 0-based).
fn sobol_directions(dim: usize) -> [u32; SOBOL_BITS] {
    let mut v = [0u32; SOBOL_BITS];
    if dim == 0 {
        // Van der Corput: v_j = 2^(32-1-j).
        for (j, vj) in v.iter_mut().enumerate() {
            *vj = 1u32 << (SOBOL_BITS - 1 - j);
        }
        return v;
    }
    let (s, a, m) = SOBOL_POLYS[dim - 1];
    let s = s as usize;
    let mut mm = [0u64; SOBOL_BITS];
    for (slot, &init) in mm.iter_mut().zip(&m[..s]) {
        *slot = u64::from(init);
    }
    for k in s..SOBOL_BITS {
        // m_k = 2^s m_{k-s} ⊕ m_{k-s} ⊕ Σ⊕ 2^i a_i m_{k-i}.
        let mut val = (mm[k - s] << s) ^ mm[k - s];
        for i in 1..s {
            if (a >> (s - 1 - i)) & 1 == 1 {
                val ^= mm[k - i] << i;
            }
        }
        mm[k] = val;
    }
    for j in 0..SOBOL_BITS {
        v[j] = (mm[j] as u32) << (SOBOL_BITS - 1 - j);
    }
    v
}

/// Tag separating the Sobol digital-shift streams from every other
/// seed-stream family in this module.
const SOBOL_SHIFT_TAG: u64 = 0x9E6C_63D0_4F4F_2CB1;

/// The per-dimension digital shift: a pure function of
/// `(master_seed, dim)`, XORed onto every raw Sobol integer so
/// different seeds walk differently-scrambled copies of the sequence
/// while keeping its dyadic equidistribution exactly.
fn sobol_shift(master_seed: u64, dim: usize) -> u32 {
    let mixed =
        splitmix64_mix(splitmix64_mix(master_seed) ^ splitmix64_mix(dim as u64 ^ SOBOL_SHIFT_TAG));
    (mixed >> 32) as u32
}

/// One point of the digitally-shifted Sobol sequence: uniform
/// coordinates in `(0, 1)`, a **pure function of
/// `(master_seed, index)`** — the same contract as
/// [`latin_hypercube_streamed`], so parallel drivers and resumed
/// campaigns reproduce the set bitwise in any evaluation order.
///
/// # Panics
///
/// If `dims > SOBOL_MAX_DIMS`.
pub fn sobol_point(master_seed: u64, index: u64, dims: usize) -> Vec<f64> {
    assert!(
        dims <= SOBOL_MAX_DIMS,
        "sobol_point supports up to {SOBOL_MAX_DIMS} dims, got {dims}"
    );
    // Gray-code form: XOR the direction numbers of the set bits of
    // gray(index). Equivalent to the incremental construction but
    // random-access — no per-point state to thread through workers.
    let gray = index ^ (index >> 1);
    (0..dims)
        .map(|d| {
            let v = sobol_directions(d);
            let mut x = 0u32;
            for (j, &vj) in v.iter().enumerate() {
                if (gray >> j) & 1 == 1 {
                    x ^= vj;
                }
            }
            x ^= sobol_shift(master_seed, d);
            (f64::from(x) + 0.5) / (1u64 << SOBOL_BITS) as f64
        })
        .collect()
}

/// The first `n` points of the digitally-shifted Sobol sequence with
/// standard-normal marginals scaled by `sigma` — the quasi-MC peer of
/// [`lhs_normal_streamed`] (same signature, same purity contract).
pub fn sobol_normal_streamed(master_seed: u64, n: usize, dims: usize, sigma: f64) -> Vec<Vec<f64>> {
    (0..n as u64)
        .map(|k| {
            sobol_point(master_seed, k, dims)
                .into_iter()
                .map(|u| sigma * inverse_normal_cdf(u))
                .collect()
        })
        .collect()
}

/// Which low-level sample stream a statistical engine draws from. Both
/// variants are pure functions of `(master_seed, index)`; they differ
/// only in how evenly the points cover the unit cube (LHS stratifies
/// each marginal, Sobol additionally balances every dyadic box).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleSource {
    /// Streamed Latin Hypercube Sampling ([`lhs_normal_streamed`]).
    Lhs,
    /// Digitally-shifted Sobol sequence ([`sobol_normal_streamed`]).
    Sobol,
}

impl SampleSource {
    /// Draws `n` normal samples in `dims` dimensions from this source.
    pub fn normal_streamed(
        self,
        master_seed: u64,
        n: usize,
        dims: usize,
        sigma: f64,
    ) -> Vec<Vec<f64>> {
        match self {
            SampleSource::Lhs => lhs_normal_streamed(master_seed, n, dims, sigma),
            SampleSource::Sobol => sobol_normal_streamed(master_seed, n, dims, sigma),
        }
    }

    /// Stable name, used in fingerprints and bench row prefixes.
    pub fn name(self) -> &'static str {
        match self {
            SampleSource::Lhs => "lhs",
            SampleSource::Sobol => "sobol",
        }
    }
}

/// LHS with standard-normal marginals (inverse-CDF via the
/// Acklam/Beasley-Springer-Moro rational approximation).
pub fn lhs_normal(rng: &mut SampleRng, n: usize, dims: usize, sigma: f64) -> Vec<Vec<f64>> {
    latin_hypercube(rng, n, dims, |_, u| sigma * inverse_normal_cdf(u))
}

/// Inverse standard-normal CDF (Acklam's rational approximation, |ε| < 1.2e-9).
pub fn inverse_normal_cdf(p: f64) -> f64 {
    let p = p.clamp(1e-300, 1.0 - 1e-16);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linvar_numeric::vector::{mean, std_dev};

    #[test]
    fn normal_samples_have_right_moments() {
        let mut rng = rng_from_seed(42);
        let xs = normal_samples(&mut rng, 20_000);
        assert!(mean(&xs).abs() < 0.03, "mean {}", mean(&xs));
        assert!((std_dev(&xs) - 1.0).abs() < 0.03, "std {}", std_dev(&xs));
    }

    #[test]
    fn uniform_samples_in_range() {
        let mut rng = rng_from_seed(1);
        let xs = uniform_samples(&mut rng, 5000, -1.0, 1.0);
        assert!(xs.iter().all(|&x| (-1.0..1.0).contains(&x)));
        assert!(mean(&xs).abs() < 0.05);
        // Uniform on [-1,1) has std 1/√3 ≈ 0.577.
        assert!((std_dev(&xs) - 1.0 / 3.0_f64.sqrt()).abs() < 0.02);
    }

    #[test]
    fn lhs_stratification_property() {
        // Every dimension must have exactly one sample per stratum.
        let mut rng = rng_from_seed(7);
        let n = 50;
        let samples = lhs_uniform(&mut rng, n, 3, 0.0, 1.0);
        for d in 0..3 {
            let mut seen = vec![false; n];
            for s in &samples {
                let bin = ((s[d] * n as f64) as usize).min(n - 1);
                assert!(!seen[bin], "stratum {bin} hit twice in dim {d}");
                seen[bin] = true;
            }
            assert!(seen.iter().all(|&b| b), "all strata covered in dim {d}");
        }
    }

    #[test]
    fn lhs_variance_reduction_on_mean() {
        // LHS mean estimate of a monotone function has lower variance than
        // plain MC for equal sample counts.
        let f = |x: &[f64]| x[0] + x[1] * x[1];
        let trials = 60;
        let n = 20;
        let mut lhs_means = Vec::new();
        let mut mc_means = Vec::new();
        for t in 0..trials {
            let mut rng = rng_from_seed(1000 + t);
            let lhs = lhs_uniform(&mut rng, n, 2, 0.0, 1.0);
            lhs_means.push(mean(&lhs.iter().map(|s| f(s)).collect::<Vec<_>>()));
            let mc: Vec<f64> = (0..n)
                .map(|_| {
                    let x = [rng.random::<f64>(), rng.random::<f64>()];
                    f(&x)
                })
                .collect();
            mc_means.push(mean(&mc));
        }
        assert!(
            std_dev(&lhs_means) < std_dev(&mc_means),
            "LHS {} vs MC {}",
            std_dev(&lhs_means),
            std_dev(&mc_means)
        );
    }

    #[test]
    fn lhs_normal_marginals() {
        let mut rng = rng_from_seed(3);
        let samples = lhs_normal(&mut rng, 2000, 1, 2.0);
        let xs: Vec<f64> = samples.iter().map(|s| s[0]).collect();
        assert!(mean(&xs).abs() < 0.05);
        assert!((std_dev(&xs) - 2.0).abs() < 0.05);
    }

    #[test]
    fn inverse_cdf_reference_points() {
        assert!(inverse_normal_cdf(0.5).abs() < 1e-8);
        assert!((inverse_normal_cdf(0.975) - 1.959964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.025) + 1.959964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.8413) - 1.0).abs() < 1e-3);
        // Extremes stay finite.
        assert!(inverse_normal_cdf(1e-300).is_finite());
        assert!(inverse_normal_cdf(1.0).is_finite());
    }

    #[test]
    fn determinism_under_seed() {
        let a = normal_samples(&mut rng_from_seed(9), 10);
        let b = normal_samples(&mut rng_from_seed(9), 10);
        assert_eq!(a, b);
    }

    #[test]
    fn seed_streams_reproduce_and_separate() {
        // Same (seed, index) → identical stream.
        let a = normal_samples(&mut SampleRng::stream(3, 17), 8);
        let b = normal_samples(&mut SampleRng::stream(3, 17), 8);
        assert_eq!(a, b);
        // Different index or different seed → different stream.
        let c = normal_samples(&mut SampleRng::stream(3, 18), 8);
        let d = normal_samples(&mut SampleRng::stream(4, 17), 8);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn streamed_lhs_keeps_stratification() {
        let n = 40;
        let samples = latin_hypercube_streamed(11, n, 3, |_, u| u);
        for d in 0..3 {
            let mut seen = vec![false; n];
            for s in &samples {
                let bin = ((s[d] * n as f64) as usize).min(n - 1);
                assert!(!seen[bin], "stratum {bin} hit twice in dim {d}");
                seen[bin] = true;
            }
            assert!(seen.iter().all(|&b| b), "all strata covered in dim {d}");
        }
    }

    #[test]
    fn streamed_lhs_is_a_pure_function_of_seed() {
        let a = lhs_normal_streamed(5, 30, 7, 1.0);
        let b = lhs_normal_streamed(5, 30, 7, 1.0);
        assert_eq!(a, b);
        let c = lhs_normal_streamed(6, 30, 7, 1.0);
        assert_ne!(a, c);
    }

    #[test]
    fn streamed_lhs_normal_marginals() {
        let samples = lhs_normal_streamed(8, 2000, 1, 1.5);
        let xs: Vec<f64> = samples.iter().map(|s| s[0]).collect();
        assert!(mean(&xs).abs() < 0.05);
        assert!((std_dev(&xs) - 1.5).abs() < 0.05);
    }

    #[test]
    fn sobol_is_a_pure_function_of_seed_and_index() {
        let a = sobol_point(9, 137, SOBOL_MAX_DIMS);
        let b = sobol_point(9, 137, SOBOL_MAX_DIMS);
        assert_eq!(a, b);
        let c = sobol_point(10, 137, SOBOL_MAX_DIMS);
        assert_ne!(a, c, "digital shift must depend on the seed");
        assert!(a.iter().all(|&u| (0.0..1.0).contains(&u)));
    }

    #[test]
    fn sobol_dyadic_balance_every_dimension() {
        // A (t,1)-sequence in base 2 per marginal: among the first 2^m
        // points every dyadic interval of length 2^-k (k ≤ m) holds
        // exactly 2^(m-k) points. The digital shift permutes dyadic
        // intervals, so the property survives it exactly.
        let m = 7usize;
        let n = 1usize << m;
        for d in 0..SOBOL_MAX_DIMS {
            for k in 1..=m {
                let bins = 1usize << k;
                let mut count = vec![0usize; bins];
                for i in 0..n {
                    let u = sobol_point(5, i as u64, SOBOL_MAX_DIMS)[d];
                    count[(u * bins as f64) as usize] += 1;
                }
                assert!(
                    count.iter().all(|&c| c == n / bins),
                    "dim {d} level {k}: {count:?}"
                );
            }
        }
    }

    #[test]
    fn sobol_beats_pseudo_random_on_integration_error() {
        // ∫ u du = 1/2: the Sobol estimate over 256 points is orders of
        // magnitude closer than plain pseudo-random at the same count.
        let n = 256usize;
        let trials = 16u64;
        let mut sobol_sq = 0.0f64;
        let mut prandom_sq = 0.0f64;
        for seed in 0..trials {
            let s_mean = (0..n)
                .map(|i| sobol_point(seed, i as u64, 1)[0])
                .sum::<f64>()
                / n as f64;
            sobol_sq += (s_mean - 0.5) * (s_mean - 0.5);
            let mut rng = rng_from_seed(seed);
            let p_mean = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
            prandom_sq += (p_mean - 0.5) * (p_mean - 0.5);
        }
        let sobol_rms = (sobol_sq / trials as f64).sqrt();
        let prandom_rms = (prandom_sq / trials as f64).sqrt();
        assert!(
            4.0 * sobol_rms < prandom_rms,
            "sobol rms {sobol_rms:e} vs pseudo rms {prandom_rms:e}"
        );
    }

    #[test]
    fn sobol_normal_marginals() {
        let samples = sobol_normal_streamed(3, 4096, 3, 1.0);
        for d in 0..3 {
            let xs: Vec<f64> = samples.iter().map(|s| s[d]).collect();
            assert!(mean(&xs).abs() < 0.02, "dim {d} mean {}", mean(&xs));
            assert!(
                (std_dev(&xs) - 1.0).abs() < 0.03,
                "dim {d} std {}",
                std_dev(&xs)
            );
        }
    }

    #[test]
    fn sample_source_dispatch_matches_direct_calls() {
        assert_eq!(
            SampleSource::Lhs.normal_streamed(4, 12, 2, 0.5),
            lhs_normal_streamed(4, 12, 2, 0.5)
        );
        assert_eq!(
            SampleSource::Sobol.normal_streamed(4, 12, 2, 0.5),
            sobol_normal_streamed(4, 12, 2, 0.5)
        );
        assert_eq!(SampleSource::Lhs.name(), "lhs");
        assert_eq!(SampleSource::Sobol.name(), "sobol");
    }
}
