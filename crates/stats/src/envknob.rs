//! Hardened environment-knob parsing, shared by every binary surface.
//!
//! `LINVAR_THREADS` taught us the failure mode: a typo'd job-script
//! variable that is silently ignored *mysteriously changes behavior*,
//! while one that is silently accepted as `0` can wedge a worker pool.
//! Every knob in the workspace therefore goes through these helpers,
//! which share one treatment: trim whitespace, accept only the valid
//! domain, and degrade **loudly** — a one-line stderr warning naming
//! the variable, the rejected value, and the fallback — on anything
//! malformed (`0` where positive is required, negative, non-numeric,
//! overflow, empty, or non-unicode bytes).
//!
//! [`crate::resolve_threads`] and the serve knobs
//! (`LINVAR_SERVE_WORKERS`, `LINVAR_SERVE_QUEUE`, …) are all built on
//! [`env_knob_usize`], so table4-style bench bins and the campaign
//! service agree on what a malformed knob does.

use std::ffi::OsString;

/// Outcome of reading one environment knob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvKnob<T> {
    /// The variable is not set.
    Missing,
    /// The variable is set and parses into the valid domain.
    Valid(T),
    /// The variable is set but malformed; a warning was printed and the
    /// caller should use its fallback.
    Invalid,
}

impl<T> EnvKnob<T> {
    /// The parsed value, if valid.
    pub fn valid(self) -> Option<T> {
        match self {
            EnvKnob::Valid(v) => Some(v),
            _ => None,
        }
    }
}

fn warn_invalid(name: &str, raw: &str, expected: &str, fallback: &str) {
    eprintln!("warning: ignoring invalid {name}={raw:?} (expected {expected}); using {fallback}");
}

fn warn_non_unicode(name: &str, fallback: &str) {
    eprintln!("warning: ignoring non-unicode {name}; using {fallback}");
}

/// Core of [`env_knob_usize`], parameterized over the raw variable value
/// so every malformed shape is unit-testable without touching the
/// process-global environment.
pub fn parse_usize_knob(name: &str, raw: Option<OsString>, fallback: &str) -> EnvKnob<usize> {
    let Some(raw) = raw else {
        return EnvKnob::Missing;
    };
    let Some(s) = raw.to_str() else {
        warn_non_unicode(name, fallback);
        return EnvKnob::Invalid;
    };
    match s.trim().parse::<usize>() {
        Ok(n) if n > 0 => EnvKnob::Valid(n),
        _ => {
            warn_invalid(name, s, "a positive integer", fallback);
            EnvKnob::Invalid
        }
    }
}

/// Reads environment knob `name` as a positive integer.
///
/// Whitespace around the value is trimmed. `0`, negative, non-numeric,
/// overflowing, empty, and non-unicode values are rejected with a
/// one-line stderr warning that names the fallback (`fallback` is the
/// human description printed, e.g. `"available cores"` or `"default 4"`)
/// and reported as [`EnvKnob::Invalid`] so the caller applies its
/// default — malformed knobs never pass silently and never panic.
pub fn env_knob_usize(name: &str, fallback: &str) -> EnvKnob<usize> {
    parse_usize_knob(name, std::env::var_os(name), fallback)
}

/// Core of [`env_knob_str`]; see [`parse_usize_knob`] for why the raw
/// value is a parameter.
pub fn parse_str_knob(name: &str, raw: Option<OsString>, fallback: &str) -> EnvKnob<String> {
    let Some(raw) = raw else {
        return EnvKnob::Missing;
    };
    let Some(s) = raw.to_str() else {
        warn_non_unicode(name, fallback);
        return EnvKnob::Invalid;
    };
    let trimmed = s.trim();
    if trimmed.is_empty() {
        warn_invalid(name, s, "a non-empty string", fallback);
        return EnvKnob::Invalid;
    }
    EnvKnob::Valid(trimmed.to_string())
}

/// Reads environment knob `name` as a trimmed non-empty string.
/// Empty/blank and non-unicode values warn and report
/// [`EnvKnob::Invalid`], mirroring [`env_knob_usize`].
pub fn env_knob_str(name: &str, fallback: &str) -> EnvKnob<String> {
    parse_str_knob(name, std::env::var_os(name), fallback)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn os(s: &str) -> Option<OsString> {
        Some(OsString::from(s))
    }

    #[test]
    fn missing_knob_is_missing() {
        assert_eq!(parse_usize_knob("K", None, "d"), EnvKnob::Missing);
        assert_eq!(parse_str_knob("K", None, "d"), EnvKnob::Missing);
    }

    #[test]
    fn valid_values_parse_with_whitespace_trimmed() {
        assert_eq!(parse_usize_knob("K", os("8"), "d"), EnvKnob::Valid(8));
        assert_eq!(parse_usize_knob("K", os("  8  "), "d"), EnvKnob::Valid(8));
        assert_eq!(parse_usize_knob("K", os("\t12\n"), "d"), EnvKnob::Valid(12));
        assert_eq!(
            parse_str_knob("K", os("  0.0.0.0:80 "), "d"),
            EnvKnob::Valid("0.0.0.0:80".into())
        );
    }

    #[test]
    fn every_malformed_usize_shape_is_invalid_not_a_panic() {
        // zero, negative, non-numeric, float, empty, blank, overflow,
        // embedded sign, hex spelling — all rejected the same way.
        for bad in [
            "0",
            "-2",
            "lots",
            "4.5",
            "",
            "   ",
            "18446744073709551616", // usize::MAX + 1
            "+ 3",
            "0x10",
            "3 threads",
            "∞",
        ] {
            assert_eq!(
                parse_usize_knob("LINVAR_SERVE_WORKERS", os(bad), "default"),
                EnvKnob::Invalid,
                "value {bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn malformed_str_shapes_are_invalid() {
        for bad in ["", "   ", "\t\n"] {
            assert_eq!(
                parse_str_knob("LINVAR_SERVE_ADDR", os(bad), "default"),
                EnvKnob::Invalid,
                "value {bad:?} must be rejected"
            );
        }
    }

    #[cfg(unix)]
    #[test]
    fn non_unicode_bytes_are_invalid() {
        use std::os::unix::ffi::OsStringExt as _;
        let raw = Some(OsString::from_vec(vec![0x66, 0x6f, 0x80, 0xff]));
        assert_eq!(
            parse_usize_knob("K", raw.clone(), "d"),
            EnvKnob::Invalid,
            "non-unicode usize knob"
        );
        assert_eq!(
            parse_str_knob("K", raw, "d"),
            EnvKnob::Invalid,
            "non-unicode str knob"
        );
    }

    #[test]
    fn valid_extractor() {
        assert_eq!(EnvKnob::Valid(7usize).valid(), Some(7));
        assert_eq!(EnvKnob::<usize>::Missing.valid(), None);
        assert_eq!(EnvKnob::<usize>::Invalid.valid(), None);
    }
}
