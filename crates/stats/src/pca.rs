//! Principal Component Analysis of parameter covariance (paper §4.1.1).
//!
//! Device and wire model parameters are correlated because they share a
//! few underlying process factors; PCA recovers an uncorrelated factor set
//! of much lower dimension, shrinking the sampling space of Monte-Carlo
//! and Gradient Analysis. The paper cites a study in which the variation
//! of 60 BSIM3 parameters is explained by ~10 factors;
//! [`demo_correlated_device_parameters`] reproduces that structure
//! synthetically (substitution #6 in `DESIGN.md`).

use linvar_numeric::{jacobi_eigen, Matrix, NumericError};

/// A fitted PCA model: orthogonal factors of a parameter covariance.
#[derive(Debug, Clone)]
pub struct PcaModel {
    /// Parameter means.
    pub means: Vec<f64>,
    /// Factor variances (descending eigenvalues of the covariance).
    pub variances: Vec<f64>,
    /// Loading matrix: column `k` is the k-th principal direction.
    pub loadings: Matrix,
    /// Number of retained factors.
    pub retained: usize,
}

/// PCA fitting entry point.
#[derive(Debug, Clone, Copy, Default)]
pub struct Pca {
    /// Fraction of total variance the retained factors must explain
    /// (default 0.95).
    pub explained_fraction: f64,
}

impl Pca {
    /// Creates a PCA configuration retaining the given variance fraction.
    pub fn new(explained_fraction: f64) -> Self {
        Pca { explained_fraction }
    }

    /// Fits PCA to a sample matrix (`rows` = observations, `cols` =
    /// parameters).
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidInput`] for fewer than two
    /// observations and propagates eigensolver failures.
    pub fn fit(&self, samples: &Matrix) -> Result<PcaModel, NumericError> {
        let (n, p) = (samples.rows(), samples.cols());
        if n < 2 || p == 0 {
            return Err(NumericError::InvalidInput(
                "pca needs at least two observations and one parameter".into(),
            ));
        }
        let means: Vec<f64> = (0..p)
            .map(|j| samples.col(j).iter().sum::<f64>() / n as f64)
            .collect();
        // Sample covariance.
        let mut cov = Matrix::zeros(p, p);
        for k in 0..n {
            for i in 0..p {
                let di = samples[(k, i)] - means[i];
                for j in i..p {
                    let dj = samples[(k, j)] - means[j];
                    cov[(i, j)] += di * dj;
                }
            }
        }
        for i in 0..p {
            for j in i..p {
                let v = cov[(i, j)] / (n as f64 - 1.0);
                cov[(i, j)] = v;
                cov[(j, i)] = v;
            }
        }
        let eig = jacobi_eigen(&cov)?;
        let total: f64 = eig.values.iter().map(|v| v.max(0.0)).sum();
        let target = self.explained_fraction.clamp(0.0, 1.0) * total;
        let mut acc = 0.0;
        let mut retained = 0;
        for &v in &eig.values {
            if acc >= target && retained > 0 {
                break;
            }
            acc += v.max(0.0);
            retained += 1;
        }
        Ok(PcaModel {
            means,
            variances: eig.values,
            loadings: eig.vectors,
            retained,
        })
    }
}

impl PcaModel {
    /// Number of original parameters.
    pub fn param_count(&self) -> usize {
        self.means.len()
    }

    /// Maps a factor vector (length ≤ retained) back to parameter space:
    /// `x = mean + Σ_k f_k·√λ_k·v_k` — the "by-product reverse
    /// transformation" the paper mentions. Factors are in normalized units
    /// (unit variance).
    pub fn to_parameters(&self, factors: &[f64]) -> Vec<f64> {
        let mut x = self.means.clone();
        for (k, &f) in factors.iter().enumerate().take(self.retained) {
            let scale = self.variances[k].max(0.0).sqrt();
            for (i, xi) in x.iter_mut().enumerate() {
                *xi += f * scale * self.loadings[(i, k)];
            }
        }
        x
    }

    /// Projects a parameter vector onto the retained factors (normalized
    /// units).
    pub fn to_factors(&self, params: &[f64]) -> Vec<f64> {
        let centered: Vec<f64> = params.iter().zip(&self.means).map(|(x, m)| x - m).collect();
        (0..self.retained)
            .map(|k| {
                let scale = self.variances[k].max(1e-300).sqrt();
                let proj: f64 = (0..centered.len())
                    .map(|i| centered[i] * self.loadings[(i, k)])
                    .sum();
                proj / scale
            })
            .collect()
    }

    /// Fraction of total variance explained by the retained factors.
    pub fn explained(&self) -> f64 {
        let total: f64 = self.variances.iter().map(|v| v.max(0.0)).sum();
        if total == 0.0 {
            return 1.0;
        }
        self.variances[..self.retained]
            .iter()
            .map(|v| v.max(0.0))
            .sum::<f64>()
            / total
    }
}

/// Generates a synthetic correlated device-parameter sample: `n_params`
/// observable parameters driven by `n_factors` latent process factors plus
/// small independent noise — the structure reported for BSIM3 parameter
/// variations (paper ref. \[11\]).
///
/// Returns an `n_samples x n_params` sample matrix.
pub fn demo_correlated_device_parameters(
    rng: &mut crate::sampling::SampleRng,
    n_samples: usize,
    n_params: usize,
    n_factors: usize,
    noise: f64,
) -> Matrix {
    use crate::sampling::normal_samples;
    // Fixed deterministic pseudo-random loading pattern. The argument must
    // mix `i` and `k` nonlinearly (a linear combination inside `sin` would
    // make the loading matrix rank-2 by the angle-addition identity).
    let loading =
        |i: usize, k: usize| -> f64 { ((i as f64 + 1.37) * (k as f64 + 2.71) * 0.7361).sin() };
    let mut out = Matrix::zeros(n_samples, n_params);
    for s in 0..n_samples {
        let f = normal_samples(rng, n_factors);
        let eps = normal_samples(rng, n_params);
        for i in 0..n_params {
            let mut v = 0.0;
            for (k, &fk) in f.iter().enumerate() {
                v += loading(i, k) * fk;
            }
            out[(s, i)] = v + noise * eps[i];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::rng_from_seed;

    #[test]
    fn recovers_low_rank_structure() {
        // 60 parameters driven by 10 factors: PCA at 95 % must retain a
        // number of factors close to 10, never anywhere near 60.
        let mut rng = rng_from_seed(11);
        let samples = demo_correlated_device_parameters(&mut rng, 400, 60, 10, 0.05);
        let model = Pca::new(0.95).fit(&samples).unwrap();
        assert!(
            (8..=14).contains(&model.retained),
            "retained {} factors",
            model.retained
        );
        assert!(model.explained() >= 0.95);
    }

    #[test]
    fn exact_two_factor_data() {
        let mut rng = rng_from_seed(5);
        let samples = demo_correlated_device_parameters(&mut rng, 300, 8, 2, 0.0);
        let model = Pca::new(0.999).fit(&samples).unwrap();
        assert_eq!(model.retained, 2, "noise-free rank-2 data");
    }

    #[test]
    fn roundtrip_through_factor_space() {
        let mut rng = rng_from_seed(2);
        let samples = demo_correlated_device_parameters(&mut rng, 200, 6, 2, 0.0);
        let model = Pca::new(0.999).fit(&samples).unwrap();
        // Any sample maps to factors and back with small error.
        let x: Vec<f64> = (0..6).map(|j| samples[(17, j)]).collect();
        let f = model.to_factors(&x);
        let back = model.to_parameters(&f);
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn factors_are_uncorrelated() {
        let mut rng = rng_from_seed(23);
        let samples = demo_correlated_device_parameters(&mut rng, 500, 10, 3, 0.1);
        let model = Pca::new(0.99).fit(&samples).unwrap();
        // Project every sample and check cross-correlations.
        let n = samples.rows();
        let k = model.retained;
        let mut fac = Matrix::zeros(n, k);
        for s in 0..n {
            let x: Vec<f64> = (0..10).map(|j| samples[(s, j)]).collect();
            let f = model.to_factors(&x);
            for (j, &fj) in f.iter().enumerate() {
                fac[(s, j)] = fj;
            }
        }
        for a in 0..k {
            for b in (a + 1)..k {
                let ca = fac.col(a);
                let cb = fac.col(b);
                let corr: f64 =
                    ca.iter().zip(&cb).map(|(x, y)| x * y).sum::<f64>() / (n as f64 - 1.0);
                assert!(corr.abs() < 0.1, "factors {a},{b} correlated: {corr}");
            }
        }
    }

    #[test]
    fn too_few_observations_rejected() {
        let samples = Matrix::zeros(1, 4);
        assert!(Pca::new(0.9).fit(&samples).is_err());
    }
}
