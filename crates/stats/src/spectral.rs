//! Stochastic-spectral statistical engines: generalized polynomial
//! chaos (gPC) over the Gaussian fluctuation vector.
//!
//! The framework's vROM carries the affine parameter form
//! `X0 + Σ dXi·wi`; the retrieved UQ literature (arXiv:1409.4824,
//! 1409.4822) shows that for such smooth parameterizations a Hermite
//! polynomial-chaos surrogate reaches Monte-Carlo-quality delay
//! distributions with orders of magnitude fewer model solves. This
//! module supplies the three node-selection schemes of that family:
//!
//! * **tensor stochastic collocation** — full Gauss-Hermite product
//!   grids, quadrature-exact projection (low dimension counts);
//! * **Smolyak sparse grids** — the combination-technique subset of
//!   the tensor grid for higher dimension counts;
//! * **stochastic testing** — a greedily selected square node set
//!   (one node per basis term) solved as a Vandermonde system, the
//!   fewest-solves option.
//!
//! A [`SpectralPlan`] is a *deterministic* object: its node set and
//! basis are pure functions of `(dims, SpectralConfig)` — no seeds —
//! so a spectral campaign rides the existing stack unchanged. Nodes
//! are evaluated through the recovery-policy attempt ladder by
//! [`run_spectral`] (deterministic parallel driver, index-ordered
//! merge) or [`run_spectral_campaign`] (durable checkpoints keyed by a
//! [`CampaignFingerprint`] extended with [`SpectralPlan::fingerprint`]),
//! and the coefficient solve, moments and surrogate quantiles are
//! computed post-merge in one fixed summation order — bitwise-identical
//! at any thread count and across any interrupt/resume schedule (see
//! DESIGN.md, "Stochastic spectral engines: basis, node selection &
//! determinism contract").

use crate::campaign::{
    fingerprint_str, fingerprint_words, run_campaign, CampaignConfig, CampaignFingerprint,
    CampaignVerdict, CheckpointError,
};
use crate::montecarlo::{
    monte_carlo_par_with_policy, HealthSummary, RecoveryPolicy, SampleHealth, SampleStatus,
};
use crate::sampling::lhs_normal_streamed;
use crate::summary::Summary;
use linvar_numeric::{LuFactor, Matrix};
use std::fmt;

/// Deterministic surrogate-sample size behind the reported quantiles.
pub const SURROGATE_SAMPLES: usize = 4001;

/// The quantile probabilities every spectral result reports.
pub const QUANTILE_PROBS: [f64; 3] = [0.05, 0.5, 0.95];

/// Salt separating the surrogate-sampling seed stream from the node
/// evaluation (which consumes no randomness at all).
const SURROGATE_SALT: u64 = 0x51AB_0C8E_77F0_3A19;

/// Spectral-engine failures. All typed — a spectral run never panics
/// across the public API.
#[derive(Debug, Clone, PartialEq)]
pub enum SpectralError {
    /// The requested configuration cannot produce a plan (zero dims,
    /// zero-point rule, basis larger than the candidate node set, …).
    BadConfig(String),
    /// The stochastic-testing Vandermonde system is singular — the
    /// node set does not determine the basis coefficients.
    SingularSystem(String),
    /// A node evaluation returned a non-finite value; quadrature over
    /// it would poison every coefficient.
    NonFiniteNode {
        /// Index of the offending node.
        index: usize,
    },
    /// Nodes exhausted their recovery attempt budget. Unlike MC, a
    /// spectral rule cannot quarantine a node — every weight is load-
    /// bearing — so failures are terminal (after the full ladder).
    NodeFailures {
        /// Number of failed nodes.
        failed: usize,
        /// Diagnostic of the lowest-index failure.
        first_error: Option<String>,
    },
    /// `values.len()` handed to the solve does not match the plan.
    WrongValueCount {
        /// Nodes in the plan.
        expected: usize,
        /// Values supplied.
        found: usize,
    },
}

impl fmt::Display for SpectralError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpectralError::BadConfig(msg) => write!(f, "bad spectral config: {msg}"),
            SpectralError::SingularSystem(msg) => {
                write!(f, "singular stochastic-testing system: {msg}")
            }
            SpectralError::NonFiniteNode { index } => {
                write!(f, "non-finite model output at collocation node {index}")
            }
            SpectralError::NodeFailures {
                failed,
                first_error,
            } => write!(
                f,
                "{failed} collocation node(s) exhausted the recovery ladder{}",
                first_error
                    .as_deref()
                    .map(|e| format!("; first error: {e}"))
                    .unwrap_or_default()
            ),
            SpectralError::WrongValueCount { expected, found } => {
                write!(f, "expected {expected} node values, got {found}")
            }
        }
    }
}

impl std::error::Error for SpectralError {}

// ---------------------------------------------------------------- basis

/// Probabilists' Hermite polynomial `He_n(x)` (three-term recurrence
/// `He_{n+1} = x·He_n − n·He_{n−1}`), orthogonal under the standard
/// normal weight with `E[He_m He_n] = n! δ_mn`.
pub fn hermite_prob(n: usize, x: f64) -> f64 {
    let mut h0 = 1.0;
    if n == 0 {
        return h0;
    }
    let mut h1 = x;
    for k in 1..n {
        let h2 = x * h1 - k as f64 * h0;
        h0 = h1;
        h1 = h2;
    }
    h1
}

fn factorial(n: usize) -> f64 {
    (1..=n).map(|k| k as f64).product()
}

/// The orthonormal Hermite basis function of multi-index `alpha`:
/// `Ψ_α(ξ) = Π_k He_{α_k}(ξ_k) / √(α_k!)`, so `E[Ψ_α Ψ_β] = δ_αβ`.
pub fn basis_eval(alpha: &[usize], xi: &[f64]) -> f64 {
    alpha
        .iter()
        .zip(xi)
        .map(|(&a, &x)| hermite_prob(a, x) / factorial(a).sqrt())
        .product()
}

/// Total-degree multi-index set: every `α ∈ ℕ^dims` with `|α| ≤ order`
/// and at most `max_interaction` nonzero components, in graded
/// lexicographic order (constant term first — coefficient 0 is always
/// the surrogate mean).
pub fn multi_indices(dims: usize, order: usize, max_interaction: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut stack = vec![0usize; dims];
    for total in 0..=order {
        emit_indices(&mut out, &mut stack, 0, total, max_interaction);
    }
    out
}

fn emit_indices(
    out: &mut Vec<Vec<usize>>,
    stack: &mut [usize],
    dim: usize,
    remaining: usize,
    max_interaction: usize,
) {
    if dim == stack.len() {
        if remaining == 0 && stack.iter().filter(|&&a| a > 0).count() <= max_interaction {
            out.push(stack.to_vec());
        }
        return;
    }
    for a in (0..=remaining).rev() {
        stack[dim] = a;
        emit_indices(out, stack, dim + 1, remaining - a, max_interaction);
    }
    stack[dim] = 0;
}

// ----------------------------------------------------------- quadrature

/// The `n`-point Gauss-Hermite rule for the **standard normal** weight:
/// nodes and weights such that `Σ w_i p(x_i) = E[p(ξ)]` exactly for
/// polynomials `p` of degree ≤ `2n−1`. Deterministic: roots by
/// interlacing bisection (no iteration-count data dependence), weights
/// by the closed form `w_i = n! / (n² He_{n−1}(x_i)²)`.
///
/// # Errors
///
/// [`SpectralError::BadConfig`] for a zero-point rule.
pub fn gauss_hermite(n: usize) -> Result<(Vec<f64>, Vec<f64>), SpectralError> {
    if n == 0 {
        return Err(SpectralError::BadConfig("0-point quadrature".into()));
    }
    let nodes = hermite_roots(n);
    let nf = n as f64;
    let scale = factorial(n) / (nf * nf);
    let weights: Vec<f64> = nodes
        .iter()
        .map(|&x| {
            let h = hermite_prob(n - 1, x);
            scale / (h * h)
        })
        .collect();
    Ok((nodes, weights))
}

/// Roots of `He_n`, ascending. Built up by degree: the roots of
/// `He_{m}` strictly interlace those of `He_{m−1}`, so each is
/// bracketed by consecutive lower-degree roots (outermost brackets at
/// `±(2√m + 2)`, beyond the last root of any `He_m`). 200 bisection
/// steps drive each bracket to one ulp — a fixed instruction stream,
/// no convergence test, identical on every run.
fn hermite_roots(n: usize) -> Vec<f64> {
    let mut roots = vec![0.0f64];
    for m in 2..=n {
        let bound = 2.0 * (m as f64).sqrt() + 2.0;
        let mut brackets = Vec::with_capacity(m + 1);
        brackets.push(-bound);
        brackets.extend(roots.iter().copied());
        brackets.push(bound);
        let mut next = Vec::with_capacity(m);
        for w in brackets.windows(2) {
            next.push(bisect_hermite(m, w[0], w[1]));
        }
        // Enforce the exact ± symmetry of the rule (bisection rounding
        // could otherwise leave the two halves an ulp apart).
        let half = m / 2;
        for i in 0..half {
            let mag = 0.5 * (next[m - 1 - i].abs() + next[i].abs());
            next[i] = -mag;
            next[m - 1 - i] = mag;
        }
        if m % 2 == 1 {
            next[half] = 0.0;
        }
        roots = next;
    }
    roots
}

fn bisect_hermite(m: usize, mut lo: f64, mut hi: f64) -> f64 {
    let f_lo = hermite_prob(m, lo);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi {
            break;
        }
        if (hermite_prob(m, mid) >= 0.0) == (f_lo >= 0.0) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

// ---------------------------------------------------------------- plans

/// Node-selection scheme of a spectral plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridKind {
    /// Full Gauss-Hermite product grid, `level` points per dimension.
    Tensor,
    /// Smolyak sparse grid at sparse level `level` (linear 1-D growth).
    Smolyak,
    /// Stochastic testing: one node per basis term, greedily selected
    /// from the tensor candidate grid, coefficients by a square solve.
    StochasticTesting,
}

impl GridKind {
    /// Stable name, folded into fingerprints and printed in bench rows.
    pub fn name(self) -> &'static str {
        match self {
            GridKind::Tensor => "tensor",
            GridKind::Smolyak => "smolyak",
            GridKind::StochasticTesting => "st",
        }
    }
}

/// Configuration of a spectral engine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpectralConfig {
    /// Total polynomial degree of the Hermite basis.
    pub order: usize,
    /// Grid refinement: points per dimension (tensor), sparse level
    /// (Smolyak; ignored by stochastic testing).
    pub level: usize,
    /// Node-selection scheme.
    pub grid: GridKind,
}

impl SpectralConfig {
    /// Quadrature-exact tensor collocation at `order`: `order+1` points
    /// per dimension integrate products of two basis terms exactly.
    pub fn tensor(order: usize) -> Self {
        SpectralConfig {
            order,
            level: order + 1,
            grid: GridKind::Tensor,
        }
    }

    /// Smolyak sparse collocation: sparse level `level`, basis
    /// interactions capped at `level` (the grid has no nodes that could
    /// separate higher-interaction terms).
    pub fn smolyak(order: usize, level: usize) -> Self {
        SpectralConfig {
            order,
            level,
            grid: GridKind::Smolyak,
        }
    }

    /// Stochastic testing at `order`: the fewest-solves scheme — node
    /// count equals basis size.
    pub fn stochastic_testing(order: usize) -> Self {
        SpectralConfig {
            order,
            level: order + 1,
            grid: GridKind::StochasticTesting,
        }
    }
}

/// A fully built spectral plan: the basis, the node set, and (for the
/// projection grids) the quadrature weights. Pure function of
/// `(dims, config)`; all fields are public so tests can inject
/// degenerate systems.
#[derive(Debug, Clone)]
pub struct SpectralPlan {
    /// Dimension count of the fluctuation vector.
    pub dims: usize,
    /// The configuration the plan was built from.
    pub config: SpectralConfig,
    /// Basis multi-indices, graded order; `basis[0]` is the constant.
    pub basis: Vec<Vec<usize>>,
    /// Collocation/testing nodes in standard-normal coordinates.
    pub nodes: Vec<Vec<f64>>,
    /// Quadrature weights (projection grids; empty for stochastic
    /// testing, which solves instead of integrating).
    pub weights: Vec<f64>,
}

impl SpectralPlan {
    /// Builds the plan for `dims` fluctuation dimensions.
    ///
    /// # Errors
    ///
    /// [`SpectralError::BadConfig`] for zero dimensions, a zero-point
    /// rule, or a stochastic-testing basis larger than its candidate
    /// grid.
    pub fn build(dims: usize, config: SpectralConfig) -> Result<SpectralPlan, SpectralError> {
        if dims == 0 {
            return Err(SpectralError::BadConfig("zero dimensions".into()));
        }
        match config.grid {
            GridKind::Tensor => {
                if config.level <= config.order {
                    return Err(SpectralError::BadConfig(format!(
                        "tensor level {} cannot project an order-{} basis \
                         (needs ≥ order+1 points per dim)",
                        config.level, config.order
                    )));
                }
                let basis = multi_indices(dims, config.order, dims);
                let (nodes, weights) = tensor_grid(dims, config.level)?;
                Ok(SpectralPlan {
                    dims,
                    config,
                    basis,
                    nodes,
                    weights,
                })
            }
            GridKind::Smolyak => {
                if config.level == 0 {
                    return Err(SpectralError::BadConfig("smolyak level 0".into()));
                }
                // Interactions beyond `level` have no supporting nodes
                // in the sparse grid; their projections would silently
                // vanish, so the basis excludes them up front.
                let basis = multi_indices(dims, config.order, config.level.min(dims));
                let (nodes, weights) = smolyak_grid(dims, config.level)?;
                Ok(SpectralPlan {
                    dims,
                    config,
                    basis,
                    nodes,
                    weights,
                })
            }
            GridKind::StochasticTesting => {
                let basis = multi_indices(dims, config.order, dims);
                let nodes = stochastic_testing_nodes(dims, config.order, &basis)?;
                Ok(SpectralPlan {
                    dims,
                    config,
                    basis,
                    nodes,
                    weights: Vec::new(),
                })
            }
        }
    }

    /// Opaque hash of everything that shapes the node set and basis —
    /// folded into a spectral campaign's [`CampaignFingerprint`] so a
    /// checkpoint taken under one plan refuses to resume under another
    /// (different order, level, grid kind, or dimension count).
    pub fn fingerprint(&self) -> u64 {
        let mut words = vec![
            fingerprint_str("spectral-v1"),
            fingerprint_str(self.config.grid.name()),
            self.dims as u64,
            self.config.order as u64,
            self.config.level as u64,
            self.nodes.len() as u64,
            self.basis.len() as u64,
        ];
        for node in &self.nodes {
            for &x in node {
                words.push(x.to_bits());
            }
        }
        fingerprint_words(words)
    }

    /// Solves for the gPC coefficients from the node values, in one
    /// fixed summation order (bitwise-deterministic). Records the
    /// [`linvar_metrics::Phase::SpectralSolve`] timer and the
    /// `spectral.solves` / `spectral.coefficients` counters.
    ///
    /// # Errors
    ///
    /// [`SpectralError::WrongValueCount`], [`SpectralError::NonFiniteNode`]
    /// (NaN/inf model output would poison every coefficient), and
    /// [`SpectralError::SingularSystem`] when the stochastic-testing
    /// Vandermonde solve fails.
    pub fn coefficients(&self, values: &[f64]) -> Result<Vec<f64>, SpectralError> {
        let _span = linvar_metrics::timer(linvar_metrics::Phase::SpectralSolve);
        if values.len() != self.nodes.len() {
            return Err(SpectralError::WrongValueCount {
                expected: self.nodes.len(),
                found: values.len(),
            });
        }
        if let Some(index) = values.iter().position(|v| !v.is_finite()) {
            return Err(SpectralError::NonFiniteNode { index });
        }
        let coeffs = if self.weights.is_empty() {
            // Stochastic testing: square Vandermonde solve.
            let n = self.basis.len();
            let mut v = Matrix::zeros(n, n);
            for (j, node) in self.nodes.iter().enumerate() {
                for (b, alpha) in self.basis.iter().enumerate() {
                    v[(j, b)] = basis_eval(alpha, node);
                }
            }
            let lu = LuFactor::new(&v).map_err(|e| SpectralError::SingularSystem(e.to_string()))?;
            lu.solve(values)
                .map_err(|e| SpectralError::SingularSystem(e.to_string()))?
        } else {
            // Discrete projection: c_α = Σ_j w_j Ψ_α(x_j) y_j, node-
            // index order.
            self.basis
                .iter()
                .map(|alpha| {
                    self.nodes
                        .iter()
                        .zip(&self.weights)
                        .zip(values)
                        .map(|((node, &w), &y)| w * basis_eval(alpha, node) * y)
                        .sum()
                })
                .collect()
        };
        linvar_metrics::incr(linvar_metrics::Counter::SpectralSolves);
        linvar_metrics::count(
            linvar_metrics::Counter::SpectralCoefficients,
            coeffs.len() as u64,
        );
        Ok(coeffs)
    }

    /// Evaluates the surrogate `Σ c_α Ψ_α(ξ)` at one point.
    pub fn evaluate(&self, coeffs: &[f64], xi: &[f64]) -> f64 {
        self.basis
            .iter()
            .zip(coeffs)
            .map(|(alpha, &c)| c * basis_eval(alpha, xi))
            .sum()
    }

    /// Surrogate mean: the constant-term coefficient (orthonormal
    /// basis).
    pub fn mean(&self, coeffs: &[f64]) -> f64 {
        coeffs.first().copied().unwrap_or(0.0)
    }

    /// Surrogate standard deviation: `√(Σ_{α≠0} c_α²)` (Parseval under
    /// the orthonormal basis), fixed summation order.
    pub fn std(&self, coeffs: &[f64]) -> f64 {
        coeffs.iter().skip(1).map(|&c| c * c).sum::<f64>().sqrt()
    }
}

/// Full Gauss-Hermite product grid: `points_per_dim^dims` nodes.
fn tensor_grid(
    dims: usize,
    points_per_dim: usize,
) -> Result<(Vec<Vec<f64>>, Vec<f64>), SpectralError> {
    let (x1, w1) = gauss_hermite(points_per_dim)?;
    let mut nodes = vec![Vec::new()];
    let mut weights = vec![1.0f64];
    for _ in 0..dims {
        let mut next_nodes = Vec::with_capacity(nodes.len() * x1.len());
        let mut next_weights = Vec::with_capacity(nodes.len() * x1.len());
        for (node, &w) in nodes.iter().zip(&weights) {
            for (&x, &wx) in x1.iter().zip(&w1) {
                let mut n = node.clone();
                n.push(x);
                next_nodes.push(n);
                next_weights.push(w * wx);
            }
        }
        nodes = next_nodes;
        weights = next_weights;
    }
    Ok((nodes, weights))
}

/// Smolyak sparse grid at sparse level `ℓ` with linear 1-D growth
/// (`i`-point Gauss-Hermite at 1-D level `i`): the combination
/// technique `A(q,d) = Σ_{q−d+1 ≤ |i| ≤ q} (−1)^{q−|i|} C(d−1, q−|i|)
/// ⊗_k U_{i_k}` with `q = d + ℓ` (level 1 = origin plus the 2d axis
/// nodes). Duplicate nodes (shared axes and
/// the origin) are merged by exact coordinate bits; the final node list
/// is sorted by coordinates so the plan's node order is canonical.
fn smolyak_grid(dims: usize, level: usize) -> Result<(Vec<Vec<f64>>, Vec<f64>), SpectralError> {
    let q = dims + level;
    let lo = q - dims + 1;
    let mut acc: Vec<(Vec<f64>, f64)> = Vec::new();
    let mut index = vec![1usize; dims];
    loop {
        let total: usize = index.iter().sum();
        if total >= lo.max(dims) && total <= q {
            let deficit = q - total;
            let sign = if deficit.is_multiple_of(2) { 1.0 } else { -1.0 };
            let coeff = sign * binomial(dims - 1, deficit);
            if coeff != 0.0 {
                let mut rules = Vec::with_capacity(dims);
                for &i in &index {
                    rules.push(gauss_hermite(i)?);
                }
                let mut nodes = vec![Vec::new()];
                let mut weights = vec![coeff];
                for (x1, w1) in &rules {
                    let mut next_nodes = Vec::with_capacity(nodes.len() * x1.len());
                    let mut next_weights = Vec::with_capacity(nodes.len() * x1.len());
                    for (node, &w) in nodes.iter().zip(&weights) {
                        for (&x, &wx) in x1.iter().zip(w1) {
                            let mut n = node.clone();
                            n.push(x);
                            next_nodes.push(n);
                            next_weights.push(w * wx);
                        }
                    }
                    nodes = next_nodes;
                    weights = next_weights;
                }
                acc.extend(nodes.into_iter().zip(weights));
            }
        }
        // Advance the odometer over 1 ≤ i_k ≤ q − (d − 1).
        let cap = q - (dims - 1);
        let mut k = 0;
        loop {
            if k == dims {
                // Merge duplicates by exact bits, then canonical sort.
                return Ok(merge_nodes(acc));
            }
            index[k] += 1;
            if index[k] <= cap {
                break;
            }
            index[k] = 1;
            k += 1;
        }
    }
}

fn binomial(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let mut v = 1.0f64;
    for i in 0..k {
        v = v * (n - i) as f64 / (i + 1) as f64;
    }
    v
}

fn merge_nodes(acc: Vec<(Vec<f64>, f64)>) -> (Vec<Vec<f64>>, Vec<f64>) {
    use std::collections::BTreeMap;
    let mut merged: BTreeMap<Vec<u64>, (Vec<f64>, f64)> = BTreeMap::new();
    for (node, w) in acc {
        let key: Vec<u64> = node.iter().map(|x| x.to_bits()).collect();
        merged
            .entry(key)
            .and_modify(|e| e.1 += w)
            .or_insert((node, w));
    }
    let mut items: Vec<(Vec<f64>, f64)> = merged.into_values().collect();
    items.sort_by(|a, b| {
        a.0.iter()
            .zip(&b.0)
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| o.is_ne())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    items.into_iter().unzip()
}

/// Stochastic-testing node selection (after arXiv:1409.4824): from the
/// `(order+1)^dims` tensor candidate grid, greedily pick one node per
/// basis term — candidates in descending tensor-weight order (stable
/// tie-break by candidate position), accepted only if the node's basis
/// row keeps the Vandermonde well-conditioned (modified Gram-Schmidt
/// residual above a fixed threshold). Deterministic: a pure function of
/// `(dims, order)`.
fn stochastic_testing_nodes(
    dims: usize,
    order: usize,
    basis: &[Vec<usize>],
) -> Result<Vec<Vec<f64>>, SpectralError> {
    let (candidates, cand_weights) = tensor_grid(dims, order + 1)?;
    if candidates.len() < basis.len() {
        return Err(SpectralError::BadConfig(format!(
            "{} candidates cannot seat a {}-term basis",
            candidates.len(),
            basis.len()
        )));
    }
    let mut ranked: Vec<usize> = (0..candidates.len()).collect();
    ranked.sort_by(|&a, &b| cand_weights[b].total_cmp(&cand_weights[a]).then(a.cmp(&b)));
    let n = basis.len();
    let mut selected: Vec<Vec<f64>> = Vec::with_capacity(n);
    let mut ortho: Vec<Vec<f64>> = Vec::with_capacity(n);
    for &c in &ranked {
        if selected.len() == n {
            break;
        }
        let mut row: Vec<f64> = basis
            .iter()
            .map(|alpha| basis_eval(alpha, &candidates[c]))
            .collect();
        let norm0 = row.iter().map(|v| v * v).sum::<f64>().sqrt();
        for q in &ortho {
            let proj: f64 = row.iter().zip(q).map(|(r, q)| r * q).sum();
            for (r, q) in row.iter_mut().zip(q) {
                *r -= proj * q;
            }
        }
        let norm = row.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm > 1e-8 * norm0.max(1.0) {
            for v in &mut row {
                *v /= norm;
            }
            ortho.push(row);
            selected.push(candidates[c].clone());
        }
    }
    if selected.len() < n {
        return Err(SpectralError::BadConfig(format!(
            "greedy selection seated only {} of {} basis terms",
            selected.len(),
            n
        )));
    }
    Ok(selected)
}

// --------------------------------------------------------------- driver

/// One completed spectral run: the coefficients, the moments they
/// imply, and deterministic surrogate quantiles.
#[derive(Debug, Clone)]
pub struct SpectralResult {
    /// gPC coefficients, basis order.
    pub coefficients: Vec<f64>,
    /// Surrogate mean (the constant coefficient).
    pub mean: f64,
    /// Surrogate standard deviation (Parseval).
    pub std: f64,
    /// `(probability, value)` quantiles of the surrogate at
    /// [`QUANTILE_PROBS`], from [`SURROGATE_SAMPLES`] deterministic
    /// stratified samples.
    pub quantiles: Vec<(f64, f64)>,
    /// Statistics of the deterministic surrogate sample (its mean/std
    /// converge on `mean`/`std`; `min`/`max` bound the surrogate).
    pub surrogate_summary: Summary,
    /// Raw model values at the plan's nodes, node order.
    pub node_values: Vec<f64>,
    /// Nodes evaluated (== the plan's node count on success).
    pub nodes_evaluated: usize,
    /// Per-node status and attempt count, node order.
    pub sample_health: Vec<SampleHealth>,
    /// Run-level health tally over the nodes.
    pub health: HealthSummary,
}

/// Evaluates a plan's nodes through the deterministic parallel driver
/// with the recovery-policy attempt ladder, then solves for the
/// coefficients, moments and quantiles. `f` is the model: a pure
/// function of `(node, attempt)` exactly as in the Monte-Carlo
/// drivers. `surrogate_seed` seeds only the quantile sample — the node
/// set is seed-free.
///
/// Bitwise-deterministic at any `threads`.
///
/// # Errors
///
/// [`SpectralError::NodeFailures`] when any node exhausts its attempt
/// budget, plus every [`SpectralPlan::coefficients`] error.
pub fn run_spectral<E: fmt::Display>(
    plan: &SpectralPlan,
    threads: usize,
    policy: RecoveryPolicy,
    surrogate_seed: u64,
    f: impl Fn(&[f64], usize) -> Result<(f64, SampleStatus), E> + Sync,
) -> Result<SpectralResult, SpectralError> {
    let res = monte_carlo_par_with_policy(&plan.nodes, threads, policy, |node: &Vec<f64>, a| {
        f(node, a).map_err(|e| e.to_string())
    });
    if res.failures > 0 {
        return Err(SpectralError::NodeFailures {
            failed: res.failures,
            first_error: res.first_error,
        });
    }
    finish(
        plan,
        res.values,
        res.sample_health,
        res.health,
        surrogate_seed,
    )
}

/// A durable spectral campaign's outcome: the spectral result when the
/// grid completed, plus the campaign bookkeeping either way.
#[derive(Debug, Clone)]
pub struct SpectralCampaignResult {
    /// The completed spectral result; `None` when the campaign was
    /// truncated mid-grid (resume to finish).
    pub result: Option<SpectralResult>,
    /// Statistics over the raw completed node values (partial when
    /// truncated). Diagnostic only — the spectral estimates live in
    /// `result` (node values are quadrature samples, not draws).
    pub node_summary: Summary,
    /// Complete, or truncated-but-resumable.
    pub verdict: CampaignVerdict,
    /// Completed nodes (resumed + evaluated this run).
    pub completed: usize,
    /// Nodes restored from the resume snapshot.
    pub resumed: usize,
    /// Nodes evaluated in this run.
    pub evaluated: usize,
    /// Snapshots written in this run.
    pub checkpoints_written: usize,
}

/// The durable-campaign spectral driver: evaluates the plan's nodes
/// under [`run_campaign`] (atomic checksummed checkpoints, fingerprint-
/// validated resume, deadline/budget truncation), then finishes exactly
/// as [`run_spectral`]. The checkpoint fingerprint is the caller's
/// `(master_seed, model_fingerprint, policy)` **extended with the
/// plan's own fingerprint** — a snapshot taken under one grid/basis
/// refuses to resume under another, and `n_samples` is pinned to the
/// plan's node count.
///
/// Kill-and-resume is bitwise-exact: nodes are pure functions of the
/// plan, the merge is index-ordered, and the coefficient solve runs
/// only on a complete grid.
///
/// # Errors
///
/// [`SpectralRunError::Checkpoint`] for checkpoint load/validation/
/// write failures (including fingerprint-mismatch refusal on resume),
/// [`SpectralRunError::Spectral`] for node failures and coefficient-
/// solve failures. A deadline/budget truncation is not an error: it
/// returns `Ok` with `result: None` and a `Truncated` verdict.
pub fn run_spectral_campaign<E: fmt::Display>(
    plan: &SpectralPlan,
    threads: usize,
    policy: RecoveryPolicy,
    config: &CampaignConfig,
    master_seed: u64,
    model_fingerprint: u64,
    f: impl Fn(&[f64], usize) -> Result<(f64, SampleStatus), E> + Sync,
) -> Result<SpectralCampaignResult, SpectralRunError> {
    let fingerprint = CampaignFingerprint {
        master_seed,
        n_samples: plan.nodes.len(),
        policy,
        model: fingerprint_words([model_fingerprint, plan.fingerprint()]),
    };
    let res = run_campaign(
        &plan.nodes,
        threads,
        policy,
        config,
        fingerprint,
        |node: &Vec<f64>, a| f(node, a).map_err(|e| e.to_string()),
    )
    .map_err(SpectralRunError::Checkpoint)?;
    let node_summary = res.summary;
    let bookkeeping = |result| SpectralCampaignResult {
        result,
        node_summary,
        verdict: res.verdict,
        completed: res.completed,
        resumed: res.resumed,
        evaluated: res.evaluated,
        checkpoints_written: res.checkpoints_written,
    };
    if matches!(res.verdict, CampaignVerdict::Truncated { .. }) {
        return Ok(bookkeeping(None));
    }
    if res.failures > 0 {
        return Err(SpectralRunError::Spectral(SpectralError::NodeFailures {
            failed: res.failures,
            first_error: res.first_error,
        }));
    }
    let spectral = finish(plan, res.values, res.sample_health, res.health, master_seed)
        .map_err(SpectralRunError::Spectral)?;
    Ok(bookkeeping(Some(spectral)))
}

/// Error of a durable spectral campaign: either the checkpoint layer
/// or the spectral solve.
#[derive(Debug)]
pub enum SpectralRunError {
    /// Checkpoint load/validation/write failure.
    Checkpoint(CheckpointError),
    /// Node or coefficient-solve failure.
    Spectral(SpectralError),
}

impl fmt::Display for SpectralRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpectralRunError::Checkpoint(e) => write!(f, "{e}"),
            SpectralRunError::Spectral(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SpectralRunError {}

/// Shared tail of both drivers: counters, coefficient solve, moments,
/// deterministic surrogate quantiles. One fixed order throughout.
fn finish(
    plan: &SpectralPlan,
    values: Vec<f64>,
    sample_health: Vec<SampleHealth>,
    health: HealthSummary,
    surrogate_seed: u64,
) -> Result<SpectralResult, SpectralError> {
    linvar_metrics::count(
        linvar_metrics::Counter::SpectralNodesEvaluated,
        values.len() as u64,
    );
    let coefficients = plan.coefficients(&values)?;
    let mean = plan.mean(&coefficients);
    let std = plan.std(&coefficients);
    let sample = lhs_normal_streamed(
        surrogate_seed ^ SURROGATE_SALT,
        SURROGATE_SAMPLES,
        plan.dims,
        1.0,
    );
    let mut surrogate: Vec<f64> = sample
        .iter()
        .map(|xi| plan.evaluate(&coefficients, xi))
        .collect();
    linvar_metrics::count(
        linvar_metrics::Counter::SpectralSurrogateSamples,
        surrogate.len() as u64,
    );
    let surrogate_summary = Summary::of(&surrogate);
    surrogate.sort_by(f64::total_cmp);
    let quantiles = QUANTILE_PROBS
        .iter()
        .map(|&p| {
            let k = ((surrogate.len() - 1) as f64 * p).round() as usize;
            (p, surrogate[k])
        })
        .collect();
    Ok(SpectralResult {
        nodes_evaluated: values.len(),
        node_values: values,
        coefficients,
        mean,
        std,
        quantiles,
        surrogate_summary,
        sample_health,
        health,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hermite_recurrence_reference_values() {
        assert_eq!(hermite_prob(0, 1.7), 1.0);
        assert_eq!(hermite_prob(1, 1.7), 1.7);
        // He_2 = x² − 1, He_3 = x³ − 3x, He_4 = x⁴ − 6x² + 3.
        let x = 0.83;
        assert!((hermite_prob(2, x) - (x * x - 1.0)).abs() < 1e-14);
        assert!((hermite_prob(3, x) - (x * x * x - 3.0 * x)).abs() < 1e-14);
        assert!((hermite_prob(4, x) - (x.powi(4) - 6.0 * x * x + 3.0)).abs() < 1e-13);
    }

    #[test]
    fn gauss_hermite_small_rules_are_exact() {
        // n=3: nodes 0, ±√3, weights 2/3, 1/6, 1/6.
        let (x, w) = gauss_hermite(3).unwrap();
        assert!((x[1]).abs() < 1e-15);
        assert!((x[2] - 3f64.sqrt()).abs() < 1e-12);
        assert!((w[1] - 2.0 / 3.0).abs() < 1e-12);
        assert!((w[0] - 1.0 / 6.0).abs() < 1e-12);
        // Gaussian moments through the rule: E[1]=1, E[x²]=1, E[x⁴]=3.
        for n in 1..=12usize {
            let (x, w) = gauss_hermite(n).unwrap();
            let m0: f64 = w.iter().sum();
            assert!((m0 - 1.0).abs() < 1e-12, "n={n} m0={m0}");
            if n >= 2 {
                let m2: f64 = x.iter().zip(&w).map(|(x, w)| w * x * x).sum();
                assert!((m2 - 1.0).abs() < 1e-11, "n={n} m2={m2}");
            }
            if n >= 3 {
                let m4: f64 = x.iter().zip(&w).map(|(x, w)| w * x.powi(4)).sum();
                assert!((m4 - 3.0).abs() < 1e-10, "n={n} m4={m4}");
            }
        }
    }

    #[test]
    fn multi_indices_counts_and_order() {
        // Total degree ≤ 2 in 3 dims: C(3+2,2) = 10 terms.
        let b = multi_indices(3, 2, 3);
        assert_eq!(b.len(), 10);
        assert_eq!(b[0], vec![0, 0, 0], "constant term first");
        // Interaction cap 1 keeps only per-dimension terms: 1 + 3 + 3.
        let additive = multi_indices(3, 2, 1);
        assert_eq!(additive.len(), 7);
        assert!(additive
            .iter()
            .all(|a| a.iter().filter(|&&x| x > 0).count() <= 1));
    }

    #[test]
    fn plans_are_pure_functions_of_config() {
        for config in [
            SpectralConfig::tensor(2),
            SpectralConfig::smolyak(2, 2),
            SpectralConfig::stochastic_testing(2),
        ] {
            let a = SpectralPlan::build(3, config).unwrap();
            let b = SpectralPlan::build(3, config).unwrap();
            assert_eq!(a.nodes, b.nodes, "{config:?}");
            assert_eq!(a.weights, b.weights);
            assert_eq!(a.basis, b.basis);
            assert_eq!(a.fingerprint(), b.fingerprint());
        }
        let t = SpectralPlan::build(3, SpectralConfig::tensor(2)).unwrap();
        let s = SpectralPlan::build(3, SpectralConfig::smolyak(2, 2)).unwrap();
        assert_ne!(t.fingerprint(), s.fingerprint());
    }

    #[test]
    fn tensor_plan_recovers_polynomial_exactly() {
        // y = 2 + x0 − 0.5 x1 + 0.25 x0 x2 + 0.125 x1²: an order-2
        // polynomial; tensor collocation at order 2 is quadrature-exact,
        // so mean and std match the analytic values to rounding.
        let plan = SpectralPlan::build(3, SpectralConfig::tensor(2)).unwrap();
        let f = |x: &[f64]| 2.0 + x[0] - 0.5 * x[1] + 0.25 * x[0] * x[2] + 0.125 * x[1] * x[1];
        let values: Vec<f64> = plan.nodes.iter().map(|n| f(n)).collect();
        let c = plan.coefficients(&values).unwrap();
        assert!(
            (plan.mean(&c) - 2.125).abs() < 1e-12,
            "mean {}",
            plan.mean(&c)
        );
        // Var = 1 + 0.25 + 0.25²·E[x0²x2²] + 0.125²·Var[x1²]
        //     = 1 + 0.25 + 0.0625 + 0.03125.
        let var: f64 = 1.0 + 0.25 + 0.0625 + 0.03125;
        assert!(
            (plan.std(&c) - var.sqrt()).abs() < 1e-12,
            "std {} want {}",
            plan.std(&c),
            var.sqrt()
        );
    }

    #[test]
    fn stochastic_testing_matches_tensor_on_polynomials() {
        let st = SpectralPlan::build(3, SpectralConfig::stochastic_testing(2)).unwrap();
        assert_eq!(st.nodes.len(), st.basis.len(), "square system");
        let f = |x: &[f64]| 1.0 + 0.3 * x[0] + 0.2 * x[1] * x[2] - 0.1 * x[2] * x[2];
        let values: Vec<f64> = st.nodes.iter().map(|n| f(n)).collect();
        let c = st.coefficients(&values).unwrap();
        assert!((st.mean(&c) - 0.9).abs() < 1e-10);
        let var: f64 = 0.09 + 0.04 + 2.0 * 0.01;
        assert!((st.std(&c) - var.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn smolyak_grid_is_small_and_integrates_gaussian_moments() {
        let plan = SpectralPlan::build(4, SpectralConfig::smolyak(2, 1)).unwrap();
        // Level-1 sparse grid in d dims: origin + 2d axis nodes.
        assert_eq!(plan.nodes.len(), 9);
        let w_sum: f64 = plan.weights.iter().sum();
        assert!((w_sum - 1.0).abs() < 1e-12);
        // Additive quadratics integrate exactly on the level-1 grid.
        let f = |x: &[f64]| x.iter().map(|&v| v * v).sum::<f64>();
        let m: f64 = plan
            .nodes
            .iter()
            .zip(&plan.weights)
            .map(|(n, &w)| w * f(n))
            .sum();
        assert!((m - 4.0).abs() < 1e-11, "E[Σx²] = d, got {m}");
    }

    #[test]
    fn duplicated_testing_node_is_a_typed_singularity() {
        let mut plan = SpectralPlan::build(2, SpectralConfig::stochastic_testing(1)).unwrap();
        let first = plan.nodes[0].clone();
        plan.nodes[1] = first; // two identical Vandermonde rows
        let values = vec![1.0; plan.nodes.len()];
        match plan.coefficients(&values) {
            Err(SpectralError::SingularSystem(_)) => {}
            other => panic!("expected typed singularity, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_node_value_is_a_typed_error() {
        let plan = SpectralPlan::build(2, SpectralConfig::tensor(1)).unwrap();
        let mut values = vec![1.0; plan.nodes.len()];
        values[1] = f64::NAN;
        assert_eq!(
            plan.coefficients(&values),
            Err(SpectralError::NonFiniteNode { index: 1 })
        );
        let short = vec![1.0; plan.nodes.len() - 1];
        assert!(matches!(
            plan.coefficients(&short),
            Err(SpectralError::WrongValueCount { .. })
        ));
    }

    #[test]
    fn run_spectral_is_bitwise_identical_across_threads() {
        let plan = SpectralPlan::build(3, SpectralConfig::smolyak(2, 2)).unwrap();
        let f = |x: &[f64], _a: usize| -> Result<(f64, SampleStatus), String> {
            Ok((
                (0.4 * x[0] + 0.1 * x[1] * x[1] - 0.05 * x[2]).exp(),
                SampleStatus::Clean,
            ))
        };
        let base = run_spectral(&plan, 1, RecoveryPolicy::default(), 7, f).unwrap();
        for threads in [2usize, 8] {
            let par = run_spectral(&plan, threads, RecoveryPolicy::default(), 7, f).unwrap();
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(
                bits(&par.coefficients),
                bits(&base.coefficients),
                "threads={threads}"
            );
            assert_eq!(par.mean.to_bits(), base.mean.to_bits());
            assert_eq!(par.std.to_bits(), base.std.to_bits());
            assert_eq!(par.quantiles, base.quantiles);
        }
        // Quantiles are ordered and bracket the mean for this smooth map.
        assert!(base.quantiles[0].1 < base.quantiles[1].1);
        assert!(base.quantiles[1].1 < base.quantiles[2].1);
    }

    #[test]
    fn failed_node_is_terminal_not_quarantined() {
        let plan = SpectralPlan::build(2, SpectralConfig::tensor(1)).unwrap();
        let res = run_spectral(
            &plan,
            2,
            RecoveryPolicy::strict(),
            1,
            |_x: &[f64], _a| -> Result<(f64, SampleStatus), String> {
                Err("injected node failure".into())
            },
        );
        match res {
            Err(SpectralError::NodeFailures { failed, .. }) => assert!(failed > 0),
            other => panic!("expected NodeFailures, got {other:?}"),
        }
    }
}
