//! Fixed-bin histograms with a text renderer (Figures 6 and 7).

/// A fixed-bin histogram of a scalar sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<usize>,
    total: usize,
}

impl Histogram {
    /// Builds a histogram of `xs` with `bins` equal-width bins spanning
    /// `[lo, hi]`. Values outside the range clamp into the edge bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(xs: &[f64], bins: usize, lo: f64, hi: f64) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(hi > lo, "histogram range must be nonempty");
        let mut counts = vec![0usize; bins];
        for &x in xs {
            let frac = (x - lo) / (hi - lo);
            let bin = ((frac * bins as f64) as isize).clamp(0, bins as isize - 1) as usize;
            counts[bin] += 1;
        }
        Histogram {
            lo,
            hi,
            counts,
            total: xs.len(),
        }
    }

    /// Builds a histogram spanning the sample range with a small margin.
    pub fn auto(xs: &[f64], bins: usize) -> Self {
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let (lo, hi) = if !(lo.is_finite() && hi.is_finite()) || hi <= lo {
            (lo.min(0.0), lo.min(0.0) + 1.0)
        } else {
            let margin = 0.05 * (hi - lo);
            (lo - margin, hi + margin)
        };
        Histogram::new(xs, bins, lo, hi)
    }

    /// Bin counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Total sample count.
    pub fn total(&self) -> usize {
        self.total
    }

    /// `(center, count)` pairs for plotting.
    pub fn centers(&self) -> Vec<(f64, usize)> {
        let n = self.counts.len();
        let w = (self.hi - self.lo) / n as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(k, &c)| (self.lo + (k as f64 + 0.5) * w, c))
            .collect()
    }

    /// Renders a horizontal ASCII bar chart (the form Figures 6/7 take in
    /// the terminal), with bin centers in the given unit scale.
    pub fn render(&self, label: &str, unit_scale: f64, unit: &str) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(1).max(1);
        let mut out = format!("{label} (n={})\n", self.total);
        for (center, count) in self.centers() {
            let bar_len = (count * 50).div_ceil(max);
            out.push_str(&format!(
                "{:>10.2} {unit} | {:<50} {count}\n",
                center * unit_scale,
                "#".repeat(if count == 0 { 0 } else { bar_len }),
            ));
        }
        out
    }

    /// Overlays two histograms with the same binning, rendering paired
    /// bars — the side-by-side comparison format of Figures 6 and 7.
    ///
    /// # Panics
    ///
    /// Panics if the histograms have different bin counts or ranges.
    pub fn render_pair(
        &self,
        other: &Histogram,
        label_self: &str,
        label_other: &str,
        unit_scale: f64,
        unit: &str,
    ) -> String {
        assert_eq!(self.counts.len(), other.counts.len(), "bin count mismatch");
        assert!(
            (self.lo - other.lo).abs() < 1e-12 * (self.hi - self.lo)
                && (self.hi - other.hi).abs() < 1e-12 * (self.hi - self.lo),
            "histogram ranges differ"
        );
        let max = self
            .counts
            .iter()
            .chain(other.counts.iter())
            .copied()
            .max()
            .unwrap_or(1)
            .max(1);
        let mut out = format!("{label_self} (#) vs {label_other} (o)\n");
        for (k, (center, _)) in self.centers().iter().enumerate() {
            let a = self.counts[k];
            let b = other.counts[k];
            let bar_a = "#".repeat((a * 25).div_ceil(max).min(25) * usize::from(a > 0));
            let bar_b = "o".repeat((b * 25).div_ceil(max).min(25) * usize::from(b > 0));
            out.push_str(&format!(
                "{:>10.2} {unit} | {bar_a:<25}|{bar_b:<25} {a:>4} {b:>4}\n",
                center * unit_scale
            ));
        }
        out
    }

    /// Shared-range constructor for comparable histograms: bins both
    /// samples over their combined range.
    pub fn pair(xs: &[f64], ys: &[f64], bins: usize) -> (Histogram, Histogram) {
        let all: Vec<f64> = xs.iter().chain(ys).copied().collect();
        let lo = all.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = all.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let margin = 0.05 * (hi - lo).max(1e-30);
        (
            Histogram::new(xs, bins, lo - margin, hi + margin),
            Histogram::new(ys, bins, lo - margin, hi + margin),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_land_in_right_bins() {
        let h = Histogram::new(&[0.1, 0.1, 0.5, 0.9], 2, 0.0, 1.0);
        assert_eq!(h.counts(), &[2, 2]);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn out_of_range_clamps() {
        let h = Histogram::new(&[-5.0, 5.0], 4, 0.0, 1.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[3], 1);
    }

    #[test]
    fn auto_covers_sample() {
        let xs = [1.0, 2.0, 3.0];
        let h = Histogram::auto(&xs, 3);
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts().iter().sum::<usize>(), 3);
    }

    #[test]
    fn centers_are_monotonic() {
        let h = Histogram::new(&[0.5], 4, 0.0, 1.0);
        let cs = h.centers();
        assert_eq!(cs.len(), 4);
        assert!(cs.windows(2).all(|w| w[0].0 < w[1].0));
        assert!((cs[0].0 - 0.125).abs() < 1e-12);
    }

    #[test]
    fn render_contains_bars() {
        let h = Histogram::new(&[0.2, 0.2, 0.8], 2, 0.0, 1.0);
        let s = h.render("demo", 1.0, "V");
        assert!(s.contains('#'));
        assert!(s.contains("demo"));
    }

    #[test]
    fn paired_rendering() {
        let (a, b) = Histogram::pair(&[1.0, 2.0, 2.1], &[1.5, 2.5], 5);
        assert_eq!(a.counts().len(), b.counts().len());
        let s = a.render_pair(&b, "MC", "GA", 1.0, "ps");
        assert!(s.contains("MC"));
        assert!(s.contains('o'));
    }

    #[test]
    #[should_panic(expected = "bin count mismatch")]
    fn mismatched_pair_panics() {
        let a = Histogram::new(&[0.5], 2, 0.0, 1.0);
        let b = Histogram::new(&[0.5], 3, 0.0, 1.0);
        let _ = a.render_pair(&b, "a", "b", 1.0, "");
    }
}
