//! Fixed-bin histograms with a text renderer (Figures 6 and 7).
//!
//! Construction is fallible: a non-finite sample (NaN would otherwise
//! cast to bin 0 and silently skew the distribution — `f64 as isize`
//! saturates NaN to 0), an empty/inverted range, or zero bins is a
//! typed [`HistogramError`], never a silent misclassification.

use std::fmt;

/// Why a histogram could not be built.
#[derive(Debug, Clone, PartialEq)]
pub enum HistogramError {
    /// `bins == 0`.
    ZeroBins,
    /// `hi <= lo`, or a bound is NaN/infinite (e.g. derived from an
    /// empty sample).
    EmptyRange {
        /// Requested lower edge.
        lo: f64,
        /// Requested upper edge.
        hi: f64,
    },
    /// A sample value is NaN or infinite and cannot be binned.
    NonFinite {
        /// Index of the offending value in the input slice.
        index: usize,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for HistogramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistogramError::ZeroBins => write!(f, "histogram needs at least one bin"),
            HistogramError::EmptyRange { lo, hi } => {
                write!(f, "histogram range [{lo}, {hi}] is empty or non-finite")
            }
            HistogramError::NonFinite { index, value } => {
                write!(f, "sample {index} is {value} and cannot be binned")
            }
        }
    }
}

impl std::error::Error for HistogramError {}

/// A fixed-bin histogram of a scalar sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<usize>,
    total: usize,
}

impl Histogram {
    /// Builds a histogram of `xs` with `bins` equal-width bins spanning
    /// `[lo, hi]`. Finite values outside the range clamp into the edge
    /// bins; the upper edge itself lands in the last bin.
    ///
    /// # Errors
    ///
    /// [`HistogramError::ZeroBins`] for `bins == 0`,
    /// [`HistogramError::EmptyRange`] for `hi <= lo` or non-finite
    /// bounds, and [`HistogramError::NonFinite`] for a NaN/infinite
    /// sample (which no bin can honestly hold).
    pub fn new(xs: &[f64], bins: usize, lo: f64, hi: f64) -> Result<Self, HistogramError> {
        if bins == 0 {
            return Err(HistogramError::ZeroBins);
        }
        if !(lo.is_finite() && hi.is_finite()) || hi <= lo {
            return Err(HistogramError::EmptyRange { lo, hi });
        }
        let mut counts = vec![0usize; bins];
        for (index, &x) in xs.iter().enumerate() {
            if !x.is_finite() {
                return Err(HistogramError::NonFinite { index, value: x });
            }
            let frac = (x - lo) / (hi - lo);
            let bin = ((frac * bins as f64) as isize).clamp(0, bins as isize - 1) as usize;
            counts[bin] += 1;
        }
        Ok(Histogram {
            lo,
            hi,
            counts,
            total: xs.len(),
        })
    }

    /// Builds a histogram spanning the sample range with a small margin.
    ///
    /// # Errors
    ///
    /// As [`Histogram::new`]; an empty or constant sample gets a unit
    /// range around it instead of an error. A NaN *or infinite* sample is
    /// [`HistogramError::NonFinite`] up front: ±∞ used to slip into the
    /// range fold, poison the auto-range, and surface only indirectly
    /// (or, for a sample like `[-∞, +∞]`, collapse the range silently) —
    /// the IR-drop path needs the offending sample index, not a
    /// misattributed range error.
    pub fn auto(xs: &[f64], bins: usize) -> Result<Self, HistogramError> {
        first_non_finite(xs)?;
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let (lo, hi) = if !(lo.is_finite() && hi.is_finite()) || hi <= lo {
            let base = if lo.is_finite() { lo.min(0.0) } else { 0.0 };
            (base, base + 1.0)
        } else {
            let margin = 0.05 * (hi - lo);
            (lo - margin, hi + margin)
        };
        Histogram::new(xs, bins, lo, hi)
    }

    /// Bin counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Total sample count.
    pub fn total(&self) -> usize {
        self.total
    }

    /// `(center, count)` pairs for plotting.
    pub fn centers(&self) -> Vec<(f64, usize)> {
        let n = self.counts.len();
        let w = (self.hi - self.lo) / n as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(k, &c)| (self.lo + (k as f64 + 0.5) * w, c))
            .collect()
    }

    /// Renders a horizontal ASCII bar chart (the form Figures 6/7 take in
    /// the terminal), with bin centers in the given unit scale.
    pub fn render(&self, label: &str, unit_scale: f64, unit: &str) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(1).max(1);
        let mut out = format!("{label} (n={})\n", self.total);
        for (center, count) in self.centers() {
            let bar_len = (count * 50).div_ceil(max);
            out.push_str(&format!(
                "{:>10.2} {unit} | {:<50} {count}\n",
                center * unit_scale,
                "#".repeat(if count == 0 { 0 } else { bar_len }),
            ));
        }
        out
    }

    /// Overlays two histograms with the same binning, rendering paired
    /// bars — the side-by-side comparison format of Figures 6 and 7.
    ///
    /// # Panics
    ///
    /// Panics if the histograms have different bin counts or ranges
    /// (a programmer error — build both via [`Histogram::pair`]).
    pub fn render_pair(
        &self,
        other: &Histogram,
        label_self: &str,
        label_other: &str,
        unit_scale: f64,
        unit: &str,
    ) -> String {
        assert_eq!(self.counts.len(), other.counts.len(), "bin count mismatch");
        assert!(
            (self.lo - other.lo).abs() < 1e-12 * (self.hi - self.lo)
                && (self.hi - other.hi).abs() < 1e-12 * (self.hi - self.lo),
            "histogram ranges differ"
        );
        let max = self
            .counts
            .iter()
            .chain(other.counts.iter())
            .copied()
            .max()
            .unwrap_or(1)
            .max(1);
        let mut out = format!("{label_self} (#) vs {label_other} (o)\n");
        for (k, (center, _)) in self.centers().iter().enumerate() {
            let a = self.counts[k];
            let b = other.counts[k];
            let bar_a = "#".repeat((a * 25).div_ceil(max).min(25) * usize::from(a > 0));
            let bar_b = "o".repeat((b * 25).div_ceil(max).min(25) * usize::from(b > 0));
            out.push_str(&format!(
                "{:>10.2} {unit} | {bar_a:<25}|{bar_b:<25} {a:>4} {b:>4}\n",
                center * unit_scale
            ));
        }
        out
    }

    /// Shared-range constructor for comparable histograms: bins both
    /// samples over their combined range.
    ///
    /// # Errors
    ///
    /// As [`Histogram::new`] — in particular, two empty samples have no
    /// combined range ([`HistogramError::EmptyRange`]), and a non-finite
    /// sample in either input is [`HistogramError::NonFinite`] (indexed
    /// within its own slice), not a range error.
    pub fn pair(
        xs: &[f64],
        ys: &[f64],
        bins: usize,
    ) -> Result<(Histogram, Histogram), HistogramError> {
        first_non_finite(xs)?;
        first_non_finite(ys)?;
        let all = xs.iter().chain(ys).copied();
        let (lo, hi) = all.fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
            (lo.min(v), hi.max(v))
        });
        let margin = 0.05 * (hi - lo).max(1e-30);
        Ok((
            Histogram::new(xs, bins, lo - margin, hi + margin)?,
            Histogram::new(ys, bins, lo - margin, hi + margin)?,
        ))
    }
}

/// Rejects the first NaN/±∞ sample with its index — the shared guard
/// behind the range-deriving constructors.
fn first_non_finite(xs: &[f64]) -> Result<(), HistogramError> {
    match xs.iter().enumerate().find(|(_, x)| !x.is_finite()) {
        Some((index, &value)) => Err(HistogramError::NonFinite { index, value }),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_land_in_right_bins() {
        let h = Histogram::new(&[0.1, 0.1, 0.5, 0.9], 2, 0.0, 1.0).unwrap();
        assert_eq!(h.counts(), &[2, 2]);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn out_of_range_clamps() {
        let h = Histogram::new(&[-5.0, 5.0], 4, 0.0, 1.0).unwrap();
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[3], 1);
    }

    #[test]
    fn upper_edge_lands_in_last_bin() {
        // x == hi gives frac == 1.0, which must clamp into the last bin,
        // not fall off the end; lo lands in the first.
        let h = Histogram::new(&[0.0, 1.0], 4, 0.0, 1.0).unwrap();
        assert_eq!(h.counts(), &[1, 0, 0, 1]);
    }

    #[test]
    fn nan_is_a_typed_error_not_bin_zero() {
        // Regression: `NaN as isize` saturates to 0, so a NaN sample used
        // to count silently into the first bin.
        let err = Histogram::new(&[0.5, f64::NAN], 4, 0.0, 1.0).unwrap_err();
        match err {
            HistogramError::NonFinite { index, value } => {
                assert_eq!(index, 1);
                assert!(value.is_nan());
            }
            other => panic!("expected NonFinite, got {other:?}"),
        }
        assert!(Histogram::new(&[f64::INFINITY], 4, 0.0, 1.0).is_err());
    }

    #[test]
    fn bad_configurations_are_typed_errors() {
        assert_eq!(
            Histogram::new(&[], 0, 0.0, 1.0).unwrap_err(),
            HistogramError::ZeroBins
        );
        assert!(matches!(
            Histogram::new(&[], 3, 1.0, 1.0).unwrap_err(),
            HistogramError::EmptyRange { .. }
        ));
        assert!(matches!(
            Histogram::new(&[], 3, 0.0, f64::NAN).unwrap_err(),
            HistogramError::EmptyRange { .. }
        ));
        // Two empty samples have no combined range.
        assert!(Histogram::pair(&[], &[], 3).is_err());
        let msg = HistogramError::ZeroBins.to_string();
        assert!(msg.contains("bin"), "{msg}");
    }

    #[test]
    fn auto_covers_sample() {
        let xs = [1.0, 2.0, 3.0];
        let h = Histogram::auto(&xs, 3).unwrap();
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts().iter().sum::<usize>(), 3);
        // Degenerate samples get a unit range instead of an error…
        assert!(Histogram::auto(&[], 3).is_ok());
        assert!(Histogram::auto(&[2.5], 3).is_ok());
        // …but non-finite samples are still rejected.
        assert!(Histogram::auto(&[f64::NAN], 3).is_err());
    }

    #[test]
    fn auto_rejects_infinite_samples_with_index() {
        // Regression: ±∞ used to flow into the range fold and come back
        // as a degenerate-range detour (or, mixed with finite samples,
        // an inf-wide histogram attempt) instead of naming the sample.
        for bad in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            let err = Histogram::auto(&[1.0, 2.0, bad, 3.0], 4).unwrap_err();
            match err {
                HistogramError::NonFinite { index, value } => {
                    assert_eq!(index, 2);
                    assert!(value.is_nan() || value.is_infinite());
                }
                other => panic!("expected NonFinite for {bad}, got {other:?}"),
            }
        }
        // The all-infinite sample is a NonFinite error too, not a
        // silently collapsed unit range.
        assert!(matches!(
            Histogram::auto(&[f64::NEG_INFINITY, f64::INFINITY], 3),
            Err(HistogramError::NonFinite { index: 0, .. })
        ));
    }

    #[test]
    fn pair_rejects_infinite_samples_with_index() {
        // An infinite sample used to surface as EmptyRange (the ∞-wide
        // margin), misattributing the failure to the configuration.
        assert!(matches!(
            Histogram::pair(&[1.0], &[2.0, f64::INFINITY], 3),
            Err(HistogramError::NonFinite { index: 1, .. })
        ));
    }

    #[test]
    fn centers_are_monotonic() {
        let h = Histogram::new(&[0.5], 4, 0.0, 1.0).unwrap();
        let cs = h.centers();
        assert_eq!(cs.len(), 4);
        assert!(cs.windows(2).all(|w| w[0].0 < w[1].0));
        assert!((cs[0].0 - 0.125).abs() < 1e-12);
    }

    #[test]
    fn render_contains_bars() {
        let h = Histogram::new(&[0.2, 0.2, 0.8], 2, 0.0, 1.0).unwrap();
        let s = h.render("demo", 1.0, "V");
        assert!(s.contains('#'));
        assert!(s.contains("demo"));
    }

    #[test]
    fn paired_rendering() {
        let (a, b) = Histogram::pair(&[1.0, 2.0, 2.1], &[1.5, 2.5], 5).unwrap();
        assert_eq!(a.counts().len(), b.counts().len());
        let s = a.render_pair(&b, "MC", "GA", 1.0, "ps");
        assert!(s.contains("MC"));
        assert!(s.contains('o'));
    }

    #[test]
    #[should_panic(expected = "bin count mismatch")]
    fn mismatched_pair_panics() {
        let a = Histogram::new(&[0.5], 2, 0.0, 1.0).unwrap();
        let b = Histogram::new(&[0.5], 3, 0.0, 1.0).unwrap();
        let _ = a.render_pair(&b, "a", "b", 1.0, "");
    }
}
