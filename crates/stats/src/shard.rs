//! Sharded campaign supervisor (see DESIGN.md, "Sharding protocol &
//! merge invariants").
//!
//! A campaign's sample range is split into contiguous shards, each run
//! as a supervised [`run_campaign`] with its own fingerprinted
//! checkpoint. The supervisor provides the robustness layer the durable
//! campaign machinery stops short of:
//!
//! * **heartbeats + watchdog** — every evaluator call ticks a per-shard
//!   heartbeat; a shard silent past `stall_after` is re-dispatched as a
//!   fresh straggler attempt while the original keeps running;
//! * **retry ladder** — a dead shard attempt (killed worker, torn or
//!   corrupted snapshot, checkpoint I/O failure) is retried with capped
//!   exponential backoff, resuming from the shard's own snapshot so
//!   completed samples are never re-evaluated;
//! * **first-writer-wins merge** — deliveries are deduplicated per
//!   sample index, so duplicate completions (stragglers racing their
//!   re-dispatch, a shard delivering twice) cannot perturb the result;
//! * **typed verdicts** — each shard reports a [`ShardVerdict`];
//!   permanently dead shards surface as `Failed` samples in the merged
//!   [`HealthSummary`] instead of aborting the whole run.
//!
//! The merge contract: because every sample outcome is a pure function
//! of `(sample, attempt)` and the merged aggregation walks global
//! sample-index order exactly like [`run_campaign`]'s own merge loop,
//! the merged result is **bitwise-identical to a single-process run at
//! any shard count and any thread count** — including under every
//! injected [`ShardFault`].

use std::fmt::Display;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use linvar_metrics::{Counter, Phase};

use crate::campaign::{
    fingerprint_words, load_checkpoint, run_campaign, CampaignConfig, CampaignFingerprint,
    CampaignResult, CampaignVerdict, CheckpointError,
};
use crate::montecarlo::{HealthSummary, RecoveryPolicy, SampleHealth, SampleStatus};
use crate::summary::Summary;

/// Contiguous near-equal split of `n_samples` into shards. The first
/// `n_samples % n_shards` shards hold one extra sample, so the plan is
/// a pure function of `(n_samples, n_shards)` — every participant
/// (supervisor, per-shard worker processes, the merge step) derives the
/// same ranges independently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    n_samples: usize,
    ranges: Vec<(usize, usize)>,
}

impl ShardPlan {
    /// Splits `n_samples` into `n_shards` contiguous ranges.
    pub fn new(n_samples: usize, n_shards: usize) -> Result<Self, ShardError> {
        if n_shards == 0 {
            return Err(ShardError::Plan {
                reason: "shard count must be at least 1".into(),
            });
        }
        let base = n_samples / n_shards;
        let extra = n_samples % n_shards;
        let mut ranges = Vec::with_capacity(n_shards);
        let mut at = 0;
        for k in 0..n_shards {
            let len = base + usize::from(k < extra);
            ranges.push((at, at + len));
            at += len;
        }
        Ok(Self { n_samples, ranges })
    }

    /// Number of shards in the plan.
    pub fn n_shards(&self) -> usize {
        self.ranges.len()
    }

    /// Total samples covered by the plan.
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Half-open global sample range `[start, end)` of shard `k`.
    pub fn range(&self, k: usize) -> (usize, usize) {
        self.ranges[k]
    }

    /// Shard owning global sample index `idx`.
    pub fn shard_of(&self, idx: usize) -> usize {
        self.ranges
            .iter()
            .position(|&(s, e)| idx >= s && idx < e)
            .expect("index inside the planned sample range")
    }
}

/// Typed error of the sharding layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// The shard plan or supervisor configuration is unusable.
    Plan {
        /// What was wrong with it.
        reason: String,
    },
    /// A shard checkpoint operation failed.
    Checkpoint(CheckpointError),
}

impl Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Plan { reason } => write!(f, "shard plan error: {reason}"),
            ShardError::Checkpoint(e) => write!(f, "shard checkpoint error: {e}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<CheckpointError> for ShardError {
    fn from(e: CheckpointError) -> Self {
        ShardError::Checkpoint(e)
    }
}

/// Injected shard failure, for the fault matrix and recovery tests.
/// Faults fire once, on the targeted shard's first attempt; every one
/// is recoverable by the supervisor, so the merged result stays
/// bitwise-identical to a fault-free run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardFault {
    /// The shard dies after evaluating about half its samples, before
    /// any snapshot is written: the retry re-runs the shard from
    /// scratch.
    KillBeforeCheckpoint,
    /// The shard dies after a valid half-way snapshot, leaving a torn
    /// `.tmp` sibling behind (a crash inside the atomic write): the
    /// retry resumes from the snapshot and never re-runs the completed
    /// half.
    KillMidWrite,
    /// The shard completes but its snapshot is bit-flipped afterwards:
    /// the retry's checksum validation rejects and deletes the file,
    /// then re-runs the shard from scratch.
    CorruptCheckpoint,
    /// The shard goes silent for `millis` before starting: the watchdog
    /// re-dispatches a straggler attempt; whichever delivery lands
    /// first wins, per sample index.
    Stall {
        /// How long the shard sleeps before its first heartbeat.
        millis: u64,
    },
    /// The shard delivers its completed range twice: the second
    /// delivery is fully deduplicated.
    DuplicateCompletion,
}

/// Per-shard outcome, as judged by the supervisor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardOutcome {
    /// The shard's full range was delivered (by its controller or by a
    /// straggler re-dispatch).
    Completed,
    /// Every attempt died and no re-dispatch delivered; the shard's
    /// samples enter the merge as `Failed` records carrying this
    /// diagnostic.
    Failed(String),
}

/// What happened to one shard over the whole supervised run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardVerdict {
    /// Shard index in the plan.
    pub shard: usize,
    /// Global sample range start (inclusive).
    pub start: usize,
    /// Global sample range end (exclusive).
    pub end: usize,
    /// Controller attempts spent (1 = clean first try; 0 = empty shard).
    pub attempts: usize,
    /// The watchdog re-dispatched this shard as a straggler.
    pub redispatched: bool,
    /// Final outcome.
    pub outcome: ShardOutcome,
}

/// Supervisor configuration.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// How many shards to split the campaign into.
    pub n_shards: usize,
    /// Checkpoint path prefix; shard `k` writes
    /// `<prefix>.shard<k>of<N>.ckpt` (see [`shard_checkpoint_path`]).
    /// `None` disables shard snapshots (retries then re-run from
    /// scratch).
    pub checkpoint: Option<PathBuf>,
    /// Resume pre-existing shard snapshots on the first attempt.
    /// Retries always resume from their own attempt's snapshot
    /// regardless — that is the point of the ladder.
    pub resume: bool,
    /// Retry attempts after each shard's first (the shard ladder, on
    /// top of the per-sample `RecoveryPolicy` ladder inside).
    pub max_shard_retries: usize,
    /// First retry delay; attempt `a` waits `base * 2^(a-1)`.
    pub backoff_base: Duration,
    /// Ceiling on the exponential backoff.
    pub backoff_cap: Duration,
    /// A live shard silent for longer than this is re-dispatched as a
    /// straggler. `None` disables the watchdog.
    pub stall_after: Option<Duration>,
    /// Watchdog poll interval.
    pub poll_interval: Duration,
    /// Forwarded to each shard's [`CampaignConfig::checkpoint_every`].
    pub checkpoint_every: usize,
    /// Injected faults: `(shard index, fault)`, fired once on that
    /// shard's first attempt.
    pub faults: Vec<(usize, ShardFault)>,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            n_shards: 1,
            checkpoint: None,
            resume: false,
            max_shard_retries: 2,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            stall_after: Some(Duration::from_secs(30)),
            poll_interval: Duration::from_millis(10),
            checkpoint_every: 0,
            faults: Vec::new(),
        }
    }
}

impl ShardConfig {
    fn fault_for(&self, shard: usize) -> Option<ShardFault> {
        self.faults
            .iter()
            .find(|(k, _)| *k == shard)
            .map(|(_, f)| *f)
    }

    fn backoff(&self, attempt: usize) -> Duration {
        debug_assert!(attempt >= 1);
        let shift = (attempt - 1).min(16) as u32;
        self.backoff_base
            .saturating_mul(1u32 << shift)
            .min(self.backoff_cap)
    }
}

/// Snapshot path of shard `k` of `n`: `<prefix>.shard<k>of<n>.ckpt`.
pub fn shard_checkpoint_path(prefix: &Path, k: usize, n: usize) -> PathBuf {
    let mut s = prefix.as_os_str().to_owned();
    s.push(format!(".shard{k}of{n}.ckpt"));
    PathBuf::from(s)
}

/// Shard-local fingerprint: the campaign fingerprint narrowed to shard
/// `k`'s range, with the model hash folded over the shard coordinates
/// so a snapshot written for one shard (or one shard count) is refused
/// by every other via `FingerprintMismatch`.
pub fn shard_fingerprint(
    base: &CampaignFingerprint,
    k: usize,
    n_shards: usize,
    start: usize,
    end: usize,
) -> CampaignFingerprint {
    CampaignFingerprint {
        master_seed: base.master_seed,
        n_samples: end - start,
        policy: base.policy,
        model: fingerprint_words([
            base.model,
            k as u64,
            n_shards as u64,
            start as u64,
            end as u64,
        ]),
    }
}

/// Result of a supervised sharded campaign. The statistical fields
/// (`values` through `health`) obey the bitwise-identity contract with
/// a single-process [`run_campaign`]; the bookkeeping fields
/// (`completed`/`resumed`/`evaluated`/`checkpoints_written`) count real
/// work done, which under faults legitimately exceeds the
/// single-process figures (a killed-then-retried shard really did
/// evaluate some samples twice).
#[derive(Debug, Clone)]
pub struct ShardedCampaignResult {
    /// Successful sample values in global index order.
    pub values: Vec<f64>,
    /// Summary statistics of `values`.
    pub summary: Summary,
    /// Number of failed samples (including dead-shard fills).
    pub failures: usize,
    /// Global indices of the failed samples, ascending.
    pub failed_indices: Vec<usize>,
    /// Diagnostic of the failure with the smallest **global** sample
    /// index — not the smallest per-shard index.
    pub first_error: Option<String>,
    /// Per-sample status and attempts, in global index order.
    pub sample_health: Vec<SampleHealth>,
    /// Run-level tally of `sample_health`; permanently dead shards
    /// appear here as `Failed` samples.
    pub health: HealthSummary,
    /// Samples delivered by shard attempts (== `n` when no shard died).
    pub completed: usize,
    /// Samples restored from shard snapshots instead of evaluated,
    /// summed over every shard attempt.
    pub resumed: usize,
    /// Samples actually evaluated, summed over every shard attempt
    /// (including attempts that later died).
    pub evaluated: usize,
    /// Shard snapshots written across all attempts.
    pub checkpoints_written: usize,
    /// Per-shard verdicts, in shard order.
    pub shards: Vec<ShardVerdict>,
}

/// One sample's merged outcome. Error strings are not kept per sample
/// — the merged `first_error` is reconstructed from the owning shard's
/// own `first_error` (valid because shard ranges are contiguous: the
/// globally lowest failing index inside a shard is also that shard's
/// lowest).
#[derive(Clone)]
struct MergedSample {
    status: SampleStatus,
    attempts: usize,
    value: Option<f64>,
}

/// Merge ledger: first-writer-wins sample slots plus per-shard
/// delivery state, all under one mutex (deliveries are rare and
/// coarse; contention is not a concern).
struct MergeState {
    slots: Vec<Option<MergedSample>>,
    delivered: Vec<bool>,
    shard_errors: Vec<Option<String>>,
    merged: usize,
    resumed: usize,
    evaluated: usize,
    checkpoints_written: usize,
}

impl MergeState {
    fn new(n_samples: usize, n_shards: usize) -> Self {
        MergeState {
            slots: vec![None; n_samples],
            delivered: vec![false; n_shards],
            shard_errors: vec![None; n_shards],
            merged: 0,
            resumed: 0,
            evaluated: 0,
            checkpoints_written: 0,
        }
    }

    /// Books the work a shard attempt did, delivered or not.
    fn account(&mut self, result: &CampaignResult) {
        self.resumed += result.resumed;
        self.evaluated += result.evaluated;
        self.checkpoints_written += result.checkpoints_written;
    }

    /// Delivers a completed shard result into the global slots,
    /// first writer wins per sample index.
    fn deliver(&mut self, shard: usize, start: usize, result: &CampaignResult) {
        let mut vi = 0;
        let mut fi = 0;
        for sh in &result.sample_health {
            let failed = fi < result.failed_indices.len() && result.failed_indices[fi] == sh.index;
            let value = if failed {
                fi += 1;
                None
            } else {
                let v = result.values[vi];
                vi += 1;
                Some(v)
            };
            let slot = &mut self.slots[start + sh.index];
            if slot.is_none() {
                *slot = Some(MergedSample {
                    status: sh.status,
                    attempts: sh.attempts,
                    value,
                });
                self.merged += 1;
                linvar_metrics::incr(Counter::ShardMergedSamples);
            } else {
                linvar_metrics::incr(Counter::ShardMergeDuplicates);
            }
        }
        if !self.delivered[shard] {
            self.delivered[shard] = true;
            self.shard_errors[shard] = result.first_error.clone();
            linvar_metrics::incr(Counter::ShardsCompleted);
        }
    }
}

/// Per-shard liveness state shared between controller, watchdog and
/// re-dispatch tasks.
struct ShardState {
    /// Milliseconds since supervisor start of the last evaluator tick
    /// (0 = never ticked).
    heartbeat: AtomicU64,
    /// Controller finished (delivered or permanently dead).
    done: AtomicBool,
    /// The watchdog already re-dispatched this shard.
    redispatched: AtomicBool,
}

impl ShardState {
    fn new() -> Self {
        ShardState {
            heartbeat: AtomicU64::new(0),
            done: AtomicBool::new(false),
            redispatched: AtomicBool::new(false),
        }
    }
}

/// What a controller reports back for its verdict.
#[derive(Clone, Default)]
struct ControllerOutcome {
    attempts: usize,
    last_err: Option<String>,
}

/// Runs a campaign split into supervised shards and merges the shard
/// results into a [`ShardedCampaignResult`] that is bitwise-identical
/// to a single-process [`run_campaign`] over the same samples — at any
/// shard count, any thread count, and under every [`ShardFault`].
///
/// `threads` is the worker count *per shard attempt* (shards run
/// concurrently; correctness never depends on the schedule).
///
/// # Errors
///
/// Only plan-level problems (`n_shards == 0`, fingerprint/sample-count
/// disagreement) error out. Shard deaths do not: a shard that exhausts
/// its retry ladder surfaces as `Failed` samples in the merged health,
/// with a [`ShardOutcome::Failed`] verdict.
pub fn run_sharded_campaign<S, E>(
    samples: &[S],
    threads: usize,
    policy: RecoveryPolicy,
    config: &ShardConfig,
    fingerprint: &CampaignFingerprint,
    f: impl Fn(&S, usize) -> Result<(f64, SampleStatus), E> + Sync,
) -> Result<ShardedCampaignResult, ShardError>
where
    S: Sync,
    E: Display,
{
    let n = samples.len();
    if fingerprint.n_samples != n {
        return Err(ShardError::Plan {
            reason: format!(
                "fingerprint says {} samples but {} were provided",
                fingerprint.n_samples, n
            ),
        });
    }
    let plan = ShardPlan::new(n, config.n_shards)?;
    let n_shards = plan.n_shards();
    let start_time = Instant::now();

    let states: Vec<ShardState> = (0..n_shards).map(|_| ShardState::new()).collect();
    let merge = Mutex::new(MergeState::new(n, n_shards));
    let outcomes: Mutex<Vec<ControllerOutcome>> =
        Mutex::new(vec![ControllerOutcome::default(); n_shards]);
    let f = &f;
    let plan_ref = &plan;
    let states_ref = &states;
    let merge_ref = &merge;

    // One supervised shard attempt. Returns Ok(()) once the shard's
    // full range has been delivered into the merge ledger.
    let run_attempt = |k: usize,
                       fault: Option<ShardFault>,
                       resume_allowed: bool,
                       with_checkpoint: bool|
     -> Result<(), String> {
        let (start, end) = plan_ref.range(k);
        let len = end - start;
        let st = &states_ref[k];
        let shard_fp = shard_fingerprint(fingerprint, k, n_shards, start, end);

        linvar_metrics::incr(Counter::ShardsLaunched);
        let _span = linvar_metrics::timer(Phase::ShardRun);

        // Fault pre-processing: kills preempt via a deterministic
        // sample budget; a stall just goes silent for a while.
        let mut kill_after = None;
        let mut suppress_checkpoint = false;
        match fault {
            Some(ShardFault::KillBeforeCheckpoint) => {
                kill_after = Some(len.div_ceil(2).max(1));
                suppress_checkpoint = true;
            }
            Some(ShardFault::KillMidWrite) => kill_after = Some(len.div_ceil(2).max(1)),
            Some(ShardFault::Stall { millis }) => {
                std::thread::sleep(Duration::from_millis(millis));
            }
            _ => {}
        }
        if fault.is_some() {
            linvar_metrics::incr(Counter::ShardFaultsInjected);
        }

        let ckpt = (with_checkpoint && !suppress_checkpoint)
            .then(|| {
                config
                    .checkpoint
                    .as_ref()
                    .map(|p| shard_checkpoint_path(p, k, n_shards))
            })
            .flatten();

        // Pre-validate a resume candidate so a corrupted snapshot costs
        // one rejection (deleted, then a from-scratch run) instead of
        // failing every attempt of the ladder.
        let mut resume = None;
        if resume_allowed {
            if let Some(p) = ckpt.as_ref().filter(|p| p.exists()) {
                match load_checkpoint(p).and_then(|ck| ck.validate(&shard_fp)) {
                    Ok(()) => resume = Some(p.clone()),
                    // A damaged or foreign snapshot costs one deletion
                    // and a from-scratch attempt, not the whole ladder.
                    Err(_) => {
                        let _ = std::fs::remove_file(p);
                    }
                }
            }
        }

        let campaign_config = CampaignConfig {
            checkpoint: ckpt.clone(),
            resume,
            checkpoint_every: config.checkpoint_every,
            deadline: None,
            sample_timeout: None,
            sample_budget: kill_after,
            cancel: None,
        };

        // Heartbeat-wrapped evaluator: every sample entry and exit
        // refreshes the shard's liveness stamp.
        let hb = &st.heartbeat;
        let tick = || hb.store(start_time.elapsed().as_millis() as u64, Ordering::Relaxed);
        let wrapped = |s: &S, attempt: usize| {
            tick();
            let r = f(s, attempt);
            tick();
            r
        };

        let result = run_campaign(
            &samples[start..end],
            threads,
            policy,
            &campaign_config,
            shard_fp,
            wrapped,
        )
        .map_err(|e| format!("shard {k} campaign error: {e}"))?;
        merge_ref.lock().expect("shard merge lock").account(&result);

        // Fault post-processing: the injected deaths happen *after* the
        // truncated run, simulating a worker crash at that point.
        match fault {
            Some(ShardFault::KillBeforeCheckpoint) => {
                return Err(format!(
                    "shard {k} injected fault: killed before checkpoint"
                ));
            }
            Some(ShardFault::KillMidWrite) => {
                if let Some(p) = ckpt.as_ref() {
                    // A crash inside the atomic write leaves a torn
                    // temp sibling; the rename target stays valid.
                    let mut tmp = p.as_os_str().to_owned();
                    tmp.push(".tmp");
                    let _ = std::fs::write(tmp, b"torn partial checkpoint write\x00garbage");
                }
                return Err(format!(
                    "shard {k} injected fault: killed mid checkpoint write"
                ));
            }
            Some(ShardFault::CorruptCheckpoint) => {
                if let Some(p) = ckpt.as_ref() {
                    corrupt_one_byte(p);
                }
                return Err(format!(
                    "shard {k} injected fault: snapshot corrupted after write"
                ));
            }
            _ => {}
        }
        if let CampaignVerdict::Truncated { remaining } = result.verdict {
            return Err(format!(
                "shard {k} truncated with {remaining} samples remaining"
            ));
        }

        let mut ledger = merge_ref.lock().expect("shard merge lock");
        ledger.deliver(k, start, &result);
        if matches!(fault, Some(ShardFault::DuplicateCompletion)) {
            ledger.deliver(k, start, &result);
        }
        Ok(())
    };
    let run_attempt = &run_attempt;

    std::thread::scope(|scope| {
        for (k, st) in states_ref.iter().enumerate() {
            let (start, end) = plan.range(k);
            let outcomes = &outcomes;
            scope.spawn(move || {
                // Controllers run inner campaign merge loops on this
                // thread; their phase metrics must be folded in before
                // the scope joins.
                let _flush = linvar_metrics::flush_on_drop();
                let mut outcome = ControllerOutcome::default();
                if start == end {
                    // Empty shard (more shards than samples): vacuously
                    // delivered.
                    merge_ref.lock().expect("shard merge lock").delivered[k] = true;
                } else {
                    let ladder = 1 + config.max_shard_retries;
                    for attempt in 0..ladder {
                        if attempt > 0 {
                            linvar_metrics::incr(Counter::ShardRetries);
                            std::thread::sleep(config.backoff(attempt));
                        }
                        let fault = if attempt == 0 {
                            config.fault_for(k)
                        } else {
                            None
                        };
                        let resume_allowed = config.resume || attempt > 0;
                        outcome.attempts = attempt + 1;
                        match run_attempt(k, fault, resume_allowed, true) {
                            Ok(()) => {
                                outcome.last_err = None;
                                break;
                            }
                            Err(e) => outcome.last_err = Some(e),
                        }
                    }
                }
                outcomes.lock().expect("shard outcomes lock")[k] = outcome;
                st.done.store(true, Ordering::Release);
            });
        }

        // Watchdog: poll heartbeats on the scope-owner thread and
        // re-dispatch stragglers (once per shard, checkpoint-less so
        // the original's snapshot writes are never raced).
        loop {
            if states.iter().all(|st| st.done.load(Ordering::Acquire)) {
                break;
            }
            if let Some(stall) = config.stall_after {
                let now = start_time.elapsed();
                let delivered: Vec<bool> =
                    merge.lock().expect("shard merge lock").delivered.clone();
                for (k, st) in states.iter().enumerate() {
                    if st.done.load(Ordering::Acquire)
                        || delivered[k]
                        || st.redispatched.load(Ordering::Relaxed)
                    {
                        continue;
                    }
                    let last = Duration::from_millis(st.heartbeat.load(Ordering::Relaxed));
                    if now.saturating_sub(last) > stall {
                        st.redispatched.store(true, Ordering::Relaxed);
                        linvar_metrics::incr(Counter::ShardsRedispatched);
                        scope.spawn(move || {
                            let _flush = linvar_metrics::flush_on_drop();
                            // Best effort: the original may still win.
                            let _ = run_attempt(k, None, false, false);
                        });
                    }
                }
            }
            std::thread::sleep(config.poll_interval);
        }
    });

    let merge = merge.into_inner().expect("supervisor joined");
    let outcomes = outcomes.into_inner().expect("supervisor joined");

    // Verdicts + dead-shard fills.
    let mut slots = merge.slots;
    let mut shards = Vec::with_capacity(n_shards);
    let mut dead_msgs: Vec<Option<String>> = vec![None; n_shards];
    for (k, oc) in outcomes.iter().enumerate() {
        let (start, end) = plan.range(k);
        let outcome = if merge.delivered[k] {
            ShardOutcome::Completed
        } else {
            let msg = oc
                .last_err
                .clone()
                .unwrap_or_else(|| "shard never completed".into());
            dead_msgs[k] = Some(format!("shard {k} dead: {msg}"));
            ShardOutcome::Failed(msg)
        };
        shards.push(ShardVerdict {
            shard: k,
            start,
            end,
            attempts: oc.attempts,
            redispatched: states[k].redispatched.load(Ordering::Relaxed),
            outcome,
        });
        if dead_msgs[k].is_some() {
            for slot in &mut slots[start..end] {
                if slot.is_none() {
                    *slot = Some(MergedSample {
                        status: SampleStatus::Failed,
                        attempts: 0,
                        value: None,
                    });
                }
            }
        }
    }

    // Final aggregation: global sample-index order, exactly the merge
    // loop of `run_campaign` (which is what makes the result bitwise-
    // identical to a single-process run). The `mc.*` counters are NOT
    // re-counted here — each shard's inner campaign already counted its
    // own merge.
    let mut values = Vec::with_capacity(n);
    let mut failed_indices = Vec::new();
    let mut first_error: Option<String> = None;
    let mut sample_health = Vec::with_capacity(n);
    let mut health = HealthSummary::default();
    for (idx, slot) in slots.iter().enumerate() {
        let s = slot
            .as_ref()
            .expect("every slot filled after dead-shard fill");
        health.count(s.status);
        sample_health.push(SampleHealth {
            index: idx,
            status: s.status,
            attempts: s.attempts,
        });
        match s.value {
            Some(v) => values.push(v),
            None => {
                if first_error.is_none() {
                    let k = plan.shard_of(idx);
                    first_error = Some(match &dead_msgs[k] {
                        Some(m) => m.clone(),
                        // Contiguous ranges: the globally lowest failing
                        // index in shard k is also shard k's first
                        // failure, so its message is exact.
                        None => merge.shard_errors[k]
                            .clone()
                            .unwrap_or_else(|| "sample failed".into()),
                    });
                }
                failed_indices.push(idx);
            }
        }
    }
    let summary = Summary::of(&values);
    Ok(ShardedCampaignResult {
        values,
        summary,
        failures: failed_indices.len(),
        failed_indices,
        first_error,
        sample_health,
        health,
        completed: merge.merged,
        resumed: merge.resumed,
        evaluated: merge.evaluated,
        checkpoints_written: merge.checkpoints_written,
        shards,
    })
}

/// Runs exactly one shard of the plan — the process-per-shard entry
/// point behind the bench bins' `--shard-index` flag. The shard's
/// snapshot is written under the configured prefix; a later
/// [`run_sharded_campaign`] with `resume: true` merges the per-shard
/// snapshots without re-evaluating anything.
///
/// # Errors
///
/// Plan problems, a missing checkpoint prefix, and the shard campaign's
/// own checkpoint errors.
pub fn run_shard_worker<S, E>(
    samples: &[S],
    threads: usize,
    policy: RecoveryPolicy,
    config: &ShardConfig,
    fingerprint: &CampaignFingerprint,
    k: usize,
    f: impl Fn(&S, usize) -> Result<(f64, SampleStatus), E> + Sync,
) -> Result<CampaignResult, ShardError>
where
    S: Sync,
    E: Display,
{
    let n = samples.len();
    if fingerprint.n_samples != n {
        return Err(ShardError::Plan {
            reason: format!(
                "fingerprint says {} samples but {} were provided",
                fingerprint.n_samples, n
            ),
        });
    }
    let plan = ShardPlan::new(n, config.n_shards)?;
    if k >= plan.n_shards() {
        return Err(ShardError::Plan {
            reason: format!(
                "shard index {k} out of range (plan has {})",
                plan.n_shards()
            ),
        });
    }
    let Some(prefix) = config.checkpoint.as_ref() else {
        return Err(ShardError::Plan {
            reason: "a shard worker requires a checkpoint prefix (its snapshot IS its output)"
                .into(),
        });
    };
    let (start, end) = plan.range(k);
    let shard_fp = shard_fingerprint(fingerprint, k, plan.n_shards(), start, end);
    let path = shard_checkpoint_path(prefix, k, plan.n_shards());
    let campaign_config = CampaignConfig {
        checkpoint: Some(path.clone()),
        resume: (config.resume && path.exists()).then(|| path.clone()),
        checkpoint_every: config.checkpoint_every,
        deadline: None,
        sample_timeout: None,
        sample_budget: None,
        cancel: None,
    };
    linvar_metrics::incr(Counter::ShardsLaunched);
    let _span = linvar_metrics::timer(Phase::ShardRun);
    let result = run_campaign(
        &samples[start..end],
        threads,
        policy,
        &campaign_config,
        shard_fp,
        f,
    )?;
    linvar_metrics::incr(Counter::ShardsCompleted);
    Ok(result)
}

/// Flips one byte in the middle of a file (fault injection helper).
fn corrupt_one_byte(path: &Path) {
    if let Ok(mut bytes) = std::fs::read(path) {
        if !bytes.is_empty() {
            let at = bytes.len() / 2;
            bytes[at] ^= 0x40;
            let _ = std::fs::write(path, bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::save_checkpoint;
    use std::sync::atomic::AtomicUsize;

    fn tmp_prefix(tag: &str) -> PathBuf {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let k = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "linvar-shard-unit-{}-{tag}-{k}",
            std::process::id()
        ))
    }

    fn cleanup(prefix: &Path, n_shards: usize) {
        for k in 0..n_shards {
            let _ = std::fs::remove_file(shard_checkpoint_path(prefix, k, n_shards));
        }
    }

    fn base_fp(n: usize) -> CampaignFingerprint {
        CampaignFingerprint {
            master_seed: 9,
            n_samples: n,
            policy: RecoveryPolicy::default(),
            model: fingerprint_words([7, 7, 7]),
        }
    }

    /// Deterministic synthetic evaluator: sample 3 fails permanently
    /// with its own message, sample 5 fails permanently with another.
    fn synth(s: &usize, _attempt: usize) -> Result<(f64, SampleStatus), String> {
        match *s {
            3 => Err("boom at three".into()),
            5 => Err("boom at five".into()),
            k => Ok(((k as f64) * 1.5 - 4.0, SampleStatus::Clean)),
        }
    }

    #[test]
    fn plan_splits_contiguously_with_remainder_up_front() {
        let plan = ShardPlan::new(10, 3).expect("plan");
        assert_eq!(plan.n_shards(), 3);
        assert_eq!(plan.range(0), (0, 4));
        assert_eq!(plan.range(1), (4, 7));
        assert_eq!(plan.range(2), (7, 10));
        assert_eq!(plan.shard_of(0), 0);
        assert_eq!(plan.shard_of(6), 1);
        assert_eq!(plan.shard_of(9), 2);
        // More shards than samples: trailing shards are empty.
        let wide = ShardPlan::new(2, 4).expect("plan");
        assert_eq!(wide.range(0), (0, 1));
        assert_eq!(wide.range(1), (1, 2));
        assert_eq!(wide.range(2), (2, 2));
        assert_eq!(wide.range(3), (2, 2));
        assert!(matches!(ShardPlan::new(5, 0), Err(ShardError::Plan { .. })));
    }

    #[test]
    fn first_error_is_lowest_global_index_not_lowest_per_shard() {
        // Two shards over 0..8: failures at global 3 (shard 0, local 3)
        // and global 5 (shard 1, local 1). A merge that picked the
        // lowest *local* index, or whichever shard delivered first,
        // could report "boom at five"; the contract is global order.
        let samples: Vec<usize> = (0..8).collect();
        let config = ShardConfig {
            n_shards: 2,
            ..ShardConfig::default()
        };
        let res = run_sharded_campaign(
            &samples,
            2,
            RecoveryPolicy::default(),
            &config,
            &base_fp(8),
            synth,
        )
        .expect("sharded run");
        assert_eq!(res.failed_indices, vec![3, 5]);
        assert_eq!(res.first_error.as_deref(), Some("boom at three"));

        // And it matches the single-process campaign verbatim.
        let single = run_campaign(
            &samples,
            2,
            RecoveryPolicy::default(),
            &CampaignConfig::default(),
            base_fp(8),
            synth,
        )
        .expect("single run");
        assert_eq!(res.first_error, single.first_error);
        assert_eq!(res.failed_indices, single.failed_indices);
    }

    #[test]
    fn shard_fingerprints_refuse_foreign_snapshots() {
        let base = base_fp(8);
        let fp0 = shard_fingerprint(&base, 0, 2, 0, 4);
        let fp1 = shard_fingerprint(&base, 1, 2, 4, 8);
        assert_ne!(fp0.model, fp1.model);
        // A snapshot written under shard 0's fingerprint must be
        // refused when validated as shard 1.
        let path = tmp_prefix("foreign").with_extension("ckpt");
        save_checkpoint(&path, &fp0, &vec![None; 4]).expect("write");
        let ck = load_checkpoint(&path).expect("load");
        assert!(ck.validate(&fp0).is_ok());
        assert!(matches!(
            ck.validate(&fp1),
            Err(CheckpointError::FingerprintMismatch { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_and_oversharded_campaigns_merge_cleanly() {
        let samples: Vec<usize> = (0..2).collect();
        let config = ShardConfig {
            n_shards: 4,
            ..ShardConfig::default()
        };
        let res = run_sharded_campaign(
            &samples,
            1,
            RecoveryPolicy::default(),
            &config,
            &base_fp(2),
            synth,
        )
        .expect("sharded run");
        assert_eq!(res.values.len(), 2);
        assert_eq!(res.shards.len(), 4);
        assert!(res
            .shards
            .iter()
            .all(|v| v.outcome == ShardOutcome::Completed));
    }

    #[test]
    fn exhausted_retry_ladder_surfaces_as_failed_samples() {
        // KillBeforeCheckpoint with a zero-retry ladder: shard 1 dies
        // permanently; its samples must enter the merge as Failed with
        // a "shard dead" diagnostic instead of erroring the whole run.
        let samples: Vec<usize> = (0..8).map(|k| k + 100).collect();
        let config = ShardConfig {
            n_shards: 2,
            max_shard_retries: 0,
            stall_after: None,
            faults: vec![(1, ShardFault::KillBeforeCheckpoint)],
            ..ShardConfig::default()
        };
        let res = run_sharded_campaign(
            &samples,
            1,
            RecoveryPolicy::default(),
            &config,
            &base_fp(8),
            synth,
        )
        .expect("sharded run");
        assert_eq!(res.health.n_failed, 4);
        assert_eq!(res.failed_indices, vec![4, 5, 6, 7]);
        let msg = res.first_error.expect("dead-shard diagnostic");
        assert!(msg.contains("shard 1 dead"), "{msg}");
        assert!(matches!(res.shards[1].outcome, ShardOutcome::Failed(_)));
        assert_eq!(res.shards[1].attempts, 1);
        assert_eq!(res.shards[0].outcome, ShardOutcome::Completed);
    }

    #[test]
    fn worker_requires_checkpoint_prefix_and_valid_index() {
        let samples: Vec<usize> = (0..4).collect();
        let config = ShardConfig {
            n_shards: 2,
            ..ShardConfig::default()
        };
        assert!(matches!(
            run_shard_worker(
                &samples,
                1,
                RecoveryPolicy::default(),
                &config,
                &base_fp(4),
                0,
                synth,
            ),
            Err(ShardError::Plan { .. })
        ));
        let with_ckpt = ShardConfig {
            checkpoint: Some(tmp_prefix("worker")),
            ..config
        };
        assert!(matches!(
            run_shard_worker(
                &samples,
                1,
                RecoveryPolicy::default(),
                &with_ckpt,
                &base_fp(4),
                5,
                synth,
            ),
            Err(ShardError::Plan { .. })
        ));
        let prefix = with_ckpt.checkpoint.clone().expect("prefix");
        let res = run_shard_worker(
            &samples,
            1,
            RecoveryPolicy::default(),
            &with_ckpt,
            &base_fp(4),
            1,
            synth,
        )
        .expect("worker run");
        assert_eq!(res.values.len(), 1); // local samples 2,3 — 3 fails
        assert!(shard_checkpoint_path(&prefix, 1, 2).exists());
        cleanup(&prefix, 2);
    }
}
