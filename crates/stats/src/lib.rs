//! Statistical methods of the framework (paper §4.1).
//!
//! * [`sampling`] — seeded sampling: independent normal/uniform sources and
//!   **Latin Hypercube Sampling** (the paper's Example 2 uses 100 LHS
//!   samples);
//! * [`pca`] — Principal Component Analysis of parameter covariance: the
//!   dimensionality reduction the paper recommends before sampling
//!   (§4.1.1), including a synthetic correlated-device-parameter demo that
//!   reproduces the "60 BSIM3 parameters → ~10 factors" observation of the
//!   paper's reference \[11\];
//! * [`montecarlo`] — the generic Monte-Carlo driver (serial and
//!   deterministic parallel — see DESIGN.md, "Parallel execution &
//!   determinism contract") with summary statistics, standard-error
//!   estimates and per-sample failure diagnostics;
//! * [`campaign`] — the durable campaign runner: atomic checksummed
//!   checkpoints, fingerprint-validated resume, deadline budgets and a
//!   cooperative per-sample watchdog (see DESIGN.md, "Durable campaigns:
//!   checkpoint format & resume invariants");
//! * [`shard`] — the sharded campaign supervisor: fingerprinted per-shard
//!   checkpoints, heartbeats with a straggler-re-dispatching watchdog, a
//!   retry ladder with capped exponential backoff, and a first-writer-wins
//!   merge that is bitwise-identical to a single-process run (see
//!   DESIGN.md, "Sharding protocol & merge invariants");
//! * [`envknob`] — hardened environment-knob parsing (trim, validate,
//!   warn-and-fall-back on anything malformed) shared by
//!   [`montecarlo::resolve_threads`] and the campaign service's knobs;
//! * [`spectral`] — the stochastic-spectral engine family: Hermite-basis
//!   generalized polynomial chaos with tensor/Smolyak collocation and
//!   stochastic-testing node selection, riding the same recovery ladder,
//!   parallel driver and durable-campaign stack as Monte Carlo (see
//!   DESIGN.md, "Stochastic spectral engines: basis, node selection &
//!   determinism contract");
//! * [`gradient`] — Gradient Analysis (§4.1.3, eq. 24): σ of a performance
//!   from first-order sensitivities of uncorrelated sources;
//! * [`histogram`] — fixed-bin histograms with a text renderer for the
//!   paper's Figures 6 and 7.

pub mod campaign;
pub mod envknob;
pub mod gradient;
pub mod histogram;
pub mod montecarlo;
pub mod pca;
pub mod sampling;
pub mod shard;
pub mod spectral;
pub mod summary;
pub mod timing_yield;

pub use campaign::{
    fingerprint_str, fingerprint_words, fnv1a64, load_checkpoint, reap_orphan_tmp, reap_tmp_in_dir,
    run_campaign, save_checkpoint, AnalysisKind, CampaignConfig, CampaignFingerprint,
    CampaignResult, CampaignVerdict, Checkpoint, CheckpointError, SampleRecord,
};
pub use envknob::{env_knob_str, env_knob_usize, EnvKnob};
pub use gradient::central_difference_sensitivities;
pub use gradient::gradient_std;
pub use histogram::{Histogram, HistogramError};
pub use montecarlo::{
    monte_carlo, monte_carlo_par, monte_carlo_par_with_policy, monte_carlo_with_policy,
    resolve_threads, HealthSummary, MonteCarloResult, RecoveryPolicy, SampleHealth, SampleStatus,
};
pub use pca::demo_correlated_device_parameters;
pub use pca::{Pca, PcaModel};
pub use sampling::{
    latin_hypercube, latin_hypercube_streamed, lhs_normal, lhs_normal_streamed, lhs_uniform,
    normal_samples, rng_from_seed, sobol_normal_streamed, sobol_point, uniform_samples, SampleRng,
    SampleSource, SeedStream, SOBOL_MAX_DIMS,
};
pub use shard::{
    run_shard_worker, run_sharded_campaign, shard_checkpoint_path, shard_fingerprint, ShardConfig,
    ShardError, ShardFault, ShardOutcome, ShardPlan, ShardVerdict, ShardedCampaignResult,
};
pub use spectral::{
    basis_eval, gauss_hermite, hermite_prob, multi_indices, run_spectral, run_spectral_campaign,
    GridKind, SpectralCampaignResult, SpectralConfig, SpectralError, SpectralPlan, SpectralResult,
    SpectralRunError, QUANTILE_PROBS, SURROGATE_SAMPLES,
};
pub use summary::Summary;
pub use timing_yield::{empirical_yield, normal_cdf, normal_yield, period_for_yield};
