//! The Monte-Carlo driver (paper §4.1.2).

use crate::summary::Summary;

/// Result of a Monte-Carlo analysis.
#[derive(Debug, Clone)]
pub struct MonteCarloResult {
    /// Performance value per sample (failed evaluations are skipped).
    pub values: Vec<f64>,
    /// Summary statistics of the values.
    pub summary: Summary,
    /// Number of samples whose evaluation failed.
    pub failures: usize,
}

/// Evaluates `f` on every sample and summarizes the results.
///
/// Sample evaluation returns `Result`; failed samples (for example an SC
/// divergence on a pathological corner) are counted, not fatal — a
/// statistical analysis should report partial results with diagnostics
/// rather than lose an hour of work to one corner.
pub fn monte_carlo<S, E>(
    samples: &[S],
    mut f: impl FnMut(&S) -> Result<f64, E>,
) -> MonteCarloResult {
    let mut values = Vec::with_capacity(samples.len());
    let mut failures = 0usize;
    for s in samples {
        match f(s) {
            Ok(v) => values.push(v),
            Err(_) => failures += 1,
        }
    }
    let summary = Summary::of(&values);
    MonteCarloResult {
        values,
        summary,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::{lhs_normal, rng_from_seed};

    #[test]
    fn linear_function_of_normals() {
        // f(w) = 3 + 2·w0 − w1 with unit normals: mean 3, σ = √5.
        let mut rng = rng_from_seed(77);
        let samples = lhs_normal(&mut rng, 2000, 2, 1.0);
        let res = monte_carlo::<_, std::convert::Infallible>(&samples, |w| {
            Ok(3.0 + 2.0 * w[0] - w[1])
        });
        assert_eq!(res.failures, 0);
        assert!((res.summary.mean - 3.0).abs() < 0.05);
        assert!((res.summary.std - 5.0_f64.sqrt()).abs() < 0.05);
    }

    #[test]
    fn failures_are_counted_not_fatal() {
        let samples: Vec<f64> = (0..10).map(|k| k as f64).collect();
        let res = monte_carlo(&samples, |&x| {
            if x < 3.0 {
                Err("corner failed")
            } else {
                Ok(x)
            }
        });
        assert_eq!(res.failures, 3);
        assert_eq!(res.values.len(), 7);
        assert_eq!(res.summary.n, 7);
    }

    #[test]
    fn empty_sample_set() {
        let res = monte_carlo::<f64, ()>(&[], |_| Ok(0.0));
        assert_eq!(res.summary.n, 0);
        assert_eq!(res.failures, 0);
    }
}
