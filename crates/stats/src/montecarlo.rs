//! The Monte-Carlo driver (paper §4.1.2): serial and deterministic
//! parallel execution.
//!
//! The parallel driver [`monte_carlo_par`] shards samples across scoped
//! worker threads in fixed-size chunks handed out through an atomic
//! cursor, evaluates each sample independently, and merges per-worker
//! results back **in sample-index order**. Because every sample's result
//! is a pure function of the sample itself (the evaluator must be
//! deterministic — enforced by the `Fn` bound, no shared mutable state),
//! the merged output is bitwise-identical at any thread count and equal
//! to the serial driver's output. See DESIGN.md, "Parallel execution &
//! determinism contract".
//!
//! Each worker thread owns a thread-local scratch **workspace**
//! (`linvar_numeric::with_workspace`) that the sample hot path draws its
//! LU/eigen/matrix temporaries from, so steady-state evaluation allocates
//! nothing per sample. The pool only recycles storage — every buffer is
//! zero-filled (or fully overwritten) on take, so pooling cannot leak one
//! sample's values into the next and the determinism contract above is
//! unaffected. See DESIGN.md, "Hot path & workspace model".

use crate::summary::Summary;
use std::fmt::Display;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How a sample was ultimately served. Ordered worst-last so
/// [`Ord::max`] implements "floor the status by how hard we had to try".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SampleStatus {
    /// First attempt, fast path, no assistance.
    Clean,
    /// A retry rung served the sample at full fidelity.
    Recovered,
    /// A fallback rung served the sample at reduced fidelity.
    Degraded,
    /// The sample was served, but an attempt overran the campaign
    /// watchdog's soft per-sample timeout (see
    /// [`crate::campaign::CampaignConfig::sample_timeout`]).
    TimedOut,
    /// Every attempt in the budget failed.
    Failed,
}

/// Per-sample recovery record, in sample-index order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleHealth {
    /// Sample index.
    pub index: usize,
    /// Final status of the sample.
    pub status: SampleStatus,
    /// Attempts spent (1 = clean first try).
    pub attempts: usize,
}

/// Run-level health summary: how many samples landed in each status.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthSummary {
    /// Samples served on the first attempt.
    pub n_clean: usize,
    /// Samples served by a retry.
    pub n_recovered: usize,
    /// Samples served by a fallback.
    pub n_degraded: usize,
    /// Samples that overran the per-sample watchdog's soft timeout.
    pub n_timed_out: usize,
    /// Samples lost after exhausting the attempt budget.
    pub n_failed: usize,
}

impl HealthSummary {
    pub(crate) fn count(&mut self, status: SampleStatus) {
        match status {
            SampleStatus::Clean => self.n_clean += 1,
            SampleStatus::Recovered => self.n_recovered += 1,
            SampleStatus::Degraded => self.n_degraded += 1,
            SampleStatus::TimedOut => self.n_timed_out += 1,
            SampleStatus::Failed => self.n_failed += 1,
        }
    }

    /// Total samples accounted for.
    pub fn total(&self) -> usize {
        self.n_clean + self.n_recovered + self.n_degraded + self.n_timed_out + self.n_failed
    }

    /// `true` when every sample was served on its first attempt.
    pub fn all_clean(&self) -> bool {
        self.n_recovered == 0 && self.n_degraded == 0 && self.n_timed_out == 0 && self.n_failed == 0
    }
}

/// How the Monte-Carlo driver spends effort on failing samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Retry attempts after the fast path (full-fidelity rungs).
    pub max_retries: usize,
    /// Grant one final reduced-fidelity fallback attempt.
    pub allow_fallback: bool,
    /// Abort the run at the first sample that exhausts its budget
    /// (deterministically: the run is truncated at the smallest failing
    /// sample index, regardless of thread count). `false` quarantines
    /// failures and keeps going.
    pub fail_fast: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 2,
            allow_fallback: true,
            fail_fast: false,
        }
    }
}

impl RecoveryPolicy {
    /// No retries, no fallback, stop at the first failure.
    pub fn strict() -> Self {
        RecoveryPolicy {
            max_retries: 0,
            allow_fallback: false,
            fail_fast: true,
        }
    }

    /// Total attempts a sample may consume: the fast path, the retries,
    /// and the optional fallback.
    pub fn attempt_budget(&self) -> usize {
        1 + self.max_retries + usize::from(self.allow_fallback)
    }

    /// Is `attempt` (0-based) the reduced-fidelity fallback attempt?
    pub fn is_fallback_attempt(&self, attempt: usize) -> bool {
        self.allow_fallback && attempt + 1 == self.attempt_budget()
    }
}

/// Result of a Monte-Carlo analysis.
#[derive(Debug, Clone)]
pub struct MonteCarloResult {
    /// Performance value per successful sample, in sample-index order
    /// (failed evaluations are skipped).
    pub values: Vec<f64>,
    /// Summary statistics of the values.
    pub summary: Summary,
    /// Number of samples whose evaluation failed.
    pub failures: usize,
    /// Indices of the failed samples, ascending.
    pub failed_indices: Vec<usize>,
    /// Diagnostic of the failure with the smallest sample index (panics in
    /// the evaluator are captured as `"panic: …"`). `None` when every
    /// sample succeeded.
    pub first_error: Option<String>,
    /// Per-sample status and attempt count, in sample-index order. The
    /// plain drivers report every successful sample as `Clean` with one
    /// attempt; the policy drivers record the real recovery trail.
    pub sample_health: Vec<SampleHealth>,
    /// Run-level tally of `sample_health`.
    pub health: HealthSummary,
    /// Index of the failing sample a fail-fast policy stopped at; samples
    /// beyond it were not evaluated. `None` for complete runs.
    pub truncated_at: Option<usize>,
}

/// One sample's final outcome, before aggregation.
struct Outcome {
    res: Result<f64, String>,
    status: SampleStatus,
    attempts: usize,
}

impl MonteCarloResult {
    fn from_ordered(outcomes: Vec<Result<f64, String>>) -> MonteCarloResult {
        let outcomes = outcomes
            .into_iter()
            .map(|res| Outcome {
                status: if res.is_ok() {
                    SampleStatus::Clean
                } else {
                    SampleStatus::Failed
                },
                attempts: 1,
                res,
            })
            .collect();
        MonteCarloResult::from_outcomes(outcomes, None)
    }

    fn from_outcomes(outcomes: Vec<Outcome>, truncated_at: Option<usize>) -> MonteCarloResult {
        let mut values = Vec::with_capacity(outcomes.len());
        let mut failed_indices = Vec::new();
        let mut first_error = None;
        let mut sample_health = Vec::with_capacity(outcomes.len());
        let mut health = HealthSummary::default();
        // Metrics are recorded at this merge point (not in the workers), so
        // the counts cover exactly the samples that made it into the
        // deterministic merged output — scheduling-dependent extra work
        // discarded by a fail-fast cancellation never skews them.
        for (idx, outcome) in outcomes.into_iter().enumerate() {
            linvar_metrics::incr(linvar_metrics::Counter::McSamplesCompleted);
            if outcome.res.is_err() {
                linvar_metrics::incr(linvar_metrics::Counter::McSamplesFailed);
            }
            linvar_metrics::count(
                linvar_metrics::Counter::McSampleRetries,
                outcome.attempts.saturating_sub(1) as u64,
            );
            health.count(outcome.status);
            sample_health.push(SampleHealth {
                index: idx,
                status: outcome.status,
                attempts: outcome.attempts,
            });
            match outcome.res {
                Ok(v) => values.push(v),
                Err(msg) => {
                    if first_error.is_none() {
                        first_error = Some(msg);
                    }
                    failed_indices.push(idx);
                }
            }
        }
        let summary = Summary::of(&values);
        MonteCarloResult {
            values,
            summary,
            failures: failed_indices.len(),
            failed_indices,
            first_error,
            sample_health,
            health,
            truncated_at,
        }
    }
}

/// Evaluates `f` on every sample and summarizes the results.
///
/// Sample evaluation returns `Result`; failed samples (for example an SC
/// divergence on a pathological corner) are counted and recorded with
/// their index and first diagnostic, not fatal — a statistical analysis
/// should report partial results with diagnostics rather than lose an
/// hour of work to one corner.
pub fn monte_carlo<S, E: Display>(
    samples: &[S],
    mut f: impl FnMut(&S) -> Result<f64, E>,
) -> MonteCarloResult {
    let outcomes = samples
        .iter()
        .map(|s| f(s).map_err(|e| e.to_string()))
        .collect();
    MonteCarloResult::from_ordered(outcomes)
}

/// Resolves the worker count for the parallel driver.
///
/// Precedence: an explicit `requested > 0` wins; otherwise the
/// `LINVAR_THREADS` environment variable (a positive integer); otherwise
/// the machine's available parallelism.
///
/// An invalid `LINVAR_THREADS` value — `0`, negative, non-numeric, or
/// non-unicode — is **not** silently ignored: a one-line warning is
/// printed to stderr and the fallback (available cores) is used, so a
/// typo in a job script degrades loudly instead of mysteriously changing
/// the worker count.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Some(n) = crate::env_knob_usize("LINVAR_THREADS", "available cores").valid() {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Number of samples each worker claims per trip to the shared cursor.
/// Small enough to balance load on heterogeneous per-sample cost, large
/// enough that cursor contention is negligible.
const CHUNK: usize = 4;

/// Parallel Monte-Carlo: evaluates `f` on every sample across `threads`
/// scoped workers and summarizes the results.
///
/// **Determinism contract:** the output — `values` order, summary,
/// failure bookkeeping — is bitwise-identical to [`monte_carlo`] with the
/// same deterministic evaluator, at *any* thread count. Workers claim
/// fixed-size chunks of sample indices from an atomic cursor (so the
/// assignment of samples to workers varies run to run), but every result
/// is keyed by sample index and merged in index order, which erases the
/// scheduling from the output.
///
/// A panicking evaluator does not poison the run: the panic is caught per
/// sample and recorded as a counted failure with a `"panic: …"`
/// diagnostic.
///
/// `threads` = 0 resolves via [`resolve_threads`] (`LINVAR_THREADS`, then
/// available parallelism).
pub fn monte_carlo_par<S, E>(
    samples: &[S],
    threads: usize,
    f: impl Fn(&S) -> Result<f64, E> + Sync,
) -> MonteCarloResult
where
    S: Sync,
    E: Display,
{
    let n = samples.len();
    let threads = resolve_threads(threads).min(n.max(1));
    if threads <= 1 || n <= 1 {
        // One worker degenerates to the serial driver (same code path the
        // contract is stated against), minus thread-spawn overhead.
        return monte_carlo(samples, |s| contained(&f, s));
    }

    let cursor = AtomicUsize::new(0);
    // Each worker appends (index, outcome) pairs to its own slot; the
    // Mutex is locked once per worker at the very end, not per sample.
    let collected: Mutex<Vec<(usize, Result<f64, String>)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local: Vec<(usize, Result<f64, String>)> = Vec::new();
                loop {
                    let start = cursor.fetch_add(CHUNK, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + CHUNK).min(n);
                    for (idx, s) in samples[start..end].iter().enumerate() {
                        local.push((start + idx, contained(&f, s)));
                    }
                }
                collected
                    .lock()
                    .expect("no worker holds this lock across a panic")
                    .append(&mut local);
                // Merge this worker's solver-phase metrics before the scope
                // joins (TLS teardown is not ordered before the join).
                linvar_metrics::flush_local();
            });
        }
    });

    let mut outcomes: Vec<Option<Result<f64, String>>> = (0..n).map(|_| None).collect();
    for (idx, outcome) in collected.into_inner().expect("workers joined") {
        outcomes[idx] = Some(outcome);
    }
    MonteCarloResult::from_ordered(
        outcomes
            .into_iter()
            .map(|o| o.expect("every index evaluated exactly once"))
            .collect(),
    )
}

/// Runs one evaluation with panic containment: a panicking evaluator
/// surfaces as an `Err` diagnostic instead of unwinding across the worker.
fn contained<S, E: Display>(
    f: &(impl Fn(&S) -> Result<f64, E> + Sync),
    s: &S,
) -> Result<f64, String> {
    match catch_unwind(AssertUnwindSafe(|| f(s).map_err(|e| e.to_string()))) {
        Ok(res) => res,
        Err(payload) => Err(format!("panic: {}", panic_message(payload.as_ref()))),
    }
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "unknown panic payload".to_string())
}

/// Runs one sample under a [`RecoveryPolicy`]: walks the attempt budget,
/// containing panics per attempt, and floors the reported status by the
/// effort spent (retry ⇒ at least `Recovered`, fallback attempt ⇒ at
/// least `Degraded`).
fn evaluate_with_policy<S, E: Display>(
    f: &(impl Fn(&S, usize) -> Result<(f64, SampleStatus), E> + Sync),
    s: &S,
    policy: RecoveryPolicy,
) -> Outcome {
    let budget = policy.attempt_budget();
    let mut last: Option<String> = None;
    for attempt in 0..budget {
        let res = match catch_unwind(AssertUnwindSafe(|| {
            f(s, attempt).map_err(|e| e.to_string())
        })) {
            Ok(res) => res,
            Err(payload) => Err(format!("panic: {}", panic_message(payload.as_ref()))),
        };
        match res {
            Ok((v, status)) => {
                let floor = if policy.is_fallback_attempt(attempt) {
                    SampleStatus::Degraded
                } else if attempt > 0 {
                    SampleStatus::Recovered
                } else {
                    SampleStatus::Clean
                };
                return Outcome {
                    res: Ok(v),
                    status: status.max(floor),
                    attempts: attempt + 1,
                };
            }
            Err(msg) => last = Some(msg),
        }
    }
    Outcome {
        res: Err(last.unwrap_or_else(|| "empty attempt budget".to_string())),
        status: SampleStatus::Failed,
        attempts: budget,
    }
}

/// Serial Monte-Carlo under a [`RecoveryPolicy`].
///
/// The evaluator receives `(sample, attempt)` — attempt 0 is the fast
/// path, attempts `1..=max_retries` are recovery rungs, and (when
/// `allow_fallback`) the final attempt is the reduced-fidelity fallback.
/// It reports the status it *earned*; the driver floors it by the attempt
/// number, so an evaluator that ignores `attempt` still yields honest
/// health bookkeeping.
///
/// With `fail_fast`, the run stops at the first sample that exhausts its
/// budget; [`MonteCarloResult::truncated_at`] records where.
pub fn monte_carlo_with_policy<S, E: Display>(
    samples: &[S],
    policy: RecoveryPolicy,
    f: impl Fn(&S, usize) -> Result<(f64, SampleStatus), E> + Sync,
) -> MonteCarloResult {
    let mut outcomes = Vec::with_capacity(samples.len());
    let mut truncated_at = None;
    for (idx, s) in samples.iter().enumerate() {
        let outcome = evaluate_with_policy(&f, s, policy);
        let failed = outcome.status == SampleStatus::Failed;
        outcomes.push(outcome);
        if failed && policy.fail_fast {
            truncated_at = Some(idx);
            break;
        }
    }
    MonteCarloResult::from_outcomes(outcomes, truncated_at)
}

/// Parallel Monte-Carlo under a [`RecoveryPolicy`].
///
/// Same determinism contract as [`monte_carlo_par`]: bitwise-identical to
/// [`monte_carlo_with_policy`] at any thread count. `fail_fast` is honored
/// deterministically — workers publish the smallest failing index through
/// an atomic and stop claiming work beyond it, and the merged run is
/// truncated at that index exactly as the serial driver would have
/// stopped. Which *extra* samples the workers happened to evaluate before
/// the cancellation propagated is scheduling-dependent, but those samples
/// are dropped from the output, so the result is not.
pub fn monte_carlo_par_with_policy<S, E>(
    samples: &[S],
    threads: usize,
    policy: RecoveryPolicy,
    f: impl Fn(&S, usize) -> Result<(f64, SampleStatus), E> + Sync,
) -> MonteCarloResult
where
    S: Sync,
    E: Display,
{
    let n = samples.len();
    let threads = resolve_threads(threads).min(n.max(1));
    if threads <= 1 || n <= 1 {
        return monte_carlo_with_policy(samples, policy, f);
    }

    let cursor = AtomicUsize::new(0);
    // Smallest failing sample index seen so far; only ever decreases
    // (fetch_min), so a stale read can only delay cancellation, never
    // cancel work that the serial driver would have performed.
    let min_failed = AtomicUsize::new(usize::MAX);
    let collected: Mutex<Vec<(usize, Outcome)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local: Vec<(usize, Outcome)> = Vec::new();
                loop {
                    let start = cursor.fetch_add(CHUNK, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    if policy.fail_fast && min_failed.load(Ordering::Relaxed) < start {
                        // Everything from here on is beyond the truncation
                        // point; the cursor only grows, so stop entirely.
                        break;
                    }
                    let end = (start + CHUNK).min(n);
                    for (off, s) in samples[start..end].iter().enumerate() {
                        let idx = start + off;
                        if policy.fail_fast && idx > min_failed.load(Ordering::Relaxed) {
                            continue;
                        }
                        let outcome = evaluate_with_policy(&f, s, policy);
                        if policy.fail_fast && outcome.status == SampleStatus::Failed {
                            min_failed.fetch_min(idx, Ordering::Relaxed);
                        }
                        local.push((idx, outcome));
                    }
                }
                collected
                    .lock()
                    .expect("no worker holds this lock across a panic")
                    .append(&mut local);
                linvar_metrics::flush_local();
            });
        }
    });

    let mut slots: Vec<Option<Outcome>> = (0..n).map(|_| None).collect();
    for (idx, outcome) in collected.into_inner().expect("workers joined") {
        slots[idx] = Some(outcome);
    }
    // Deterministic truncation: cut at the smallest failing index, exactly
    // where the serial driver stops. Indices at or below the cut are
    // guaranteed evaluated (cancellation only skips indices strictly
    // beyond an observed — hence ≥ final — minimum).
    let truncated_at = if policy.fail_fast {
        slots
            .iter()
            .position(|o| matches!(o, Some(out) if out.status == SampleStatus::Failed))
    } else {
        None
    };
    let keep = truncated_at.map_or(n, |cut| cut + 1);
    let outcomes = slots
        .into_iter()
        .take(keep)
        .map(|o| o.expect("every index up to the truncation point evaluated"))
        .collect();
    MonteCarloResult::from_outcomes(outcomes, truncated_at)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::{lhs_normal, rng_from_seed};

    #[test]
    fn linear_function_of_normals() {
        // f(w) = 3 + 2·w0 − w1 with unit normals: mean 3, σ = √5.
        let mut rng = rng_from_seed(77);
        let samples = lhs_normal(&mut rng, 2000, 2, 1.0);
        let res =
            monte_carlo::<_, std::convert::Infallible>(&samples, |w| Ok(3.0 + 2.0 * w[0] - w[1]));
        assert_eq!(res.failures, 0);
        assert!((res.summary.mean - 3.0).abs() < 0.05);
        assert!((res.summary.std - 5.0_f64.sqrt()).abs() < 0.05);
    }

    #[test]
    fn failures_are_counted_not_fatal() {
        let samples: Vec<f64> = (0..10).map(|k| k as f64).collect();
        let res = monte_carlo(
            &samples,
            |&x| {
                if x < 3.0 {
                    Err("corner failed")
                } else {
                    Ok(x)
                }
            },
        );
        assert_eq!(res.failures, 3);
        assert_eq!(res.values.len(), 7);
        assert_eq!(res.summary.n, 7);
        assert_eq!(res.failed_indices, vec![0, 1, 2]);
        assert_eq!(res.first_error.as_deref(), Some("corner failed"));
    }

    #[test]
    fn empty_sample_set() {
        let res = monte_carlo::<f64, &str>(&[], |_| Ok(0.0));
        assert_eq!(res.summary.n, 0);
        assert_eq!(res.failures, 0);
        assert!(res.first_error.is_none());
        let res = monte_carlo_par::<f64, &str>(&[], 4, |_| Ok(0.0));
        assert_eq!(res.summary.n, 0);
        assert_eq!(res.failures, 0);
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let mut rng = rng_from_seed(13);
        let samples = lhs_normal(&mut rng, 500, 3, 1.0);
        let f = |w: &Vec<f64>| -> Result<f64, &'static str> {
            if w[0] > 1.8 {
                Err("tail corner rejected")
            } else {
                Ok((w[0] * 1.5 - w[1]).exp() + w[2])
            }
        };
        let serial = monte_carlo(&samples, f);
        for threads in [1, 2, 3, 8] {
            let par = monte_carlo_par(&samples, threads, f);
            assert_eq!(par.values, serial.values, "values at {threads} threads");
            assert_eq!(par.failed_indices, serial.failed_indices);
            assert_eq!(par.first_error, serial.first_error);
            assert_eq!(par.summary.mean.to_bits(), serial.summary.mean.to_bits());
            assert_eq!(par.summary.std.to_bits(), serial.summary.std.to_bits());
        }
    }

    #[test]
    fn parallel_contains_panics_as_failures() {
        let samples: Vec<usize> = (0..40).collect();
        let res = monte_carlo_par(&samples, 4, |&k| -> Result<f64, &str> {
            if k == 17 {
                panic!("evaluator exploded on sample {k}");
            }
            Ok(k as f64)
        });
        assert_eq!(res.failures, 1);
        assert_eq!(res.failed_indices, vec![17]);
        assert_eq!(res.values.len(), 39);
        let msg = res.first_error.expect("diagnostic recorded");
        assert!(msg.contains("panic"), "diagnostic {msg:?}");
        assert!(msg.contains("17"), "diagnostic {msg:?}");
    }

    #[test]
    fn first_error_is_lowest_index_regardless_of_schedule() {
        let samples: Vec<usize> = (0..64).collect();
        for threads in [2, 5, 8] {
            let res = monte_carlo_par(&samples, threads, |&k| {
                if k % 10 == 3 {
                    Err(format!("failed at {k}"))
                } else {
                    Ok(k as f64)
                }
            });
            assert_eq!(res.first_error.as_deref(), Some("failed at 3"));
            assert_eq!(res.failed_indices, vec![3, 13, 23, 33, 43, 53, 63]);
        }
    }

    #[test]
    fn policy_floors_statuses_by_attempt() {
        // Samples: value k. k % 4 == 1 fails once then recovers; k % 4 == 2
        // fails until the fallback attempt; k % 4 == 3 always fails.
        let samples: Vec<usize> = (0..16).collect();
        let policy = RecoveryPolicy {
            max_retries: 1,
            allow_fallback: true,
            fail_fast: false,
        };
        assert_eq!(policy.attempt_budget(), 3);
        let f = |&k: &usize, attempt: usize| -> Result<(f64, SampleStatus), String> {
            match k % 4 {
                0 => Ok((k as f64, SampleStatus::Clean)),
                1 if attempt >= 1 => Ok((k as f64, SampleStatus::Clean)),
                2 if attempt >= 2 => Ok((k as f64, SampleStatus::Clean)),
                _ => Err(format!("sample {k} attempt {attempt}")),
            }
        };
        let res = monte_carlo_with_policy(&samples, policy, f);
        assert_eq!(res.health.n_clean, 4);
        assert_eq!(res.health.n_recovered, 4);
        assert_eq!(res.health.n_degraded, 4);
        assert_eq!(res.health.n_failed, 4);
        assert_eq!(res.failures, 4);
        // Per-sample attempts: clean 1, recovered 2, degraded 3, failed 3.
        assert_eq!(res.sample_health[0].attempts, 1);
        assert_eq!(res.sample_health[1].status, SampleStatus::Recovered);
        assert_eq!(res.sample_health[1].attempts, 2);
        assert_eq!(res.sample_health[2].status, SampleStatus::Degraded);
        assert_eq!(res.sample_health[2].attempts, 3);
        assert_eq!(res.sample_health[3].status, SampleStatus::Failed);
        assert_eq!(res.sample_health[3].attempts, 3);
        assert!(res.truncated_at.is_none());
    }

    #[test]
    fn policy_parallel_matches_serial_bitwise() {
        // Injected-failure schedule: deterministic function of (index,
        // attempt). The merged result must be bitwise identical at 1, 2
        // and 8 threads, including the health bookkeeping.
        let mut rng = rng_from_seed(99);
        let samples = lhs_normal(&mut rng, 300, 2, 1.0);
        let policy = RecoveryPolicy::default();
        let f = |w: &Vec<f64>, attempt: usize| -> Result<(f64, SampleStatus), String> {
            // Tail corners need one retry; extreme corners need fallback.
            let severity = w[0].abs() + w[1].abs();
            let needed = if severity > 3.5 {
                policy.attempt_budget() - 1
            } else if severity > 2.5 {
                1
            } else {
                0
            };
            if attempt < needed {
                Err(format!("needs attempt {needed}"))
            } else {
                Ok(((w[0] - 0.3 * w[1]).exp(), SampleStatus::Clean))
            }
        };
        let serial = monte_carlo_with_policy(&samples, policy, f);
        assert!(serial.health.n_recovered > 0, "schedule exercises retries");
        for threads in [1, 2, 8] {
            let par = monte_carlo_par_with_policy(&samples, threads, policy, f);
            assert_eq!(par.values, serial.values, "values at {threads} threads");
            assert_eq!(par.sample_health, serial.sample_health);
            assert_eq!(par.health, serial.health);
            assert_eq!(par.summary.mean.to_bits(), serial.summary.mean.to_bits());
            assert_eq!(par.truncated_at, serial.truncated_at);
        }
    }

    #[test]
    fn fail_fast_truncates_deterministically() {
        let samples: Vec<usize> = (0..200).collect();
        let policy = RecoveryPolicy {
            max_retries: 0,
            allow_fallback: false,
            fail_fast: true,
        };
        let f = |&k: &usize, _attempt: usize| -> Result<(f64, SampleStatus), String> {
            if k == 73 || k == 150 {
                Err(format!("hard failure at {k}"))
            } else {
                Ok((k as f64, SampleStatus::Clean))
            }
        };
        let serial = monte_carlo_with_policy(&samples, policy, f);
        assert_eq!(serial.truncated_at, Some(73));
        assert_eq!(serial.values.len(), 73);
        assert_eq!(serial.failed_indices, vec![73]);
        for threads in [1, 2, 8] {
            let par = monte_carlo_par_with_policy(&samples, threads, policy, f);
            assert_eq!(par.truncated_at, Some(73), "at {threads} threads");
            assert_eq!(par.values, serial.values);
            assert_eq!(par.failed_indices, serial.failed_indices);
            assert_eq!(par.sample_health, serial.sample_health);
            assert_eq!(par.first_error, serial.first_error);
        }
    }

    #[test]
    fn panicking_attempts_consume_budget_then_quarantine() {
        let samples: Vec<usize> = (0..20).collect();
        let policy = RecoveryPolicy {
            max_retries: 1,
            allow_fallback: true,
            fail_fast: false,
        };
        let res = monte_carlo_par_with_policy(
            &samples,
            4,
            policy,
            |&k, attempt| -> Result<(f64, SampleStatus), String> {
                if k == 7 {
                    panic!("evaluator exploded on sample {k} attempt {attempt}");
                }
                if k == 11 && attempt == 0 {
                    panic!("transient panic");
                }
                Ok((k as f64, SampleStatus::Clean))
            },
        );
        // Sample 7 panics on every attempt: failed, budget consumed.
        assert_eq!(res.failed_indices, vec![7]);
        assert_eq!(res.sample_health[7].attempts, policy.attempt_budget());
        assert!(res.first_error.as_deref().unwrap().contains("panic"));
        // Sample 11 panics once, then recovers.
        assert_eq!(res.sample_health[11].status, SampleStatus::Recovered);
        assert_eq!(res.health.n_failed, 1);
        assert_eq!(res.health.n_recovered, 1);
        assert_eq!(res.health.n_clean, 18);
    }

    #[test]
    fn strict_policy_is_single_attempt() {
        let policy = RecoveryPolicy::strict();
        assert_eq!(policy.attempt_budget(), 1);
        assert!(!policy.is_fallback_attempt(0));
        let samples = [1.0_f64, 2.0, 3.0];
        let res = monte_carlo_with_policy(
            &samples,
            policy,
            |&x, _| -> Result<(f64, SampleStatus), String> { Ok((x, SampleStatus::Clean)) },
        );
        assert!(res.health.all_clean());
        assert_eq!(res.health.total(), 3);
    }

    #[test]
    fn legacy_drivers_report_clean_health() {
        let samples: Vec<f64> = (0..6).map(|k| k as f64).collect();
        let res = monte_carlo(&samples, |&x| if x < 2.0 { Err("corner") } else { Ok(x) });
        assert_eq!(res.health.n_clean, 4);
        assert_eq!(res.health.n_failed, 2);
        assert!(res.truncated_at.is_none());
        assert_eq!(res.sample_health.len(), 6);
    }

    #[test]
    fn thread_resolution_prefers_explicit_request() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn invalid_linvar_threads_falls_back_loudly() {
        // Env manipulation is process-global; keep every env-writing
        // assertion inside this one test. Concurrent tests only ever
        // *read* the variable through `resolve_threads(0)`, whose
        // assertions hold for any value this test sets.
        let prev = std::env::var_os("LINVAR_THREADS");
        for bad in ["0", "-2", "lots", "", "4.5"] {
            std::env::set_var("LINVAR_THREADS", bad);
            assert!(resolve_threads(0) >= 1, "fallback for {bad:?}");
            assert_eq!(resolve_threads(5), 5, "explicit request wins over {bad:?}");
        }
        std::env::set_var("LINVAR_THREADS", " 3 ");
        assert_eq!(resolve_threads(0), 3, "valid value (whitespace-trimmed)");
        match prev {
            Some(v) => std::env::set_var("LINVAR_THREADS", v),
            None => std::env::remove_var("LINVAR_THREADS"),
        }
    }

    #[test]
    fn oversubscribed_threads_are_harmless() {
        let samples: Vec<f64> = (0..5).map(|k| k as f64).collect();
        let res = monte_carlo_par::<_, &str>(&samples, 64, |&x| Ok(2.0 * x));
        assert_eq!(res.values, vec![0.0, 2.0, 4.0, 6.0, 8.0]);
    }
}
