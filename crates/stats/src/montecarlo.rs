//! The Monte-Carlo driver (paper §4.1.2): serial and deterministic
//! parallel execution.
//!
//! The parallel driver [`monte_carlo_par`] shards samples across scoped
//! worker threads in fixed-size chunks handed out through an atomic
//! cursor, evaluates each sample independently, and merges per-worker
//! results back **in sample-index order**. Because every sample's result
//! is a pure function of the sample itself (the evaluator must be
//! deterministic — enforced by the `Fn` bound, no shared mutable state),
//! the merged output is bitwise-identical at any thread count and equal
//! to the serial driver's output. See DESIGN.md, "Parallel execution &
//! determinism contract".

use crate::summary::Summary;
use std::fmt::Display;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Result of a Monte-Carlo analysis.
#[derive(Debug, Clone)]
pub struct MonteCarloResult {
    /// Performance value per successful sample, in sample-index order
    /// (failed evaluations are skipped).
    pub values: Vec<f64>,
    /// Summary statistics of the values.
    pub summary: Summary,
    /// Number of samples whose evaluation failed.
    pub failures: usize,
    /// Indices of the failed samples, ascending.
    pub failed_indices: Vec<usize>,
    /// Diagnostic of the failure with the smallest sample index (panics in
    /// the evaluator are captured as `"panic: …"`). `None` when every
    /// sample succeeded.
    pub first_error: Option<String>,
}

impl MonteCarloResult {
    fn from_ordered(outcomes: Vec<Result<f64, String>>) -> MonteCarloResult {
        let mut values = Vec::with_capacity(outcomes.len());
        let mut failed_indices = Vec::new();
        let mut first_error = None;
        for (idx, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Ok(v) => values.push(v),
                Err(msg) => {
                    if first_error.is_none() {
                        first_error = Some(msg);
                    }
                    failed_indices.push(idx);
                }
            }
        }
        let summary = Summary::of(&values);
        MonteCarloResult {
            values,
            summary,
            failures: failed_indices.len(),
            failed_indices,
            first_error,
        }
    }
}

/// Evaluates `f` on every sample and summarizes the results.
///
/// Sample evaluation returns `Result`; failed samples (for example an SC
/// divergence on a pathological corner) are counted and recorded with
/// their index and first diagnostic, not fatal — a statistical analysis
/// should report partial results with diagnostics rather than lose an
/// hour of work to one corner.
pub fn monte_carlo<S, E: Display>(
    samples: &[S],
    mut f: impl FnMut(&S) -> Result<f64, E>,
) -> MonteCarloResult {
    let outcomes = samples
        .iter()
        .map(|s| f(s).map_err(|e| e.to_string()))
        .collect();
    MonteCarloResult::from_ordered(outcomes)
}

/// Resolves the worker count for the parallel driver.
///
/// `requested` = 0 means "auto": the `LINVAR_THREADS` environment
/// variable if set to a positive integer, otherwise the machine's
/// available parallelism.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Some(n) = std::env::var("LINVAR_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Number of samples each worker claims per trip to the shared cursor.
/// Small enough to balance load on heterogeneous per-sample cost, large
/// enough that cursor contention is negligible.
const CHUNK: usize = 4;

/// Parallel Monte-Carlo: evaluates `f` on every sample across `threads`
/// scoped workers and summarizes the results.
///
/// **Determinism contract:** the output — `values` order, summary,
/// failure bookkeeping — is bitwise-identical to [`monte_carlo`] with the
/// same deterministic evaluator, at *any* thread count. Workers claim
/// fixed-size chunks of sample indices from an atomic cursor (so the
/// assignment of samples to workers varies run to run), but every result
/// is keyed by sample index and merged in index order, which erases the
/// scheduling from the output.
///
/// A panicking evaluator does not poison the run: the panic is caught per
/// sample and recorded as a counted failure with a `"panic: …"`
/// diagnostic.
///
/// `threads` = 0 resolves via [`resolve_threads`] (`LINVAR_THREADS`, then
/// available parallelism).
pub fn monte_carlo_par<S, E>(
    samples: &[S],
    threads: usize,
    f: impl Fn(&S) -> Result<f64, E> + Sync,
) -> MonteCarloResult
where
    S: Sync,
    E: Display,
{
    let n = samples.len();
    let threads = resolve_threads(threads).min(n.max(1));
    if threads <= 1 || n <= 1 {
        // One worker degenerates to the serial driver (same code path the
        // contract is stated against), minus thread-spawn overhead.
        return monte_carlo(samples, |s| contained(&f, s));
    }

    let cursor = AtomicUsize::new(0);
    // Each worker appends (index, outcome) pairs to its own slot; the
    // Mutex is locked once per worker at the very end, not per sample.
    let collected: Mutex<Vec<(usize, Result<f64, String>)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local: Vec<(usize, Result<f64, String>)> = Vec::new();
                loop {
                    let start = cursor.fetch_add(CHUNK, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + CHUNK).min(n);
                    for (idx, s) in samples[start..end].iter().enumerate() {
                        local.push((start + idx, contained(&f, s)));
                    }
                }
                collected
                    .lock()
                    .expect("no worker holds this lock across a panic")
                    .append(&mut local);
            });
        }
    });

    let mut outcomes: Vec<Option<Result<f64, String>>> = (0..n).map(|_| None).collect();
    for (idx, outcome) in collected.into_inner().expect("workers joined") {
        outcomes[idx] = Some(outcome);
    }
    MonteCarloResult::from_ordered(
        outcomes
            .into_iter()
            .map(|o| o.expect("every index evaluated exactly once"))
            .collect(),
    )
}

/// Runs one evaluation with panic containment: a panicking evaluator
/// surfaces as an `Err` diagnostic instead of unwinding across the worker.
fn contained<S, E: Display>(
    f: &(impl Fn(&S) -> Result<f64, E> + Sync),
    s: &S,
) -> Result<f64, String> {
    match catch_unwind(AssertUnwindSafe(|| f(s).map_err(|e| e.to_string()))) {
        Ok(res) => res,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic payload".to_string());
            Err(format!("panic: {msg}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::{lhs_normal, rng_from_seed};

    #[test]
    fn linear_function_of_normals() {
        // f(w) = 3 + 2·w0 − w1 with unit normals: mean 3, σ = √5.
        let mut rng = rng_from_seed(77);
        let samples = lhs_normal(&mut rng, 2000, 2, 1.0);
        let res =
            monte_carlo::<_, std::convert::Infallible>(&samples, |w| Ok(3.0 + 2.0 * w[0] - w[1]));
        assert_eq!(res.failures, 0);
        assert!((res.summary.mean - 3.0).abs() < 0.05);
        assert!((res.summary.std - 5.0_f64.sqrt()).abs() < 0.05);
    }

    #[test]
    fn failures_are_counted_not_fatal() {
        let samples: Vec<f64> = (0..10).map(|k| k as f64).collect();
        let res = monte_carlo(
            &samples,
            |&x| {
                if x < 3.0 {
                    Err("corner failed")
                } else {
                    Ok(x)
                }
            },
        );
        assert_eq!(res.failures, 3);
        assert_eq!(res.values.len(), 7);
        assert_eq!(res.summary.n, 7);
        assert_eq!(res.failed_indices, vec![0, 1, 2]);
        assert_eq!(res.first_error.as_deref(), Some("corner failed"));
    }

    #[test]
    fn empty_sample_set() {
        let res = monte_carlo::<f64, &str>(&[], |_| Ok(0.0));
        assert_eq!(res.summary.n, 0);
        assert_eq!(res.failures, 0);
        assert!(res.first_error.is_none());
        let res = monte_carlo_par::<f64, &str>(&[], 4, |_| Ok(0.0));
        assert_eq!(res.summary.n, 0);
        assert_eq!(res.failures, 0);
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let mut rng = rng_from_seed(13);
        let samples = lhs_normal(&mut rng, 500, 3, 1.0);
        let f = |w: &Vec<f64>| -> Result<f64, &'static str> {
            if w[0] > 1.8 {
                Err("tail corner rejected")
            } else {
                Ok((w[0] * 1.5 - w[1]).exp() + w[2])
            }
        };
        let serial = monte_carlo(&samples, f);
        for threads in [1, 2, 3, 8] {
            let par = monte_carlo_par(&samples, threads, f);
            assert_eq!(par.values, serial.values, "values at {threads} threads");
            assert_eq!(par.failed_indices, serial.failed_indices);
            assert_eq!(par.first_error, serial.first_error);
            assert_eq!(par.summary.mean.to_bits(), serial.summary.mean.to_bits());
            assert_eq!(par.summary.std.to_bits(), serial.summary.std.to_bits());
        }
    }

    #[test]
    fn parallel_contains_panics_as_failures() {
        let samples: Vec<usize> = (0..40).collect();
        let res = monte_carlo_par(&samples, 4, |&k| -> Result<f64, &str> {
            if k == 17 {
                panic!("evaluator exploded on sample {k}");
            }
            Ok(k as f64)
        });
        assert_eq!(res.failures, 1);
        assert_eq!(res.failed_indices, vec![17]);
        assert_eq!(res.values.len(), 39);
        let msg = res.first_error.expect("diagnostic recorded");
        assert!(msg.contains("panic"), "diagnostic {msg:?}");
        assert!(msg.contains("17"), "diagnostic {msg:?}");
    }

    #[test]
    fn first_error_is_lowest_index_regardless_of_schedule() {
        let samples: Vec<usize> = (0..64).collect();
        for threads in [2, 5, 8] {
            let res = monte_carlo_par(&samples, threads, |&k| {
                if k % 10 == 3 {
                    Err(format!("failed at {k}"))
                } else {
                    Ok(k as f64)
                }
            });
            assert_eq!(res.first_error.as_deref(), Some("failed at 3"));
            assert_eq!(res.failed_indices, vec![3, 13, 23, 33, 43, 53, 63]);
        }
    }

    #[test]
    fn thread_resolution_prefers_explicit_request() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn oversubscribed_threads_are_harmless() {
        let samples: Vec<f64> = (0..5).map(|k| k as f64).collect();
        let res = monte_carlo_par::<_, &str>(&samples, 64, |&x| Ok(2.0 * x));
        assert_eq!(res.values, vec![0.0, 2.0, 4.0, 6.0, 8.0]);
    }
}
