//! Property tests for the parallel Monte-Carlo machinery: per-sample seed
//! streams, streamed Latin-Hypercube stratification, summary merging, and
//! schedule-invariance of the parallel driver itself.

use linvar_stats::{
    latin_hypercube_streamed, monte_carlo, monte_carlo_par, normal_samples, SampleRng, SeedStream,
    Summary,
};
use proptest::prelude::*;

/// Relative floating-point tolerance for pooled-statistics comparisons.
fn close(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= 1e-9 * scale
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn seed_streams_reproduce_per_index(seed in any::<u64>(), index in 0u64..10_000) {
        // stream(seed, k) must be a pure function of (seed, k): re-deriving
        // the stream replays the identical sequence.
        let a = normal_samples(&mut SampleRng::stream(seed, index), 16);
        let b = normal_samples(&mut SampleRng::stream(seed, index), 16);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn seed_streams_are_independent_across_indices(
        seed in any::<u64>(),
        i in 0u64..5_000,
        j in 0u64..5_000,
    ) {
        // Distinct sample indices must get decorrelated generators — in
        // particular not merely shifted copies of one global sequence.
        if i != j {
            let a = normal_samples(&mut SampleRng::stream(seed, i), 8);
            let b = normal_samples(&mut SampleRng::stream(seed, j), 8);
            prop_assert_ne!(&a, &b);
            // No single draw collides either (the f64s carry 53 random
            // bits; a collision means the streams are entangled).
            prop_assert!(a.iter().zip(&b).all(|(x, y)| x != y));
        }
    }

    #[test]
    fn seed_streams_separate_across_master_seeds(
        seed in any::<u64>(),
        delta in 1u64..1_000,
        index in 0u64..1_000,
    ) {
        let a = normal_samples(&mut SampleRng::stream(seed, index), 8);
        let b = normal_samples(&mut SampleRng::stream(seed.wrapping_add(delta), index), 8);
        prop_assert_ne!(a, b);
    }

    #[test]
    fn streamed_lhs_keeps_exact_stratification(
        seed in any::<u64>(),
        n in 2usize..48,
        dims in 1usize..5,
    ) {
        // The stream-organized LHS must retain the defining property:
        // every dimension hits each of the n strata exactly once.
        let samples = latin_hypercube_streamed(seed, n, dims, |_, u| u);
        prop_assert_eq!(samples.len(), n);
        for d in 0..dims {
            let mut seen = vec![false; n];
            for s in &samples {
                prop_assert!((0.0..1.0).contains(&s[d]));
                let bin = ((s[d] * n as f64) as usize).min(n - 1);
                prop_assert!(!seen[bin], "stratum {} hit twice in dim {}", bin, d);
                seen[bin] = true;
            }
        }
    }

    #[test]
    fn streamed_lhs_is_reproducible(seed in any::<u64>(), n in 2usize..32) {
        let a = latin_hypercube_streamed(seed, n, 3, |_, u| u);
        let b = latin_hypercube_streamed(seed, n, 3, |_, u| u);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn summary_merge_matches_pooled_computation(
        na in 1usize..24,
        nb in 1usize..24,
        seed in any::<u64>(),
    ) {
        let mut rng = SampleRng::stream(seed, 0);
        let a = normal_samples(&mut rng, na);
        let b = normal_samples(&mut rng, nb);
        let pooled: Vec<f64> = a.iter().chain(&b).copied().collect();
        let merged = Summary::of(&a).merge(&Summary::of(&b));
        let direct = Summary::of(&pooled);
        prop_assert_eq!(merged.n, direct.n);
        prop_assert!(close(merged.mean, direct.mean), "{} vs {}", merged.mean, direct.mean);
        prop_assert!(close(merged.std, direct.std), "{} vs {}", merged.std, direct.std);
        prop_assert_eq!(merged.min, direct.min);
        prop_assert_eq!(merged.max, direct.max);
    }

    #[test]
    fn summary_merge_is_associative(
        na in 0usize..16,
        nb in 0usize..16,
        nc in 0usize..16,
        seed in any::<u64>(),
    ) {
        // ((A ⊕ B) ⊕ C) == (A ⊕ (B ⊕ C)) up to floating-point rounding —
        // the algebra that lets the parallel driver pool chunk statistics
        // in any grouping. Empty parts included: merge must treat the
        // zero summary as the identity element.
        let mut rng = SampleRng::stream(seed, 1);
        let a = Summary::of(&normal_samples(&mut rng, na));
        let b = Summary::of(&normal_samples(&mut rng, nb));
        let c = Summary::of(&normal_samples(&mut rng, nc));
        let left = a.merge(&b).merge(&c);
        let right = a.merge(&b.merge(&c));
        prop_assert_eq!(left.n, right.n);
        prop_assert!(close(left.mean, right.mean), "{} vs {}", left.mean, right.mean);
        prop_assert!(close(left.std, right.std), "{} vs {}", left.std, right.std);
        prop_assert_eq!(left.min, right.min);
        prop_assert_eq!(left.max, right.max);
    }

    #[test]
    fn parallel_driver_is_schedule_invariant(
        n in 0usize..64,
        threads in 1usize..9,
        seed in any::<u64>(),
        fail_stride in 2usize..7,
    ) {
        // For arbitrary workloads (including failing samples) the parallel
        // driver must reproduce the serial driver bitwise — values,
        // summary, and failure bookkeeping alike.
        let mut rng = SampleRng::stream(seed, 2);
        let samples = normal_samples(&mut rng, n);
        let eval = |&x: &f64| {
            let k = (x.abs() * 1e6) as usize;
            if k.is_multiple_of(fail_stride) {
                Err(format!("injected failure at {x}"))
            } else {
                Ok(x * x + 1.0)
            }
        };
        let serial = monte_carlo(&samples, eval);
        let par = monte_carlo_par(&samples, threads, eval);
        let s_bits: Vec<u64> = serial.values.iter().map(|v| v.to_bits()).collect();
        let p_bits: Vec<u64> = par.values.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(p_bits, s_bits);
        prop_assert_eq!(par.summary.mean.to_bits(), serial.summary.mean.to_bits());
        prop_assert_eq!(par.summary.std.to_bits(), serial.summary.std.to_bits());
        prop_assert_eq!(par.failures, serial.failures);
        prop_assert_eq!(par.failed_indices, serial.failed_indices);
        prop_assert_eq!(par.first_error, serial.first_error);
    }
}
