//! Property-based tests of the spectral (gPC) engine and the Sobol
//! quasi-MC sampler: quadrature exactness up to the rule's polynomial
//! order, low-discrepancy superiority of the Sobol stream, bitwise
//! determinism of the gPC coefficients across thread counts, and the
//! fingerprint refusal of a resumed spectral campaign whose plan
//! changed under the snapshot.

use linvar_stats::sampling::sobol_point;
use linvar_stats::{
    gauss_hermite, rng_from_seed, run_spectral, run_spectral_campaign, CampaignConfig,
    CheckpointError, GridKind, RecoveryPolicy, SampleStatus, SpectralConfig, SpectralPlan,
    SpectralRunError,
};
use proptest::prelude::*;
use rand::RngExt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// `E[x^k]` under the standard normal: `(k-1)!!` for even `k`, 0 odd.
fn gaussian_moment(k: usize) -> f64 {
    if k % 2 == 1 {
        0.0
    } else {
        (1..=k).step_by(2).map(|j| j as f64).product()
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let k = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "linvar-spectral-props-{}-{tag}-{k}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// An `n`-point Gauss-Hermite rule integrates every polynomial of
    /// degree ≤ 2n−1 exactly against the standard normal weight.
    #[test]
    fn gauss_hermite_exact_to_polynomial_order(
        n in 1usize..9,
        coeffs in prop::collection::vec(-3.0f64..3.0, 17),
    ) {
        let (nodes, weights) = gauss_hermite(n).expect("rule builds");
        let degree = 2 * n - 1;
        let quad: f64 = nodes
            .iter()
            .zip(&weights)
            .map(|(&x, &w)| {
                let p: f64 = (0..=degree).map(|k| coeffs[k] * x.powi(k as i32)).sum();
                w * p
            })
            .sum();
        let exact: f64 = (0..=degree).map(|k| coeffs[k] * gaussian_moment(k)).sum();
        let scale = coeffs[..=degree].iter().map(|c| c.abs()).sum::<f64>()
            * gaussian_moment(degree + degree % 2);
        prop_assert!(
            (quad - exact).abs() <= 1e-10 * scale.max(1.0),
            "n={n} degree={degree}: quadrature {quad} vs exact {exact}"
        );
    }

    /// A tensor collocation grid of level `order+1` recovers the exact
    /// mean of any polynomial of per-dimension degree ≤ `order` — the
    /// multi-dimensional face of the same exactness contract.
    #[test]
    fn tensor_grid_mean_exact_for_polynomials(
        dims in 1usize..4,
        order in 1usize..4,
        coeffs in prop::collection::vec(-2.0f64..2.0, 12),
    ) {
        let plan = SpectralPlan::build(dims, SpectralConfig::tensor(order)).expect("plan");
        // Separable polynomial: y = Π_k (Σ_j c_{k,j} x_k^j), degree ≤ order/dim.
        let poly = |x: &[f64]| -> f64 {
            x.iter()
                .enumerate()
                .map(|(k, &xk)| {
                    (0..=order)
                        .map(|j| coeffs[(k * (order + 1) + j) % coeffs.len()] * xk.powi(j as i32))
                        .sum::<f64>()
                })
                .product()
        };
        let values: Vec<f64> = plan.nodes.iter().map(|node| poly(node)).collect();
        let c = plan.coefficients(&values).expect("projection");
        let exact: f64 = (0..dims)
            .map(|k| {
                (0..=order)
                    .map(|j| coeffs[(k * (order + 1) + j) % coeffs.len()] * gaussian_moment(j))
                    .sum::<f64>()
            })
            .product();
        let scale = values.iter().map(|v| v.abs()).fold(1.0f64, f64::max);
        prop_assert!(
            (c[0] - exact).abs() <= 1e-9 * scale,
            "dims={dims} order={order}: gPC mean {} vs exact {exact}",
            c[0]
        );
    }

    /// The digitally-shifted Sobol stream integrates a smooth function
    /// with lower RMS error than pseudo-random sampling at the same
    /// count, in every dimension count and for every digital shift —
    /// the low-discrepancy property the quasi-MC engine rides on.
    #[test]
    fn sobol_low_discrepancy_beats_pseudo_random(dims in 1usize..7) {
        // ∫ Π u_k du = 2^-dims over the unit cube.
        let n = 512usize;
        let trials = 16u64;
        let exact = 0.5f64.powi(dims as i32);
        let integrand = |u: &[f64]| u.iter().product::<f64>();
        let mut sobol_sq = 0.0f64;
        let mut prandom_sq = 0.0f64;
        for seed in 0..trials {
            let s: f64 = (0..n)
                .map(|i| integrand(&sobol_point(seed, i as u64, dims)))
                .sum::<f64>()
                / n as f64;
            sobol_sq += (s - exact) * (s - exact);
            let mut rng = rng_from_seed(seed);
            let p: f64 = (0..n)
                .map(|_| {
                    let u: Vec<f64> = (0..dims).map(|_| rng.random::<f64>()).collect();
                    integrand(&u)
                })
                .sum::<f64>()
                / n as f64;
            prandom_sq += (p - exact) * (p - exact);
        }
        let sobol_rms = (sobol_sq / trials as f64).sqrt();
        let prandom_rms = (prandom_sq / trials as f64).sqrt();
        prop_assert!(
            2.0 * sobol_rms < prandom_rms,
            "dims={dims}: sobol rms {sobol_rms:e} vs pseudo rms {prandom_rms:e}"
        );
    }

    /// The gPC coefficients — and everything derived from them — are
    /// bitwise identical at 1, 2 and 8 worker threads, for random
    /// models on every grid family.
    #[test]
    fn gpc_coefficients_bitwise_across_threads(
        grid in 0usize..3,
        a in -2.0f64..2.0,
        b in -2.0f64..2.0,
        c in -1.0f64..1.0,
    ) {
        let config = match grid {
            0 => SpectralConfig::tensor(2),
            1 => SpectralConfig::smolyak(2, 1),
            _ => SpectralConfig::stochastic_testing(2),
        };
        let plan = SpectralPlan::build(3, config).expect("plan");
        let model = |x: &[f64], _attempt: usize| -> Result<(f64, SampleStatus), String> {
            Ok((
                a * x[0] + b * x[1] * x[1] + c * (0.3 * x[2]).sin() + 5.0,
                SampleStatus::Clean,
            ))
        };
        let reference =
            run_spectral(&plan, 1, RecoveryPolicy::default(), 17, model).expect("1 thread");
        for threads in [2usize, 8] {
            let res = run_spectral(&plan, threads, RecoveryPolicy::default(), 17, model)
                .expect("parallel run");
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            prop_assert_eq!(
                bits(&res.coefficients),
                bits(&reference.coefficients),
                "{} grid, {} threads",
                plan.config.grid.name(),
                threads
            );
            prop_assert_eq!(res.mean.to_bits(), reference.mean.to_bits());
            prop_assert_eq!(res.std.to_bits(), reference.std.to_bits());
            prop_assert_eq!(bits(&res.quantiles.iter().map(|&(_, v)| v).collect::<Vec<_>>()),
                            bits(&reference.quantiles.iter().map(|&(_, v)| v).collect::<Vec<_>>()));
        }
    }
}

/// A spectral campaign resumed under a *different* plan (here: order 1
/// instead of 2) must refuse the snapshot with a typed
/// [`CheckpointError::FingerprintMismatch`] — the plan's node set is
/// folded into the campaign fingerprint, so grid geometry is identity.
#[test]
fn resumed_spectral_campaign_refuses_changed_plan() {
    let dir = tmp_dir("fp-mismatch");
    let snapshot = dir.join("spectral.ckpt");
    let model = |x: &[f64], _a: usize| -> Result<(f64, SampleStatus), String> {
        Ok((x.iter().sum::<f64>() + 1.0, SampleStatus::Clean))
    };
    let plan2 = SpectralPlan::build(2, SpectralConfig::stochastic_testing(2)).expect("plan");
    let write_cfg = CampaignConfig {
        checkpoint: Some(snapshot.clone()),
        ..CampaignConfig::default()
    };
    let done = run_spectral_campaign(
        &plan2,
        1,
        RecoveryPolicy::default(),
        &write_cfg,
        21,
        0xFEED,
        model,
    )
    .expect("campaign completes");
    assert!(done.completed > 0 && done.result.is_some());

    // Same model fingerprint and seed, different spectral plan: the
    // node grid changed, so the snapshot no longer belongs to this
    // campaign and resume must refuse rather than merge wrong nodes.
    let plan1 = SpectralPlan::build(2, SpectralConfig::stochastic_testing(1)).expect("plan");
    let resume_cfg = CampaignConfig {
        resume: Some(snapshot.clone()),
        ..CampaignConfig::default()
    };
    let err = run_spectral_campaign(
        &plan1,
        1,
        RecoveryPolicy::default(),
        &resume_cfg,
        21,
        0xFEED,
        model,
    )
    .expect_err("changed plan must be refused");
    match err {
        SpectralRunError::Checkpoint(CheckpointError::FingerprintMismatch { .. }) => {}
        other => panic!("expected a fingerprint mismatch, got {other:?}"),
    }

    // Sanity: the unchanged plan resumes cleanly from the same snapshot.
    let resumed = run_spectral_campaign(
        &plan2,
        1,
        RecoveryPolicy::default(),
        &resume_cfg,
        21,
        0xFEED,
        model,
    )
    .expect("unchanged plan resumes");
    assert_eq!(resumed.evaluated, 0, "everything restored from snapshot");
    assert!(resumed.result.is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Smolyak sparse grids stay exact for additive polynomials up to the
/// level's 1-D order while using far fewer nodes than the tensor grid
/// of the same accuracy — spot-checked here at a fixed geometry so the
/// node-count claim in DESIGN.md stays honest.
#[test]
fn smolyak_node_count_beats_tensor_at_same_1d_exactness() {
    let dims = 5usize;
    let smolyak = SpectralPlan::build(dims, SpectralConfig::smolyak(2, 1)).expect("smolyak");
    let tensor = SpectralPlan::build(dims, SpectralConfig::tensor(1)).expect("tensor");
    assert_eq!(smolyak.config.grid, GridKind::Smolyak);
    assert!(
        smolyak.nodes.len() < tensor.nodes.len(),
        "smolyak {} nodes vs tensor {}",
        smolyak.nodes.len(),
        tensor.nodes.len()
    );
    // Additive quadratic: exactly integrated by the level-1 grid.
    let values: Vec<f64> = smolyak
        .nodes
        .iter()
        .map(|x| 2.0 + x.iter().map(|&v| 0.7 * v + 0.2 * v * v).sum::<f64>())
        .collect();
    let c = smolyak.coefficients(&values).expect("projection");
    let exact = 2.0 + 0.2 * dims as f64;
    assert!(
        (c[0] - exact).abs() < 1e-10,
        "smolyak mean {} vs exact {exact}",
        c[0]
    );
}
