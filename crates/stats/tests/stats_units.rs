//! Cross-module invariants of the statistics layer, exercised through
//! the public crate API: Gradient-Analysis vs finite differences, yield
//! monotonicity in the clock period, and the PCA variance-fraction
//! contract.

use linvar_stats::{
    central_difference_sensitivities, demo_correlated_device_parameters, empirical_yield,
    gradient_std, normal_samples, normal_yield, period_for_yield, rng_from_seed, Pca,
};

// ---------------- Gradient Analysis vs finite differences ----------------

#[test]
fn ga_agrees_with_finite_differences_on_smooth_nonlinear_model() {
    // D(w) = exp(0.3 w0) + sin(0.5 w1) + 2 w2: analytic gradient at the
    // nominal point is (0.3, 0.5, 2.0). Central differences are second
    // order, so the δ² error at δ = 1e-3 is far below the tolerance.
    let grads = central_difference_sensitivities::<()>(3, 1e-3, |w| {
        Ok((0.3 * w[0]).exp() + (0.5 * w[1]).sin() + 2.0 * w[2])
    })
    .expect("closure is infallible");
    for (g, expect) in grads.iter().zip([0.3, 0.5, 2.0]) {
        assert!((g - expect).abs() < 1e-6, "{g} vs {expect}");
    }
    // And eq. (24) combines them exactly as the quadrature sum.
    let sigmas = [0.33, 0.2, 0.1];
    let ga = gradient_std(&sigmas, &grads);
    let exact = (sigmas[0] * 0.3)
        .hypot(sigmas[1] * 0.5)
        .hypot(sigmas[2] * 2.0);
    assert!((ga - exact).abs() < 1e-6, "{ga} vs {exact}");
}

#[test]
fn ga_sigma_scales_linearly_with_source_sigmas() {
    let grads = [1.5, -0.7, 3.0];
    let base = gradient_std(&[0.1, 0.2, 0.3], &grads);
    let doubled = gradient_std(&[0.2, 0.4, 0.6], &grads);
    assert!((doubled - 2.0 * base).abs() < 1e-12);
}

// ---------------- Yield monotonicity in the clock period ----------------

#[test]
fn yields_are_monotone_in_the_clock_period() {
    let mut rng = rng_from_seed(4242);
    let (mean, std) = (250.0, 12.0);
    let delays: Vec<f64> = normal_samples(&mut rng, 4000)
        .into_iter()
        .map(|z| mean + std * z)
        .collect();
    let periods: Vec<f64> = (0..61).map(|i| 190.0 + 2.0 * i as f64).collect();
    let mut last_emp = -1.0;
    let mut last_ana = -1.0;
    for &t in &periods {
        let emp = empirical_yield(&delays, t);
        let ana = normal_yield(mean, std, t);
        assert!((0.0..=1.0).contains(&emp), "empirical yield out of range");
        assert!((0.0..=1.0).contains(&ana), "normal yield out of range");
        assert!(emp >= last_emp, "empirical yield decreased at period {t}");
        assert!(ana >= last_ana, "normal yield decreased at period {t}");
        last_emp = emp;
        last_ana = ana;
    }
    // The sweep actually spans the distribution: ~0 yield below it, ~1
    // above it.
    assert!(empirical_yield(&delays, periods[0]) < 0.01);
    assert!(empirical_yield(&delays, *periods.last().expect("nonempty")) > 0.99);
}

#[test]
fn required_period_grows_with_target_yield() {
    let (mean, std) = (100.0, 5.0);
    let mut last = f64::NEG_INFINITY;
    for target in [0.1, 0.5, 0.9, 0.99, 0.999] {
        let t = period_for_yield(mean, std, target);
        assert!(t > last, "period not monotone at target {target}");
        // Round-trip through the normal model.
        assert!((normal_yield(mean, std, t) - target).abs() < 1e-3);
        last = t;
    }
}

// ---------------- PCA variance-fraction invariants ----------------

#[test]
fn pca_variance_fraction_contract() {
    let mut rng = rng_from_seed(7);
    let samples = demo_correlated_device_parameters(&mut rng, 300, 20, 4, 0.05);
    let mut last_retained = 0usize;
    for fraction in [0.5, 0.8, 0.95, 0.999] {
        let model = Pca::new(fraction).fit(&samples).expect("pca fits");
        // The retained factors explain at least what was asked.
        assert!(
            model.explained() >= fraction,
            "asked {fraction}, explained {}",
            model.explained()
        );
        assert!(model.explained() <= 1.0 + 1e-12);
        assert!(model.retained >= 1 && model.retained <= model.param_count());
        // A stricter fraction can only keep more factors.
        assert!(
            model.retained >= last_retained,
            "retained count not monotone in fraction"
        );
        last_retained = model.retained;
        // Eigenvalues (factor variances) arrive sorted descending, so the
        // retained prefix is the maximal-variance subset.
        for pair in model.variances.windows(2) {
            assert!(pair[0] >= pair[1] - 1e-12, "variances not descending");
        }
    }
}
