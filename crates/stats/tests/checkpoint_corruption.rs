//! Checkpoint corruption and fingerprint-mismatch rejection.
//!
//! The durability contract: a damaged snapshot — truncated mid-write,
//! bit-flipped by storage rot, or plain garbage — must be rejected by the
//! checksum with a typed [`CheckpointError`], never panic, and never
//! yield a partial load; a snapshot of a *different* campaign (other
//! seed, policy, sample count, or model) must refuse to resume.

use linvar_stats::{
    fingerprint_str, load_checkpoint, run_campaign, save_checkpoint, CampaignConfig,
    CampaignFingerprint, CheckpointError, RecoveryPolicy, SampleRecord, SampleStatus,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn tmp_path(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let k = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "linvar-ckpt-corruption-{}-{tag}-{k}.ckpt",
        std::process::id()
    ))
}

fn fingerprint() -> CampaignFingerprint {
    CampaignFingerprint {
        master_seed: 99,
        n_samples: 12,
        policy: RecoveryPolicy::default(),
        model: fingerprint_str("corruption-suite"),
    }
}

fn records() -> Vec<Option<SampleRecord>> {
    (0..12)
        .map(|k| {
            if k == 5 {
                Some(SampleRecord {
                    status: SampleStatus::Failed,
                    attempts: 4,
                    outcome: Err("solver diverged\nat stage 2".into()),
                })
            } else {
                Some(SampleRecord {
                    status: SampleStatus::Clean,
                    attempts: 1,
                    outcome: Ok((k as f64).exp() * 1e-12),
                })
            }
        })
        .collect()
}

fn write_snapshot(tag: &str) -> PathBuf {
    let path = tmp_path(tag);
    save_checkpoint(&path, &fingerprint(), &records()).expect("snapshot written");
    path
}

#[test]
fn truncated_snapshots_are_rejected() {
    let path = write_snapshot("truncate");
    let full = std::fs::read(&path).expect("readable");
    // Cut the file at every prefix length that drops at least one byte:
    // a torn write can stop anywhere. All must fail typed, none panic.
    for cut in (0..full.len()).step_by(17).chain([full.len() - 1]) {
        std::fs::write(&path, &full[..cut]).expect("written");
        let err = load_checkpoint(&path).expect_err(&format!("cut at {cut} must be rejected"));
        assert!(
            matches!(
                err,
                CheckpointError::Malformed { .. }
                    | CheckpointError::ChecksumMismatch { .. }
                    | CheckpointError::VersionMismatch { .. }
            ),
            "cut at {cut}: unexpected error class {err:?}"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn bit_flips_are_rejected_by_the_checksum() {
    let path = write_snapshot("bitflip");
    let full = std::fs::read(&path).expect("readable");
    // Flip a bit in every region of the file: header, sample lines, and
    // the checksum line itself.
    for pos in (0..full.len()).step_by(23) {
        let mut damaged = full.clone();
        damaged[pos] ^= 0x10;
        std::fs::write(&path, &damaged).expect("written");
        match load_checkpoint(&path) {
            Err(_) => {}
            Ok(ck) => {
                // A flip can land in a spot the checksum covers but the
                // parser round-trips identically (it cannot: the checksum
                // is over the raw bytes). Loading successfully would mean
                // the flip escaped detection entirely.
                panic!("bit flip at {pos} loaded successfully: {ck:?}");
            }
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn garbage_and_empty_files_fail_typed() {
    let path = tmp_path("garbage");
    for body in [
        &b""[..],
        b"not a checkpoint at all\n",
        b"sum=0123456789abcdef\n",
        &[0xff, 0xfe, 0x00, 0x80, 0x13],
    ] {
        std::fs::write(&path, body).expect("written");
        let err = load_checkpoint(&path).expect_err("garbage must be rejected");
        assert!(
            matches!(
                err,
                CheckpointError::Malformed { .. }
                    | CheckpointError::ChecksumMismatch { .. }
                    | CheckpointError::VersionMismatch { .. }
            ),
            "unexpected error class {err:?}"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn wrong_version_is_its_own_error() {
    let path = write_snapshot("version");
    let text = std::fs::read_to_string(&path).expect("readable");
    let body = text.replace("linvar-campaign-v1", "linvar-campaign-v9");
    // Re-checksum so the version check (not the checksum) is what trips.
    let payload_end = body.rfind("sum=").expect("has checksum line");
    let payload = &body[..payload_end];
    let sum = linvar_stats::fnv1a64(payload.as_bytes());
    std::fs::write(&path, format!("{payload}sum={sum:016x}\n")).expect("written");
    let err = load_checkpoint(&path).expect_err("version must be rejected");
    assert!(
        matches!(err, CheckpointError::VersionMismatch { ref found } if found == "linvar-campaign-v9"),
        "{err:?}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn duplicate_and_out_of_range_indices_are_malformed() {
    let path = write_snapshot("dup");
    let text = std::fs::read_to_string(&path).expect("readable");
    for (find, replace) in [("s 3 ", "s 2 "), ("s 3 ", "s 99 ")] {
        let body = text.replacen(find, replace, 1);
        let payload_end = body.rfind("sum=").expect("has checksum line");
        let payload = &body[..payload_end];
        let sum = linvar_stats::fnv1a64(payload.as_bytes());
        std::fs::write(&path, format!("{payload}sum={sum:016x}\n")).expect("written");
        let err = load_checkpoint(&path).expect_err("must be rejected");
        assert!(
            matches!(err, CheckpointError::Malformed { .. }),
            "{find}→{replace}: {err:?}"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn intact_snapshot_still_loads_after_all_that() {
    // Sanity: the suite's baseline snapshot is actually valid.
    let path = write_snapshot("sanity");
    let ck = load_checkpoint(&path).expect("intact snapshot loads");
    assert_eq!(ck.fingerprint, fingerprint());
    assert_eq!(ck.outcomes, records());
    std::fs::remove_file(&path).ok();
}

#[test]
fn mismatched_fingerprints_refuse_to_resume() {
    let path = write_snapshot("fingerprint");
    let base = fingerprint();
    let cases: Vec<(&str, CampaignFingerprint)> = vec![
        (
            "master seed",
            CampaignFingerprint {
                master_seed: 100,
                ..base
            },
        ),
        (
            "sample count",
            CampaignFingerprint {
                n_samples: 13,
                ..base
            },
        ),
        (
            "recovery policy",
            CampaignFingerprint {
                policy: RecoveryPolicy {
                    max_retries: 0,
                    allow_fallback: false,
                    fail_fast: false,
                },
                ..base
            },
        ),
        (
            "model fingerprint",
            CampaignFingerprint {
                model: fingerprint_str("some other circuit"),
                ..base
            },
        ),
    ];
    for (field, wrong) in cases {
        let ck = load_checkpoint(&path).expect("loads");
        let err = ck.validate(&wrong).expect_err("must refuse");
        assert!(
            matches!(err, CheckpointError::FingerprintMismatch { field: f, .. } if f == field),
            "expected {field} mismatch, got {err:?}"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn run_campaign_refuses_a_mismatched_resume_end_to_end() {
    let path = write_snapshot("e2e");
    let samples: Vec<usize> = (0..12).collect();
    let mut wrong = fingerprint();
    wrong.master_seed = 1;
    let err = run_campaign(
        &samples,
        2,
        RecoveryPolicy::default(),
        &CampaignConfig {
            resume: Some(path.clone()),
            ..CampaignConfig::default()
        },
        wrong,
        |&k: &usize, _| -> Result<(f64, SampleStatus), String> {
            Ok((k as f64, SampleStatus::Clean))
        },
    )
    .expect_err("mismatched resume must refuse");
    assert!(matches!(
        err,
        CheckpointError::FingerprintMismatch {
            field: "master seed",
            ..
        }
    ));
    // And a corrupted file refuses too — no partial load reaches the run.
    let mut bytes = std::fs::read(&path).expect("readable");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, &bytes).expect("written");
    let err = run_campaign(
        &samples,
        2,
        RecoveryPolicy::default(),
        &CampaignConfig {
            resume: Some(path.clone()),
            ..CampaignConfig::default()
        },
        fingerprint(),
        |&k: &usize, _| -> Result<(f64, SampleStatus), String> {
            Ok((k as f64, SampleStatus::Clean))
        },
    )
    .expect_err("corrupt resume must refuse");
    assert!(
        !matches!(err, CheckpointError::Io { .. }),
        "corruption must be detected as such, got {err:?}"
    );
    std::fs::remove_file(&path).ok();
}
