//! Job-facing campaign model registry.
//!
//! The campaign service (`linvar-serve`) accepts jobs by **model id** —
//! a string naming what to simulate — and runs them through the durable
//! campaign driver. This module defines the contract such a model must
//! satisfy ([`CampaignModel`]) and a [`ModelRegistry`] that maps ids to
//! models.
//!
//! Determinism is the whole point: a model's [`CampaignModel::run`] must
//! be a pure function of `(master_seed, n, policy)` — same inputs, same
//! bitwise [`Summary`] at any worker count, across any
//! interrupt/resume schedule — because the service's crash-recovery
//! guarantee ("a killed and restarted job reports the same result as an
//! uninterrupted one") is exactly the campaign driver's resume
//! invariant lifted to the job level. The
//! [`CampaignModel::model_fingerprint`] feeds the job's
//! [`CampaignFingerprint`], which keys both checkpoint validation *and*
//! the service's idempotent-submission dedup.
//!
//! Built-ins cover the two cost regimes a serving layer needs:
//! * `demo-fast` / `demo-slow` — synthetic closed-form models (no
//!   circuit construction); `demo-slow` holds each sample for a few
//!   milliseconds so kill/cancel windows are easy to hit in tests;
//! * `chain<k>@<elems>` — real framework paths: a `k`-cell inv/nand2
//!   chain with `elems` linear elements between stages, built lazily on
//!   first run and evaluated through [`PathModel::monte_carlo_campaign`].
//!
//! Binaries that link heavier circuit collections (the ISCAS bench
//! suite lives above this crate in the dependency graph) register their
//! own models with [`ModelRegistry::register`].

use crate::path::{PathModel, PathSpec, VariationSources};
use crate::{CampaignConfig, CampaignVerdict, CoreError};
use linvar_devices::tech_018;
use linvar_interconnect::WireTech;
use linvar_stats::{
    fingerprint_str, fingerprint_words, normal_samples, rng_from_seed, run_campaign,
    CampaignFingerprint, RecoveryPolicy, SampleStatus, SpectralConfig, Summary,
};
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// What a completed (or truncated) model run reports back to the job
/// layer. The `summary` fields are the deterministic payload the
/// service's byte-identity guarantee covers.
#[derive(Debug, Clone)]
pub struct ModelRun {
    /// Statistics over every completed sample.
    pub summary: Summary,
    /// Samples that exhausted their attempt budget.
    pub failures: usize,
    /// Complete, or truncated-but-resumable.
    pub verdict: CampaignVerdict,
    /// Samples evaluated in this process (vs restored from a snapshot).
    pub evaluated: usize,
    /// Samples restored from the resume snapshot.
    pub resumed: usize,
}

/// A named, deterministic campaign target the service can run.
pub trait CampaignModel: Send + Sync {
    /// Stable identifier clients submit jobs against.
    fn id(&self) -> &str;

    /// Opaque hash of everything that shapes a sample's value beyond
    /// `(seed, index)` — folded into the job's [`CampaignFingerprint`].
    fn model_fingerprint(&self) -> u64;

    /// Runs (or resumes) the campaign under `config`. Must be a pure
    /// function of `(master_seed, n, policy)` up to the config's
    /// truncation knobs: deadline/budget/cancel may shorten a run, but
    /// the completed prefix and any finished run's summary are bitwise
    /// reproducible.
    fn run(
        &self,
        master_seed: u64,
        n: usize,
        threads: usize,
        policy: RecoveryPolicy,
        config: &CampaignConfig,
    ) -> Result<ModelRun, CoreError>;
}

/// Synthetic closed-form model: samples are standard normals drawn from
/// the master seed, the "delay" is a smooth nonlinear map of the
/// sample. No circuit work — construction is free and per-sample cost
/// is `hold` (zero for the fast variant), which makes these the models
/// of choice for exercising the service's scheduling, overload, and
/// kill windows without paying for simulation.
pub struct SyntheticModel {
    id: String,
    /// Artificial per-sample hold time (deterministic values regardless).
    hold: Duration,
}

impl SyntheticModel {
    /// A new synthetic model named `id` holding each sample for `hold`.
    pub fn new(id: &str, hold: Duration) -> Self {
        SyntheticModel {
            id: id.to_string(),
            hold,
        }
    }
}

impl CampaignModel for SyntheticModel {
    fn id(&self) -> &str {
        &self.id
    }

    fn model_fingerprint(&self) -> u64 {
        // The hold time is *not* folded in: it shapes wall-clock, never
        // values, and a resume after a config tweak must still be
        // accepted. Only the id (= the value map) identifies the model.
        fingerprint_words([fingerprint_str("synthetic-v1"), fingerprint_str(&self.id)])
    }

    fn run(
        &self,
        master_seed: u64,
        n: usize,
        threads: usize,
        policy: RecoveryPolicy,
        config: &CampaignConfig,
    ) -> Result<ModelRun, CoreError> {
        let mut rng = rng_from_seed(master_seed);
        let samples = normal_samples(&mut rng, n);
        let fingerprint = CampaignFingerprint {
            master_seed,
            n_samples: n,
            policy,
            model: self.model_fingerprint(),
        };
        let hold = self.hold;
        let res = run_campaign(
            &samples,
            threads,
            policy,
            config,
            fingerprint,
            move |&x: &f64, _attempt| -> Result<(f64, SampleStatus), String> {
                if !hold.is_zero() {
                    std::thread::sleep(hold);
                }
                // A smooth, strictly deterministic "delay": positive,
                // sample-dependent, no library calls with platform-
                // dependent rounding beyond IEEE basics.
                let v = 1.0 + 0.25 * x + 0.0625 * x * x;
                Ok((v, SampleStatus::Clean))
            },
        )?;
        Ok(ModelRun {
            summary: res.summary,
            failures: res.failures,
            verdict: res.verdict,
            evaluated: res.evaluated,
            resumed: res.resumed,
        })
    }
}

/// A real framework path: `cells.len()` stages with `elems` linear
/// elements between them, evaluated through the Table-1 flow. The
/// [`PathModel`] is built lazily on first run (construction costs real
/// time) and shared across runs of the same registry entry.
pub struct ChainModel {
    id: String,
    spec: PathSpec,
    sources: VariationSources,
    built: OnceLock<Result<PathModel, CoreError>>,
}

impl ChainModel {
    /// A chain of `k` alternating inv/nand2 cells with `elems` linear
    /// elements between stages, using the Table-4 variation sources.
    pub fn new(k: usize, elems: usize) -> Self {
        let cells = (0..k.max(1))
            .map(|i| {
                if i % 2 == 0 {
                    "inv".to_string()
                } else {
                    "nand2".to_string()
                }
            })
            .collect();
        ChainModel {
            id: format!("chain{}@{elems}", k.max(1)),
            spec: PathSpec {
                cells,
                linear_elements_between_stages: elems,
                input_slew: 60e-12,
            },
            sources: VariationSources::example3_table4(),
            built: OnceLock::new(),
        }
    }

    fn model(&self) -> Result<&PathModel, CoreError> {
        self.built
            .get_or_init(|| PathModel::build(&self.spec, &tech_018(), &WireTech::m018()))
            .as_ref()
            .map_err(Clone::clone)
    }
}

impl CampaignModel for ChainModel {
    fn id(&self) -> &str {
        &self.id
    }

    fn model_fingerprint(&self) -> u64 {
        // Spec-derived, not build-derived: the fingerprint must be
        // available (and stable) before the expensive construction runs,
        // because the service dedups submissions by it. The PathModel's
        // own campaign fingerprint also covers engine configuration, but
        // for registry-built chains that is a pure function of the spec.
        let mut words = vec![
            fingerprint_str("chain-v1"),
            self.spec.cells.len() as u64,
            self.spec.linear_elements_between_stages as u64,
            self.spec.input_slew.to_bits(),
        ];
        words.extend(self.spec.cells.iter().map(|c| fingerprint_str(c)));
        fingerprint_words(words)
    }

    fn run(
        &self,
        master_seed: u64,
        n: usize,
        threads: usize,
        policy: RecoveryPolicy,
        config: &CampaignConfig,
    ) -> Result<ModelRun, CoreError> {
        let model = self.model()?;
        let mc =
            model.monte_carlo_campaign(&self.sources, n, master_seed, threads, policy, config)?;
        Ok(ModelRun {
            summary: mc.summary,
            failures: mc.failures,
            verdict: mc.verdict,
            evaluated: mc.evaluated,
            resumed: mc.resumed,
        })
    }
}

/// A chain path served by the stochastic-spectral engine: the same
/// lazily built [`PathModel`] as [`ChainModel`], evaluated through
/// [`PathModel::polynomial_chaos_campaign`] instead of Monte Carlo.
///
/// The job's requested sample count is **ignored for node selection**
/// — the spectral plan fixes the solve count — mirroring how
/// [`SyntheticModel`] excludes its hold time from identity: `n` shapes
/// neither the node set nor the values, so it is not folded into the
/// fingerprint either. A finished run reports the deterministic
/// surrogate summary; a truncated run reports the partial node-delay
/// summary and a resumable verdict.
pub struct SpectralChainModel {
    id: String,
    chain: ChainModel,
    config: SpectralConfig,
}

impl SpectralChainModel {
    /// A spectral engine over the same path as
    /// [`ChainModel::new`]`(k, elems)`, under `config`.
    pub fn new(k: usize, elems: usize, config: SpectralConfig) -> Self {
        SpectralChainModel {
            id: format!("gpc-chain{}@{elems}", k.max(1)),
            chain: ChainModel::new(k, elems),
            config,
        }
    }
}

impl CampaignModel for SpectralChainModel {
    fn id(&self) -> &str {
        &self.id
    }

    fn model_fingerprint(&self) -> u64 {
        fingerprint_words([
            fingerprint_str("gpc-chain-v1"),
            self.chain.model_fingerprint(),
            self.config.order as u64,
            self.config.level as u64,
            fingerprint_str(self.config.grid.name()),
        ])
    }

    fn run(
        &self,
        master_seed: u64,
        _n: usize,
        threads: usize,
        policy: RecoveryPolicy,
        config: &CampaignConfig,
    ) -> Result<ModelRun, CoreError> {
        let model = self.chain.model()?;
        let pc = model.polynomial_chaos_campaign(
            &self.chain.sources,
            self.config,
            master_seed,
            threads,
            policy,
            config,
        )?;
        let summary = match &pc.result {
            Some(r) => r.surrogate_summary,
            None => pc.node_summary,
        };
        Ok(ModelRun {
            summary,
            failures: 0,
            verdict: pc.verdict,
            evaluated: pc.evaluated,
            resumed: pc.resumed,
        })
    }
}

/// Maps model ids to models. Deterministic iteration order (sorted by
/// id) so listings are stable.
#[derive(Default)]
pub struct ModelRegistry {
    models: BTreeMap<String, Arc<dyn CampaignModel>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The registry every serve binary starts from: the synthetic pair
    /// plus a small and a medium real chain.
    pub fn with_builtins() -> Self {
        let mut r = Self::new();
        r.register(Arc::new(SyntheticModel::new("demo-fast", Duration::ZERO)));
        r.register(Arc::new(SyntheticModel::new(
            "demo-slow",
            Duration::from_millis(25),
        )));
        r.register(Arc::new(ChainModel::new(3, 10)));
        r.register(Arc::new(ChainModel::new(5, 10)));
        r.register(Arc::new(SpectralChainModel::new(
            3,
            10,
            SpectralConfig::stochastic_testing(2),
        )));
        r
    }

    /// Adds (or replaces) a model under its own id.
    pub fn register(&mut self, model: Arc<dyn CampaignModel>) {
        self.models.insert(model.id().to_string(), model);
    }

    /// Looks a model up by id.
    pub fn get(&self, id: &str) -> Option<Arc<dyn CampaignModel>> {
        self.models.get(id).cloned()
    }

    /// Registered ids, sorted.
    pub fn ids(&self) -> Vec<String> {
        self.models.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_resolves_and_lists_sorted() {
        let r = ModelRegistry::with_builtins();
        let ids = r.ids();
        assert!(ids.contains(&"demo-fast".to_string()));
        assert!(ids.contains(&"chain3@10".to_string()));
        assert!(ids.contains(&"gpc-chain3@10".to_string()));
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
        assert!(r.get("demo-slow").is_some());
        assert!(r.get("no-such-model").is_none());
    }

    #[test]
    fn synthetic_model_is_deterministic_across_threads_and_resume() {
        let m = SyntheticModel::new("demo-fast", Duration::ZERO);
        let policy = RecoveryPolicy::default();
        let clean = m.run(7, 40, 1, policy, &CampaignConfig::default()).unwrap();
        assert_eq!(clean.summary.n, 40);
        assert_eq!(clean.failures, 0);
        let par = m.run(7, 40, 4, policy, &CampaignConfig::default()).unwrap();
        assert_eq!(clean.summary.mean.to_bits(), par.summary.mean.to_bits());
        assert_eq!(clean.summary.std.to_bits(), par.summary.std.to_bits());

        // Interrupt at 13 samples, then resume: bitwise-identical.
        let path =
            std::env::temp_dir().join(format!("linvar-registry-unit-{}.ckpt", std::process::id()));
        let cut = m
            .run(
                7,
                40,
                2,
                policy,
                &CampaignConfig {
                    checkpoint: Some(path.clone()),
                    sample_budget: Some(13),
                    ..CampaignConfig::default()
                },
            )
            .unwrap();
        assert!(matches!(cut.verdict, CampaignVerdict::Truncated { .. }));
        let resumed = m
            .run(
                7,
                40,
                2,
                policy,
                &CampaignConfig {
                    resume: Some(path.clone()),
                    ..CampaignConfig::default()
                },
            )
            .unwrap();
        assert_eq!(resumed.verdict, CampaignVerdict::Complete);
        assert_eq!(resumed.resumed, 13);
        assert_eq!(clean.summary.mean.to_bits(), resumed.summary.mean.to_bits());
        assert_eq!(clean.summary.std.to_bits(), resumed.summary.std.to_bits());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fingerprints_separate_models_but_not_hold_time() {
        let fast = SyntheticModel::new("demo-fast", Duration::ZERO);
        let slow = SyntheticModel::new("demo-slow", Duration::from_millis(25));
        assert_ne!(fast.model_fingerprint(), slow.model_fingerprint());
        // Same id, different hold: identical values → identical identity.
        let fast_held = SyntheticModel::new("demo-fast", Duration::from_millis(5));
        assert_eq!(fast.model_fingerprint(), fast_held.model_fingerprint());
        assert_ne!(
            ChainModel::new(3, 10).model_fingerprint(),
            ChainModel::new(3, 500).model_fingerprint()
        );
        // Spectral identity separates from MC identity and tracks the
        // plan configuration.
        let st2 = SpectralChainModel::new(3, 10, SpectralConfig::stochastic_testing(2));
        assert_ne!(
            st2.model_fingerprint(),
            ChainModel::new(3, 10).model_fingerprint()
        );
        assert_ne!(
            st2.model_fingerprint(),
            SpectralChainModel::new(3, 10, SpectralConfig::stochastic_testing(1))
                .model_fingerprint()
        );
        assert_eq!(
            ChainModel::new(3, 10).model_fingerprint(),
            ChainModel::new(3, 10).model_fingerprint()
        );
    }
}
