//! SPICE reference flow: the same path stages, simulated in full by the
//! `linvar-spice` baseline.
//!
//! This is the comparator of the paper's Examples 2–3: each stage's
//! transistor-level equivalent (unit driver inverter + the complete,
//! un-reduced interconnect netlist frozen at the parameter sample +
//! receiver load) runs through the conventional Newton/trapezoidal engine.
//! Both engines share the level-1 device model, so accuracy and runtime
//! differences isolate the interconnect-modeling strategy — the point the
//! paper makes under Table 4.

use crate::error::CoreError;
use crate::path::{PathModel, PathSample};
use linvar_circuit::{MosType, Netlist, SourceWaveform};
use linvar_spice::{Transient, TransientOptions};
use linvar_teta::Waveform;

impl PathModel {
    /// Evaluates the path delay at one sample using the SPICE baseline,
    /// stage by stage with waveform propagation — the paper's reference
    /// flow.
    ///
    /// # Errors
    ///
    /// Propagates transient failures ([`linvar_spice::SpiceError`]) and
    /// returns [`CoreError::StageStuck`] when an output never transitions.
    pub fn evaluate_sample_spice(&self, sample: &PathSample) -> Result<f64, CoreError> {
        let vdd = self.vdd();
        let mut input = self.input_waveform();
        let m_path_in = input
            .crossing(vdd / 2.0, true)
            .expect("ramp crosses midpoint");
        let mut offset = 0.0;
        let mut m_out_abs = m_path_in;
        for k in 0..self.stage_count() {
            let rising_out = !input.is_rising();
            let out = self.spice_stage_output(k, &input, sample, rising_out)?;
            let m_out = out.crossing(vdd / 2.0, rising_out).expect("checked above");
            m_out_abs = m_out + offset;
            let s_est = out
                .to_saturated_ramp(0.0, vdd)
                .map(|sr| sr.s)
                .unwrap_or(50e-12);
            let shift = (m_out - 2.0 * s_est).max(0.0);
            // Trim the settled tail so downstream windows stay short, then
            // rebase the transition near the origin.
            input = out.truncated(m_out + 4.0 * s_est).shifted(-shift);
            offset += shift;
        }
        Ok(m_out_abs - m_path_in)
    }

    /// Simulates one path stage through the SPICE baseline: unit driver
    /// inverter + the complete interconnect netlist frozen at the sample,
    /// driven by `input`. Grows the window up to three times if the output
    /// has not settled. This is both a building block of the reference
    /// flow above and the final rung of the per-stage recovery ladder.
    pub(crate) fn spice_stage_output(
        &self,
        k: usize,
        input: &Waveform,
        sample: &PathSample,
        rising_out: bool,
    ) -> Result<Waveform, CoreError> {
        let vdd = self.vdd();
        let tech = &self.tech;
        let load = self.stage_load(k);
        // Assemble the transistor-level stage netlist at this sample.
        let frozen = load.netlist.frozen_at(&sample.wire);
        let mut nl = Netlist::new();
        let vdd_node = nl.node("vdd");
        let in_node = nl.node("stage_in");
        nl.instantiate(&frozen, "", &[])?;
        let near_name = frozen
            .node_name(load.near)
            .expect("near node exists")
            .to_string();
        let far_name = frozen
            .node_name(load.far)
            .expect("far node exists")
            .to_string();
        let near = nl.find_node(&near_name).expect("instantiated");
        nl.add_vsource("Vdd", vdd_node, Netlist::GROUND, SourceWaveform::Dc(vdd))?;
        nl.add_vsource(
            "Vin",
            in_node,
            Netlist::GROUND,
            SourceWaveform::Pwl(input.points().to_vec()),
        )?;
        nl.add_mosfet(
            "MP",
            near,
            in_node,
            vdd_node,
            vdd_node,
            MosType::Pmos,
            &tech.library.pmos_name(),
            tech.wp,
            tech.library.lmin,
        )?;
        nl.add_mosfet(
            "MN",
            near,
            in_node,
            Netlist::GROUND,
            Netlist::GROUND,
            MosType::Nmos,
            &tech.library.nmos_name(),
            tech.wn,
            tech.library.lmin,
        )?;
        let mut t_end = input.end_time() + 1.0e-9;
        for _attempt in 0..3 {
            let mut opts = TransientOptions::new(t_end, 1e-12);
            opts.probes.push(far_name.clone());
            let res = Transient::with_devices(&nl, &tech.library, sample.device, &opts)?.run()?;
            let times = res.times.clone();
            let vals = res.probe(&far_name).expect("probed").to_vec();
            let w = Waveform::from_points(times.into_iter().zip(vals).collect::<Vec<_>>())
                .compress(1e-4 * vdd);
            let settled = (w.final_value() - if rising_out { vdd } else { 0.0 }).abs() < 0.05 * vdd;
            if settled && w.crossing(vdd / 2.0, rising_out).is_some() {
                return Ok(w);
            }
            t_end *= 2.0;
        }
        Err(CoreError::StageStuck { stage: k })
    }
}

#[cfg(test)]
mod tests {
    use crate::path::{PathModel, PathSample, PathSpec};
    use linvar_devices::tech_018;
    use linvar_interconnect::WireTech;

    fn path(n_elem: usize) -> PathModel {
        let spec = PathSpec {
            cells: vec!["inv".into(), "inv".into()],
            linear_elements_between_stages: n_elem,
            input_slew: 50e-12,
        };
        PathModel::build(&spec, &tech_018(), &WireTech::m018()).unwrap()
    }

    #[test]
    fn spice_and_teta_agree_on_nominal_delay() {
        let model = path(10);
        let sample = PathSample::default();
        let d_teta = model.evaluate_sample(&sample).unwrap();
        let d_spice = model.evaluate_sample_spice(&sample).unwrap();
        let rel = (d_teta - d_spice).abs() / d_spice;
        assert!(
            rel < 0.10,
            "teta {d_teta} vs spice {d_spice} ({:.1}% off)",
            rel * 100.0
        );
    }

    #[test]
    fn spice_reference_sees_wire_variation() {
        let model = path(30);
        let mut slow = PathSample::default();
        slow.wire[4] = 1.5; // high resistivity
        let nominal = model.evaluate_sample_spice(&PathSample::default()).unwrap();
        let slowed = model.evaluate_sample_spice(&slow).unwrap();
        assert!(slowed > nominal, "{slowed} vs {nominal}");
    }
}
