//! Critical-path delay statistics (paper §4.3).
//!
//! A [`PathModel`] holds one precharacterized [`StageModel`] per stage —
//! built **once**, since the chord models and therefore the effective
//! loads do not depend on the fluctuating parameters. Two statistics
//! engines run on top:
//!
//! * [`PathModel::monte_carlo`] (§4.3.1) — per sample, the stages are
//!   simulated in topological order and the *full piecewise-linear output
//!   waveform* is propagated to the next stage's input;
//!   [`PathModel::monte_carlo_par`] runs the same analysis across worker
//!   threads with bitwise-identical results (the sample set is a pure
//!   function of the master seed, evaluation is read-only `&self`);
//! * [`PathModel::gradient_analysis`] (§4.3.2) — one nominal pass plus
//!   central-difference perturbations of the input-slew and every
//!   variation source per stage; the saturated-ramp parameters `(M, S)`
//!   and their derivatives chain through eq. (31) and σ(D) follows from
//!   eq. (24).
//!
//! [`StageModel`]: linvar_teta::StageModel

use crate::error::CoreError;
use crate::recovery::{
    DegradationReport, EngineRung, McCampaignResult, McRecoveryResult, McShardedResult,
};
use crate::stage_builder::{build_stage_load, StageLoad, StageLoadSpec};
use linvar_devices::{CellLibrary, DeviceVariation, Technology};
use linvar_interconnect::WireTech;
use linvar_mor::ReductionMethod;
use linvar_stats::{
    fingerprint_str, fingerprint_words, lhs_normal, monte_carlo, monte_carlo_par,
    monte_carlo_par_with_policy, rng_from_seed, run_campaign, run_shard_worker,
    run_sharded_campaign, run_spectral, run_spectral_campaign, sobol_normal_streamed,
    CampaignConfig, CampaignFingerprint, CampaignVerdict, HealthSummary, RecoveryPolicy, SampleRng,
    SampleStatus, ShardConfig, SpectralConfig, SpectralPlan, SpectralRunError, Summary,
};
use linvar_teta::{StageModel, Waveform};
use std::sync::Mutex;

/// Specification of a critical path.
#[derive(Debug, Clone)]
pub struct PathSpec {
    /// Primitive cell name per stage (`inv`, `nand2`, `nand3`, `nor2`,
    /// `nor3`).
    pub cells: Vec<String>,
    /// Linear interconnect elements between consecutive stages (the
    /// Table-4 knob: 10 or 500).
    pub linear_elements_between_stages: usize,
    /// Transition time of the saturated ramp driving the path input (s).
    pub input_slew: f64,
}

/// Standard deviations of the variation sources, in normalized units
/// (1 normalized unit = one 3σ manufacturing tolerance, so a source at its
/// specified tolerance has σ = 1/3 ≈ 0.33 — the paper's `std(DL) = 0.33`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationSources {
    /// σ of the five wire parameters (W, T, S, H, ρ).
    pub wire: [f64; 5],
    /// σ of the channel-length reduction source `DL`.
    pub dl: f64,
    /// σ of the threshold source `VT`.
    pub vt: f64,
}

impl VariationSources {
    /// The paper's Example-3 configuration: device sources only.
    pub fn example3(dl: f64, vt: f64) -> Self {
        VariationSources {
            wire: [0.0; 5],
            dl,
            vt,
        }
    }

    /// The Example-3 Table-4 sampling: channel length plus the W and H
    /// wire parameters, each at the standard normalized σ.
    pub fn example3_table4() -> Self {
        VariationSources {
            wire: [1.0 / 3.0, 0.0, 0.0, 1.0 / 3.0, 0.0],
            dl: 1.0 / 3.0,
            vt: 0.0,
        }
    }

    /// All seven sources at a common σ.
    pub fn uniform(sigma: f64) -> Self {
        VariationSources {
            wire: [sigma; 5],
            dl: sigma,
            vt: sigma,
        }
    }

    /// Active sources as `(label, σ)` pairs in canonical order
    /// (W, T, S, H, rho, DL, VT).
    pub fn active(&self) -> Vec<(&'static str, f64)> {
        const WIRE_NAMES: [&str; 5] = ["W", "T", "S", "H", "rho"];
        let mut out = Vec::new();
        for (i, &s) in self.wire.iter().enumerate() {
            if s > 0.0 {
                out.push((WIRE_NAMES[i], s));
            }
        }
        if self.dl > 0.0 {
            out.push(("DL", self.dl));
        }
        if self.vt > 0.0 {
            out.push(("VT", self.vt));
        }
        out
    }
}

/// One sampled point of the variation space.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PathSample {
    /// Wire parameter values (normalized).
    pub wire: [f64; 5],
    /// Device variation values.
    pub device: DeviceVariation,
}

/// Result of the Monte-Carlo path analysis.
#[derive(Debug, Clone)]
pub struct McPathResult {
    /// Path delay per successful sample (s), in sample-index order.
    pub delays: Vec<f64>,
    /// Summary statistics.
    pub summary: Summary,
    /// Samples whose evaluation failed.
    pub failures: usize,
    /// Indices of the failed samples, ascending.
    pub failed_indices: Vec<usize>,
    /// Diagnostic of the lowest-index failure, if any.
    pub first_error: Option<String>,
}

/// Result of the Gradient-Analysis path analysis.
#[derive(Debug, Clone)]
pub struct GaPathResult {
    /// Nominal path delay (s) — the GA mean estimate.
    pub nominal_delay: f64,
    /// Standard deviation from eq. (24) (s).
    pub std: f64,
    /// Path-delay sensitivity per active source (s per normalized unit),
    /// aligned with [`VariationSources::active`].
    pub sensitivities: Vec<f64>,
    /// Number of stage simulations performed.
    pub evaluations: usize,
}

/// Result of the polynomial-chaos path analysis.
#[derive(Debug, Clone)]
pub struct PcPathResult {
    /// Surrogate mean delay (s) — the constant gPC coefficient.
    pub mean: f64,
    /// Surrogate delay standard deviation (s) — Parseval over the
    /// non-constant coefficients.
    pub std: f64,
    /// `(probability, delay)` quantiles of the surrogate at
    /// [`linvar_stats::QUANTILE_PROBS`].
    pub quantiles: Vec<(f64, f64)>,
    /// gPC coefficients in the plan's basis order.
    pub coefficients: Vec<f64>,
    /// Raw path delays at the collocation/testing nodes, node order.
    pub node_delays: Vec<f64>,
    /// Model solves spent (== the plan's node count).
    pub nodes_evaluated: usize,
    /// Statistics of the deterministic surrogate sample behind the
    /// quantiles.
    pub surrogate_summary: Summary,
    /// Run-level recovery-health tally over the nodes.
    pub health: HealthSummary,
}

/// Result of a durable polynomial-chaos campaign.
#[derive(Debug, Clone)]
pub struct PcCampaignResult {
    /// The completed spectral result; `None` when the campaign was
    /// truncated mid-grid (resume to finish).
    pub result: Option<PcPathResult>,
    /// Statistics over the raw completed node delays (partial when
    /// truncated). Diagnostic only — the spectral estimates live in
    /// `result`.
    pub node_summary: Summary,
    /// Complete, or truncated-but-resumable.
    pub verdict: CampaignVerdict,
    /// Completed nodes (resumed + evaluated this run).
    pub completed: usize,
    /// Nodes restored from the resume snapshot.
    pub resumed: usize,
    /// Nodes evaluated in this run.
    pub evaluated: usize,
    /// Snapshots written in this run.
    pub checkpoints_written: usize,
}

struct StageEntry {
    model: StageModel,
    /// Far-end port position in the stage's port list.
    out_port: usize,
    /// The raw load (kept for the SPICE reference flow).
    load: StageLoad,
    cell: String,
}

/// A precharacterized critical path.
pub struct PathModel {
    stages: Vec<StageEntry>,
    vdd: f64,
    input_slew: f64,
    pub(crate) tech: Technology,
}

// The parallel Monte-Carlo driver shares one PathModel across worker
// threads with `&self` evaluation. Regressing these bounds (e.g. by adding
// interior mutability to a stage model) must be a compile error, not a
// latent data race.
const _: () = {
    const fn assert_sync_send<T: Sync + Send>() {}
    assert_sync_send::<PathModel>();
    assert_sync_send::<StageEntry>();
    assert_sync_send::<McPathResult>();
};

impl PathModel {
    /// Builds and precharacterizes the path: one effective-load vROM per
    /// stage (PRIMA, order 6 — small enough to be cheap, rich enough for
    /// RC lines of hundreds of segments).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadSpec`] for an empty path or unknown cells
    /// and propagates characterization failures.
    pub fn build(spec: &PathSpec, tech: &Technology, wire: &WireTech) -> Result<Self, CoreError> {
        if spec.cells.is_empty() {
            return Err(CoreError::BadSpec("path has no stages".into()));
        }
        if spec.input_slew <= 0.0 || spec.input_slew.is_nan() {
            return Err(CoreError::BadSpec("input slew must be positive".into()));
        }
        let cells = CellLibrary::standard(tech.clone());
        let mut stages = Vec::with_capacity(spec.cells.len());
        // Stages with the same (driver, receiver) pair share an identical
        // effective load — characterize each distinct pair once. Long
        // ISCAS paths reuse a handful of pairs, so this cuts construction
        // time by an order of magnitude.
        let mut cache: std::collections::HashMap<(String, String), (StageModel, StageLoad, usize)> =
            std::collections::HashMap::new();
        for (k, cell) in spec.cells.iter().enumerate() {
            let receiver = spec
                .cells
                .get(k + 1)
                .cloned()
                .unwrap_or_else(|| "inv".to_string());
            let key = (cell.clone(), receiver.clone());
            if !cache.contains_key(&key) {
                let load = build_stage_load(
                    &StageLoadSpec {
                        linear_elements: spec.linear_elements_between_stages,
                        driver_cell: cell.clone(),
                        receiver_cell: receiver,
                    },
                    &cells,
                    wire,
                )?;
                let model = StageModel::build(
                    &load.netlist,
                    &[load.near],
                    tech,
                    ReductionMethod::Prima { order: 6 },
                    0.02,
                )?;
                let out_port = load
                    .netlist
                    .ports()
                    .iter()
                    .position(|p| *p == load.far)
                    .expect("far end is a port");
                cache.insert(key.clone(), (model, load, out_port));
            }
            let (model, load, out_port) = cache.get(&key).expect("just inserted").clone();
            stages.push(StageEntry {
                model,
                out_port,
                load,
                cell: cell.clone(),
            });
        }
        Ok(PathModel {
            stages,
            vdd: tech.library.vdd,
            input_slew: spec.input_slew,
            tech: tech.clone(),
        })
    }

    /// Number of stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Supply voltage.
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// Cell names along the path.
    pub fn cells(&self) -> Vec<&str> {
        self.stages.iter().map(|s| s.cell.as_str()).collect()
    }

    /// The raw load of stage `k` (for the SPICE reference flow).
    pub(crate) fn stage_load(&self, k: usize) -> &StageLoad {
        &self.stages[k].load
    }

    /// The path input waveform: a rising saturated ramp.
    pub fn input_waveform(&self) -> Waveform {
        Waveform::ramp(0.0, self.vdd, self.input_slew, self.input_slew)
    }

    /// Simulation timestep used for stage evaluations.
    fn stage_h(&self) -> f64 {
        (self.input_slew / 50.0).clamp(0.2e-12, 1e-12)
    }

    /// Evaluates the path delay at one variation sample with the TETA
    /// flow, propagating full waveforms (§4.3.1).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::StageStuck`] if a stage output cannot complete
    /// its transition even with an enlarged window, or propagates solver
    /// failures.
    pub fn evaluate_sample(&self, sample: &PathSample) -> Result<f64, CoreError> {
        let _span = linvar_metrics::timer(linvar_metrics::Phase::SampleEval);
        let mut input = self.input_waveform();
        let m_path_in = input
            .crossing(self.vdd / 2.0, true)
            .expect("ramp crosses midpoint");
        let mut offset = 0.0; // accumulated rebasing shifts
        let mut m_out_abs = m_path_in;
        let h = self.stage_h();
        for (k, stage) in self.stages.iter().enumerate() {
            let rising_out = !input.is_rising();
            let mut t_end = input.end_time() + 1.0e-9;
            let mut out = None;
            for _attempt in 0..3 {
                let mut res = stage.model.evaluate(
                    &sample.wire,
                    sample.device,
                    std::slice::from_ref(&input),
                    h,
                    t_end,
                )?;
                let w = &res.waveforms[stage.out_port];
                let settled = (w.final_value() - if rising_out { self.vdd } else { 0.0 }).abs()
                    < 0.05 * self.vdd;
                if settled && w.crossing(self.vdd / 2.0, rising_out).is_some() {
                    // Take the winning waveform out of the result instead of
                    // cloning its point vector; the rest of `res` is dropped.
                    out = Some(res.waveforms.swap_remove(stage.out_port));
                    break;
                }
                t_end *= 2.0;
            }
            let out = out.ok_or(CoreError::StageStuck { stage: k })?;
            let m_out = out
                .crossing(self.vdd / 2.0, rising_out)
                .expect("checked above");
            m_out_abs = m_out + offset;
            // Rebase the next stage's input so its transition sits near the
            // origin, keeping simulation windows short.
            let s_est = out
                .to_saturated_ramp(0.0, self.vdd)
                .map(|sr| sr.s)
                .unwrap_or(self.input_slew);
            let shift = (m_out - 2.0 * s_est).max(0.0);
            // Trim the settled tail so downstream windows stay short, then
            // rebase the transition near the origin.
            input = out.truncated(m_out + 4.0 * s_est).shifted(-shift);
            offset += shift;
        }
        Ok(m_out_abs - m_path_in)
    }

    /// Draws `n` variation samples (LHS with normal marginals).
    pub fn draw_samples(
        &self,
        sources: &VariationSources,
        n: usize,
        rng: &mut SampleRng,
    ) -> Vec<PathSample> {
        let raw = lhs_normal(rng, n, 7, 1.0);
        raw.into_iter().map(|z| scale_sample(sources, &z)).collect()
    }

    /// Draws `n` samples from the Sobol quasi-MC sequence instead of
    /// LHS: the same 7-dimensional standard-normal scaling as
    /// [`PathModel::draw_samples`], but over the digitally-shifted Sobol
    /// points of [`linvar_stats::sobol_point`]. Each sample is a pure
    /// function of `(master_seed, index)`, so the set composes with
    /// every parallel/resume contract exactly as the LHS stream does.
    pub fn draw_samples_sobol(
        &self,
        sources: &VariationSources,
        n: usize,
        master_seed: u64,
    ) -> Vec<PathSample> {
        let raw = sobol_normal_streamed(master_seed, n, 7, 1.0);
        raw.into_iter().map(|z| scale_sample(sources, &z)).collect()
    }

    /// Monte-Carlo path-delay analysis (§4.3.1).
    ///
    /// # Errors
    ///
    /// Individual sample failures are counted in the result; this method
    /// itself only fails if *every* sample fails.
    pub fn monte_carlo(
        &self,
        sources: &VariationSources,
        n: usize,
        rng: &mut SampleRng,
    ) -> Result<McPathResult, CoreError> {
        let samples = self.draw_samples(sources, n, rng);
        let res = monte_carlo(&samples, |s| self.evaluate_sample(s));
        Self::mc_result(res)
    }

    /// Deterministic parallel Monte-Carlo path-delay analysis.
    ///
    /// Samples are drawn exactly as [`PathModel::monte_carlo`] would with
    /// `rng_from_seed(master_seed)`, then evaluated across `threads`
    /// scoped workers (`0` = auto: `LINVAR_THREADS`, then available
    /// parallelism). Stage models are read-only during evaluation
    /// ([`PathModel`] is `Sync` — statically asserted below), so the
    /// result is **bitwise-identical** to the serial driver for the same
    /// master seed, at any thread count.
    ///
    /// # Errors
    ///
    /// Individual sample failures are counted in the result; this method
    /// itself only fails if *every* sample fails.
    pub fn monte_carlo_par(
        &self,
        sources: &VariationSources,
        n: usize,
        master_seed: u64,
        threads: usize,
    ) -> Result<McPathResult, CoreError> {
        let mut rng = rng_from_seed(master_seed);
        let samples = self.draw_samples(sources, n, &mut rng);
        let res = monte_carlo_par(&samples, threads, |s| self.evaluate_sample(s));
        Self::mc_result(res)
    }

    /// [`PathModel::monte_carlo_par`] over the Sobol quasi-MC sample
    /// stream ([`PathModel::draw_samples_sobol`]) instead of LHS — the
    /// cheap variance-reduction rung for plain MC. Bitwise-identical at
    /// any thread count, like every other engine.
    ///
    /// # Errors
    ///
    /// Individual sample failures are counted in the result; this method
    /// itself only fails if *every* sample fails.
    pub fn monte_carlo_par_sobol(
        &self,
        sources: &VariationSources,
        n: usize,
        master_seed: u64,
        threads: usize,
    ) -> Result<McPathResult, CoreError> {
        let samples = self.draw_samples_sobol(sources, n, master_seed);
        let res = monte_carlo_par(&samples, threads, |s| self.evaluate_sample(s));
        Self::mc_result(res)
    }

    fn mc_result(res: linvar_stats::MonteCarloResult) -> Result<McPathResult, CoreError> {
        if res.values.is_empty() {
            return Err(CoreError::BadSpec(match &res.first_error {
                Some(diag) => format!("all monte-carlo samples failed; first error: {diag}"),
                None => "all monte-carlo samples failed".to_string(),
            }));
        }
        Ok(McPathResult {
            delays: res.values,
            summary: res.summary,
            failures: res.failures,
            failed_indices: res.failed_indices,
            first_error: res.first_error,
        })
    }

    /// Evaluates the path delay at one sample under the per-stage
    /// failure-recovery ladder.
    ///
    /// Each stage runs [`linvar_teta::StageModel::evaluate_recovering`]
    /// (vROM with order degradation, SC retry schedule, exact reduction,
    /// unreduced MNA); if the whole TETA ladder is exhausted for a stage
    /// and `spice_fallback` is set, that stage alone is served by the
    /// baseline SPICE engine. The returned [`DegradationReport`] names the
    /// most severe rung used along the path (`sample_index` is left 0 for
    /// the caller to fill).
    ///
    /// # Errors
    ///
    /// Returns the stage's terminal error when the ladder is exhausted and
    /// SPICE fallback is disabled (or itself fails).
    pub fn evaluate_sample_recovering(
        &self,
        sample: &PathSample,
        spice_fallback: bool,
    ) -> Result<(f64, DegradationReport), CoreError> {
        let _span = linvar_metrics::timer(linvar_metrics::Phase::SampleEval);
        let mut input = self.input_waveform();
        let m_path_in = input
            .crossing(self.vdd / 2.0, true)
            .expect("ramp crosses midpoint");
        let mut offset = 0.0;
        let mut m_out_abs = m_path_in;
        let h = self.stage_h();
        let mut report = DegradationReport::clean();
        for (k, stage) in self.stages.iter().enumerate() {
            let rising_out = !input.is_rising();
            let mut t_end = input.end_time() + 1.0e-9;
            let mut out = None;
            let mut stage_rec = None;
            let mut ladder_err: Option<CoreError> = None;
            for _attempt in 0..3 {
                match stage.model.evaluate_recovering(
                    &sample.wire,
                    sample.device,
                    std::slice::from_ref(&input),
                    h,
                    t_end,
                ) {
                    Ok((mut res, rec)) => {
                        let w = &res.waveforms[stage.out_port];
                        let settled = (w.final_value() - if rising_out { self.vdd } else { 0.0 })
                            .abs()
                            < 0.05 * self.vdd;
                        if settled && w.crossing(self.vdd / 2.0, rising_out).is_some() {
                            out = Some(res.waveforms.swap_remove(stage.out_port));
                            stage_rec = Some(rec);
                            break;
                        }
                        t_end *= 2.0;
                    }
                    Err(e) => {
                        ladder_err = Some(e.into());
                        break;
                    }
                }
            }
            let out = match (out, spice_fallback) {
                (Some(w), _) => w,
                (None, true) => {
                    let w = self.spice_stage_output(k, &input, sample, rising_out)?;
                    linvar_metrics::incr(linvar_metrics::Counter::StageSpiceRescues);
                    report.rung = report.rung.worst(EngineRung::SpiceBaseline);
                    report.notes.push(format!(
                        "stage {k} ({}): served by baseline SPICE",
                        stage.cell
                    ));
                    w
                }
                (None, false) => {
                    return Err(ladder_err.unwrap_or(CoreError::StageStuck { stage: k }))
                }
            };
            if let Some(rec) = stage_rec {
                report.sc_retries += rec.sc_retries;
                let rung = EngineRung::from_stage(&rec);
                report.rung = report.rung.worst(rung);
                if !rec.was_clean() {
                    report.notes.push(format!(
                        "stage {k} ({}): {rung}, order {}→{}, {} SC retr{}",
                        stage.cell,
                        rec.original_order,
                        rec.served_order,
                        rec.sc_retries,
                        if rec.sc_retries == 1 { "y" } else { "ies" }
                    ));
                }
            }
            let m_out = out
                .crossing(self.vdd / 2.0, rising_out)
                .expect("checked above");
            m_out_abs = m_out + offset;
            let s_est = out
                .to_saturated_ramp(0.0, self.vdd)
                .map(|sr| sr.s)
                .unwrap_or(self.input_slew);
            let shift = (m_out - 2.0 * s_est).max(0.0);
            input = out.truncated(m_out + 4.0 * s_est).shifted(-shift);
            offset += shift;
        }
        Ok((m_out_abs - m_path_in, report))
    }

    /// Deterministic parallel Monte-Carlo with the failure-recovery
    /// ladder.
    ///
    /// Attempt mapping per sample: attempt 0 is the fast path
    /// ([`PathModel::evaluate_sample`]); attempts `1..=max_retries` run
    /// the per-stage TETA recovery ladder
    /// ([`PathModel::evaluate_sample_recovering`], with per-stage SPICE
    /// fallback when the policy allows fallback); the final fallback
    /// attempt runs the whole path through the baseline SPICE engine.
    /// Every assisted sample gets a [`DegradationReport`]; the run-level
    /// health tally distinguishes clean / recovered / degraded / failed.
    ///
    /// Inherits both determinism contracts: the sample set is a pure
    /// function of `master_seed`, every attempt is a pure function of
    /// `(sample, attempt)`, and results merge in sample-index order — so
    /// the result (reports included) is **bitwise-identical at any thread
    /// count**, fail-fast truncation included.
    ///
    /// Unlike [`PathModel::monte_carlo_par`], an all-failed run is not an
    /// error: the health summary *is* the answer.
    ///
    /// # Errors
    ///
    /// Currently infallible beyond sample bookkeeping; returns `Result`
    /// so stricter run-level gates can be added without an API break.
    pub fn monte_carlo_par_recovering(
        &self,
        sources: &VariationSources,
        n: usize,
        master_seed: u64,
        threads: usize,
        policy: RecoveryPolicy,
    ) -> Result<McRecoveryResult, CoreError> {
        let mut rng = rng_from_seed(master_seed);
        let samples = self.draw_samples(sources, n, &mut rng);
        let indexed: Vec<(usize, PathSample)> = samples.into_iter().enumerate().collect();
        // Side channel for the degradation reports: keyed by sample index,
        // written at most once per sample (only the succeeding attempt
        // writes), sorted after the merge — deterministic because each
        // report is a pure function of its sample.
        let reports: Mutex<Vec<DegradationReport>> = Mutex::new(Vec::new());
        let res = monte_carlo_par_with_policy(
            &indexed,
            threads,
            policy,
            |&(idx, ref sample), attempt| -> Result<(f64, SampleStatus), String> {
                if attempt == 0 {
                    return self
                        .evaluate_sample(sample)
                        .map(|d| {
                            linvar_metrics::incr(linvar_metrics::Counter::RungVariationalRom);
                            (d, SampleStatus::Clean)
                        })
                        .map_err(|e| e.to_string());
                }
                if policy.is_fallback_attempt(attempt) {
                    let d = self
                        .evaluate_sample_spice(sample)
                        .map_err(|e| e.to_string())?;
                    let mut report = DegradationReport::clean();
                    report.sample_index = idx;
                    report.rung = EngineRung::SpiceBaseline;
                    report
                        .notes
                        .push("whole path served by baseline SPICE".into());
                    reports.lock().expect("reports lock").push(report);
                    linvar_metrics::incr(linvar_metrics::Counter::RungSpiceBaseline);
                    return Ok((d, SampleStatus::Degraded));
                }
                let (d, mut report) = self
                    .evaluate_sample_recovering(sample, policy.allow_fallback)
                    .map_err(|e| e.to_string())?;
                report.sample_index = idx;
                let status = report.status();
                linvar_metrics::incr(rung_counter(report.rung));
                if !report.is_clean() {
                    reports.lock().expect("reports lock").push(report);
                }
                Ok((d, status))
            },
        );
        let mut reports = reports.into_inner().expect("workers joined");
        // Drop reports for samples beyond a fail-fast truncation point
        // (they were evaluated before the cancellation propagated but are
        // not part of the run's output).
        if let Some(cut) = res.truncated_at {
            reports.retain(|r| r.sample_index <= cut);
        }
        reports.sort_by_key(|r| r.sample_index);
        Ok(McRecoveryResult {
            delays: res.values,
            summary: res.summary,
            failures: res.failures,
            failed_indices: res.failed_indices,
            first_error: res.first_error,
            sample_health: res.sample_health,
            health: res.health,
            truncated_at: res.truncated_at,
            reports,
        })
    }

    /// Fingerprint of everything (beyond seed and sample count) that
    /// shapes a sample's delay: the cells along the path, the stage
    /// count, input slew, supply, and the σ of every variation source.
    ///
    /// Stored in campaign checkpoints so a snapshot taken against one
    /// path/source configuration refuses to resume against another.
    pub fn campaign_fingerprint(&self, sources: &VariationSources) -> u64 {
        let mut words = Vec::with_capacity(self.stages.len() + 10);
        for stage in &self.stages {
            words.push(fingerprint_str(&stage.cell));
        }
        words.push(self.stages.len() as u64);
        words.push(self.input_slew.to_bits());
        words.push(self.vdd.to_bits());
        for &s in &sources.wire {
            words.push(s.to_bits());
        }
        words.push(sources.dl.to_bits());
        words.push(sources.vt.to_bits());
        fingerprint_words(words)
    }

    /// Durable Monte-Carlo path-delay campaign: the recovering parallel
    /// driver ([`PathModel::monte_carlo_par_recovering`], same attempt
    /// ladder) wrapped in the checkpoint/resume/deadline machinery of
    /// [`linvar_stats::campaign`].
    ///
    /// * `config.checkpoint` — atomic, checksummed snapshots of every
    ///   completed sample, written periodically and once more before
    ///   returning;
    /// * `config.resume` — restore completed samples from a snapshot and
    ///   evaluate only the missing indices. The snapshot's seed, sample
    ///   count, policy and model fingerprints must match
    ///   ([`PathModel::campaign_fingerprint`]) or the resume refuses with
    ///   a typed error. The merged result is **bitwise-identical** to an
    ///   uninterrupted run at any thread count;
    /// * `config.deadline` / `config.sample_budget` — graceful
    ///   truncation: in-flight samples finish, the result carries valid
    ///   partial statistics, a `Truncated` verdict, and a resumable final
    ///   snapshot;
    /// * `config.sample_timeout` — the cooperative watchdog: an attempt
    ///   overrunning the soft budget floors the sample's health to
    ///   [`SampleStatus::TimedOut`] (an overrunning *failure* falls down
    ///   the recovery ladder instead of stalling the queue).
    ///
    /// `policy.fail_fast` is ignored by campaigns — their answer to a
    /// failing sample is quarantine-and-checkpoint, not truncation.
    ///
    /// # Errors
    ///
    /// Checkpoint load/validation failures and the final snapshot write,
    /// as [`CoreError::Checkpoint`].
    pub fn monte_carlo_campaign(
        &self,
        sources: &VariationSources,
        n: usize,
        master_seed: u64,
        threads: usize,
        policy: RecoveryPolicy,
        config: &CampaignConfig,
    ) -> Result<McCampaignResult, CoreError> {
        let mut rng = rng_from_seed(master_seed);
        let samples = self.draw_samples(sources, n, &mut rng);
        let model = self.campaign_fingerprint(sources);
        self.run_path_campaign(samples, master_seed, threads, policy, config, model)
    }

    /// [`PathModel::monte_carlo_campaign`] over the Sobol quasi-MC
    /// sample stream ([`PathModel::draw_samples_sobol`]) instead of LHS.
    /// The checkpoint fingerprint folds the sample-source tag, so a
    /// snapshot taken under one stream refuses to resume under the
    /// other.
    ///
    /// # Errors
    ///
    /// As [`PathModel::monte_carlo_campaign`].
    pub fn monte_carlo_campaign_sobol(
        &self,
        sources: &VariationSources,
        n: usize,
        master_seed: u64,
        threads: usize,
        policy: RecoveryPolicy,
        config: &CampaignConfig,
    ) -> Result<McCampaignResult, CoreError> {
        let samples = self.draw_samples_sobol(sources, n, master_seed);
        let model = fingerprint_words([
            self.campaign_fingerprint(sources),
            fingerprint_str("sobol-v1"),
        ]);
        self.run_path_campaign(samples, master_seed, threads, policy, config, model)
    }

    /// Shared campaign tail of the LHS and Sobol sample streams: index
    /// the samples, run the durable campaign over the shared attempt
    /// ladder ([`PathModel::campaign_eval`]), collect the degradation
    /// reports.
    fn run_path_campaign(
        &self,
        samples: Vec<PathSample>,
        master_seed: u64,
        threads: usize,
        policy: RecoveryPolicy,
        config: &CampaignConfig,
        model: u64,
    ) -> Result<McCampaignResult, CoreError> {
        let n = samples.len();
        let indexed: Vec<(usize, PathSample)> = samples.into_iter().enumerate().collect();
        let fingerprint = CampaignFingerprint {
            master_seed,
            n_samples: n,
            policy,
            model,
        };
        // Report side channel, as in `monte_carlo_par_recovering`: written
        // at most once per sample evaluated this run, sorted after the
        // merge. Resumed samples carry no report (checkpoints persist
        // status/attempts, not notes).
        let reports: Mutex<Vec<DegradationReport>> = Mutex::new(Vec::new());
        let res = run_campaign(
            &indexed,
            threads,
            policy,
            config,
            fingerprint,
            |s: &(usize, PathSample), attempt| self.campaign_eval(policy, &reports, s, attempt),
        )?;
        let mut reports = reports.into_inner().expect("workers joined");
        reports.sort_by_key(|r| r.sample_index);
        Ok(McCampaignResult {
            delays: res.values,
            summary: res.summary,
            failures: res.failures,
            failed_indices: res.failed_indices,
            first_error: res.first_error,
            sample_health: res.sample_health,
            health: res.health,
            verdict: res.verdict,
            completed: res.completed,
            resumed: res.resumed,
            evaluated: res.evaluated,
            checkpoints_written: res.checkpoints_written,
            reports,
        })
    }

    /// The campaign attempt ladder for one globally-indexed sample:
    /// attempt 0 on the vROM fast path, middle attempts through the
    /// per-stage recovery ladder, the final attempt on the whole-path
    /// SPICE baseline. Shared verbatim by [`PathModel::monte_carlo_campaign`],
    /// [`PathModel::monte_carlo_sharded`] and
    /// [`PathModel::monte_carlo_shard_worker`] — structural identity of
    /// the evaluator is one half of the sharded bitwise-identity
    /// contract (the other is the index-ordered merge).
    fn campaign_eval(
        &self,
        policy: RecoveryPolicy,
        reports: &Mutex<Vec<DegradationReport>>,
        s: &(usize, PathSample),
        attempt: usize,
    ) -> Result<(f64, SampleStatus), String> {
        let (idx, ref sample) = *s;
        if attempt == 0 {
            return self
                .evaluate_sample(sample)
                .map(|d| {
                    linvar_metrics::incr(linvar_metrics::Counter::RungVariationalRom);
                    (d, SampleStatus::Clean)
                })
                .map_err(|e| e.to_string());
        }
        if policy.is_fallback_attempt(attempt) {
            let d = self
                .evaluate_sample_spice(sample)
                .map_err(|e| e.to_string())?;
            let mut report = DegradationReport::clean();
            report.sample_index = idx;
            report.rung = EngineRung::SpiceBaseline;
            report
                .notes
                .push("whole path served by baseline SPICE".into());
            reports.lock().expect("reports lock").push(report);
            linvar_metrics::incr(linvar_metrics::Counter::RungSpiceBaseline);
            return Ok((d, SampleStatus::Degraded));
        }
        let (d, mut report) = self
            .evaluate_sample_recovering(sample, policy.allow_fallback)
            .map_err(|e| e.to_string())?;
        report.sample_index = idx;
        let status = report.status();
        linvar_metrics::incr(rung_counter(report.rung));
        if !report.is_clean() {
            reports.lock().expect("reports lock").push(report);
        }
        Ok((d, status))
    }

    /// Hermite-basis polynomial-chaos path-delay analysis: builds a
    /// [`SpectralPlan`] over the **active** variation sources (canonical
    /// [`VariationSources::active`] order defines the germ dimensions),
    /// evaluates the path at each collocation/testing node through the
    /// same attempt ladder as the campaigns
    /// ([`PathModel::campaign_eval`]), and solves for the coefficients,
    /// moments and surrogate quantiles. A node in standard-normal germ
    /// coordinates maps to a sample by scaling each coordinate with its
    /// source's σ.
    ///
    /// `master_seed` seeds only the quantile surrogate stream — the node
    /// set is seed-free — but is kept in the signature so engines swap
    /// interchangeably in the bench bins.
    ///
    /// Bitwise-identical at any thread count.
    ///
    /// # Errors
    ///
    /// A source set with no active sources or an unbuildable plan as
    /// [`CoreError::Spectral`] ([`CoreError::BadSpec`] for the former);
    /// node failures and solve failures as [`CoreError::Spectral`].
    pub fn polynomial_chaos(
        &self,
        sources: &VariationSources,
        config: SpectralConfig,
        master_seed: u64,
        threads: usize,
        policy: RecoveryPolicy,
    ) -> Result<PcPathResult, CoreError> {
        let active = sources.active();
        if active.is_empty() {
            return Err(CoreError::BadSpec(
                "polynomial chaos needs at least one active variation source".into(),
            ));
        }
        let plan = SpectralPlan::build(active.len(), config)?;
        let reports: Mutex<Vec<DegradationReport>> = Mutex::new(Vec::new());
        let res = run_spectral(&plan, threads, policy, master_seed, |node, attempt| {
            let s = (0usize, sample_at_node(&active, node));
            self.campaign_eval(policy, &reports, &s, attempt)
        })
        .map_err(CoreError::Spectral)?;
        Ok(Self::pc_result(res))
    }

    /// Durable polynomial-chaos campaign: [`PathModel::polynomial_chaos`]
    /// wrapped in the checkpoint/resume/deadline machinery, exactly as
    /// [`PathModel::monte_carlo_campaign`] wraps the MC driver. The
    /// checkpoint fingerprint extends
    /// [`PathModel::campaign_fingerprint`] with the plan's own
    /// fingerprint, so a snapshot taken under one grid/basis refuses to
    /// resume under another. Kill-and-resume is bitwise-exact.
    ///
    /// # Errors
    ///
    /// Checkpoint failures as [`CoreError::Checkpoint`]; plan/node/solve
    /// failures as [`CoreError::Spectral`]. Deadline or budget truncation
    /// is not an error: `result` comes back `None` with a `Truncated`
    /// verdict and a resumable snapshot.
    pub fn polynomial_chaos_campaign(
        &self,
        sources: &VariationSources,
        config: SpectralConfig,
        master_seed: u64,
        threads: usize,
        policy: RecoveryPolicy,
        campaign: &CampaignConfig,
    ) -> Result<PcCampaignResult, CoreError> {
        let active = sources.active();
        if active.is_empty() {
            return Err(CoreError::BadSpec(
                "polynomial chaos needs at least one active variation source".into(),
            ));
        }
        let plan = SpectralPlan::build(active.len(), config)?;
        let reports: Mutex<Vec<DegradationReport>> = Mutex::new(Vec::new());
        let res = run_spectral_campaign(
            &plan,
            threads,
            policy,
            campaign,
            master_seed,
            self.campaign_fingerprint(sources),
            |node, attempt| {
                let s = (0usize, sample_at_node(&active, node));
                self.campaign_eval(policy, &reports, &s, attempt)
            },
        )
        .map_err(|e| match e {
            SpectralRunError::Checkpoint(ck) => CoreError::Checkpoint(ck),
            SpectralRunError::Spectral(sp) => CoreError::Spectral(sp),
        })?;
        Ok(PcCampaignResult {
            result: res.result.map(Self::pc_result),
            node_summary: res.node_summary,
            verdict: res.verdict,
            completed: res.completed,
            resumed: res.resumed,
            evaluated: res.evaluated,
            checkpoints_written: res.checkpoints_written,
        })
    }

    fn pc_result(res: linvar_stats::SpectralResult) -> PcPathResult {
        PcPathResult {
            mean: res.mean,
            std: res.std,
            quantiles: res.quantiles,
            coefficients: res.coefficients,
            node_delays: res.node_values,
            nodes_evaluated: res.nodes_evaluated,
            surrogate_summary: res.surrogate_summary,
            health: res.health,
        }
    }

    /// Sharded Monte-Carlo path-delay campaign: the sample range is
    /// split into `config.n_shards` supervised shards, each running the
    /// same attempt ladder as [`PathModel::monte_carlo_campaign`] with
    /// its own fingerprinted checkpoint, heartbeat-watched for stalls,
    /// retried with capped backoff on death, and merged first-writer-
    /// wins per sample index.
    ///
    /// The merged result is **bitwise-identical** to
    /// [`PathModel::monte_carlo_campaign`] at any shard count and any
    /// thread count — including under every injected
    /// [`linvar_stats::ShardFault`].
    ///
    /// # Errors
    ///
    /// Shard-plan problems, as [`CoreError::Shard`]. Shard deaths do
    /// not error: a permanently dead shard surfaces as `Failed` samples
    /// in the merged health, with a typed per-shard verdict.
    pub fn monte_carlo_sharded(
        &self,
        sources: &VariationSources,
        n: usize,
        master_seed: u64,
        threads: usize,
        policy: RecoveryPolicy,
        config: &ShardConfig,
    ) -> Result<McShardedResult, CoreError> {
        let mut rng = rng_from_seed(master_seed);
        let samples = self.draw_samples(sources, n, &mut rng);
        let indexed: Vec<(usize, PathSample)> = samples.into_iter().enumerate().collect();
        let fingerprint = CampaignFingerprint {
            master_seed,
            n_samples: n,
            policy,
            model: self.campaign_fingerprint(sources),
        };
        let reports: Mutex<Vec<DegradationReport>> = Mutex::new(Vec::new());
        let res = run_sharded_campaign(
            &indexed,
            threads,
            policy,
            config,
            &fingerprint,
            |s: &(usize, PathSample), attempt| self.campaign_eval(policy, &reports, s, attempt),
        )?;
        let mut reports = reports.into_inner().expect("supervisor joined");
        // Shard retries and straggler re-dispatches can evaluate a
        // sample more than once; reports are pure per (sample, attempt
        // trail), so keeping the first of each index is exact.
        reports.sort_by_key(|r| r.sample_index);
        reports.dedup_by_key(|r| r.sample_index);
        Ok(McShardedResult {
            delays: res.values,
            summary: res.summary,
            failures: res.failures,
            failed_indices: res.failed_indices,
            first_error: res.first_error,
            sample_health: res.sample_health,
            health: res.health,
            completed: res.completed,
            resumed: res.resumed,
            evaluated: res.evaluated,
            checkpoints_written: res.checkpoints_written,
            shards: res.shards,
            reports,
        })
    }

    /// Runs exactly one shard of the plan — the process-per-shard mode
    /// behind the bench bins' `--shard-index` flag. The shard's
    /// fingerprinted snapshot is its output; a later
    /// [`PathModel::monte_carlo_sharded`] over the same prefix with
    /// `resume: true` merges the per-process snapshots without
    /// re-evaluating anything.
    ///
    /// # Errors
    ///
    /// Shard-plan problems (including a missing checkpoint prefix) and
    /// the shard campaign's own checkpoint errors, as
    /// [`CoreError::Shard`].
    // Mirrors `monte_carlo_campaign`'s signature plus the shard index;
    // collapsing the knobs into a struct would just move the noise.
    #[allow(clippy::too_many_arguments)]
    pub fn monte_carlo_shard_worker(
        &self,
        sources: &VariationSources,
        n: usize,
        master_seed: u64,
        threads: usize,
        policy: RecoveryPolicy,
        config: &ShardConfig,
        shard_index: usize,
    ) -> Result<McCampaignResult, CoreError> {
        let mut rng = rng_from_seed(master_seed);
        let samples = self.draw_samples(sources, n, &mut rng);
        let indexed: Vec<(usize, PathSample)> = samples.into_iter().enumerate().collect();
        let fingerprint = CampaignFingerprint {
            master_seed,
            n_samples: n,
            policy,
            model: self.campaign_fingerprint(sources),
        };
        let reports: Mutex<Vec<DegradationReport>> = Mutex::new(Vec::new());
        let res = run_shard_worker(
            &indexed,
            threads,
            policy,
            config,
            &fingerprint,
            shard_index,
            |s: &(usize, PathSample), attempt| self.campaign_eval(policy, &reports, s, attempt),
        )?;
        let mut reports = reports.into_inner().expect("worker joined");
        reports.sort_by_key(|r| r.sample_index);
        Ok(McCampaignResult {
            delays: res.values,
            summary: res.summary,
            failures: res.failures,
            failed_indices: res.failed_indices,
            first_error: res.first_error,
            sample_health: res.sample_health,
            health: res.health,
            verdict: res.verdict,
            completed: res.completed,
            resumed: res.resumed,
            evaluated: res.evaluated,
            checkpoints_written: res.checkpoints_written,
            reports,
        })
    }

    /// One GA stage evaluation: ramp input with slew `s_in` (direction by
    /// stage parity), returning `(stage delay, output slew)`.
    fn ga_stage(&self, k: usize, s_in: f64, sample: &PathSample) -> Result<(f64, f64), CoreError> {
        let stage = &self.stages[k];
        let rising_in = k.is_multiple_of(2);
        let (v0, v1) = if rising_in {
            (0.0, self.vdd)
        } else {
            (self.vdd, 0.0)
        };
        let input = Waveform::ramp(v0, v1, s_in, s_in);
        let m_in = 1.5 * s_in;
        let h = self.stage_h();
        let mut t_end = 3.0 * s_in + 1.0e-9;
        for _attempt in 0..3 {
            let res = stage.model.evaluate(
                &sample.wire,
                sample.device,
                std::slice::from_ref(&input),
                h,
                t_end,
            )?;
            let out = &res.waveforms[stage.out_port];
            if let Ok(sr) = out.to_saturated_ramp(0.0, self.vdd) {
                return Ok((sr.m - m_in, sr.s));
            }
            t_end *= 2.0;
        }
        Err(CoreError::StageStuck { stage: k })
    }

    /// Gradient-Analysis path-delay statistics (§4.3.2).
    ///
    /// Per stage: one nominal evaluation, two input-slew perturbations and
    /// two per active source; `(M, S)` derivatives chain through eq. (31)
    /// and the path σ follows from eq. (24).
    ///
    /// # Errors
    ///
    /// Propagates stage-evaluation failures.
    pub fn gradient_analysis(&self, sources: &VariationSources) -> Result<GaPathResult, CoreError> {
        let active = sources.active();
        let n_src = active.len();
        let nominal = PathSample::default();
        let mut evaluations = 0usize;

        // dM/dw and dS/dw accumulated along the path, per source.
        let mut dm = vec![0.0; n_src];
        let mut ds = vec![0.0; n_src];
        let mut s_in = self.input_slew;
        let mut total_delay = 0.0;

        for k in 0..self.stages.len() {
            let (d0, s_out0) = self.ga_stage(k, s_in, &nominal)?;
            evaluations += 1;
            // Input-slew sensitivities (∂Π/∂S_in, ∂Ψ/∂S_in).
            let ds_in = 0.05 * s_in;
            let (d_hi, s_hi) = self.ga_stage(k, s_in + ds_in, &nominal)?;
            let (d_lo, s_lo) = self.ga_stage(k, s_in - ds_in, &nominal)?;
            evaluations += 2;
            let dpi_dsin = (d_hi - d_lo) / (2.0 * ds_in);
            let dpsi_dsin = (s_hi - s_lo) / (2.0 * ds_in);
            // Per-source sensitivities (∂Π/∂w, ∂Ψ/∂w) at step ±σ.
            for (l, &(name, sigma)) in active.iter().enumerate() {
                let mut hi = nominal;
                let mut lo = nominal;
                apply_source(&mut hi, name, sigma);
                apply_source(&mut lo, name, -sigma);
                let (dh, sh) = self.ga_stage(k, s_in, &hi)?;
                let (dl_, sl) = self.ga_stage(k, s_in, &lo)?;
                evaluations += 2;
                let dpi_dw = (dh - dl_) / (2.0 * sigma);
                let dpsi_dw = (sh - sl) / (2.0 * sigma);
                // Eq. (31): chain through the input-slew dependence.
                let dm_new = dm[l] + dpi_dw + dpi_dsin * ds[l];
                let ds_new = dpsi_dw + dpsi_dsin * ds[l];
                dm[l] = dm_new;
                ds[l] = ds_new;
            }
            total_delay += d0;
            s_in = s_out0;
        }
        // Eq. (24) with the source σ's.
        let sigmas: Vec<f64> = active.iter().map(|&(_, s)| s).collect();
        let std = linvar_stats::gradient_std(&sigmas, &dm);
        Ok(GaPathResult {
            nominal_delay: total_delay,
            std,
            sensitivities: dm,
            evaluations,
        })
    }
}

impl McPathResult {
    /// Empirical timing yield at the given clock period (s) — the
    /// fraction of samples meeting it (paper §4, ref \[13\]).
    pub fn timing_yield(&self, period: f64) -> f64 {
        linvar_stats::empirical_yield(&self.delays, period)
    }
}

impl GaPathResult {
    /// Normal-model timing yield at the given clock period (s), from the
    /// GA (mean, σ).
    pub fn timing_yield(&self, period: f64) -> f64 {
        linvar_stats::normal_yield(self.nominal_delay, self.std, period)
    }

    /// Clock period achieving the target yield under the GA normal model.
    pub fn period_for_yield(&self, target: f64) -> f64 {
        linvar_stats::period_for_yield(self.nominal_delay, self.std, target)
    }
}

/// Applies `value` (normalized units) of the named source to a sample.
pub(crate) fn apply_source_pub(sample: &mut PathSample, name: &str, value: f64) {
    apply_source(sample, name, value);
}

/// Maps one collocation node in standard-normal germ coordinates onto a
/// [`PathSample`]: coordinate `k` scales by the σ of the `k`-th active
/// source (canonical [`VariationSources::active`] order).
fn sample_at_node(active: &[(&'static str, f64)], node: &[f64]) -> PathSample {
    let mut sample = PathSample::default();
    for ((name, sigma), &x) in active.iter().zip(node) {
        apply_source(&mut sample, name, sigma * x);
    }
    sample
}

/// Maps one 7-dimensional standard-normal draw onto a [`PathSample`] by
/// the per-source σ — shared by the LHS and Sobol sample streams.
fn scale_sample(sources: &VariationSources, z: &[f64]) -> PathSample {
    let mut wire = [0.0; 5];
    for i in 0..5 {
        wire[i] = z[i] * sources.wire[i];
    }
    PathSample {
        wire,
        device: DeviceVariation::new(z[5] * sources.dl, z[6] * sources.vt),
    }
}

/// Applies `value` (normalized units) of the named source to a sample.
/// Maps the rung that served a sample to its observability counter.
///
/// Recorded by the *succeeding* attempt only; since every attempt is a
/// pure function of `(sample, attempt)`, the tally is deterministic at
/// any thread count (fail-fast truncation excepted — samples evaluated
/// past the truncation point still count their rung).
fn rung_counter(rung: EngineRung) -> linvar_metrics::Counter {
    match rung {
        EngineRung::VariationalRom => linvar_metrics::Counter::RungVariationalRom,
        EngineRung::RefinedSc => linvar_metrics::Counter::RungRefinedSc,
        EngineRung::ExactReduction => linvar_metrics::Counter::RungExactReduction,
        EngineRung::DegradedOrder(_) => linvar_metrics::Counter::RungDegradedOrder,
        EngineRung::UnreducedMna => linvar_metrics::Counter::RungUnreducedMna,
        EngineRung::SpiceBaseline => linvar_metrics::Counter::RungSpiceBaseline,
    }
}

fn apply_source(sample: &mut PathSample, name: &str, value: f64) {
    match name {
        "W" => sample.wire[0] += value,
        "T" => sample.wire[1] += value,
        "S" => sample.wire[2] += value,
        "H" => sample.wire[3] += value,
        "rho" => sample.wire[4] += value,
        "DL" => sample.device.dl += value,
        "VT" => sample.device.vt += value,
        other => unreachable!("unknown source {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linvar_devices::tech_018;
    use linvar_stats::rng_from_seed;

    fn small_path() -> PathModel {
        let spec = PathSpec {
            cells: vec!["inv".into(), "nand2".into(), "inv".into()],
            linear_elements_between_stages: 10,
            input_slew: 50e-12,
        };
        PathModel::build(&spec, &tech_018(), &WireTech::m018()).unwrap()
    }

    #[test]
    fn nominal_delay_is_positive_and_reasonable() {
        let model = small_path();
        let d = model.evaluate_sample(&PathSample::default()).unwrap();
        // 3 lightly loaded 0.18 µm stages: tens to hundreds of ps.
        assert!(d > 10e-12 && d < 2e-9, "delay {d}");
    }

    #[test]
    fn slower_devices_increase_delay() {
        let model = small_path();
        let nominal = model.evaluate_sample(&PathSample::default()).unwrap();
        let slow = model
            .evaluate_sample(&PathSample {
                wire: [0.0; 5],
                device: DeviceVariation::new(-1.0, 2.0), // longer L, higher VT
            })
            .unwrap();
        assert!(slow > nominal, "{slow} vs {nominal}");
    }

    #[test]
    fn monte_carlo_produces_spread() {
        let model = small_path();
        let sources = VariationSources::example3(0.33, 0.33);
        let mut rng = rng_from_seed(5);
        let mc = model.monte_carlo(&sources, 12, &mut rng).unwrap();
        assert_eq!(mc.failures, 0);
        assert_eq!(mc.delays.len(), 12);
        assert!(mc.summary.std > 0.0);
        assert!(mc.summary.std < 0.3 * mc.summary.mean, "plausible spread");
    }

    #[test]
    fn parallel_mc_is_bitwise_identical_to_serial() {
        let model = small_path();
        let sources = VariationSources::example3(0.33, 0.33);
        let seed = 21;
        let serial = model
            .monte_carlo(&sources, 8, &mut rng_from_seed(seed))
            .unwrap();
        for threads in [1, 2, 4] {
            let par = model.monte_carlo_par(&sources, 8, seed, threads).unwrap();
            let serial_bits: Vec<u64> = serial.delays.iter().map(|d| d.to_bits()).collect();
            let par_bits: Vec<u64> = par.delays.iter().map(|d| d.to_bits()).collect();
            assert_eq!(par_bits, serial_bits, "delays at {threads} threads");
            assert_eq!(par.failures, serial.failures);
            assert_eq!(
                par.summary.mean.to_bits(),
                serial.summary.mean.to_bits(),
                "mean at {threads} threads"
            );
        }
    }

    #[test]
    fn recovering_mc_is_bitwise_identical_across_threads() {
        let model = small_path();
        let sources = VariationSources::example3(0.33, 0.33);
        let policy = RecoveryPolicy::default();
        let seed = 21;
        let base = model
            .monte_carlo_par_recovering(&sources, 8, seed, 1, policy)
            .unwrap();
        // A moderate spread is served entirely by the fast path.
        assert!(base.health.all_clean(), "health: {:?}", base.health);
        assert!(base.reports.is_empty());
        assert!(base.truncated_at.is_none());
        assert_eq!(base.health.total(), 8);
        let base_bits: Vec<u64> = base.delays.iter().map(|d| d.to_bits()).collect();
        for threads in [2, 4] {
            let par = model
                .monte_carlo_par_recovering(&sources, 8, seed, threads, policy)
                .unwrap();
            let par_bits: Vec<u64> = par.delays.iter().map(|d| d.to_bits()).collect();
            assert_eq!(par_bits, base_bits, "delays at {threads} threads");
            assert_eq!(par.sample_health, base.sample_health);
            assert_eq!(par.health, base.health);
            assert_eq!(par.reports, base.reports);
        }
        // On a clean run the recovering driver reproduces the plain one.
        let plain = model.monte_carlo_par(&sources, 8, seed, 2).unwrap();
        let plain_bits: Vec<u64> = plain.delays.iter().map(|d| d.to_bits()).collect();
        assert_eq!(plain_bits, base_bits);
    }

    #[test]
    fn ga_matches_mc_roughly() {
        let model = small_path();
        let sources = VariationSources::example3(0.33, 0.33);
        let ga = model.gradient_analysis(&sources).unwrap();
        let mut rng = rng_from_seed(9);
        let mc = model.monte_carlo(&sources, 24, &mut rng).unwrap();
        // Means within a few percent; σ within a factor of two (the
        // paper's Table 5 shows GA σ within ~30 % of MC σ).
        let mean_err = (ga.nominal_delay - mc.summary.mean).abs() / mc.summary.mean;
        assert!(mean_err < 0.05, "GA mean off by {mean_err}");
        assert!(
            ga.std > 0.3 * mc.summary.std && ga.std < 3.0 * mc.summary.std,
            "GA std {} vs MC std {}",
            ga.std,
            mc.summary.std
        );
        assert_eq!(ga.sensitivities.len(), 2);
        assert!(ga.evaluations > 0);
    }

    #[test]
    fn bad_specs_rejected() {
        let tech = tech_018();
        let wire = WireTech::m018();
        let empty = PathSpec {
            cells: vec![],
            linear_elements_between_stages: 10,
            input_slew: 50e-12,
        };
        assert!(PathModel::build(&empty, &tech, &wire).is_err());
        let bad_slew = PathSpec {
            cells: vec!["inv".into()],
            linear_elements_between_stages: 10,
            input_slew: 0.0,
        };
        assert!(PathModel::build(&bad_slew, &tech, &wire).is_err());
        let bad_cell = PathSpec {
            cells: vec!["mystery".into()],
            linear_elements_between_stages: 10,
            input_slew: 50e-12,
        };
        assert!(PathModel::build(&bad_cell, &tech, &wire).is_err());
    }

    #[test]
    fn timing_yield_integration() {
        let model = small_path();
        let sources = VariationSources::example3(0.33, 0.33);
        let mut rng = rng_from_seed(3);
        let mc = model.monte_carlo(&sources, 16, &mut rng).unwrap();
        let ga = model.gradient_analysis(&sources).unwrap();
        // Yield is monotone in the period and hits the extremes.
        assert_eq!(mc.timing_yield(0.0), 0.0);
        assert_eq!(mc.timing_yield(1.0), 1.0);
        let p50 = ga.period_for_yield(0.5);
        assert!((ga.timing_yield(p50) - 0.5).abs() < 1e-6);
        let p999 = ga.period_for_yield(0.999);
        assert!(p999 > p50);
        // GA and MC yields agree loosely near the distribution center.
        let y_mc = mc.timing_yield(p50);
        assert!((0.1..=0.9).contains(&y_mc), "MC yield at GA median: {y_mc}");
    }

    #[test]
    fn sources_active_enumeration() {
        let s = VariationSources::example3(0.33, 0.0);
        assert_eq!(s.active(), vec![("DL", 0.33)]);
        let s = VariationSources::example3_table4();
        let names: Vec<&str> = s.active().iter().map(|&(n, _)| n).collect();
        assert_eq!(names, vec!["W", "H", "DL"]);
        let s = VariationSources::uniform(0.1);
        assert_eq!(s.active().len(), 7);
    }
}
