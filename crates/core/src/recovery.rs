//! The failure-recovery and degradation layer of the framework.
//!
//! First-order variational macromodels are "inherently non-passive,
//! possibly unstable" (paper §3.3), and the framework's answer — the
//! stability filter — can itself leave a sample without a usable model at
//! a large parameter excursion. Rather than losing the sample (or the
//! run), the framework degrades through a ladder of engines, each slower
//! and more robust than the last:
//!
//! 1. **variational ROM** — the paper's fast path (eq. 11);
//! 2. **refined SC** — same model, refined timestep and damped
//!    successive-chords iteration;
//! 3. **exact reduction** — fresh PRIMA reduction at the sample;
//! 4. **degraded order** — the MOR order ladder `q → q-1 → … → 1`;
//! 5. **unreduced MNA** — pole/residue extraction of the full pencil;
//! 6. **baseline SPICE** — the conventional Newton/trapezoidal engine.
//!
//! Every assisted sample is annotated with a [`DegradationReport`] naming
//! the rung that served it, and the run-level
//! [`McRecoveryResult`] aggregates per-sample health under the
//! [`RecoveryPolicy`] attempt budget. See DESIGN.md, "Failure semantics &
//! degradation ladder".

use linvar_stats::{CampaignVerdict, HealthSummary, SampleHealth, SampleStatus, Summary};
use linvar_teta::StageRecovery;
use std::fmt;

/// Which rung of the engine ladder served a sample (or a stage).
///
/// Ordered by *severity* — how far from the fast path the framework had
/// to walk — not by model fidelity: the unreduced MNA is the most
/// faithful model of all, but serving it means the linear-centric speedup
/// is gone for that sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineRung {
    /// First-order variational ROM, plain SC iteration: the fast path.
    VariationalRom,
    /// The variational ROM with a refined timestep and damped SC
    /// iteration (chord re-selection analog).
    RefinedSc,
    /// An exact per-sample reduction replaced the variational ROM.
    ExactReduction,
    /// The MOR order-degradation ladder served a lower order (payload:
    /// the order that served).
    DegradedOrder(usize),
    /// The unreduced MNA load — no model order reduction at all.
    UnreducedMna,
    /// The baseline SPICE engine.
    SpiceBaseline,
}

impl EngineRung {
    fn severity(self) -> u8 {
        match self {
            EngineRung::VariationalRom => 0,
            EngineRung::RefinedSc => 1,
            EngineRung::ExactReduction => 2,
            EngineRung::DegradedOrder(_) => 3,
            EngineRung::UnreducedMna => 4,
            EngineRung::SpiceBaseline => 5,
        }
    }

    /// The more severe of two rungs.
    pub fn worst(self, other: EngineRung) -> EngineRung {
        if other.severity() > self.severity() {
            other
        } else {
            self
        }
    }

    /// Health classification of a sample served by this rung.
    ///
    /// Retry rungs at full reduced order are `Recovered`; anything that
    /// abandons the characterized variational model (lower order, no
    /// reduction, baseline SPICE) is `Degraded`.
    pub fn status(self) -> SampleStatus {
        match self {
            EngineRung::VariationalRom => SampleStatus::Clean,
            EngineRung::RefinedSc | EngineRung::ExactReduction => SampleStatus::Recovered,
            EngineRung::DegradedOrder(_) | EngineRung::UnreducedMna | EngineRung::SpiceBaseline => {
                SampleStatus::Degraded
            }
        }
    }

    /// Classifies what a stage-level recovery trail amounts to.
    pub(crate) fn from_stage(rec: &StageRecovery) -> EngineRung {
        if rec.unreduced_fallback {
            EngineRung::UnreducedMna
        } else if rec.served_order < rec.original_order {
            EngineRung::DegradedOrder(rec.served_order)
        } else if rec.exact_reduction {
            EngineRung::ExactReduction
        } else if rec.sc_retries > 0 {
            EngineRung::RefinedSc
        } else {
            EngineRung::VariationalRom
        }
    }
}

impl fmt::Display for EngineRung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineRung::VariationalRom => write!(f, "variational ROM"),
            EngineRung::RefinedSc => write!(f, "refined/damped SC"),
            EngineRung::ExactReduction => write!(f, "exact reduction"),
            EngineRung::DegradedOrder(q) => write!(f, "degraded order (q={q})"),
            EngineRung::UnreducedMna => write!(f, "unreduced MNA"),
            EngineRung::SpiceBaseline => write!(f, "baseline SPICE"),
        }
    }
}

/// What the recovery ladder did to serve one Monte-Carlo sample.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationReport {
    /// Index of the sample in the run.
    pub sample_index: usize,
    /// The most severe rung used across the path's stages.
    pub rung: EngineRung,
    /// Total failed SC attempts across all stages before success.
    pub sc_retries: usize,
    /// One human-readable note per stage that needed assistance.
    pub notes: Vec<String>,
}

impl DegradationReport {
    pub(crate) fn clean() -> DegradationReport {
        DegradationReport {
            sample_index: 0,
            rung: EngineRung::VariationalRom,
            sc_retries: 0,
            notes: Vec::new(),
        }
    }

    /// Health classification of the sample this report describes.
    pub fn status(&self) -> SampleStatus {
        let base = self.rung.status();
        if base == SampleStatus::Clean && self.sc_retries > 0 {
            SampleStatus::Recovered
        } else {
            base
        }
    }

    /// `true` when the fast path served the sample unassisted.
    pub fn is_clean(&self) -> bool {
        self.status() == SampleStatus::Clean
    }
}

impl fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sample {}: served by {} after {} SC retr{}",
            self.sample_index,
            self.rung,
            self.sc_retries,
            if self.sc_retries == 1 { "y" } else { "ies" }
        )?;
        for note in &self.notes {
            write!(f, "; {note}")?;
        }
        Ok(())
    }
}

/// Result of a Monte-Carlo run under a recovery policy.
///
/// Unlike the plain drivers, an all-failed run is *not* an error here —
/// the health summary and reports are the product; callers inspect
/// [`McRecoveryResult::health`] to decide what the run is worth.
#[derive(Debug, Clone)]
pub struct McRecoveryResult {
    /// Path delay per successful sample (s), in sample-index order.
    pub delays: Vec<f64>,
    /// Summary statistics of the delays.
    pub summary: Summary,
    /// Samples lost after exhausting the attempt budget.
    pub failures: usize,
    /// Indices of the failed samples, ascending.
    pub failed_indices: Vec<usize>,
    /// Diagnostic of the lowest-index failure, if any.
    pub first_error: Option<String>,
    /// Per-sample status and attempt count, in sample-index order.
    pub sample_health: Vec<SampleHealth>,
    /// Run-level tally: `n_clean` / `n_recovered` / `n_degraded` /
    /// `n_failed`.
    pub health: HealthSummary,
    /// Index the run was truncated at under a fail-fast policy.
    pub truncated_at: Option<usize>,
    /// Degradation reports of the assisted samples, ascending index.
    pub reports: Vec<DegradationReport>,
}

/// Result of a durable Monte-Carlo campaign
/// ([`crate::PathModel::monte_carlo_campaign`]).
///
/// Statistics cover every *completed* sample — restored from a resume
/// snapshot or evaluated in this run — merged in sample-index order,
/// exactly as an uninterrupted run would produce them (the bitwise-resume
/// contract; see DESIGN.md, "Durable campaigns: checkpoint format &
/// resume invariants"). Like [`McRecoveryResult`], an all-failed run is
/// not an error: the health summary and verdict are the product.
#[derive(Debug, Clone)]
pub struct McCampaignResult {
    /// Path delay per successful sample (s), in sample-index order.
    pub delays: Vec<f64>,
    /// Summary statistics of the delays.
    pub summary: Summary,
    /// Samples lost after exhausting the attempt budget.
    pub failures: usize,
    /// Indices of the failed samples, ascending.
    pub failed_indices: Vec<usize>,
    /// Diagnostic of the lowest-index failure, if any.
    pub first_error: Option<String>,
    /// Per-sample status and attempt count for completed samples, in
    /// sample-index order.
    pub sample_health: Vec<SampleHealth>,
    /// Run-level tally of the completed samples.
    pub health: HealthSummary,
    /// Whether the campaign finished or was truncated (deadline /
    /// sample budget) with a resumable snapshot.
    pub verdict: CampaignVerdict,
    /// Completed samples (resumed + evaluated this run).
    pub completed: usize,
    /// Samples restored from the resume snapshot.
    pub resumed: usize,
    /// Samples evaluated in this run.
    pub evaluated: usize,
    /// Snapshots written in this run (periodic + final).
    pub checkpoints_written: usize,
    /// Degradation reports of the assisted samples *evaluated in this
    /// run*, ascending index. Checkpoints persist status and attempts but
    /// not report notes, so resumed samples carry no report — the
    /// per-sample [`SampleStatus`] in `sample_health` is the durable
    /// record.
    pub reports: Vec<DegradationReport>,
}

/// Result of a sharded Monte-Carlo campaign
/// ([`crate::PathModel::monte_carlo_sharded`]).
///
/// The statistical fields obey the sharded bitwise-identity contract:
/// at any shard count and thread count — and under every injected
/// [`linvar_stats::ShardFault`] — they are byte-identical to the
/// single-process [`McCampaignResult`] (see DESIGN.md, "Sharding
/// protocol & merge invariants"). The bookkeeping fields count real
/// work, which under faults legitimately exceeds the single-process
/// figures.
#[derive(Debug, Clone)]
pub struct McShardedResult {
    /// Path delay per successful sample (s), in global index order.
    pub delays: Vec<f64>,
    /// Summary statistics of the delays.
    pub summary: Summary,
    /// Samples lost after exhausting the attempt budget, plus samples
    /// owned by permanently dead shards.
    pub failures: usize,
    /// Indices of the failed samples, ascending.
    pub failed_indices: Vec<usize>,
    /// Diagnostic of the lowest **global**-index failure, if any.
    pub first_error: Option<String>,
    /// Per-sample status and attempt count, in global index order.
    pub sample_health: Vec<SampleHealth>,
    /// Run-level tally; dead shards appear as `Failed` samples.
    pub health: HealthSummary,
    /// Samples delivered by shard attempts.
    pub completed: usize,
    /// Samples restored from shard snapshots, summed over attempts.
    pub resumed: usize,
    /// Samples evaluated, summed over every shard attempt (including
    /// attempts that later died).
    pub evaluated: usize,
    /// Shard snapshots written across all attempts.
    pub checkpoints_written: usize,
    /// Per-shard verdicts, in shard order.
    pub shards: Vec<linvar_stats::ShardVerdict>,
    /// Degradation reports of the assisted samples evaluated this run,
    /// ascending index, deduplicated across shard re-runs.
    pub reports: Vec<DegradationReport>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rung_severity_ordering() {
        let r = EngineRung::VariationalRom;
        assert_eq!(r.worst(EngineRung::RefinedSc), EngineRung::RefinedSc);
        assert_eq!(
            EngineRung::SpiceBaseline.worst(EngineRung::UnreducedMna),
            EngineRung::SpiceBaseline
        );
        assert_eq!(
            EngineRung::DegradedOrder(2).worst(EngineRung::ExactReduction),
            EngineRung::DegradedOrder(2)
        );
    }

    #[test]
    fn rung_status_classification() {
        assert_eq!(EngineRung::VariationalRom.status(), SampleStatus::Clean);
        assert_eq!(EngineRung::RefinedSc.status(), SampleStatus::Recovered);
        assert_eq!(EngineRung::ExactReduction.status(), SampleStatus::Recovered);
        assert_eq!(
            EngineRung::DegradedOrder(3).status(),
            SampleStatus::Degraded
        );
        assert_eq!(EngineRung::UnreducedMna.status(), SampleStatus::Degraded);
        assert_eq!(EngineRung::SpiceBaseline.status(), SampleStatus::Degraded);
    }

    #[test]
    fn stage_recovery_classification() {
        let clean = StageRecovery {
            original_order: 6,
            served_order: 6,
            ..StageRecovery::default()
        };
        assert_eq!(EngineRung::from_stage(&clean), EngineRung::VariationalRom);
        let damped = StageRecovery {
            sc_retries: 2,
            original_order: 6,
            served_order: 6,
            ..StageRecovery::default()
        };
        assert_eq!(EngineRung::from_stage(&damped), EngineRung::RefinedSc);
        let lowered = StageRecovery {
            original_order: 6,
            served_order: 4,
            ..StageRecovery::default()
        };
        assert_eq!(
            EngineRung::from_stage(&lowered),
            EngineRung::DegradedOrder(4)
        );
        let unreduced = StageRecovery {
            unreduced_fallback: true,
            original_order: 6,
            served_order: 42,
            ..StageRecovery::default()
        };
        assert_eq!(EngineRung::from_stage(&unreduced), EngineRung::UnreducedMna);
    }

    #[test]
    fn report_display_names_the_rung() {
        let mut report = DegradationReport::clean();
        report.sample_index = 12;
        report.rung = EngineRung::DegradedOrder(3);
        report.sc_retries = 1;
        report.notes.push("stage 0 (inv): order 6→3".to_string());
        let text = report.to_string();
        assert!(text.contains("sample 12"), "{text}");
        assert!(text.contains("degraded order (q=3)"), "{text}");
        assert!(text.contains("1 SC retry"), "{text}");
        assert!(text.contains("stage 0"), "{text}");
        assert_eq!(report.status(), SampleStatus::Degraded);
        assert!(!report.is_clean());
    }

    #[test]
    fn clean_report_classification() {
        let report = DegradationReport::clean();
        assert!(report.is_clean());
        assert_eq!(report.status(), SampleStatus::Clean);
        let mut retried = DegradationReport::clean();
        retried.sc_retries = 1;
        assert_eq!(retried.status(), SampleStatus::Recovered);
    }
}
