//! Stage-load construction: interconnect + parasitic caps per logic stage.
//!
//! A path stage consists of a driving cell, an interconnect line with a
//! configurable number of linear elements (the knob of the paper's
//! Table 4), and the next cell's input capacitance as the receiver load.
//! The builders here produce the *load netlist* shared by the TETA flow
//! (which reduces it) and the SPICE reference (which simulates it in
//! full).

use crate::error::CoreError;
use linvar_circuit::{Netlist, NodeId};
use linvar_devices::{Cell, CellLibrary};
use linvar_interconnect::{builder::build_coupled_lines_into, CoupledLineSpec, WireTech};

/// Specification of one stage's linear load.
#[derive(Debug, Clone)]
pub struct StageLoadSpec {
    /// Number of linear circuit elements in the interconnect (each 1 µm
    /// RC segment contributes a resistor and a capacitor).
    pub linear_elements: usize,
    /// Driving cell (its output parasitic loads the near end).
    pub driver_cell: String,
    /// Receiving cell (its input capacitance loads the far end).
    pub receiver_cell: String,
}

/// A built stage load.
#[derive(Debug, Clone)]
pub struct StageLoad {
    /// Load netlist with ports marked: near (driven) end first, far end
    /// second.
    pub netlist: Netlist,
    /// Near-end (driven) node.
    pub near: NodeId,
    /// Far-end (observed) node.
    pub far: NodeId,
    /// Total linear element count actually created.
    pub element_count: usize,
    /// Line length in meters.
    pub line_length: f64,
}

/// Builds the load netlist of one stage.
///
/// # Errors
///
/// Returns [`CoreError::BadSpec`] for unknown cell names and propagates
/// netlist-construction errors.
pub fn build_stage_load(
    spec: &StageLoadSpec,
    cells: &CellLibrary,
    wire: &WireTech,
) -> Result<StageLoad, CoreError> {
    let driver = lookup(cells, &spec.driver_cell)?;
    let receiver = lookup(cells, &spec.receiver_cell)?;
    // Each 1 µm segment is one R plus one C; coupling would add more, but
    // the Table-4 path loads are single lines.
    let segments = (spec.linear_elements / 2).max(1);
    let line_length = segments as f64 * 1e-6;
    let line_spec = CoupledLineSpec::new(1, line_length, wire.clone());
    let mut nl = Netlist::new();
    let built = build_coupled_lines_into(&line_spec, &mut nl, "")?;
    let near = built.inputs[0];
    let far = built.outputs[0];
    nl.add_capacitor("Cdrv", near, Netlist::GROUND, driver.output_cap())?;
    nl.add_capacitor("Crcv", far, Netlist::GROUND, receiver.input_cap())?;
    Ok(StageLoad {
        netlist: nl,
        near,
        far,
        element_count: built.element_count + 2,
        line_length,
    })
}

fn lookup<'a>(cells: &'a CellLibrary, name: &str) -> Result<&'a Cell, CoreError> {
    cells
        .get(name)
        .ok_or_else(|| CoreError::BadSpec(format!("unknown cell {name}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use linvar_devices::{tech_018, CellLibrary};

    fn lib() -> CellLibrary {
        CellLibrary::standard(tech_018())
    }

    fn spec(n: usize) -> StageLoadSpec {
        StageLoadSpec {
            linear_elements: n,
            driver_cell: "inv".into(),
            receiver_cell: "nand2".into(),
        }
    }

    #[test]
    fn element_count_tracks_spec() {
        let cells = lib();
        let wire = WireTech::m018();
        let s10 = build_stage_load(&spec(10), &cells, &wire).unwrap();
        // 5 segments → 5 R + 5 C, plus the two lumped caps.
        assert_eq!(s10.element_count, 12);
        assert!((s10.line_length - 5e-6).abs() < 1e-12);
        let s500 = build_stage_load(&spec(500), &cells, &wire).unwrap();
        assert_eq!(s500.element_count, 502);
        assert!(s500.netlist.node_count() > 200);
    }

    #[test]
    fn ports_are_near_then_far() {
        let cells = lib();
        let wire = WireTech::m018();
        let s = build_stage_load(&spec(10), &cells, &wire).unwrap();
        assert_eq!(s.netlist.ports(), &[s.near, s.far]);
        assert_ne!(s.near, s.far);
    }

    #[test]
    fn unknown_cell_rejected() {
        let cells = lib();
        let wire = WireTech::m018();
        let mut s = spec(10);
        s.driver_cell = "xor9".into();
        assert!(matches!(
            build_stage_load(&s, &cells, &wire),
            Err(CoreError::BadSpec(_))
        ));
    }

    #[test]
    fn tiny_element_count_still_builds() {
        let cells = lib();
        let wire = WireTech::m018();
        let s = build_stage_load(&spec(1), &cells, &wire).unwrap();
        assert!(s.element_count >= 4);
    }
}
