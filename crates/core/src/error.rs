//! Error type of the framework layer.

use linvar_circuit::CircuitError;
use linvar_numeric::NumericError;
use linvar_spice::SpiceError;
use linvar_stats::{CheckpointError, ShardError, SpectralError};
use linvar_teta::TetaError;
use std::fmt;

/// Error produced by the framework flows.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A path or stage specification is invalid.
    BadSpec(String),
    /// A TETA evaluation failed.
    Teta(TetaError),
    /// A SPICE reference run failed.
    Spice(SpiceError),
    /// Netlist construction failed.
    Circuit(CircuitError),
    /// Linear algebra failed.
    Numeric(NumericError),
    /// A campaign checkpoint could not be written, read, or validated.
    Checkpoint(CheckpointError),
    /// A sharded campaign could not be planned or its worker failed.
    Shard(ShardError),
    /// A stochastic-spectral plan or coefficient solve failed.
    Spectral(SpectralError),
    /// A stage output never completed its transition within the retry
    /// budget (the stage is unable to drive its load).
    StageStuck {
        /// Index of the stage along the path.
        stage: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::BadSpec(msg) => write!(f, "bad specification: {msg}"),
            CoreError::Teta(e) => write!(f, "teta: {e}"),
            CoreError::Spice(e) => write!(f, "spice: {e}"),
            CoreError::Circuit(e) => write!(f, "circuit: {e}"),
            CoreError::Numeric(e) => write!(f, "numeric: {e}"),
            CoreError::Checkpoint(e) => write!(f, "campaign: {e}"),
            CoreError::Shard(e) => write!(f, "shard: {e}"),
            CoreError::Spectral(e) => write!(f, "spectral: {e}"),
            CoreError::StageStuck { stage } => {
                write!(f, "stage {stage} output never completed its transition")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Teta(e) => Some(e),
            CoreError::Spice(e) => Some(e),
            CoreError::Circuit(e) => Some(e),
            CoreError::Numeric(e) => Some(e),
            CoreError::Checkpoint(e) => Some(e),
            CoreError::Shard(e) => Some(e),
            CoreError::Spectral(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TetaError> for CoreError {
    fn from(e: TetaError) -> Self {
        CoreError::Teta(e)
    }
}

impl From<SpiceError> for CoreError {
    fn from(e: SpiceError) -> Self {
        CoreError::Spice(e)
    }
}

impl From<CircuitError> for CoreError {
    fn from(e: CircuitError) -> Self {
        CoreError::Circuit(e)
    }
}

impl From<NumericError> for CoreError {
    fn from(e: NumericError) -> Self {
        CoreError::Numeric(e)
    }
}

impl From<CheckpointError> for CoreError {
    fn from(e: CheckpointError) -> Self {
        CoreError::Checkpoint(e)
    }
}

impl From<SpectralError> for CoreError {
    fn from(e: SpectralError) -> Self {
        CoreError::Spectral(e)
    }
}

impl From<ShardError> for CoreError {
    fn from(e: ShardError) -> Self {
        // A shard-level checkpoint failure IS a checkpoint failure;
        // keeping the variant lets callers (and the bench error-to-exit
        // mapping) treat both layers uniformly.
        match e {
            ShardError::Checkpoint(ck) => CoreError::Checkpoint(ck),
            other => CoreError::Shard(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = NumericError::SingularMatrix {
            pivot: 1,
            condition: None,
        }
        .into();
        assert!(e.to_string().contains("numeric"));
        let e = CoreError::StageStuck { stage: 3 };
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<CoreError>();
    }
}
