//! Worst-case corner analysis under bounded parameter variations.
//!
//! The companion work of the paper's authors (its ref \[3\], "Assessment of
//! true worst case circuit performance under interconnect parameter
//! variations") shows that the *true* worst-case corner of a performance
//! over a ±kσ parameter box is generally **not** the all-high or all-low
//! process corner: different parameters push the delay in different
//! directions (e.g. wider metal lowers resistance but raises capacitance).
//!
//! [`PathModel::worst_case_corner`] finds the box corner by sensitivity
//! sign: for a (near-)linear performance the maximizer of a linear
//! function over a box lies at the vertex selected by the gradient signs,
//! refined by re-evaluating the gradient *at* that vertex to catch mild
//! nonlinearity.

use crate::error::CoreError;
use crate::path::{PathModel, PathSample, VariationSources};

/// Result of the worst-case search.
#[derive(Debug, Clone)]
pub struct WorstCaseResult {
    /// The worst-case parameter corner found.
    pub corner: PathSample,
    /// Path delay at that corner (s).
    pub delay: f64,
    /// Nominal path delay (s).
    pub nominal: f64,
    /// Delay at the naive "all sources at +bound" corner (s), for
    /// comparison — the classical pessimistic/misguided corner.
    pub naive_corner_delay: f64,
    /// Number of path evaluations performed.
    pub evaluations: usize,
}

impl PathModel {
    /// Finds the maximum-delay corner of the `±n_sigma·σ` box of the
    /// active variation sources.
    ///
    /// Two gradient passes: signs at the nominal point pick a candidate
    /// vertex; signs re-evaluated at that vertex confirm or flip it (for a
    /// linear performance one pass suffices; the second catches sign
    /// changes from curvature).
    ///
    /// # Errors
    ///
    /// Propagates path-evaluation failures.
    pub fn worst_case_corner(
        &self,
        sources: &VariationSources,
        n_sigma: f64,
    ) -> Result<WorstCaseResult, CoreError> {
        let active = sources.active();
        let mut evaluations = 0usize;
        let nominal = self.evaluate_sample(&PathSample::default())?;
        evaluations += 1;

        let gradient_signs = |at: &PathSample, evals: &mut usize| -> Result<Vec<f64>, CoreError> {
            let mut signs = Vec::with_capacity(active.len());
            for &(name, sigma) in &active {
                let mut hi = *at;
                let mut lo = *at;
                super::path::apply_source_pub(&mut hi, name, 0.5 * sigma);
                super::path::apply_source_pub(&mut lo, name, -0.5 * sigma);
                let d_hi = self.evaluate_sample(&hi)?;
                let d_lo = self.evaluate_sample(&lo)?;
                *evals += 2;
                signs.push(if d_hi >= d_lo { 1.0 } else { -1.0 });
            }
            Ok(signs)
        };

        let vertex = |signs: &[f64]| -> PathSample {
            let mut s = PathSample::default();
            for (k, &(name, sigma)) in active.iter().enumerate() {
                super::path::apply_source_pub(&mut s, name, signs[k] * n_sigma * sigma);
            }
            s
        };

        let signs0 = gradient_signs(&PathSample::default(), &mut evaluations)?;
        let mut corner = vertex(&signs0);
        let mut delay = self.evaluate_sample(&corner)?;
        evaluations += 1;
        // Refine: gradient signs at the candidate vertex.
        let signs1 = gradient_signs(&corner, &mut evaluations)?;
        if signs1 != signs0 {
            let corner1 = vertex(&signs1);
            let delay1 = self.evaluate_sample(&corner1)?;
            evaluations += 1;
            if delay1 > delay {
                corner = corner1;
                delay = delay1;
            }
        }
        // Naive corner: everything at +bound.
        let naive = {
            let mut s = PathSample::default();
            for &(name, sigma) in &active {
                super::path::apply_source_pub(&mut s, name, n_sigma * sigma);
            }
            s
        };
        let naive_corner_delay = self.evaluate_sample(&naive)?;
        evaluations += 1;
        Ok(WorstCaseResult {
            corner,
            delay,
            nominal,
            naive_corner_delay,
            evaluations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::PathSpec;
    use linvar_devices::tech_018;
    use linvar_interconnect::WireTech;

    fn model() -> PathModel {
        let spec = PathSpec {
            cells: vec!["inv".into(), "inv".into()],
            linear_elements_between_stages: 60,
            input_slew: 50e-12,
        };
        PathModel::build(&spec, &tech_018(), &WireTech::m018()).unwrap()
    }

    #[test]
    fn true_corner_beats_naive_corner() {
        // With wire sources active, "+W" lowers R but raises C — the naive
        // all-plus corner is not the delay maximizer.
        let model = model();
        let sources = VariationSources {
            wire: [1.0 / 3.0; 5],
            dl: 1.0 / 3.0,
            vt: 1.0 / 3.0,
        };
        let wc = model.worst_case_corner(&sources, 3.0).unwrap();
        assert!(
            wc.delay >= wc.naive_corner_delay - 1e-15,
            "true corner dominates"
        );
        assert!(wc.delay > wc.nominal, "worst case above nominal");
        // The corner must mix signs (W helps while rho hurts, DL reduces
        // delay while VT increases it).
        let signs: Vec<f64> = wc
            .corner
            .wire
            .iter()
            .copied()
            .chain([wc.corner.device.dl, wc.corner.device.vt])
            .collect();
        let has_pos = signs.iter().any(|&s| s > 0.0);
        let has_neg = signs.iter().any(|&s| s < 0.0);
        assert!(has_pos && has_neg, "mixed-sign corner expected: {signs:?}");
    }

    #[test]
    fn corner_lies_on_the_box_boundary() {
        let model = model();
        let sources = VariationSources::example3(0.33, 0.33);
        let wc = model.worst_case_corner(&sources, 3.0).unwrap();
        let bound = 3.0 * 0.33;
        assert!((wc.corner.device.dl.abs() - bound).abs() < 1e-12);
        assert!((wc.corner.device.vt.abs() - bound).abs() < 1e-12);
        // Inactive sources stay at zero.
        assert!(wc.corner.wire.iter().all(|&w| w == 0.0));
        assert!(wc.evaluations > 4);
    }
}
