//! `linvar-core`: the linear-centric simulation framework for parametric
//! fluctuations — the paper's primary contribution, assembled from the
//! substrate crates.
//!
//! The framework follows the Table-1 flow of the paper:
//!
//! **Construction** (once per design):
//! 1. compute the Successive-Chords output conductances of the drivers;
//! 2. fold them into the multiport interconnect to form the effective load
//!    (eq. 12);
//! 3. precharacterize the variational reduced-order model library.
//!
//! **Evaluation** (per parameter sample):
//! 1. evaluate the first-order variational ROM (eq. 11);
//! 2. transform to pole/residue form (eqs. 13–20);
//! 3. filter unstable poles and apply the β DC correction (eqs. 21–23);
//! 4. simulate with the TETA engine (recursive convolution + SC).
//!
//! On top of the per-stage flow, [`path`] provides the two §4.3
//! path-delay statistics methods: stage-by-stage **Monte-Carlo** with full
//! waveform propagation, and **Gradient Analysis** propagating the
//! saturated-ramp parameters `(M, S)` and their derivatives (eqs. 29–32).
//! [`spice_ref`] runs the same stages through the `linvar-spice` baseline
//! for the paper's accuracy and runtime comparisons.
//!
//! # Example
//!
//! ```no_run
//! use linvar_core::path::{PathModel, PathSpec, VariationSources};
//! use linvar_devices::tech_018;
//! use linvar_interconnect::WireTech;
//!
//! # fn main() -> Result<(), linvar_core::CoreError> {
//! let spec = PathSpec {
//!     cells: vec!["inv".into(), "nand2".into(), "nor2".into()],
//!     linear_elements_between_stages: 10,
//!     input_slew: 50e-12,
//! };
//! let model = PathModel::build(&spec, &tech_018(), &WireTech::m018())?;
//! let sources = VariationSources::example3(0.33, 0.33);
//! let mut rng = linvar_stats::rng_from_seed(1);
//! let mc = model.monte_carlo(&sources, 20, &mut rng)?;
//! let ga = model.gradient_analysis(&sources)?;
//! println!("MC {} ± {}", mc.summary.mean, mc.summary.std);
//! println!("GA {} ± {}", ga.nominal_delay, ga.std);
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod path;
pub mod recovery;
pub mod registry;
pub mod spice_ref;
pub mod stage_builder;
pub mod worst_case;

pub use error::CoreError;
pub use path::{
    GaPathResult, McPathResult, PathModel, PathSpec, PcCampaignResult, PcPathResult,
    VariationSources,
};
pub use recovery::{
    DegradationReport, EngineRung, McCampaignResult, McRecoveryResult, McShardedResult,
};
pub use registry::{
    CampaignModel, ChainModel, ModelRegistry, ModelRun, SpectralChainModel, SyntheticModel,
};
pub use stage_builder::{StageLoad, StageLoadSpec};
pub use worst_case::WorstCaseResult;

// Policy and campaign types of the statistics layer, re-exported so
// callers of the recovering and durable Monte-Carlo drivers need only
// this crate.
pub use linvar_stats::{
    shard_checkpoint_path, CampaignConfig, CampaignFingerprint, CampaignVerdict, CheckpointError,
    HealthSummary, RecoveryPolicy, SampleHealth, SampleStatus, ShardConfig, ShardError, ShardFault,
    ShardOutcome, ShardPlan, ShardVerdict,
};
