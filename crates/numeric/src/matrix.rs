//! Dense, row-major, `f64` matrix.

use crate::error::NumericError;
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A dense, row-major matrix of `f64` values.
///
/// `Matrix` is the workhorse container of the workspace: MNA admittance and
/// susceptance matrices, Krylov bases, reduced-order model blocks, and sample
/// covariance matrices are all stored in this type.
///
/// # Example
///
/// ```
/// use linvar_numeric::Matrix;
///
/// let a = Matrix::identity(3);
/// let b = &a * 2.0;
/// assert_eq!(b[(1, 1)], 2.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows.checked_mul(cols).expect("matrix size overflow")],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "inconsistent row lengths");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Creates a matrix from a closure evaluated at every `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Creates a square diagonal matrix from the given diagonal entries.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Returns a view of the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns a mutable view of the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Returns row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns a mutable slice of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns column `j` as an owned vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column index {j} out of bounds");
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Overwrites column `j` with `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.rows()`.
    pub fn set_col(&mut self, j: usize, v: &[f64]) {
        assert_eq!(v.len(), self.rows, "column length mismatch");
        for (i, &x) in v.iter().enumerate() {
            self[(i, j)] = x;
        }
    }

    /// Writes column `j` into `out` (cleared first) without allocating
    /// beyond `out`'s capacity.
    pub fn col_into(&self, j: usize, out: &mut Vec<f64>) {
        assert!(j < self.cols, "column index {j} out of bounds");
        out.clear();
        out.extend((0..self.rows).map(|i| self[(i, j)]));
    }

    /// Overwrites `self` with `other`'s contents, reusing `self`'s
    /// storage. The allocation-free analog of `*self = other.clone()`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn copy_from(&mut self, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "copy_from shape mismatch"
        );
        self.data.copy_from_slice(&other.data);
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x.iter()) {
                acc += a * b;
            }
            y[i] = acc;
        }
        y
    }

    /// Matrix-vector product `self * x` written into `y` (fully
    /// overwritten; resized if needed). Identical arithmetic — same
    /// per-row accumulation order — as [`Matrix::mul_vec`], so results
    /// are bitwise equal; only the allocation is gone.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut Vec<f64>) {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        y.clear();
        y.extend((0..self.rows).map(|i| {
            let mut acc = 0.0;
            for (a, b) in self.row(i).iter().zip(x.iter()) {
                acc += a * b;
            }
            acc
        }));
    }

    /// Transposed matrix-vector product `selfᵀ * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn mul_vec_transposed(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for i in 0..self.rows {
            let xi = x[i];
            for j in 0..self.cols {
                y[j] += self[(i, j)] * xi;
            }
        }
        y
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn mul_mat(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        out
    }

    /// Computes the congruence transform `xᵀ * self * x`.
    ///
    /// This is the core operation of projection-based model order reduction.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != self.cols()` or `self` is not square.
    pub fn congruence(&self, x: &Matrix) -> Matrix {
        assert!(self.is_square(), "congruence requires a square matrix");
        assert_eq!(x.rows(), self.cols, "congruence dimension mismatch");
        x.transpose().mul_mat(&self.mul_mat(x))
    }

    /// Extracts the sub-matrix with rows in `[r0, r1)` and columns in `[c0, c1)`.
    ///
    /// # Panics
    ///
    /// Panics if the ranges are out of bounds or reversed.
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Matrix {
        assert!(r0 <= r1 && r1 <= self.rows, "row range out of bounds");
        assert!(c0 <= c1 && c1 <= self.cols, "column range out of bounds");
        Matrix::from_fn(r1 - r0, c1 - c0, |i, j| self[(r0 + i, c0 + j)])
    }

    /// Writes `block` into `self` with its top-left corner at `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if the block does not fit.
    pub fn set_block(&mut self, r0: usize, c0: usize, block: &Matrix) {
        assert!(r0 + block.rows <= self.rows, "block rows out of bounds");
        assert!(c0 + block.cols <= self.cols, "block cols out of bounds");
        for i in 0..block.rows {
            for j in 0..block.cols {
                self[(r0 + i, c0 + j)] = block[(i, j)];
            }
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry (∞-norm of the vectorized matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
    }

    /// Returns `true` if `self` is symmetric within `tol` (absolute).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Scales the matrix in place by `s`.
    pub fn scale_mut(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// `self += s * other` (AXPY on matrices).
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if the shapes differ.
    pub fn axpy(&mut self, s: f64, other: &Matrix) -> Result<(), NumericError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(NumericError::DimensionMismatch {
                expected: format!("{}x{}", self.rows, self.cols),
                found: format!("{}x{}", other.rows, other.cols),
            });
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += s * b;
        }
        Ok(())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(12) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(12) {
                write!(f, "{:>12.4e} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.cols > 12 { "..." } else { "" })?;
        }
        if self.rows > 12 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "add shape mismatch"
        );
        let mut out = self.clone();
        out.axpy(1.0, rhs).expect("shapes already checked");
        out
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "sub shape mismatch"
        );
        let mut out = self.clone();
        out.axpy(-1.0, rhs).expect("shapes already checked");
        out
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        let mut out = self.clone();
        out.scale_mut(s);
        out
    }
}

impl Mul<&Matrix> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: &Matrix) -> Matrix {
        self.mul_mat(rhs)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self * -1.0
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        self.axpy(1.0, rhs).expect("add-assign shape mismatch");
    }
}

impl SubAssign<&Matrix> for Matrix {
    fn sub_assign(&mut self, rhs: &Matrix) {
        self.axpy(-1.0, rhs).expect("sub-assign shape mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));

        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert!(i.is_symmetric(0.0));
    }

    #[test]
    fn from_rows_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matvec_and_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let y = a.mul_vec(&[1.0, 1.0]);
        assert_eq!(y, vec![3.0, 7.0]);

        let b = Matrix::identity(2);
        assert_eq!(a.mul_mat(&b), a);

        let yt = a.mul_vec_transposed(&[1.0, 1.0]);
        assert_eq!(yt, vec![4.0, 6.0]);
    }

    #[test]
    fn congruence_preserves_symmetry() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = Matrix::from_rows(&[&[1.0], &[1.0]]);
        let r = a.congruence(&x);
        assert_eq!(r.rows(), 1);
        assert!((r[(0, 0)] - 7.0).abs() < 1e-14);
    }

    #[test]
    fn submatrix_and_set_block() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let s = m.submatrix(1, 3, 2, 4);
        assert_eq!(s[(0, 0)], 6.0);
        assert_eq!(s[(1, 1)], 11.0);

        let mut z = Matrix::zeros(4, 4);
        z.set_block(2, 2, &s);
        assert_eq!(z[(2, 2)], 6.0);
        assert_eq!(z[(3, 3)], 11.0);
    }

    #[test]
    fn arithmetic_operators() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::identity(2);
        let c = &a + &b;
        assert_eq!(c[(0, 0)], 2.0);
        let d = &c - &b;
        assert_eq!(d, a);
        let e = &a * 2.0;
        assert_eq!(e[(1, 1)], 8.0);
        let n = -&a;
        assert_eq!(n[(0, 0)], -1.0);
    }

    #[test]
    fn axpy_shape_mismatch_is_error() {
        let mut a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(3, 2);
        assert!(a.axpy(1.0, &b).is_err());
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, -4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-14);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn diagonal_constructor() {
        let d = Matrix::from_diagonal(&[1.0, 2.0, 3.0]);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn debug_is_nonempty() {
        let m = Matrix::identity(2);
        assert!(!format!("{m:?}").is_empty());
    }

    #[test]
    fn mul_vec_into_matches_mul_vec_bitwise() {
        let a = Matrix::from_rows(&[&[1.5, -2.25, 0.1], &[0.0, 3.0, -7.5]]);
        let x = [0.3, -1.7, 2.9];
        let mut y = vec![9.0; 5]; // stale contents and wrong length
        a.mul_vec_into(&x, &mut y);
        let reference = a.mul_vec(&x);
        assert_eq!(y.len(), reference.len());
        for (got, want) in y.iter().zip(&reference) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn copy_from_and_col_into_reuse_storage() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut b = Matrix::zeros(2, 2);
        b.copy_from(&a);
        assert_eq!(b.as_slice(), a.as_slice());
        let mut c = vec![0.0; 7];
        a.col_into(1, &mut c);
        assert_eq!(c, vec![2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "copy_from shape mismatch")]
    fn copy_from_rejects_shape_mismatch() {
        let mut b = Matrix::zeros(2, 3);
        b.copy_from(&Matrix::zeros(3, 2));
    }
}
