//! Minimal complex arithmetic used by the eigensolver and pole/residue models.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// Poles and residues of reduced-order interconnect macromodels are complex
/// in general; this small value type provides the arithmetic needed by the
/// pole/residue transformation (paper eqs. 13–20) and by recursive
/// convolution in the TETA engine.
///
/// # Example
///
/// ```
/// use linvar_numeric::Complex;
///
/// let z = Complex::new(3.0, 4.0);
/// assert_eq!(z.abs(), 5.0);
/// assert_eq!((z * z.conj()).re, 25.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Magnitude (modulus), computed with `hypot` for robustness.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in radians.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex exponential `e^self`.
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Complex::new(r * self.im.cos(), r * self.im.sin())
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        let m = self.abs();
        let re = ((m + self.re) / 2.0).max(0.0).sqrt();
        let im_mag = ((m - self.re) / 2.0).max(0.0).sqrt();
        Complex::new(re, if self.im >= 0.0 { im_mag } else { -im_mag })
    }

    /// Multiplicative inverse `1 / self`.
    ///
    /// Returns infinities for a zero input, matching IEEE division semantics.
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Multiplies by a real scalar.
    pub fn scale(self, s: f64) -> Self {
        Complex::new(self.re * s, self.im * s)
    }

    /// Returns `true` if both components are finite.
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6e}+{:.6e}i", self.re, self.im)
        } else {
            write!(f, "{:.6e}-{:.6e}i", self.re, -self.im)
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    fn div(self, rhs: Complex) -> Complex {
        // Smith's algorithm avoids overflow for large components.
        if rhs.re.abs() >= rhs.im.abs() {
            let r = rhs.im / rhs.re;
            let d = rhs.re + rhs.im * r;
            Complex::new((self.re + self.im * r) / d, (self.im - self.re * r) / d)
        } else {
            let r = rhs.re / rhs.im;
            let d = rhs.re * r + rhs.im;
            Complex::new((self.re * r + self.im) / d, (self.im * r - self.re) / d)
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn basic_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert!(close((a / b) * b, a, 1e-14));
    }

    #[test]
    fn division_is_robust_to_large_magnitudes() {
        let a = Complex::new(1e300, 1e300);
        let b = Complex::new(1e300, -1e300);
        let q = a / b;
        assert!(q.is_finite());
        assert!(close(q, Complex::new(0.0, 1.0), 1e-12));
    }

    #[test]
    fn conj_abs_arg() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert!((Complex::I.arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-15);
    }

    #[test]
    fn exp_of_imaginary_is_on_unit_circle() {
        let z = Complex::new(0.0, std::f64::consts::PI).exp();
        assert!(close(z, Complex::new(-1.0, 0.0), 1e-14));
        // Euler identity halfway.
        let h = Complex::new(0.0, std::f64::consts::FRAC_PI_2).exp();
        assert!(close(h, Complex::I, 1e-14));
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[(4.0, 0.0), (-4.0, 0.0), (1.0, 1.0), (-2.0, -3.0)] {
            let z = Complex::new(re, im);
            let s = z.sqrt();
            assert!(close(s * s, z, 1e-12), "sqrt failed for {z}");
        }
    }

    #[test]
    fn recip_and_identity_constants() {
        let z = Complex::new(2.0, -1.0);
        assert!(close(z * z.recip(), Complex::ONE, 1e-14));
        assert_eq!(Complex::ZERO + Complex::ONE, Complex::ONE);
        assert_eq!(Complex::I * Complex::I, Complex::new(-1.0, 0.0));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Complex::new(1.0, -2.0)).is_empty());
    }
}
