//! Free functions on `&[f64]` vectors.
//!
//! Plain `Vec<f64>`/`&[f64]` are used throughout the workspace for node
//! voltage vectors, right-hand sides and waveform samples; this module
//! provides the handful of BLAS-1 style helpers those call sites need.

/// Dot product of two equal-length vectors.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Maximum absolute entry (L∞ norm). Returns 0 for an empty slice.
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
}

/// `y += alpha * x` in place.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scales `x` in place by `alpha`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Element-wise difference `a - b` as a new vector.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Element-wise sum `a + b` as a new vector.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Arithmetic mean. Returns 0 for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Sample standard deviation (unbiased, divides by `n - 1`).
///
/// Returns 0 for slices with fewer than two elements.
pub fn std_dev(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    let ss: f64 = a.iter().map(|x| (x - m) * (x - m)).sum();
    (ss / (a.len() - 1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn axpy_and_scale() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0]);
        scale(0.5, &mut y);
        assert_eq!(y, vec![1.5, 2.5]);
    }

    #[test]
    fn elementwise() {
        assert_eq!(sub(&[3.0, 2.0], &[1.0, 1.0]), vec![2.0, 1.0]);
        assert_eq!(add(&[3.0, 2.0], &[1.0, 1.0]), vec![4.0, 3.0]);
    }

    #[test]
    fn statistics() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-15);
        // Unbiased sample std of this classic dataset is sqrt(32/7).
        assert!((std_dev(&xs) - (32.0_f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
