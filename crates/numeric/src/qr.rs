//! QR factorization (Householder) and modified Gram-Schmidt orthonormalization.
//!
//! The block-Arnoldi iteration in PRIMA orthonormalizes each new block of
//! Krylov vectors against the accumulated basis; modified Gram-Schmidt with
//! re-orthogonalization is the standard, numerically adequate choice for the
//! small bases used here. Householder QR is provided for least-squares
//! problems (waveform fitting) and as a cross-check.

use crate::error::NumericError;
use crate::matrix::Matrix;
use crate::vector;

/// Householder QR factorization `A = Q R` of an `m x n` matrix with `m >= n`.
///
/// # Example
///
/// ```
/// use linvar_numeric::{householder_qr, Matrix};
///
/// # fn main() -> Result<(), linvar_numeric::NumericError> {
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]);
/// let qr = householder_qr(&a)?;
/// // Least-squares fit of y = c0 + c1*x through (0,1), (1,2), (2,3).
/// let c = qr.solve_least_squares(&[1.0, 2.0, 3.0])?;
/// assert!((c[0] - 1.0).abs() < 1e-12 && (c[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QrFactor {
    /// Thin Q factor, `m x n` with orthonormal columns.
    q: Matrix,
    /// Upper-triangular R factor, `n x n`.
    r: Matrix,
}

/// Computes the thin Householder QR factorization of `a`.
///
/// # Errors
///
/// Returns [`NumericError::InvalidInput`] if `a` has more columns than rows
/// or is empty.
pub fn householder_qr(a: &Matrix) -> Result<QrFactor, NumericError> {
    let (m, n) = (a.rows(), a.cols());
    if m == 0 || n == 0 {
        return Err(NumericError::InvalidInput("empty matrix".into()));
    }
    if m < n {
        return Err(NumericError::InvalidInput(format!(
            "householder qr requires rows >= cols, got {m}x{n}"
        )));
    }
    let mut r = a.clone();
    // Store Householder vectors to accumulate Q afterwards.
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(n);
    for k in 0..n {
        // Build the Householder vector for column k below the diagonal.
        let mut v: Vec<f64> = (k..m).map(|i| r[(i, k)]).collect();
        let alpha = -v[0].signum() * vector::norm2(&v);
        if alpha == 0.0 {
            vs.push(vec![0.0; m - k]);
            continue;
        }
        v[0] -= alpha;
        let vnorm = vector::norm2(&v);
        if vnorm > 0.0 {
            vector::scale(1.0 / vnorm, &mut v);
        }
        // Apply H = I - 2 v vᵀ to the trailing submatrix of R.
        for j in k..n {
            let mut dot = 0.0;
            for (idx, vi) in v.iter().enumerate() {
                dot += vi * r[(k + idx, j)];
            }
            for (idx, vi) in v.iter().enumerate() {
                r[(k + idx, j)] -= 2.0 * vi * dot;
            }
        }
        vs.push(v);
    }
    // Accumulate thin Q by applying the reflectors to the first n identity columns.
    let mut q = Matrix::zeros(m, n);
    for j in 0..n {
        let mut e = vec![0.0; m];
        e[j] = 1.0;
        for k in (0..n).rev() {
            let v = &vs[k];
            if v.iter().all(|&x| x == 0.0) {
                continue;
            }
            let mut dot = 0.0;
            for (idx, vi) in v.iter().enumerate() {
                dot += vi * e[k + idx];
            }
            for (idx, vi) in v.iter().enumerate() {
                e[k + idx] -= 2.0 * vi * dot;
            }
        }
        q.set_col(j, &e);
    }
    // Zero the strictly-lower part of R (numerical noise) and truncate.
    let mut r_clean = r.submatrix(0, n, 0, n);
    for i in 0..n {
        for j in 0..i {
            r_clean[(i, j)] = 0.0;
        }
    }
    Ok(QrFactor { q, r: r_clean })
}

impl QrFactor {
    /// The thin orthonormal factor `Q` (`m x n`).
    pub fn q(&self) -> &Matrix {
        &self.q
    }

    /// The upper-triangular factor `R` (`n x n`).
    pub fn r(&self) -> &Matrix {
        &self.r
    }

    /// Solves the least-squares problem `min ||A x - b||` via `R x = Qᵀ b`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `b.len()` differs from
    /// the row count, or [`NumericError::SingularMatrix`] if `R` is
    /// rank-deficient.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>, NumericError> {
        let (m, n) = (self.q.rows(), self.q.cols());
        if b.len() != m {
            return Err(NumericError::DimensionMismatch {
                expected: format!("vector of length {m}"),
                found: format!("length {}", b.len()),
            });
        }
        let qtb = self.q.mul_vec_transposed(b);
        let mut x = qtb;
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.r[(i, j)] * x[j];
            }
            let d = self.r[(i, i)];
            if d.abs() < 1e-300 {
                return Err(NumericError::SingularMatrix {
                    pivot: i,
                    condition: None,
                });
            }
            x[i] = acc / d;
        }
        x.truncate(n);
        Ok(x)
    }
}

/// Orthonormalizes the columns of `basis ++ candidates` incrementally.
///
/// Given an existing orthonormal basis (possibly empty) and a set of new
/// candidate columns, performs modified Gram-Schmidt with one
/// re-orthogonalization pass and appends each candidate whose remaining
/// component exceeds `drop_tol` (relative to its original norm). Candidates
/// that are (numerically) linearly dependent on the basis are dropped — this
/// is exactly the deflation step of the block-Arnoldi PRIMA iteration.
///
/// Returns the number of columns that were actually appended.
pub fn gram_schmidt_orthonormalize(
    basis: &mut Vec<Vec<f64>>,
    candidates: &[Vec<f64>],
    drop_tol: f64,
) -> usize {
    let mut appended = 0;
    for cand in candidates {
        let mut v = cand.clone();
        let orig_norm = vector::norm2(&v);
        if orig_norm == 0.0 {
            continue;
        }
        // Two MGS passes for numerical robustness.
        for _ in 0..2 {
            for q in basis.iter() {
                let proj = vector::dot(q, &v);
                vector::axpy(-proj, q, &mut v);
            }
        }
        // Scale-invariant deflation test: compare the remaining component
        // to the candidate's own norm (RC Krylov vectors can have norms of
        // 1e-12 or smaller, so an absolute floor would drop everything).
        let rem = vector::norm2(&v);
        if rem > drop_tol * orig_norm {
            vector::scale(1.0 / rem, &mut v);
            basis.push(v);
            appended += 1;
        }
    }
    appended
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qr_reconstructs_input() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let qr = householder_qr(&a).unwrap();
        let rec = qr.q().mul_mat(qr.r());
        assert!((&rec - &a).max_abs() < 1e-12);
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let a = Matrix::from_rows(&[
            &[1.0, 1.0, 0.0],
            &[0.0, 1.0, 1.0],
            &[1.0, 0.0, 1.0],
            &[1.0, 1.0, 1.0],
        ]);
        let qr = householder_qr(&a).unwrap();
        let qtq = qr.q().transpose().mul_mat(qr.q());
        assert!((&qtq - &Matrix::identity(3)).max_abs() < 1e-12);
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = Matrix::from_rows(&[&[2.0, -1.0], &[1.0, 3.0], &[0.0, 1.0]]);
        let qr = householder_qr(&a).unwrap();
        assert_eq!(qr.r()[(1, 0)], 0.0);
    }

    #[test]
    fn least_squares_line_fit() {
        // Fit y = 2 + 3x through noiseless points.
        let xs = [0.0, 1.0, 2.0, 3.0];
        let a = Matrix::from_fn(4, 2, |i, j| if j == 0 { 1.0 } else { xs[i] });
        let b: Vec<f64> = xs.iter().map(|x| 2.0 + 3.0 * x).collect();
        let c = householder_qr(&a).unwrap().solve_least_squares(&b).unwrap();
        assert!((c[0] - 2.0).abs() < 1e-12);
        assert!((c[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn wide_matrix_is_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(householder_qr(&a).is_err());
    }

    #[test]
    fn mgs_builds_orthonormal_basis() {
        let mut basis: Vec<Vec<f64>> = Vec::new();
        let candidates = vec![
            vec![1.0, 1.0, 0.0],
            vec![1.0, 0.0, 1.0],
            vec![2.0, 1.0, 1.0], // dependent on the first two
        ];
        let added = gram_schmidt_orthonormalize(&mut basis, &candidates, 1e-10);
        assert_eq!(added, 2);
        assert_eq!(basis.len(), 2);
        assert!((vector::norm2(&basis[0]) - 1.0).abs() < 1e-14);
        assert!(vector::dot(&basis[0], &basis[1]).abs() < 1e-12);
    }

    #[test]
    fn mgs_drops_zero_candidate() {
        let mut basis: Vec<Vec<f64>> = vec![vec![1.0, 0.0]];
        let added = gram_schmidt_orthonormalize(&mut basis, &[vec![0.0, 0.0]], 1e-10);
        assert_eq!(added, 0);
    }
}
