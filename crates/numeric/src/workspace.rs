//! Per-worker workspace arenas: reusable, size-keyed scratch buffers
//! for the Monte-Carlo hot path.
//!
//! The paper's pitch is that the variational ROM is "built once per
//! interconnect structure; evaluated cheaply for every parameter
//! sample" — but "cheaply" dies by a thousand allocations if every
//! sample's affine evaluation, pole/residue extraction, and chord
//! convolution re-allocates fresh `Matrix`/`Vec` temporaries. This
//! module keeps those temporaries alive *across samples*.
//!
//! # Model
//!
//! A [`Workspace`] is a set of size-keyed free lists: `Vec<f64>` keyed
//! by length, `Vec<Complex>` keyed by length, and [`Matrix`] keyed by
//! `(rows, cols)`. [`Workspace::take_vec`] et al. pop a recycled
//! buffer when one of the exact size is pooled (a *hit*) or allocate a
//! fresh one (a *miss*); callers hand buffers back with the matching
//! `recycle_*` once done. Ownership stays plain: a taken buffer is an
//! ordinary owned value, and forgetting to recycle it merely drops it
//! (a future miss, never a leak or a double-use).
//!
//! # Determinism
//!
//! Recycled buffers are **zero-filled on take**, so a pooled buffer is
//! bit-for-bit indistinguishable from a fresh `vec![0.0; n]` /
//! `Matrix::zeros`. No arithmetic path can observe whether its scratch
//! came from the pool, which is why the workspace-backed hot path is
//! bitwise identical to the allocating one at every thread count.
//!
//! # Granularity: per worker, not per sample
//!
//! Workspaces live in a thread-local reached via [`with_workspace`].
//! The Monte-Carlo drivers spawn a fixed set of worker threads, so the
//! thread-local gives exactly one arena per worker with zero plumbing
//! through the (already published) solver APIs; buffers warm up during
//! the first sample a worker runs and are hits for every sample after.
//! A per-sample arena would re-pay every allocation each sample; a
//! shared arena would need locks on the hottest path in the codebase.
//!
//! Set `LINVAR_WS_DISABLE=1` to turn every pool into a pass-through
//! (every take allocates, every recycle drops) — the A/B switch the
//! perf smoke in `ci.sh` uses to measure the arena's effect.

use crate::complex::Complex;
use crate::matrix::Matrix;
use std::cell::RefCell;
use std::collections::BTreeMap;

/// Upper bound on bytes a workspace keeps pooled; recycles beyond this
/// are dropped. Generous for ROM-order matrices (q ≤ ~40) while
/// bounding worst-case retention per worker thread.
const MAX_HELD_BYTES: u64 = 16 << 20;

/// Cumulative pool statistics of one [`Workspace`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WsStats {
    /// Takes served from the pool.
    pub hits: u64,
    /// Takes that had to allocate.
    pub misses: u64,
    /// Bytes currently held by pooled (idle) buffers.
    pub bytes_held: u64,
    /// High-water mark of `bytes_held`.
    pub bytes_high_water: u64,
}

/// A size-keyed free-list arena for numeric scratch buffers.
#[derive(Debug, Default)]
pub struct Workspace {
    vecs: BTreeMap<usize, Vec<Vec<f64>>>,
    cvecs: BTreeMap<usize, Vec<Vec<Complex>>>,
    mats: BTreeMap<(usize, usize), Vec<Matrix>>,
    stats: WsStats,
    /// Pass-through mode: takes always allocate, recycles always drop.
    passthrough: bool,
    /// Hit/miss counts already folded into the metrics gauges.
    published_hits: u64,
    published_misses: u64,
    published_high_water: u64,
}

impl Workspace {
    /// A pooling workspace, unless `LINVAR_WS_DISABLE=1` is set in the
    /// environment (then a pass-through one).
    pub fn new() -> Self {
        if std::env::var("LINVAR_WS_DISABLE").is_ok_and(|v| v == "1") {
            Self::passthrough()
        } else {
            Self::pooling()
        }
    }

    /// A pooling workspace regardless of the environment.
    pub fn pooling() -> Self {
        Workspace::default()
    }

    /// A pass-through workspace: behaves exactly like the allocator.
    pub fn passthrough() -> Self {
        Workspace {
            passthrough: true,
            ..Workspace::default()
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> WsStats {
        self.stats
    }

    /// Takes a zero-filled `Vec<f64>` of exactly `len` elements.
    pub fn take_vec(&mut self, len: usize) -> Vec<f64> {
        if !self.passthrough {
            if let Some(mut v) = self.vecs.get_mut(&len).and_then(Vec::pop) {
                self.note_hit(bytes_f64(len));
                v.fill(0.0);
                return v;
            }
        }
        self.note_miss();
        vec![0.0; len]
    }

    /// Returns a `Vec<f64>` to the pool (keyed by its length).
    pub fn recycle_vec(&mut self, v: Vec<f64>) {
        let bytes = bytes_f64(v.len());
        if self.accepts(v.len(), bytes) {
            self.note_held(bytes);
            self.vecs.entry(v.len()).or_default().push(v);
        }
    }

    /// Takes a zero-filled `Vec<Complex>` of exactly `len` elements.
    pub fn take_cvec(&mut self, len: usize) -> Vec<Complex> {
        if !self.passthrough {
            if let Some(mut v) = self.cvecs.get_mut(&len).and_then(Vec::pop) {
                self.note_hit(bytes_cplx(len));
                v.fill(Complex::ZERO);
                return v;
            }
        }
        self.note_miss();
        vec![Complex::ZERO; len]
    }

    /// Returns a `Vec<Complex>` to the pool (keyed by its length).
    pub fn recycle_cvec(&mut self, v: Vec<Complex>) {
        let bytes = bytes_cplx(v.len());
        if self.accepts(v.len(), bytes) {
            self.note_held(bytes);
            self.cvecs.entry(v.len()).or_default().push(v);
        }
    }

    /// Takes an all-zeros matrix of exactly `rows x cols`.
    pub fn take_matrix(&mut self, rows: usize, cols: usize) -> Matrix {
        if !self.passthrough {
            if let Some(mut m) = self.mats.get_mut(&(rows, cols)).and_then(Vec::pop) {
                self.note_hit(bytes_f64(rows * cols));
                m.as_mut_slice().fill(0.0);
                return m;
            }
        }
        self.note_miss();
        Matrix::zeros(rows, cols)
    }

    /// Returns a matrix to the pool (keyed by its shape).
    pub fn recycle_matrix(&mut self, m: Matrix) {
        let bytes = bytes_f64(m.rows() * m.cols());
        if self.accepts(m.rows() * m.cols(), bytes) {
            self.note_held(bytes);
            self.mats.entry((m.rows(), m.cols())).or_default().push(m);
        }
    }

    fn accepts(&self, elems: usize, bytes: u64) -> bool {
        !self.passthrough && elems > 0 && self.stats.bytes_held + bytes <= MAX_HELD_BYTES
    }

    fn note_hit(&mut self, bytes: u64) {
        self.stats.hits += 1;
        self.stats.bytes_held = self.stats.bytes_held.saturating_sub(bytes);
    }

    fn note_miss(&mut self) {
        self.stats.misses += 1;
    }

    fn note_held(&mut self, bytes: u64) {
        self.stats.bytes_held += bytes;
        self.stats.bytes_high_water = self.stats.bytes_high_water.max(self.stats.bytes_held);
    }

    /// Folds stats accumulated since the last publish into the global
    /// `ws.*` metrics gauges (no-op when the sink is disabled).
    fn publish_metrics(&mut self) {
        use linvar_metrics::Gauge;
        let dh = self.stats.hits - self.published_hits;
        let dm = self.stats.misses - self.published_misses;
        if dh > 0 {
            linvar_metrics::gauge_add(Gauge::WsHits, dh);
            self.published_hits = self.stats.hits;
        }
        if dm > 0 {
            linvar_metrics::gauge_add(Gauge::WsMisses, dm);
            self.published_misses = self.stats.misses;
        }
        if self.stats.bytes_high_water > self.published_high_water {
            linvar_metrics::gauge_max(Gauge::WsBytesHeld, self.stats.bytes_high_water);
            self.published_high_water = self.stats.bytes_high_water;
        }
    }
}

fn bytes_f64(elems: usize) -> u64 {
    (elems * std::mem::size_of::<f64>()) as u64
}

fn bytes_cplx(elems: usize) -> u64 {
    (elems * std::mem::size_of::<Complex>()) as u64
}

thread_local! {
    static WORKSPACE: RefCell<Workspace> = RefCell::new(Workspace::new());
}

/// Runs `f` with this thread's workspace arena.
///
/// One arena exists per OS thread, so the Monte-Carlo drivers get one
/// arena per worker with no API plumbing. On scope exit the arena's
/// stats are folded into the `ws.*` metrics gauges.
///
/// Re-entrant calls (an `f` that itself reaches `with_workspace`) get
/// a temporary pass-through workspace instead of deadlocking on the
/// thread-local — semantically identical, just without pooling — so
/// nesting is safe but pointless; structure code to avoid it.
pub fn with_workspace<R>(f: impl FnOnce(&mut Workspace) -> R) -> R {
    WORKSPACE.with(|cell| match cell.try_borrow_mut() {
        Ok(mut ws) => {
            let out = f(&mut ws);
            ws.publish_metrics();
            out
        }
        Err(_) => f(&mut Workspace::passthrough()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zero_filled_and_recycle_hits() {
        let mut ws = Workspace::pooling();
        let mut v = ws.take_vec(8);
        assert_eq!(v, vec![0.0; 8]);
        v[3] = 42.0;
        ws.recycle_vec(v);
        assert_eq!(ws.stats().bytes_held, 64);
        let v2 = ws.take_vec(8);
        assert_eq!(v2, vec![0.0; 8], "recycled buffer must be zeroed");
        let s = ws.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.bytes_held, 0);
        assert_eq!(s.bytes_high_water, 64);
    }

    #[test]
    fn size_keying_is_exact() {
        let mut ws = Workspace::pooling();
        ws.recycle_vec(vec![1.0; 4]);
        let v = ws.take_vec(5);
        assert_eq!(v.len(), 5);
        assert_eq!(ws.stats().misses, 1, "length mismatch must not hit");
    }

    #[test]
    fn matrix_pool_keyed_by_shape() {
        let mut ws = Workspace::pooling();
        let m = ws.take_matrix(3, 2);
        ws.recycle_matrix(m);
        let m2 = ws.take_matrix(2, 3);
        assert_eq!((m2.rows(), m2.cols()), (2, 3));
        assert_eq!(ws.stats().misses, 2, "transposed shape is a different key");
        let m3 = ws.take_matrix(3, 2);
        assert_eq!(ws.stats().hits, 1);
        assert!(m3.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn complex_pool_round_trips() {
        let mut ws = Workspace::pooling();
        let mut v = ws.take_cvec(6);
        v[0] = Complex::new(1.0, -2.0);
        ws.recycle_cvec(v);
        let v2 = ws.take_cvec(6);
        assert!(v2.iter().all(|&c| c == Complex::ZERO));
        assert_eq!(ws.stats().hits, 1);
    }

    #[test]
    fn passthrough_never_pools() {
        let mut ws = Workspace::passthrough();
        ws.recycle_vec(vec![0.0; 16]);
        assert_eq!(ws.stats().bytes_held, 0);
        let _ = ws.take_vec(16);
        assert_eq!(ws.stats().misses, 1);
        assert_eq!(ws.stats().hits, 0);
    }

    #[test]
    fn zero_length_buffers_are_not_pooled() {
        let mut ws = Workspace::pooling();
        ws.recycle_vec(Vec::new());
        assert_eq!(ws.stats().bytes_held, 0);
    }

    #[test]
    fn held_bytes_are_capped() {
        let mut ws = Workspace::pooling();
        let big = (MAX_HELD_BYTES as usize) / std::mem::size_of::<f64>();
        ws.recycle_vec(vec![0.0; big]);
        assert!(ws.stats().bytes_held > 0);
        ws.recycle_vec(vec![0.0; 8]);
        assert_eq!(
            ws.stats().bytes_held,
            bytes_f64(big),
            "recycle past the cap must drop"
        );
    }

    #[test]
    fn with_workspace_reuses_across_scopes_and_nests_safely() {
        let v = with_workspace(|ws| ws.take_vec(33));
        with_workspace(|ws| ws.recycle_vec(v));
        let (outer_hit, inner_miss) = with_workspace(|ws| {
            let v = ws.take_vec(33);
            let hit = ws.stats().hits;
            // Nested entry must not panic; it gets a pass-through arena.
            let inner = with_workspace(|inner| {
                let _ = inner.take_vec(33);
                inner.stats().misses
            });
            ws.recycle_vec(v);
            (hit, inner)
        });
        assert!(outer_hit >= 1, "thread-local pool must persist");
        assert_eq!(inner_miss, 1, "nested scope is pass-through");
    }
}
