//! General real eigensolver.
//!
//! Eigenvalues are computed by promoting the real matrix to complex,
//! reducing it to upper Hessenberg form with Householder similarity
//! transformations, and running the shifted QR iteration (Wilkinson shift,
//! Givens rotations) to convergence. Right eigenvectors are then recovered by
//! complex inverse iteration on the *original* matrix, which is cheap and
//! accurate for the small (order ≤ ~50), diagonalizable matrices produced by
//! reduced-order modeling.
//!
//! This is the kernel behind the pole/residue transformation of the paper
//! (eqs. 14–20): the poles of `Z(s)` are `1/d_kk` for the eigenvalues `d_kk`
//! of `T = -G_r⁻¹ C_r`, and the residues need the eigenvector matrix `S` and
//! its inverse.

use crate::cmatrix::{CLuFactor, CMatrix};
use crate::complex::Complex;
use crate::error::NumericError;
use crate::matrix::Matrix;

/// Full eigendecomposition `A = S D S⁻¹` of a real square matrix.
///
/// `values[k]` is the k-th eigenvalue and column `k` of [`vectors`] the
/// corresponding right eigenvector. Complex eigenvalues appear in conjugate
/// pairs (the input is real).
///
/// [`vectors`]: EigenDecomposition::vectors
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues, sorted by descending real part then descending imaginary part.
    pub values: Vec<Complex>,
    /// Right eigenvectors; column `k` corresponds to `values[k]`.
    pub vectors: CMatrix,
}

impl EigenDecomposition {
    /// Maximum residual `||A v_k - λ_k v_k||∞` over all eigenpairs, for
    /// diagnostics and tests.
    pub fn max_residual(&self, a: &Matrix) -> f64 {
        let ac = CMatrix::from_real(a);
        let mut worst = 0.0_f64;
        for (k, &lam) in self.values.iter().enumerate() {
            let v = self.vectors.col(k);
            let av = ac.mul_vec(&v);
            for (avi, vi) in av.iter().zip(&v) {
                worst = worst.max((*avi - lam * *vi).abs());
            }
        }
        worst
    }
}

/// Maximum QR iterations per eigenvalue before declaring failure.
const MAX_QR_SWEEPS_PER_EIGENVALUE: usize = 60;

/// Computes all eigenvalues of a real square matrix.
///
/// # Errors
///
/// Returns [`NumericError::DimensionMismatch`] for non-square input,
/// [`NumericError::InvalidInput`] for empty or non-finite input, and
/// [`NumericError::ConvergenceFailure`] if the QR iteration stalls.
///
/// # Example
///
/// ```
/// use linvar_numeric::{eigenvalues, Matrix};
///
/// # fn main() -> Result<(), linvar_numeric::NumericError> {
/// // Rotation-like matrix with eigenvalues 1 ± 2i.
/// let a = Matrix::from_rows(&[&[1.0, -2.0], &[2.0, 1.0]]);
/// let ev = eigenvalues(&a)?;
/// assert!((ev[0].im.abs() - 2.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn eigenvalues(a: &Matrix) -> Result<Vec<Complex>, NumericError> {
    check_input(a)?;
    let n = a.rows();
    if n == 0 {
        return Ok(Vec::new());
    }
    let balanced = balance(a);
    let mut h = CMatrix::from_real(&balanced);
    hessenberg_in_place(&mut h);
    let mut vals = qr_eigenvalues(&mut h)?;
    sort_eigenvalues(&mut vals);
    Ok(vals)
}

/// Computes the full eigendecomposition `A = S D S⁻¹`.
///
/// Eigenvectors are obtained by inverse iteration; for clustered eigenvalues
/// the shifts are perturbed and the vectors orthogonalized within the
/// cluster, which handles semi-simple multiplicity. Defective (non-
/// diagonalizable) matrices are outside the scope of this kernel and will
/// surface as a large [`EigenDecomposition::max_residual`] or a singular `S`.
///
/// # Errors
///
/// Same conditions as [`eigenvalues`], plus
/// [`NumericError::ConvergenceFailure`] if inverse iteration cannot produce
/// an eigenvector with an acceptable residual.
pub fn eigen_decompose(a: &Matrix) -> Result<EigenDecomposition, NumericError> {
    let _span = linvar_metrics::timer(linvar_metrics::Phase::Eigen);
    check_input(a)?;
    let n = a.rows();
    let values = eigenvalues(a)?;
    let ac = CMatrix::from_real(a);
    let scale = a.max_abs().max(1e-30);
    let mut vectors = CMatrix::zeros(n, n);

    // Track how many earlier eigenvalues are (numerically) equal to each one,
    // so repeated eigenvalues get perturbed shifts and in-cluster
    // orthogonalization.
    for k in 0..n {
        let lam = values[k];
        let mut cluster: Vec<usize> = Vec::new();
        for j in 0..k {
            if (values[j] - lam).abs() <= 1e-8 * scale {
                cluster.push(j);
            }
        }
        let v = inverse_iteration(&ac, lam, scale, cluster.len(), &vectors, &cluster)?;
        vectors.set_col(k, &v);
    }
    Ok(EigenDecomposition { values, vectors })
}

/// Eigendecomposition with one bounded recovery retry.
///
/// The shifted-QR iteration already escalates through exceptional shifts
/// internally; if it still fails to converge (or inverse iteration cannot
/// produce an eigenvector), this wrapper retries exactly once on a copy of
/// `a` with a tiny graded diagonal perturbation (`~1e-10 · max|a_ij|`, varied
/// per row to break symmetry). The returned flag is `true` when the
/// perturbed retry served the result, so callers can record the degradation.
///
/// # Errors
///
/// Propagates the underlying error if the perturbed retry also fails, and
/// any non-convergence-class error (bad shape, non-finite entries) directly.
pub fn eigen_decompose_recovering(a: &Matrix) -> Result<(EigenDecomposition, bool), NumericError> {
    match eigen_decompose(a) {
        Ok(dec) => Ok((dec, false)),
        Err(NumericError::ConvergenceFailure { .. }) => {
            let eps = 1e-10 * a.max_abs().max(1e-30);
            let mut perturbed = a.clone();
            for i in 0..a.rows() {
                perturbed[(i, i)] += eps * (1.0 + i as f64 * 1e-3);
            }
            let dec = eigen_decompose(&perturbed)?;
            linvar_metrics::incr(linvar_metrics::Counter::EigenRecoveries);
            Ok((dec, true))
        }
        Err(e) => Err(e),
    }
}

fn check_input(a: &Matrix) -> Result<(), NumericError> {
    if !a.is_square() {
        return Err(NumericError::DimensionMismatch {
            expected: "square matrix".into(),
            found: format!("{}x{}", a.rows(), a.cols()),
        });
    }
    if a.as_slice().iter().any(|x| !x.is_finite()) {
        return Err(NumericError::InvalidInput(
            "matrix contains non-finite entries".into(),
        ));
    }
    Ok(())
}

/// Osborne balancing: a diagonal similarity that equalizes row and column
/// norms, improving eigenvalue accuracy for badly scaled matrices (MNA
/// matrices mix conductances and capacitances spanning many decades).
fn balance(a: &Matrix) -> Matrix {
    let n = a.rows();
    let mut b = a.clone();
    let radix = 2.0_f64;
    for _pass in 0..10 {
        let mut converged = true;
        for i in 0..n {
            let mut row_norm = 0.0;
            let mut col_norm = 0.0;
            for j in 0..n {
                if j != i {
                    row_norm += b[(i, j)].abs();
                    col_norm += b[(j, i)].abs();
                }
            }
            if row_norm == 0.0 || col_norm == 0.0 {
                continue;
            }
            let mut f = 1.0;
            let s = row_norm + col_norm;
            let mut c = col_norm;
            while c < row_norm / radix {
                f *= radix;
                c *= radix * radix;
            }
            while c > row_norm * radix {
                f /= radix;
                c /= radix * radix;
            }
            if (row_norm / f + col_norm * f) < 0.95 * s {
                converged = false;
                for j in 0..n {
                    b[(i, j)] /= f;
                }
                for j in 0..n {
                    b[(j, i)] *= f;
                }
            }
        }
        if converged {
            break;
        }
    }
    b
}

/// In-place reduction to upper Hessenberg form by complex Householder
/// similarity transformations.
fn hessenberg_in_place(h: &mut CMatrix) {
    let n = h.rows();
    if n < 3 {
        return;
    }
    for k in 0..n - 2 {
        // Householder vector zeroing h[k+2.., k].
        let mut x: Vec<Complex> = ((k + 1)..n).map(|i| h[(i, k)]).collect();
        let xnorm = x.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        if xnorm == 0.0 {
            continue;
        }
        // alpha = -e^{i arg(x0)} * ||x||
        let x0 = x[0];
        let phase = if x0.abs() == 0.0 {
            Complex::ONE
        } else {
            x0.scale(1.0 / x0.abs())
        };
        let alpha = -phase.scale(xnorm);
        x[0] -= alpha;
        let vnorm_sqr: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        if vnorm_sqr == 0.0 {
            continue;
        }
        let beta = 2.0 / vnorm_sqr;
        // Apply P = I - beta v v^H from the left to rows k+1..n.
        for j in 0..n {
            let mut dot = Complex::ZERO;
            for (idx, vi) in x.iter().enumerate() {
                dot += vi.conj() * h[(k + 1 + idx, j)];
            }
            let dot = dot.scale(beta);
            for (idx, vi) in x.iter().enumerate() {
                let upd = *vi * dot;
                h[(k + 1 + idx, j)] -= upd;
            }
        }
        // Apply P from the right to columns k+1..n.
        for i in 0..n {
            let mut dot = Complex::ZERO;
            for (idx, vi) in x.iter().enumerate() {
                dot += h[(i, k + 1 + idx)] * *vi;
            }
            let dot = dot.scale(beta);
            for (idx, vi) in x.iter().enumerate() {
                let upd = dot * vi.conj();
                h[(i, k + 1 + idx)] -= upd;
            }
        }
        // Explicitly zero what should now be zero.
        for i in (k + 2)..n {
            h[(i, k)] = Complex::ZERO;
        }
    }
}

/// Shifted QR iteration with Wilkinson shifts on a complex upper Hessenberg
/// matrix; destroys `h` and returns its eigenvalues.
fn qr_eigenvalues(h: &mut CMatrix) -> Result<Vec<Complex>, NumericError> {
    let n = h.rows();
    let mut vals = vec![Complex::ZERO; n];
    let mut hi = n; // active block is rows/cols [0, hi)
    let mut sweeps_for_current = 0usize;
    let mut total_sweeps = 0usize;

    while hi > 0 {
        if hi == 1 {
            vals[0] = h[(0, 0)];
            break;
        }
        // Deflation scan: find the largest lo such that h[lo, lo-1] is negligible.
        let mut lo = hi - 1;
        while lo > 0 {
            let sub = h[(lo, lo - 1)].abs();
            let diag = h[(lo - 1, lo - 1)].abs() + h[(lo, lo)].abs();
            if sub <= f64::EPSILON * diag.max(1e-300) {
                h[(lo, lo - 1)] = Complex::ZERO;
                break;
            }
            lo -= 1;
        }
        if lo == hi - 1 {
            // 1x1 block converged.
            vals[hi - 1] = h[(hi - 1, hi - 1)];
            hi -= 1;
            sweeps_for_current = 0;
            continue;
        }
        if lo == hi - 2 {
            // Solve the trailing 2x2 block directly.
            let (l1, l2) = two_by_two_eigenvalues(
                h[(hi - 2, hi - 2)],
                h[(hi - 2, hi - 1)],
                h[(hi - 1, hi - 2)],
                h[(hi - 1, hi - 1)],
            );
            vals[hi - 2] = l1;
            vals[hi - 1] = l2;
            hi -= 2;
            sweeps_for_current = 0;
            continue;
        }

        // Wilkinson shift from the trailing 2x2 of the active block.
        let (l1, l2) = two_by_two_eigenvalues(
            h[(hi - 2, hi - 2)],
            h[(hi - 2, hi - 1)],
            h[(hi - 1, hi - 2)],
            h[(hi - 1, hi - 1)],
        );
        let target = h[(hi - 1, hi - 1)];
        let mut mu = if (l1 - target).abs() <= (l2 - target).abs() {
            l1
        } else {
            l2
        };
        // Occasional exceptional shift to break symmetry-induced cycles.
        if sweeps_for_current > 0 && sweeps_for_current.is_multiple_of(12) {
            mu += Complex::new(h[(hi - 1, hi - 2)].abs(), 0.0);
        }

        qr_sweep(h, lo, hi, mu);
        sweeps_for_current += 1;
        total_sweeps += 1;
        if sweeps_for_current > MAX_QR_SWEEPS_PER_EIGENVALUE {
            return Err(NumericError::ConvergenceFailure {
                algorithm: "shifted-qr",
                iterations: total_sweeps,
            });
        }
    }
    Ok(vals)
}

/// Eigenvalues of the complex 2x2 matrix [[a, b], [c, d]].
fn two_by_two_eigenvalues(a: Complex, b: Complex, c: Complex, d: Complex) -> (Complex, Complex) {
    let tr = a + d;
    let half_tr = tr.scale(0.5);
    let det = a * d - b * c;
    let disc = (half_tr * half_tr - det).sqrt();
    (half_tr + disc, half_tr - disc)
}

/// One implicit-shift QR sweep (explicit formulation: factor `H - µI = QR`
/// with Givens rotations, then form `RQ + µI`) on the active block `[lo, hi)`.
fn qr_sweep(h: &mut CMatrix, lo: usize, hi: usize, mu: Complex) {
    let m = hi - lo;
    if m < 2 {
        return;
    }
    // Shift the diagonal of the active block.
    for i in lo..hi {
        h[(i, i)] -= mu;
    }
    // Left-apply Givens rotations to annihilate the subdiagonal.
    let mut rot: Vec<(Complex, Complex)> = Vec::with_capacity(m - 1);
    for k in lo..hi - 1 {
        let a = h[(k, k)];
        let b = h[(k + 1, k)];
        let r = (a.norm_sqr() + b.norm_sqr()).sqrt();
        let (c, s) = if r == 0.0 {
            (Complex::ONE, Complex::ZERO)
        } else {
            (a.conj().scale(1.0 / r), b.conj().scale(1.0 / r))
        };
        rot.push((c, s));
        // Rows k, k+1 of the whole matrix width (only columns >= k matter
        // inside the block; applying across the full width keeps the
        // similarity consistent for the deflated parts).
        for j in k..hi {
            let t1 = h[(k, j)];
            let t2 = h[(k + 1, j)];
            h[(k, j)] = c * t1 + s * t2;
            h[(k + 1, j)] = -s.conj() * t1 + c.conj() * t2;
        }
    }
    // Right-apply the conjugate transposes: columns k, k+1.
    for (idx, &(c, s)) in rot.iter().enumerate() {
        let k = lo + idx;
        let top = if k + 2 <= hi { (k + 2).min(hi) } else { hi };
        for i in lo..top {
            let t1 = h[(i, k)];
            let t2 = h[(i, k + 1)];
            h[(i, k)] = t1 * c.conj() + t2 * s.conj();
            h[(i, k + 1)] = t1 * (-s) + t2 * c;
        }
    }
    // Un-shift the diagonal.
    for i in lo..hi {
        h[(i, i)] += mu;
    }
}

/// Inverse iteration for the eigenvector of `a` at eigenvalue `lam`.
///
/// `cluster_index` selects a deterministic perturbation/start vector for
/// repeated eigenvalues; previously found vectors of the same cluster (given
/// by `cluster` column indices into `found`) are projected out.
fn inverse_iteration(
    a: &CMatrix,
    lam: Complex,
    scale: f64,
    cluster_index: usize,
    found: &CMatrix,
    cluster: &[usize],
) -> Result<Vec<Complex>, NumericError> {
    let n = a.rows();
    if n == 1 {
        return Ok(vec![Complex::ONE]);
    }
    let mut best: Option<(f64, Vec<Complex>)> = None;
    // Escalating shift perturbations: the factorization of (A - λI) may be
    // exactly singular; a tiny complex offset fixes that without moving the
    // dominant eigendirection.
    for attempt in 0..6 {
        let eps = 1e-11 * scale * (1.0 + cluster_index as f64) * 10f64.powi(attempt);
        let shift = lam + Complex::new(eps, eps * 0.5);
        let mut m = a.clone();
        for i in 0..n {
            m[(i, i)] -= shift;
        }
        let lu = match CLuFactor::new(&m) {
            Ok(lu) => lu,
            Err(_) => continue,
        };
        // Deterministic pseudo-random start vector, varied per cluster index.
        let mut v: Vec<Complex> = (0..n)
            .map(|i| {
                let t = (i as f64 + 1.0) * 0.7390851332151607 + cluster_index as f64 * 1.234567;
                Complex::new(t.sin(), t.cos() * 0.5)
            })
            .collect();
        normalize(&mut v);
        let mut ok = true;
        for _ in 0..3 {
            v = match lu.solve(&v) {
                Ok(x) => x,
                Err(_) => {
                    ok = false;
                    break;
                }
            };
            // Project out already-found vectors of the same cluster.
            for &j in cluster {
                let q = found.col(j);
                let mut proj = Complex::ZERO;
                for (qi, vi) in q.iter().zip(&v) {
                    proj += qi.conj() * *vi;
                }
                for (vi, qi) in v.iter_mut().zip(&q) {
                    *vi -= proj * *qi;
                }
            }
            if v.iter().any(|z| !z.is_finite()) {
                ok = false;
                break;
            }
            normalize(&mut v);
        }
        if !ok {
            continue;
        }
        // Residual check against the *unperturbed* eigenvalue.
        let av = a.mul_vec(&v);
        let mut res = 0.0_f64;
        for (avi, vi) in av.iter().zip(&v) {
            res = res.max((*avi - lam * *vi).abs());
        }
        let rel = res / scale;
        if best.as_ref().is_none_or(|(b, _)| rel < *b) {
            best = Some((rel, v));
        }
        if best.as_ref().is_some_and(|(b, _)| *b < 1e-8) {
            break;
        }
    }
    match best {
        Some((rel, v)) if rel < 1e-4 => Ok(v),
        _ => Err(NumericError::ConvergenceFailure {
            algorithm: "inverse-iteration",
            iterations: 6,
        }),
    }
}

fn normalize(v: &mut [Complex]) {
    let norm = v.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
    if norm > 0.0 {
        // Also fix the phase so that the largest component is real-positive;
        // this makes conjugate pairs come out as conjugate vectors.
        let mut max_idx = 0;
        let mut max_abs = 0.0;
        for (i, z) in v.iter().enumerate() {
            if z.abs() > max_abs {
                max_abs = z.abs();
                max_idx = i;
            }
        }
        let phase = if max_abs > 0.0 {
            v[max_idx].scale(1.0 / max_abs)
        } else {
            Complex::ONE
        };
        let fix = phase.conj().scale(1.0 / norm);
        for z in v.iter_mut() {
            *z *= fix;
        }
    }
}

/// Sorts by descending real part, ties broken by descending imaginary part.
fn sort_eigenvalues(vals: &mut [Complex]) {
    vals.sort_by(|a, b| {
        b.re.partial_cmp(&a.re)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(b.im.partial_cmp(&a.im).unwrap_or(std::cmp::Ordering::Equal))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_contains_eigenvalue(vals: &[Complex], target: Complex, tol: f64) {
        assert!(
            vals.iter().any(|v| (*v - target).abs() < tol),
            "eigenvalue {target} not found in {vals:?}"
        );
    }

    #[test]
    fn diagonal_matrix() {
        let a = Matrix::from_diagonal(&[3.0, -1.0, 0.5]);
        let ev = eigenvalues(&a).unwrap();
        assert_contains_eigenvalue(&ev, Complex::from_real(3.0), 1e-10);
        assert_contains_eigenvalue(&ev, Complex::from_real(-1.0), 1e-10);
        assert_contains_eigenvalue(&ev, Complex::from_real(0.5), 1e-10);
    }

    #[test]
    fn symmetric_2x2() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let ev = eigenvalues(&a).unwrap();
        assert_contains_eigenvalue(&ev, Complex::from_real(3.0), 1e-10);
        assert_contains_eigenvalue(&ev, Complex::from_real(1.0), 1e-10);
    }

    #[test]
    fn complex_pair() {
        // [[0, -1], [1, 0]] has eigenvalues ±i.
        let a = Matrix::from_rows(&[&[0.0, -1.0], &[1.0, 0.0]]);
        let ev = eigenvalues(&a).unwrap();
        assert_contains_eigenvalue(&ev, Complex::new(0.0, 1.0), 1e-10);
        assert_contains_eigenvalue(&ev, Complex::new(0.0, -1.0), 1e-10);
    }

    #[test]
    fn known_3x3_with_complex_eigenvalues() {
        // Companion matrix of λ³ - 6λ² + 11λ - 6 = (λ-1)(λ-2)(λ-3).
        let a = Matrix::from_rows(&[&[6.0, -11.0, 6.0], &[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]);
        let ev = eigenvalues(&a).unwrap();
        for target in [1.0, 2.0, 3.0] {
            assert_contains_eigenvalue(&ev, Complex::from_real(target), 1e-8);
        }
    }

    #[test]
    fn eigen_decomposition_residual_small() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.2], &[0.5, 3.0, -0.3], &[0.1, 0.2, 1.0]]);
        let dec = eigen_decompose(&a).unwrap();
        assert!(dec.max_residual(&a) < 1e-8 * a.max_abs());
    }

    #[test]
    fn eigen_decomposition_with_complex_pair_residual() {
        let a = Matrix::from_rows(&[&[1.0, -5.0, 0.0], &[5.0, 1.0, 0.0], &[0.0, 0.0, -2.0]]);
        let dec = eigen_decompose(&a).unwrap();
        assert!(dec.max_residual(&a) < 1e-8 * a.max_abs());
        let n_complex = dec.values.iter().filter(|v| v.im.abs() > 1e-6).count();
        assert_eq!(n_complex, 2);
    }

    #[test]
    fn repeated_eigenvalue_semi_simple() {
        // Identity scaled: eigenvalue 2 with multiplicity 3, diagonalizable.
        let a = &Matrix::identity(3) * 2.0;
        let dec = eigen_decompose(&a).unwrap();
        for v in &dec.values {
            assert!((v.re - 2.0).abs() < 1e-10 && v.im.abs() < 1e-10);
        }
        // The eigenvector matrix must be invertible (vectors independent).
        assert!(CLuFactor::new(&dec.vectors).is_ok());
    }

    #[test]
    fn rc_like_matrix_has_real_negative_eigenvalues() {
        // -G⁻¹C style matrix for a 3-node RC ladder: eigenvalues must be
        // real and negative (passive RC system poles are on the negative
        // real axis). Construct T = -G⁻¹C directly.
        let g = Matrix::from_rows(&[&[2.0, -1.0, 0.0], &[-1.0, 2.0, -1.0], &[0.0, -1.0, 2.0]]);
        let c = Matrix::from_diagonal(&[1e-12, 2e-12, 1e-12]);
        let ginv = crate::lu::LuFactor::new(&g).unwrap().inverse().unwrap();
        let t = -&ginv.mul_mat(&c);
        let ev = eigenvalues(&t).unwrap();
        for v in &ev {
            assert!(v.re < 0.0, "RC eigenvalue should be negative: {v}");
            assert!(
                v.im.abs() < 1e-20 + 1e-8 * v.re.abs(),
                "should be real: {v}"
            );
        }
    }

    #[test]
    fn badly_scaled_matrix_is_balanced() {
        // Entries spanning 12 decades; balancing keeps accuracy.
        let a = Matrix::from_rows(&[&[1.0, 1e-9], &[1e9, 2.0]]);
        let ev = eigenvalues(&a).unwrap();
        // Characteristic poly: λ² - 3λ + (2 - 1) = 0 → λ = (3 ± √5)/2.
        let s5 = 5.0_f64.sqrt();
        assert_contains_eigenvalue(&ev, Complex::from_real((3.0 + s5) / 2.0), 1e-6);
        assert_contains_eigenvalue(&ev, Complex::from_real((3.0 - s5) / 2.0), 1e-6);
    }

    #[test]
    fn empty_and_single() {
        assert!(eigenvalues(&Matrix::zeros(0, 0)).unwrap().is_empty());
        let ev = eigenvalues(&Matrix::from_rows(&[&[7.0]])).unwrap();
        assert_eq!(ev.len(), 1);
        assert!((ev[0].re - 7.0).abs() < 1e-14);
    }

    #[test]
    fn non_square_rejected() {
        assert!(eigenvalues(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn non_finite_rejected() {
        let mut a = Matrix::identity(2);
        a[(0, 1)] = f64::NAN;
        assert!(eigenvalues(&a).is_err());
    }

    #[test]
    fn larger_random_matrix_residual() {
        let n = 12;
        let mut state = 99_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let a = Matrix::from_fn(n, n, |_, _| next());
        let dec = eigen_decompose(&a).unwrap();
        assert!(
            dec.max_residual(&a) < 1e-7 * a.max_abs().max(1.0),
            "residual {}",
            dec.max_residual(&a)
        );
        // Real matrix ⇒ complex eigenvalues in conjugate pairs.
        let sum_im: f64 = dec.values.iter().map(|v| v.im).sum();
        assert!(sum_im.abs() < 1e-8);
    }
}
