//! Sparse LU factorization with a symbolic/numeric phase split.
//!
//! The factorization is organized the way sparse circuit simulators
//! (KLU, Sparse 1.3) organize theirs:
//!
//! 1. **Symbolic analysis** ([`SparseSymbolic::analyze`]): a fill-reducing
//!    minimum-degree ordering of the columns, computed from the structural
//!    pattern of `A + Aᵀ` only. This is the expensive, value-independent
//!    step, and it is cached per pattern (see [`analyze_cached`]) so a
//!    Monte-Carlo campaign pays it once per circuit topology, not once per
//!    sample.
//! 2. **Numeric factorization** ([`SparseLu::factor`]): a left-looking
//!    Gilbert–Peierls elimination with partial (row) pivoting. The first
//!    factorization discovers the elimination pattern with depth-first
//!    reachability over the partially built `L` and stores the complete
//!    `L`/`U` patterns plus the pivot permutation.
//! 3. **Refactorization** ([`SparseLu::refactor`]): recomputes the factor
//!    *values* over the stored pattern with the stored pivot order —
//!    no reach, no pivot search, no allocation. This is the per-timestep /
//!    per-sample fast path.
//!
//! # Bitwise contracts
//!
//! Within one column the elimination updates are applied in ascending
//! pivot order — a valid topological order for the lower-triangular
//! dependency — both in the first factorization and in every refactor.
//! Each update targets a distinct accumulator per source column, so
//! `factor` followed by `refactor` on the *same values* reproduces the
//! factor arrays bit for bit, and repeated refactors are bitwise
//! self-consistent (asserted in `tests/sparse_dense_equivalence.rs`).
//!
//! Triangular solves take their permutation scratch from the per-worker
//! workspace arena ([`crate::with_workspace`]), so steady-state solves
//! allocate nothing once the pool is warm.

use crate::error::NumericError;
use crate::lu::FactorRecovery;
use crate::matrix::Matrix;
use crate::sparse::SparseMatrix;
use crate::workspace::with_workspace;
use std::cell::RefCell;
use std::sync::Arc;

/// Relative pivot threshold below which the matrix is declared singular
/// (same contract as the dense `LuFactor`).
const PIVOT_TOL: f64 = 1e-300;

/// Result of the symbolic-analysis phase: a fill-reducing column order
/// plus the analyzed pattern (kept so cache lookups and refactors can
/// verify they are reusing the right analysis).
#[derive(Debug, Clone)]
pub struct SparseSymbolic {
    n: usize,
    /// Column elimination order: position `k` eliminates original column
    /// `q[k]`.
    q: Vec<usize>,
    /// Pattern the ordering was computed for.
    a_col_ptr: Vec<usize>,
    a_row_idx: Vec<usize>,
}

impl SparseSymbolic {
    /// Runs the symbolic phase: a minimum-degree ordering on the pattern
    /// of `A + Aᵀ` (ties broken toward the smallest node index, so the
    /// ordering is deterministic).
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `a` is not square.
    pub fn analyze(a: &SparseMatrix) -> Result<Self, NumericError> {
        let _span = linvar_metrics::timer(linvar_metrics::Phase::SparseSymbolic);
        if !a.is_square() {
            return Err(NumericError::DimensionMismatch {
                expected: "square matrix".into(),
                found: format!("{}x{}", a.n_rows(), a.n_cols()),
            });
        }
        let q = min_degree_order(a.n_rows(), a.col_ptr(), a.row_indices());
        Ok(SparseSymbolic {
            n: a.n_rows(),
            q,
            a_col_ptr: a.col_ptr().to_vec(),
            a_row_idx: a.row_indices().to_vec(),
        })
    }

    /// Matrix order the analysis was computed for.
    pub fn order(&self) -> usize {
        self.n
    }

    /// The fill-reducing column order.
    pub fn column_order(&self) -> &[usize] {
        &self.q
    }

    /// `true` if `a` has exactly the analyzed pattern.
    pub fn matches(&self, a: &SparseMatrix) -> bool {
        a.n_rows() == self.n
            && a.is_square()
            && a.col_ptr() == self.a_col_ptr.as_slice()
            && a.row_indices() == self.a_row_idx.as_slice()
    }
}

/// Entries the per-worker symbolic cache holds before evicting the least
/// recently used. A Monte-Carlo worker typically sees two patterns per
/// circuit (DC and transient companion stamps), so a handful suffices.
const SYMBOLIC_CACHE_CAP: usize = 8;

thread_local! {
    static SYMBOLIC_CACHE: RefCell<Vec<Arc<SparseSymbolic>>> = const { RefCell::new(Vec::new()) };
}

/// Symbolic analysis through the per-worker pattern cache.
///
/// The cache lives next to the workspace arena (one per worker thread):
/// repeated factorizations of matrices with an identical pattern — every
/// sample of a Monte-Carlo campaign, every timestep rebuild of one
/// transient — reuse the stored ordering instead of re-running
/// minimum-degree. Patterns are compared exactly, so a hit can never
/// return the wrong analysis.
///
/// # Errors
///
/// Returns [`NumericError::DimensionMismatch`] if `a` is not square.
pub fn analyze_cached(a: &SparseMatrix) -> Result<Arc<SparseSymbolic>, NumericError> {
    SYMBOLIC_CACHE.with(|cell| {
        let mut cache = cell.borrow_mut();
        if let Some(pos) = cache.iter().position(|s| s.matches(a)) {
            let hit = cache.remove(pos);
            cache.push(Arc::clone(&hit));
            return Ok(hit);
        }
        let fresh = Arc::new(SparseSymbolic::analyze(a)?);
        if cache.len() >= SYMBOLIC_CACHE_CAP {
            cache.remove(0);
        }
        cache.push(Arc::clone(&fresh));
        Ok(fresh)
    })
}

/// Minimum-degree ordering on the structural pattern of `A + Aᵀ`.
///
/// Classic elimination-graph formulation with a lazy bucket queue: pop the
/// lowest `(degree, node)` pair (stale entries are skipped), eliminate the
/// node, and union its neighbourhood into each neighbour's adjacency. For
/// the near-banded / tree-shaped MNA patterns this backend targets, node
/// degrees stay small and the whole ordering is O(n·d²).
fn min_degree_order(n: usize, col_ptr: &[usize], row_idx: &[usize]) -> Vec<usize> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for j in 0..n {
        for &i in &row_idx[col_ptr[j]..col_ptr[j + 1]] {
            if i != j {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    for a in &mut adj {
        a.sort_unstable();
        a.dedup();
    }
    let mut degree: Vec<usize> = adj.iter().map(Vec::len).collect();
    let mut heap: BinaryHeap<Reverse<(usize, usize)>> =
        (0..n).map(|v| Reverse((degree[v], v))).collect();
    let mut eliminated = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut nbrs: Vec<usize> = Vec::new();
    let mut merged: Vec<usize> = Vec::new();
    while order.len() < n {
        let v = loop {
            match heap.pop() {
                Some(Reverse((d, v))) if !eliminated[v] && d == degree[v] => break v,
                Some(_) => continue, // stale entry
                None => break (0..n).find(|&v| !eliminated[v]).expect("n nodes remain"),
            }
        };
        eliminated[v] = true;
        order.push(v);
        nbrs.clear();
        nbrs.extend(adj[v].iter().copied().filter(|&u| !eliminated[u]));
        adj[v] = Vec::new();
        for &u in &nbrs {
            // adj[u] ← (adj[u] ∪ nbrs) \ {u} \ eliminated  (sorted merge)
            merged.clear();
            let au = &adj[u];
            let (mut i, mut k) = (0, 0);
            while i < au.len() || k < nbrs.len() {
                let x = match (au.get(i), nbrs.get(k)) {
                    (Some(&a), Some(&b)) => {
                        if a <= b {
                            i += 1;
                            if a == b {
                                k += 1;
                            }
                            a
                        } else {
                            k += 1;
                            b
                        }
                    }
                    (Some(&a), None) => {
                        i += 1;
                        a
                    }
                    (None, Some(&b)) => {
                        k += 1;
                        b
                    }
                    (None, None) => unreachable!("loop condition"),
                };
                if x != u && !eliminated[x] {
                    merged.push(x);
                }
            }
            adj[u].clear();
            adj[u].extend_from_slice(&merged);
            degree[u] = adj[u].len();
            heap.push(Reverse((degree[u], u)));
        }
    }
    order
}

/// Sparse LU factors `P·A·Q = L·U` with partial pivoting, storing a
/// reusable elimination pattern.
///
/// `Q` is the fill-reducing column order from the symbolic phase; `P` is
/// the row permutation chosen by partial pivoting during the first
/// numeric factorization. Both factors are stored column-compressed in
/// pivot coordinates (`L` strictly lower with implied unit diagonal, `U`
/// strictly upper with the diagonal kept separately).
#[derive(Debug, Clone)]
pub struct SparseLu {
    n: usize,
    /// Column order: position `k` eliminated original column `q[k]`.
    q: Vec<usize>,
    /// `rowperm[k]` = original row pivotal at position `k`.
    rowperm: Vec<usize>,
    /// `pinv[r]` = pivot position of original row `r`.
    pinv: Vec<usize>,
    l_colptr: Vec<usize>,
    l_rows: Vec<usize>,
    l_vals: Vec<f64>,
    u_colptr: Vec<usize>,
    u_rows: Vec<usize>,
    u_vals: Vec<f64>,
    udiag: Vec<f64>,
    /// Pattern of the factored matrix ([`SparseLu::refactor`] validation).
    a_colptr: Vec<usize>,
    a_rows: Vec<usize>,
    /// Pivot-space scratch for refactors; zero outside an active column.
    work: Vec<f64>,
}

impl SparseLu {
    /// Factors `a`, running (or reusing, via the per-worker cache) the
    /// symbolic analysis first.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `a` is not square
    /// and [`NumericError::SingularMatrix`] if a pivot underflows.
    pub fn new(a: &SparseMatrix) -> Result<Self, NumericError> {
        let symbolic = analyze_cached(a)?;
        Self::factor(a, &symbolic)
    }

    /// Numeric factorization of `a` under a precomputed column order.
    ///
    /// The ordering must have the same order as `a`; it may come from a
    /// different (e.g. diagonally extended) pattern — any permutation is
    /// *valid*, just possibly less fill-reducing.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] on shape mismatch and
    /// [`NumericError::SingularMatrix`] (with a condition estimate when
    /// one is available) if no acceptable pivot exists in some column —
    /// structurally empty columns included. Never panics on singular
    /// input.
    pub fn factor(a: &SparseMatrix, symbolic: &SparseSymbolic) -> Result<Self, NumericError> {
        let _span = linvar_metrics::timer(linvar_metrics::Phase::SparseNumericFactor);
        if !a.is_square() {
            return Err(NumericError::DimensionMismatch {
                expected: "square matrix".into(),
                found: format!("{}x{}", a.n_rows(), a.n_cols()),
            });
        }
        let n = a.n_rows();
        if symbolic.n != n {
            return Err(NumericError::DimensionMismatch {
                expected: format!("symbolic analysis of order {n}"),
                found: format!("order {}", symbolic.n),
            });
        }
        // Scatter vector over original rows plus membership flags.
        let mut x = vec![0.0f64; n];
        let mut in_pattern = vec![false; n];
        let mut pattern: Vec<usize> = Vec::new();
        // DFS state over pivot positions.
        let mut visited = vec![false; n];
        let mut reach: Vec<usize> = Vec::new();
        let mut stack: Vec<usize> = Vec::new();
        let mut pinv = vec![usize::MAX; n];
        let mut rowperm: Vec<usize> = Vec::with_capacity(n);
        let mut lcols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
        let mut ucols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
        let mut udiag: Vec<f64> = Vec::with_capacity(n);
        let mut max_pivot = 0.0f64;

        for k in 0..n {
            let c = symbolic.q[k];
            pattern.clear();
            reach.clear();
            // Scatter A(:, c) and collect the reach of its pivotal rows
            // through the partially built L.
            let (arows, avals) = a.col(c);
            for (&r, &v) in arows.iter().zip(avals) {
                x[r] = v;
                if !in_pattern[r] {
                    in_pattern[r] = true;
                    pattern.push(r);
                }
                let start = pinv[r];
                if start != usize::MAX && !visited[start] {
                    visited[start] = true;
                    stack.push(start);
                    while let Some(j) = stack.pop() {
                        reach.push(j);
                        for &(r2, _) in &lcols[j] {
                            if !in_pattern[r2] {
                                in_pattern[r2] = true;
                                pattern.push(r2);
                            }
                            let pj = pinv[r2];
                            if pj != usize::MAX && !visited[pj] {
                                visited[pj] = true;
                                stack.push(pj);
                            }
                        }
                    }
                }
            }
            // Ascending pivot order is a valid topological order for the
            // strictly-lower-triangular dependency, and it is the order
            // `refactor` replays — the bitwise-consistency contract.
            reach.sort_unstable();
            let mut ucol = Vec::with_capacity(reach.len());
            for &j in &reach {
                let xj = x[rowperm[j]];
                ucol.push((j, xj));
                for &(r2, l) in &lcols[j] {
                    x[r2] -= l * xj;
                }
            }
            // Partial pivot: largest magnitude among not-yet-pivotal
            // pattern rows, ties toward the smallest row index.
            let mut prow = usize::MAX;
            let mut pmax = -1.0f64;
            for &r in &pattern {
                if pinv[r] == usize::MAX {
                    let v = x[r].abs();
                    if v > pmax || (v == pmax && r < prow) {
                        pmax = v;
                        prow = r;
                    }
                }
            }
            let pmax = if prow == usize::MAX { 0.0 } else { pmax };
            if pmax < PIVOT_TOL || !pmax.is_finite() {
                let condition = if pmax.is_finite() && max_pivot > 0.0 {
                    Some(if pmax > 0.0 {
                        max_pivot / pmax
                    } else {
                        f64::INFINITY
                    })
                } else {
                    None
                };
                return Err(NumericError::SingularMatrix {
                    pivot: k,
                    condition,
                });
            }
            max_pivot = max_pivot.max(pmax);
            let pivot = x[prow];
            pinv[prow] = k;
            rowperm.push(prow);
            udiag.push(pivot);
            let mut lcol = Vec::new();
            for &r in &pattern {
                if pinv[r] == usize::MAX {
                    lcol.push((r, x[r] / pivot));
                }
            }
            lcol.sort_unstable_by_key(|&(r, _)| r);
            for &r in &pattern {
                x[r] = 0.0;
                in_pattern[r] = false;
            }
            for &j in &reach {
                visited[j] = false;
            }
            ucols.push(ucol);
            lcols.push(lcol);
        }

        // Renumber L into pivot coordinates (every row is pivotal now)
        // and compress both factors.
        let mut l_colptr = Vec::with_capacity(n + 1);
        let mut l_rows = Vec::new();
        let mut l_vals = Vec::new();
        l_colptr.push(0);
        let mut tmp: Vec<(usize, f64)> = Vec::new();
        for col in &lcols {
            tmp.clear();
            tmp.extend(col.iter().map(|&(r, v)| (pinv[r], v)));
            tmp.sort_unstable_by_key(|&(i, _)| i);
            for &(i, v) in &tmp {
                l_rows.push(i);
                l_vals.push(v);
            }
            l_colptr.push(l_rows.len());
        }
        let mut u_colptr = Vec::with_capacity(n + 1);
        let mut u_rows = Vec::new();
        let mut u_vals = Vec::new();
        u_colptr.push(0);
        for col in &ucols {
            for &(i, v) in col {
                u_rows.push(i);
                u_vals.push(v);
            }
            u_colptr.push(u_rows.len());
        }
        Ok(SparseLu {
            n,
            q: symbolic.q.clone(),
            rowperm,
            pinv,
            l_colptr,
            l_rows,
            l_vals,
            u_colptr,
            u_rows,
            u_vals,
            udiag,
            a_colptr: a.col_ptr().to_vec(),
            a_rows: a.row_indices().to_vec(),
            work: vec![0.0; n],
        })
    }

    /// Factors `a`, retrying once with a diagonal perturbation on
    /// breakdown — the same recovery ladder as the dense
    /// `LuFactor::new_recovering` (ε = `1e-12·max|a|`, clamped; the
    /// `lu.factor_recoveries` counter is incremented on the retry).
    ///
    /// # Errors
    ///
    /// Returns the underlying error if even the perturbed matrix fails
    /// to factor.
    pub fn new_recovering(
        a: &SparseMatrix,
        symbolic: &SparseSymbolic,
    ) -> Result<(Self, FactorRecovery), NumericError> {
        match Self::factor(a, symbolic) {
            Ok(lu) => {
                let condition_estimate = lu.condition_estimate();
                Ok((
                    lu,
                    FactorRecovery {
                        perturbed: false,
                        perturbation: 0.0,
                        condition_estimate,
                    },
                ))
            }
            Err(NumericError::SingularMatrix { .. }) => {
                let eps = 1e-12 * a.max_abs().max(1e-6);
                let regularized = a.add_diagonal(eps);
                // The ordering stays a valid permutation for the extended
                // pattern (possibly missing diagonal entries were added).
                let lu = Self::factor(&regularized, symbolic)?;
                linvar_metrics::incr(linvar_metrics::Counter::LuFactorRecoveries);
                let condition_estimate = lu.condition_estimate();
                Ok((
                    lu,
                    FactorRecovery {
                        perturbed: true,
                        perturbation: eps,
                        condition_estimate,
                    },
                ))
            }
            Err(e) => Err(e),
        }
    }

    /// Recomputes the factor values for a matrix with the **same pattern**
    /// as the one originally factored, reusing the stored elimination
    /// pattern and pivot permutation — no reach, no pivot search, no
    /// allocation.
    ///
    /// The stored pivot order is replayed without magnitude checks beyond
    /// the underflow guard, so values that drift far from the originally
    /// factored ones can degrade accuracy; on error, run a fresh
    /// [`SparseLu::factor`] to re-pivot.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidInput`] if `a`'s pattern differs
    /// from the factored pattern (never panics), and
    /// [`NumericError::SingularMatrix`] if a reused pivot underflows.
    pub fn refactor(&mut self, a: &SparseMatrix) -> Result<(), NumericError> {
        let _span = linvar_metrics::timer(linvar_metrics::Phase::SparseNumericFactor);
        if a.n_rows() != self.n || a.n_cols() != self.n {
            return Err(NumericError::DimensionMismatch {
                expected: format!("{0}x{0} matrix", self.n),
                found: format!("{}x{}", a.n_rows(), a.n_cols()),
            });
        }
        if a.col_ptr() != self.a_colptr.as_slice() || a.row_indices() != self.a_rows.as_slice() {
            return Err(NumericError::InvalidInput(
                "sparse refactor: matrix pattern differs from the factored pattern; \
                 run a full factor instead"
                    .into(),
            ));
        }
        let n = self.n;
        for k in 0..n {
            let c = self.q[k];
            let (arows, avals) = a.col(c);
            for (&r, &v) in arows.iter().zip(avals) {
                self.work[self.pinv[r]] = v;
            }
            for idx in self.u_colptr[k]..self.u_colptr[k + 1] {
                let j = self.u_rows[idx];
                let xj = self.work[j];
                self.u_vals[idx] = xj;
                for li in self.l_colptr[j]..self.l_colptr[j + 1] {
                    self.work[self.l_rows[li]] -= self.l_vals[li] * xj;
                }
            }
            let pivot = self.work[k];
            if pivot.abs() < PIVOT_TOL || !pivot.is_finite() {
                // Zero the touched entries so `work` stays clean for the
                // fallback full factor the caller should run.
                self.clear_column_scratch(k);
                let prev_max = self.udiag[..k].iter().fold(0.0f64, |m, v| m.max(v.abs()));
                let condition = if pivot.is_finite() && prev_max > 0.0 {
                    Some(if pivot.abs() > 0.0 {
                        prev_max / pivot.abs()
                    } else {
                        f64::INFINITY
                    })
                } else {
                    None
                };
                return Err(NumericError::SingularMatrix {
                    pivot: k,
                    condition,
                });
            }
            self.udiag[k] = pivot;
            for li in self.l_colptr[k]..self.l_colptr[k + 1] {
                let i = self.l_rows[li];
                self.l_vals[li] = self.work[i] / pivot;
            }
            self.clear_column_scratch(k);
        }
        Ok(())
    }

    /// Zeroes every scratch entry column `k` can have touched: its `U`
    /// pattern, the diagonal, and its `L` pattern (scatter positions are
    /// subsets of these by construction).
    fn clear_column_scratch(&mut self, k: usize) {
        for idx in self.u_colptr[k]..self.u_colptr[k + 1] {
            self.work[self.u_rows[idx]] = 0.0;
        }
        self.work[k] = 0.0;
        for li in self.l_colptr[k]..self.l_colptr[k + 1] {
            self.work[self.l_rows[li]] = 0.0;
        }
    }

    /// Matrix order.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Stored nonzeros in `L` and `U` combined (diagonals included).
    pub fn factor_nnz(&self) -> usize {
        self.l_vals.len() + self.u_vals.len() + 2 * self.n
    }

    /// Cheap condition estimate: ratio of the largest to the smallest
    /// `|U|` diagonal magnitude (same estimator as the dense backend).
    pub fn condition_estimate(&self) -> f64 {
        if self.n == 0 {
            return 1.0;
        }
        let mut umax = 0.0f64;
        let mut umin = f64::INFINITY;
        for &d in &self.udiag {
            let d = d.abs();
            umax = umax.max(d);
            umin = umin.min(d);
        }
        if umin > 0.0 {
            umax / umin
        } else {
            f64::INFINITY
        }
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `b.len()` differs
    /// from the matrix order.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericError> {
        let mut x = Vec::new();
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `A x = b` into `x` (fully overwritten; reuses `x`'s
    /// capacity). The permutation scratch comes from the per-worker
    /// workspace arena, so a warmed-up solve allocates nothing.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `b.len()` differs
    /// from the matrix order.
    pub fn solve_into(&self, b: &[f64], x: &mut Vec<f64>) -> Result<(), NumericError> {
        let _span = linvar_metrics::timer(linvar_metrics::Phase::SparseSolve);
        let n = self.n;
        if b.len() != n {
            return Err(NumericError::DimensionMismatch {
                expected: format!("vector of length {n}"),
                found: format!("length {}", b.len()),
            });
        }
        with_workspace(|ws| {
            let mut y = ws.take_vec(n);
            for k in 0..n {
                y[k] = b[self.rowperm[k]];
            }
            // Forward: L y' = P b (unit lower triangular).
            for k in 0..n {
                let yk = y[k];
                if yk != 0.0 {
                    for li in self.l_colptr[k]..self.l_colptr[k + 1] {
                        y[self.l_rows[li]] -= self.l_vals[li] * yk;
                    }
                }
            }
            // Backward: U z = y'.
            for k in (0..n).rev() {
                let yk = y[k] / self.udiag[k];
                y[k] = yk;
                if yk != 0.0 {
                    for ui in self.u_colptr[k]..self.u_colptr[k + 1] {
                        y[self.u_rows[ui]] -= self.u_vals[ui] * yk;
                    }
                }
            }
            // Undo the column permutation: x[q[k]] = z[k].
            x.clear();
            x.resize(n, 0.0);
            for k in 0..n {
                x[self.q[k]] = y[k];
            }
            ws.recycle_vec(y);
        });
        Ok(())
    }

    /// Solves `A X = B` for a matrix right-hand side, column by column.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `b.rows()` differs
    /// from the matrix order.
    pub fn solve_mat(&self, b: &Matrix) -> Result<Matrix, NumericError> {
        let n = self.n;
        if b.rows() != n {
            return Err(NumericError::DimensionMismatch {
                expected: format!("{n} rows"),
                found: format!("{} rows", b.rows()),
            });
        }
        let mut x = Matrix::zeros(n, b.cols());
        let mut col = Vec::new();
        let mut sol = Vec::new();
        for j in 0..b.cols() {
            b.col_into(j, &mut col);
            self.solve_into(&col, &mut sol)?;
            x.set_col(j, &sol);
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::LuFactor;

    /// Stamp-style conductance ladder with some long-range coupling — the
    /// shape the MNA engines hand the solver.
    fn ladder(n: usize) -> Matrix {
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = 2.5 + (i as f64) * 0.125;
            if i + 1 < n {
                a[(i, i + 1)] = -1.0 - (i as f64) * 0.01;
                a[(i + 1, i)] = -0.75;
            }
        }
        a[(0, n - 1)] = 0.5;
        a[(n - 1, 3 % n)] = -0.25;
        a
    }

    #[test]
    fn solves_match_dense_to_tight_tolerance() {
        let d = ladder(24);
        let s = SparseMatrix::from_dense(&d);
        let lu_d = LuFactor::new(&d).unwrap();
        let lu_s = SparseLu::new(&s).unwrap();
        let b: Vec<f64> = (0..24).map(|i| ((i * 7) % 11) as f64 - 5.0).collect();
        let xd = lu_d.solve(&b).unwrap();
        let xs = lu_s.solve(&b).unwrap();
        for (a, b) in xd.iter().zip(&xs) {
            assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // Permutation-like matrix: every pivot requires a row swap.
        let d = Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[0.0, 0.0, 2.0], &[3.0, 0.0, 0.0]]);
        let s = SparseMatrix::from_dense(&d);
        let lu = SparseLu::new(&s).unwrap();
        let x = lu.solve(&[1.0, 2.0, 3.0]).unwrap();
        let y = s.mul_vec(&x).unwrap();
        for (got, want) in y.iter().zip(&[1.0, 2.0, 3.0]) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn singular_and_empty_patterns_are_typed_errors() {
        // Duplicate rows.
        let s = SparseMatrix::from_triplets(
            2,
            2,
            &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 1.0), (1, 1, 2.0)],
        )
        .unwrap();
        assert!(matches!(
            SparseLu::new(&s),
            Err(NumericError::SingularMatrix { .. })
        ));
        // Structurally empty row/column.
        let s = SparseMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (1, 1, 1.0)]).unwrap();
        assert!(matches!(
            SparseLu::new(&s),
            Err(NumericError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn recovery_ladder_matches_dense_semantics() {
        let s = SparseMatrix::from_triplets(
            2,
            2,
            &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 2.0), (1, 1, 4.0)],
        )
        .unwrap();
        let symbolic = SparseSymbolic::analyze(&s).unwrap();
        let (lu, rec) = SparseLu::new_recovering(&s, &symbolic).unwrap();
        assert!(rec.perturbed);
        assert!(rec.perturbation > 0.0);
        let x = lu.solve(&[1.0, 2.0]).unwrap();
        assert!(x.iter().all(|v| v.is_finite()));

        // Clean systems report no perturbation.
        let c = SparseMatrix::from_dense(&ladder(6));
        let symbolic = SparseSymbolic::analyze(&c).unwrap();
        let (_, rec) = SparseLu::new_recovering(&c, &symbolic).unwrap();
        assert!(!rec.perturbed);
        assert!(rec.condition_estimate.is_finite());
    }

    #[test]
    fn refactor_reproduces_factor_bitwise() {
        let d = ladder(20);
        let s = SparseMatrix::from_dense(&d);
        let symbolic = SparseSymbolic::analyze(&s).unwrap();
        let reference = SparseLu::factor(&s, &symbolic).unwrap();
        let mut refactored = reference.clone();
        refactored.refactor(&s).unwrap();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&reference.l_vals), bits(&refactored.l_vals));
        assert_eq!(bits(&reference.u_vals), bits(&refactored.u_vals));
        assert_eq!(bits(&reference.udiag), bits(&refactored.udiag));
    }

    #[test]
    fn refactor_rejects_pattern_mismatch() {
        let s = SparseMatrix::from_dense(&ladder(8));
        let mut lu = SparseLu::new(&s).unwrap();
        let other = SparseMatrix::from_dense(&Matrix::identity(8));
        assert!(matches!(
            lu.refactor(&other),
            Err(NumericError::InvalidInput(_))
        ));
        let wrong_size = SparseMatrix::from_dense(&Matrix::identity(4));
        assert!(matches!(
            lu.refactor(&wrong_size),
            Err(NumericError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn solve_mat_and_condition_estimate() {
        let d = ladder(10);
        let s = SparseMatrix::from_dense(&d);
        let lu = SparseLu::new(&s).unwrap();
        assert!(lu.condition_estimate().is_finite());
        assert!(lu.condition_estimate() >= 1.0);
        let b = Matrix::from_fn(10, 3, |i, j| (i + 2 * j) as f64 - 4.0);
        let x = lu.solve_mat(&b).unwrap();
        for j in 0..3 {
            let y = s.mul_vec(&x.col(j)).unwrap();
            for (got, want) in y.iter().zip(&b.col(j)) {
                assert!((got - want).abs() < 1e-9);
            }
        }
        assert!(lu.solve(&[1.0]).is_err());
    }

    #[test]
    fn symbolic_cache_hits_on_repeated_patterns() {
        let s = SparseMatrix::from_dense(&ladder(12));
        let a = analyze_cached(&s).unwrap();
        let b = analyze_cached(&s).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second analysis must be a cache hit");
    }

    #[test]
    fn min_degree_order_is_a_permutation() {
        let s = SparseMatrix::from_dense(&ladder(17));
        let sym = SparseSymbolic::analyze(&s).unwrap();
        let mut seen = [false; 17];
        for &c in sym.column_order() {
            assert!(!seen[c]);
            seen[c] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }
}
