//! LU factorization with partial pivoting for real matrices.

use crate::error::NumericError;
use crate::matrix::Matrix;

/// LU factorization with partial (row) pivoting: `P * A = L * U`.
///
/// The factorization is computed once and can then solve many right-hand
/// sides — the access pattern of both the MNA transient simulators (one
/// factorization per Newton iteration) and the block-Arnoldi PRIMA iteration
/// (one factorization of `G`, many solves).
///
/// # Example
///
/// ```
/// use linvar_numeric::{LuFactor, Matrix};
///
/// # fn main() -> Result<(), linvar_numeric::NumericError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
/// let lu = LuFactor::new(&a)?;
/// let x = lu.solve(&[3.0, 4.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuFactor {
    /// Combined L (strict lower, unit diagonal implied) and U (upper) factors.
    lu: Matrix,
    /// Row permutation: row `i` of the factored matrix is row `perm[i]` of `A`.
    perm: Vec<usize>,
    /// Sign of the permutation, for determinant computation.
    perm_sign: f64,
}

/// Relative pivot threshold below which the matrix is declared singular.
const PIVOT_TOL: f64 = 1e-300;

/// What [`LuFactor::new_recovering`] had to do to obtain a factorization.
///
/// The recovery ladder for a near-singular system is: factor as-is, and if
/// that breaks down retry exactly once with a small diagonal perturbation
/// (Tikhonov-style regularization scaled to the matrix magnitude). The report
/// lets callers attribute the result — a perturbed factorization solves a
/// slightly different system and downstream layers may want to degrade
/// further or discard the sample.
#[derive(Debug, Clone, PartialEq)]
pub struct FactorRecovery {
    /// `true` if the diagonal had to be perturbed to complete the factorization.
    pub perturbed: bool,
    /// Magnitude of the diagonal perturbation applied (`0.0` when clean).
    pub perturbation: f64,
    /// Cheap condition estimate of the factored matrix: the ratio of the
    /// largest to the smallest `|U|` diagonal magnitude.
    pub condition_estimate: f64,
}

impl LuFactor {
    /// Factors the square matrix `a`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `a` is not square and
    /// [`NumericError::SingularMatrix`] if a pivot underflows.
    pub fn new(a: &Matrix) -> Result<Self, NumericError> {
        let _span = linvar_metrics::timer(linvar_metrics::Phase::LuFactor);
        if !a.is_square() {
            return Err(NumericError::DimensionMismatch {
                expected: "square matrix".into(),
                found: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;
        let mut max_pivot: f64 = 0.0;

        for k in 0..n {
            // Partial pivoting: find the largest magnitude entry in column k.
            let mut p = k;
            let mut pmax = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pmax < PIVOT_TOL || !pmax.is_finite() {
                let condition = if pmax.is_finite() && max_pivot > 0.0 {
                    Some(if pmax > 0.0 {
                        max_pivot / pmax
                    } else {
                        f64::INFINITY
                    })
                } else {
                    None
                };
                return Err(NumericError::SingularMatrix {
                    pivot: k,
                    condition,
                });
            }
            max_pivot = max_pivot.max(pmax);
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                perm.swap(k, p);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                if m != 0.0 {
                    for j in (k + 1)..n {
                        let ukj = lu[(k, j)];
                        lu[(i, j)] -= m * ukj;
                    }
                }
            }
        }
        Ok(LuFactor {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Factors `a`, retrying once with a diagonal perturbation on breakdown.
    ///
    /// This is the first rung of the workspace recovery ladder: a pivot
    /// underflow triggers exactly one retry on `a + εI` with
    /// `ε = 1e-12 · max|a_ij|` (clamped to a tiny absolute floor so exact
    /// zero matrices still regularize). The returned [`FactorRecovery`]
    /// records whether the perturbation was needed and carries a cheap
    /// condition estimate so callers can decide whether to trust the result.
    ///
    /// # Errors
    ///
    /// Returns the underlying error if `a` is not square or if even the
    /// perturbed matrix fails to factor.
    pub fn new_recovering(a: &Matrix) -> Result<(Self, FactorRecovery), NumericError> {
        match Self::new(a) {
            Ok(lu) => {
                let condition_estimate = lu.condition_estimate();
                Ok((
                    lu,
                    FactorRecovery {
                        perturbed: false,
                        perturbation: 0.0,
                        condition_estimate,
                    },
                ))
            }
            Err(NumericError::SingularMatrix { .. }) => {
                let eps = 1e-12 * a.max_abs().max(1e-6);
                let mut regularized = a.clone();
                for i in 0..a.rows() {
                    regularized[(i, i)] += eps;
                }
                let lu = Self::new(&regularized)?;
                linvar_metrics::incr(linvar_metrics::Counter::LuFactorRecoveries);
                let condition_estimate = lu.condition_estimate();
                Ok((
                    lu,
                    FactorRecovery {
                        perturbed: true,
                        perturbation: eps,
                        condition_estimate,
                    },
                ))
            }
            Err(e) => Err(e),
        }
    }

    /// Cheap condition estimate: ratio of the largest to the smallest `|U|`
    /// diagonal magnitude. A crude bound, but enough to flag factorizations
    /// that survived pivoting yet sit close to singularity.
    pub fn condition_estimate(&self) -> f64 {
        let n = self.order();
        if n == 0 {
            return 1.0;
        }
        let mut umax: f64 = 0.0;
        let mut umin = f64::INFINITY;
        for i in 0..n {
            let d = self.lu[(i, i)].abs();
            umax = umax.max(d);
            umin = umin.min(d);
        }
        if umin > 0.0 {
            umax / umin
        } else {
            f64::INFINITY
        }
    }

    /// Matrix order.
    pub fn order(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `b.len()` differs from
    /// the matrix order.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericError> {
        let _span = linvar_metrics::timer(linvar_metrics::Phase::LuSolve);
        let n = self.order();
        if b.len() != n {
            return Err(NumericError::DimensionMismatch {
                expected: format!("vector of length {n}"),
                found: format!("length {}", b.len()),
            });
        }
        // Apply permutation and forward-substitute L y = P b.
        let mut x: Vec<f64> = self.perm.iter().map(|&pi| b[pi]).collect();
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc;
        }
        // Back-substitute U x = y.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A X = B` for a matrix right-hand side, column by column.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `b.rows()` differs from
    /// the matrix order.
    pub fn solve_mat(&self, b: &Matrix) -> Result<Matrix, NumericError> {
        let n = self.order();
        if b.rows() != n {
            return Err(NumericError::DimensionMismatch {
                expected: format!("{n} rows"),
                found: format!("{} rows", b.rows()),
            });
        }
        let mut x = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = self.solve(&b.col(j))?;
            x.set_col(j, &col);
        }
        Ok(x)
    }

    /// Computes the inverse matrix.
    ///
    /// # Errors
    ///
    /// Propagates solve errors (which cannot occur for a successfully
    /// constructed factorization of the right shape).
    pub fn inverse(&self) -> Result<Matrix, NumericError> {
        self.solve_mat(&Matrix::identity(self.order()))
    }

    /// Determinant of the factored matrix.
    pub fn determinant(&self) -> f64 {
        let mut det = self.perm_sign;
        for i in 0..self.order() {
            det *= self.lu[(i, i)];
        }
        det
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::{norm2, sub};

    #[test]
    fn solve_2x2() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let lu = LuFactor::new(&a).unwrap();
        let x = lu.solve(&[3.0, 4.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-14);
        assert!((x[1] - 1.0).abs() < 1e-14);
    }

    #[test]
    fn solve_needs_pivoting() {
        // Zero in the (0,0) position forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = LuFactor::new(&a).unwrap();
        let x = lu.solve(&[5.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-14);
        assert!((x[1] - 5.0).abs() < 1e-14);
    }

    #[test]
    fn residual_is_small_for_random_system() {
        // Fixed pseudo-random matrix (LCG) so the test is deterministic.
        let n = 20;
        let mut state = 12345_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let a = Matrix::from_fn(n, n, |i, j| next() + if i == j { 4.0 } else { 0.0 });
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let lu = LuFactor::new(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        let r = sub(&a.mul_vec(&x), &b);
        assert!(norm2(&r) < 1e-10 * norm2(&b).max(1.0));
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            LuFactor::new(&a),
            Err(NumericError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn non_square_is_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            LuFactor::new(&a),
            Err(NumericError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn determinant_matches_known_value() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let lu = LuFactor::new(&a).unwrap();
        assert!((lu.determinant() + 2.0).abs() < 1e-14);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 2.0]]);
        let inv = LuFactor::new(&a).unwrap().inverse().unwrap();
        let prod = a.mul_mat(&inv);
        let err = (&prod - &Matrix::identity(3)).max_abs();
        assert!(err < 1e-13);
    }

    #[test]
    fn singular_error_carries_condition_estimate() {
        // Nearly-dependent rows: breakdown happens after a healthy pivot,
        // so a finite condition estimate must be attached.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        match LuFactor::new(&a) {
            Err(NumericError::SingularMatrix { condition, .. }) => {
                assert!(condition.is_some(), "expected condition estimate");
            }
            other => panic!("expected singular error, got {other:?}"),
        }
    }

    #[test]
    fn recovering_factorization_perturbs_singular_systems() {
        // Clean matrix: no perturbation.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let (lu, rec) = LuFactor::new_recovering(&a).unwrap();
        assert!(!rec.perturbed);
        assert_eq!(rec.perturbation, 0.0);
        assert!(rec.condition_estimate.is_finite());
        assert!(lu.solve(&[3.0, 4.0]).is_ok());

        // Exactly singular: one diagonal-perturbation retry succeeds and is
        // reported as such; the solution is finite (if inaccurate).
        let s = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let (lu, rec) = LuFactor::new_recovering(&s).unwrap();
        assert!(rec.perturbed);
        assert!(rec.perturbation > 0.0);
        let x = lu.solve(&[1.0, 2.0]).unwrap();
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn rhs_length_mismatch() {
        let a = Matrix::identity(3);
        let lu = LuFactor::new(&a).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }
}
