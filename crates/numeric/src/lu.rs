//! LU factorization with partial pivoting for real matrices.

use crate::error::NumericError;
use crate::matrix::Matrix;
use crate::workspace::Workspace;

/// LU factorization with partial (row) pivoting: `P * A = L * U`.
///
/// The factorization is computed once and can then solve many right-hand
/// sides — the access pattern of both the MNA transient simulators (one
/// factorization per Newton iteration) and the block-Arnoldi PRIMA iteration
/// (one factorization of `G`, many solves).
///
/// # Example
///
/// ```
/// use linvar_numeric::{LuFactor, Matrix};
///
/// # fn main() -> Result<(), linvar_numeric::NumericError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
/// let lu = LuFactor::new(&a)?;
/// let x = lu.solve(&[3.0, 4.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuFactor {
    /// Combined L (strict lower, unit diagonal implied) and U (upper) factors.
    lu: Matrix,
    /// Row permutation: row `i` of the factored matrix is row `perm[i]` of `A`.
    perm: Vec<usize>,
    /// Sign of the permutation, for determinant computation.
    perm_sign: f64,
    /// Optional nonzero index over the factors, built by
    /// [`LuFactor::optimize_for_solves`] for factorizations that serve
    /// many right-hand sides.
    solve_index: Option<SolveIndex>,
}

/// Compressed index of the structurally nonzero off-diagonal factor
/// entries, `(column, value)` pairs per row in ascending column order.
///
/// MNA matrices from ladder-dominated netlists factor with O(n) fill, so
/// triangular substitution over only the stored nonzeros turns an O(n²)
/// dense sweep into an O(nnz) one. Skipped entries are exact `0.0`
/// factors whose dense contribution `acc -= 0.0 * x[j]` cannot change a
/// finite accumulation, so the indexed solve is bitwise identical to the
/// dense one for finite iterates.
#[derive(Debug, Clone)]
struct SolveIndex {
    /// `(j, l_ij)` for `j < i`, rows concatenated.
    lower: Vec<(u32, f64)>,
    /// Start of row `i`'s entries in `lower`; length `n + 1`.
    lower_off: Vec<u32>,
    /// `(j, u_ij)` for `j > i`, rows concatenated.
    upper: Vec<(u32, f64)>,
    /// Start of row `i`'s entries in `upper`; length `n + 1`.
    upper_off: Vec<u32>,
}

/// Relative pivot threshold below which the matrix is declared singular.
const PIVOT_TOL: f64 = 1e-300;

/// What [`LuFactor::new_recovering`] had to do to obtain a factorization.
///
/// The recovery ladder for a near-singular system is: factor as-is, and if
/// that breaks down retry exactly once with a small diagonal perturbation
/// (Tikhonov-style regularization scaled to the matrix magnitude). The report
/// lets callers attribute the result — a perturbed factorization solves a
/// slightly different system and downstream layers may want to degrade
/// further or discard the sample.
#[derive(Debug, Clone, PartialEq)]
pub struct FactorRecovery {
    /// `true` if the diagonal had to be perturbed to complete the factorization.
    pub perturbed: bool,
    /// Magnitude of the diagonal perturbation applied (`0.0` when clean).
    pub perturbation: f64,
    /// Cheap condition estimate of the factored matrix: the ratio of the
    /// largest to the smallest `|U|` diagonal magnitude.
    pub condition_estimate: f64,
}

impl LuFactor {
    /// Factors the square matrix `a`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `a` is not square and
    /// [`NumericError::SingularMatrix`] if a pivot underflows.
    pub fn new(a: &Matrix) -> Result<Self, NumericError> {
        let _span = linvar_metrics::timer(linvar_metrics::Phase::LuFactor);
        Self::check_square(a)?;
        Self::factor(a.clone())
    }

    /// Factors `a` into storage taken from the workspace arena — the
    /// allocation-free analog of [`LuFactor::new`] for the Monte-Carlo
    /// hot path. Hand the factorization back with
    /// [`LuFactor::recycle`] when done. Results are bitwise identical
    /// to `new` (the workspace hands out zeroed storage and the copy
    /// overwrites every entry).
    ///
    /// # Errors
    ///
    /// Same contract as [`LuFactor::new`].
    pub fn new_in(a: &Matrix, ws: &mut Workspace) -> Result<Self, NumericError> {
        let _span = linvar_metrics::timer(linvar_metrics::Phase::LuFactor);
        Self::check_square(a)?;
        let mut lu = ws.take_matrix(a.rows(), a.cols());
        lu.copy_from(a);
        Self::factor(lu)
    }

    /// Returns the factor storage to the workspace arena.
    pub fn recycle(self, ws: &mut Workspace) {
        ws.recycle_matrix(self.lu);
    }

    fn check_square(a: &Matrix) -> Result<(), NumericError> {
        if a.is_square() {
            Ok(())
        } else {
            Err(NumericError::DimensionMismatch {
                expected: "square matrix".into(),
                found: format!("{}x{}", a.rows(), a.cols()),
            })
        }
    }

    /// Partial-pivoting factor core, consuming the working copy.
    fn factor(mut lu: Matrix) -> Result<Self, NumericError> {
        let n = lu.rows();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;
        let mut max_pivot: f64 = 0.0;

        for k in 0..n {
            // Partial pivoting: find the largest magnitude entry in column k.
            let mut p = k;
            let mut pmax = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pmax < PIVOT_TOL || !pmax.is_finite() {
                let condition = if pmax.is_finite() && max_pivot > 0.0 {
                    Some(if pmax > 0.0 {
                        max_pivot / pmax
                    } else {
                        f64::INFINITY
                    })
                } else {
                    None
                };
                return Err(NumericError::SingularMatrix {
                    pivot: k,
                    condition,
                });
            }
            max_pivot = max_pivot.max(pmax);
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                perm.swap(k, p);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                if m != 0.0 {
                    for j in (k + 1)..n {
                        let ukj = lu[(k, j)];
                        lu[(i, j)] -= m * ukj;
                    }
                }
            }
        }
        Ok(LuFactor {
            lu,
            perm,
            perm_sign,
            solve_index: None,
        })
    }

    /// Builds the nonzero index over the factors so subsequent solves
    /// substitute over O(nnz) entries instead of sweeping the dense
    /// triangles. Worth the one-off O(n²) scan only when the same
    /// factorization serves many right-hand sides (the MNA transient
    /// simulators resolve one factorization hundreds of times per
    /// timestep cache); allocates, so the Monte-Carlo hot path leaves it
    /// off. Solves remain bitwise identical to the dense sweep.
    pub fn optimize_for_solves(&mut self) {
        let n = self.order();
        let mut lower = Vec::new();
        let mut lower_off = Vec::with_capacity(n + 1);
        let mut upper = Vec::new();
        let mut upper_off = Vec::with_capacity(n + 1);
        lower_off.push(0);
        upper_off.push(0);
        for i in 0..n {
            let row = self.lu.row(i);
            for (j, &v) in row.iter().enumerate().take(i) {
                if v != 0.0 {
                    lower.push((j as u32, v));
                }
            }
            lower_off.push(lower.len() as u32);
            for (j, &v) in row.iter().enumerate().skip(i + 1) {
                if v != 0.0 {
                    upper.push((j as u32, v));
                }
            }
            upper_off.push(upper.len() as u32);
        }
        self.solve_index = Some(SolveIndex {
            lower,
            lower_off,
            upper,
            upper_off,
        });
    }

    /// Factors `a`, retrying once with a diagonal perturbation on breakdown.
    ///
    /// This is the first rung of the workspace recovery ladder: a pivot
    /// underflow triggers exactly one retry on `a + εI` with
    /// `ε = 1e-12 · max|a_ij|` (clamped to a tiny absolute floor so exact
    /// zero matrices still regularize). The returned [`FactorRecovery`]
    /// records whether the perturbation was needed and carries a cheap
    /// condition estimate so callers can decide whether to trust the result.
    ///
    /// # Errors
    ///
    /// Returns the underlying error if `a` is not square or if even the
    /// perturbed matrix fails to factor.
    pub fn new_recovering(a: &Matrix) -> Result<(Self, FactorRecovery), NumericError> {
        match Self::new(a) {
            Ok(lu) => {
                let condition_estimate = lu.condition_estimate();
                Ok((
                    lu,
                    FactorRecovery {
                        perturbed: false,
                        perturbation: 0.0,
                        condition_estimate,
                    },
                ))
            }
            Err(NumericError::SingularMatrix { .. }) => {
                let eps = 1e-12 * a.max_abs().max(1e-6);
                let mut regularized = a.clone();
                for i in 0..a.rows() {
                    regularized[(i, i)] += eps;
                }
                let lu = Self::new(&regularized)?;
                linvar_metrics::incr(linvar_metrics::Counter::LuFactorRecoveries);
                let condition_estimate = lu.condition_estimate();
                Ok((
                    lu,
                    FactorRecovery {
                        perturbed: true,
                        perturbation: eps,
                        condition_estimate,
                    },
                ))
            }
            Err(e) => Err(e),
        }
    }

    /// Cheap condition estimate: ratio of the largest to the smallest `|U|`
    /// diagonal magnitude. A crude bound, but enough to flag factorizations
    /// that survived pivoting yet sit close to singularity.
    pub fn condition_estimate(&self) -> f64 {
        let n = self.order();
        if n == 0 {
            return 1.0;
        }
        let mut umax: f64 = 0.0;
        let mut umin = f64::INFINITY;
        for i in 0..n {
            let d = self.lu[(i, i)].abs();
            umax = umax.max(d);
            umin = umin.min(d);
        }
        if umin > 0.0 {
            umax / umin
        } else {
            f64::INFINITY
        }
    }

    /// Matrix order.
    pub fn order(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `b.len()` differs from
    /// the matrix order.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericError> {
        let mut x = Vec::new();
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `A x = b` into `x` (fully overwritten; reuses `x`'s
    /// capacity). Bitwise identical to [`LuFactor::solve`] — same
    /// substitution order, no allocation once `x` has warmed up.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `b.len()` differs from
    /// the matrix order.
    pub fn solve_into(&self, b: &[f64], x: &mut Vec<f64>) -> Result<(), NumericError> {
        let _span = linvar_metrics::timer(linvar_metrics::Phase::LuSolve);
        let n = self.order();
        if b.len() != n {
            return Err(NumericError::DimensionMismatch {
                expected: format!("vector of length {n}"),
                found: format!("length {}", b.len()),
            });
        }
        // Apply permutation and forward-substitute L y = P b.
        x.clear();
        x.extend(self.perm.iter().map(|&pi| b[pi]));
        if let Some(ix) = &self.solve_index {
            // Indexed substitution: same ascending-column accumulation,
            // skipping only exact-zero factors (see [`SolveIndex`]).
            for i in 1..n {
                let mut acc = x[i];
                let (lo, hi) = (ix.lower_off[i] as usize, ix.lower_off[i + 1] as usize);
                for &(j, v) in &ix.lower[lo..hi] {
                    acc -= v * x[j as usize];
                }
                x[i] = acc;
            }
            for i in (0..n).rev() {
                let mut acc = x[i];
                let (lo, hi) = (ix.upper_off[i] as usize, ix.upper_off[i + 1] as usize);
                for &(j, v) in &ix.upper[lo..hi] {
                    acc -= v * x[j as usize];
                }
                x[i] = acc / self.lu[(i, i)];
            }
            return Ok(());
        }
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc;
        }
        // Back-substitute U x = y.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(())
    }

    /// Solves `A X = B` for a matrix right-hand side, column by column.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `b.rows()` differs from
    /// the matrix order.
    pub fn solve_mat(&self, b: &Matrix) -> Result<Matrix, NumericError> {
        let n = self.order();
        if b.rows() != n {
            return Err(NumericError::DimensionMismatch {
                expected: format!("{n} rows"),
                found: format!("{} rows", b.rows()),
            });
        }
        let mut x = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = self.solve(&b.col(j))?;
            x.set_col(j, &col);
        }
        Ok(x)
    }

    /// Solves `A X = B` with every temporary (result, column, solution)
    /// served by the workspace arena. Bitwise identical to
    /// [`LuFactor::solve_mat`]; the caller recycles the returned matrix
    /// when done with it.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `b.rows()` differs from
    /// the matrix order.
    pub fn solve_mat_in(&self, b: &Matrix, ws: &mut Workspace) -> Result<Matrix, NumericError> {
        let n = self.order();
        if b.rows() != n {
            return Err(NumericError::DimensionMismatch {
                expected: format!("{n} rows"),
                found: format!("{} rows", b.rows()),
            });
        }
        let mut x = ws.take_matrix(n, b.cols());
        let mut col = ws.take_vec(n);
        let mut sol = ws.take_vec(n);
        for j in 0..b.cols() {
            b.col_into(j, &mut col);
            self.solve_into(&col, &mut sol)?;
            x.set_col(j, &sol);
        }
        ws.recycle_vec(col);
        ws.recycle_vec(sol);
        Ok(x)
    }

    /// Computes the inverse matrix.
    ///
    /// # Errors
    ///
    /// Propagates solve errors (which cannot occur for a successfully
    /// constructed factorization of the right shape).
    pub fn inverse(&self) -> Result<Matrix, NumericError> {
        self.solve_mat(&Matrix::identity(self.order()))
    }

    /// Determinant of the factored matrix.
    pub fn determinant(&self) -> f64 {
        let mut det = self.perm_sign;
        for i in 0..self.order() {
            det *= self.lu[(i, i)];
        }
        det
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::{norm2, sub};

    #[test]
    fn solve_2x2() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let lu = LuFactor::new(&a).unwrap();
        let x = lu.solve(&[3.0, 4.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-14);
        assert!((x[1] - 1.0).abs() < 1e-14);
    }

    #[test]
    fn solve_needs_pivoting() {
        // Zero in the (0,0) position forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = LuFactor::new(&a).unwrap();
        let x = lu.solve(&[5.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-14);
        assert!((x[1] - 5.0).abs() < 1e-14);
    }

    #[test]
    fn residual_is_small_for_random_system() {
        // Fixed pseudo-random matrix (LCG) so the test is deterministic.
        let n = 20;
        let mut state = 12345_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let a = Matrix::from_fn(n, n, |i, j| next() + if i == j { 4.0 } else { 0.0 });
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let lu = LuFactor::new(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        let r = sub(&a.mul_vec(&x), &b);
        assert!(norm2(&r) < 1e-10 * norm2(&b).max(1.0));
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            LuFactor::new(&a),
            Err(NumericError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn non_square_is_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            LuFactor::new(&a),
            Err(NumericError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn determinant_matches_known_value() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let lu = LuFactor::new(&a).unwrap();
        assert!((lu.determinant() + 2.0).abs() < 1e-14);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 2.0]]);
        let inv = LuFactor::new(&a).unwrap().inverse().unwrap();
        let prod = a.mul_mat(&inv);
        let err = (&prod - &Matrix::identity(3)).max_abs();
        assert!(err < 1e-13);
    }

    #[test]
    fn singular_error_carries_condition_estimate() {
        // Nearly-dependent rows: breakdown happens after a healthy pivot,
        // so a finite condition estimate must be attached.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        match LuFactor::new(&a) {
            Err(NumericError::SingularMatrix { condition, .. }) => {
                assert!(condition.is_some(), "expected condition estimate");
            }
            other => panic!("expected singular error, got {other:?}"),
        }
    }

    #[test]
    fn recovering_factorization_perturbs_singular_systems() {
        // Clean matrix: no perturbation.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let (lu, rec) = LuFactor::new_recovering(&a).unwrap();
        assert!(!rec.perturbed);
        assert_eq!(rec.perturbation, 0.0);
        assert!(rec.condition_estimate.is_finite());
        assert!(lu.solve(&[3.0, 4.0]).is_ok());

        // Exactly singular: one diagonal-perturbation retry succeeds and is
        // reported as such; the solution is finite (if inaccurate).
        let s = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let (lu, rec) = LuFactor::new_recovering(&s).unwrap();
        assert!(rec.perturbed);
        assert!(rec.perturbation > 0.0);
        let x = lu.solve(&[1.0, 2.0]).unwrap();
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn rhs_length_mismatch() {
        let a = Matrix::identity(3);
        let lu = LuFactor::new(&a).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn indexed_solves_are_bitwise_identical_to_dense() {
        // Ladder-sparse system of the kind the MNA simulators factor:
        // tridiagonal conductance chain plus a dense-ish corner row.
        let n = 24;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = 2.5 + (i as f64) * 0.125;
            if i + 1 < n {
                a[(i, i + 1)] = -1.0 - (i as f64) * 0.01;
                a[(i + 1, i)] = -0.75;
            }
        }
        a[(0, n - 1)] = 0.5;
        a[(n - 1, 3)] = -0.25;
        let dense = LuFactor::new(&a).unwrap();
        let mut indexed = LuFactor::new(&a).unwrap();
        indexed.optimize_for_solves();
        for k in 0..4 {
            let b: Vec<f64> = (0..n)
                .map(|i| ((i * 7 + k * 13) % 11) as f64 - 5.0)
                .collect();
            let xd = dense.solve(&b).unwrap();
            let xi = indexed.solve(&b).unwrap();
            let (bd, bi): (Vec<u64>, Vec<u64>) = (
                xd.iter().map(|v| v.to_bits()).collect(),
                xi.iter().map(|v| v.to_bits()).collect(),
            );
            assert_eq!(bd, bi, "indexed solve drifted from dense for rhs {k}");
        }
    }

    #[test]
    fn workspace_backed_factor_and_solves_are_bitwise_identical() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, -0.5], &[1.0, 3.0, 1.0], &[0.25, 1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.5], &[-2.0, 3.0], &[0.75, -1.25]]);
        let reference_lu = LuFactor::new(&a).unwrap();
        let reference = reference_lu.solve_mat(&b).unwrap();

        let mut ws = Workspace::pooling();
        // Two rounds so the second runs entirely on recycled buffers.
        for round in 0..2 {
            let lu = LuFactor::new_in(&a, &mut ws).unwrap();
            let x = lu.solve_mat_in(&b, &mut ws).unwrap();
            for (got, want) in x.as_slice().iter().zip(reference.as_slice()) {
                assert_eq!(got.to_bits(), want.to_bits(), "round {round}");
            }
            let mut v = Vec::new();
            lu.solve_into(&b.col(0), &mut v).unwrap();
            for (got, want) in v.iter().zip(&reference.col(0)) {
                assert_eq!(got.to_bits(), want.to_bits(), "round {round}");
            }
            ws.recycle_matrix(x);
            lu.recycle(&mut ws);
        }
        let s = ws.stats();
        assert!(s.hits > 0, "second round must hit the pool: {s:?}");
    }

    #[test]
    fn workspace_factor_rejects_non_square_and_singular() {
        let mut ws = Workspace::pooling();
        assert!(matches!(
            LuFactor::new_in(&Matrix::zeros(2, 3), &mut ws),
            Err(NumericError::DimensionMismatch { .. })
        ));
        let s = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            LuFactor::new_in(&s, &mut ws),
            Err(NumericError::SingularMatrix { .. })
        ));
    }
}
