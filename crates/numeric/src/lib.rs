//! Dense numerical linear algebra kernel for the `linvar` workspace.
//!
//! The linear-centric simulation framework needs a small but complete set of
//! dense kernels: real/complex LU factorization, Householder QR and modified
//! Gram-Schmidt (for the block-Arnoldi PRIMA iteration), a general real
//! eigensolver (Hessenberg reduction + Francis double-shift QR +
//! inverse-iteration eigenvectors, used for pole/residue extraction), and a
//! symmetric Jacobi eigensolver (used by PACT and by PCA).
//!
//! Two linear-solver backends live here. The *dense* kernels serve the
//! reduced-order model matrices (order 4–40) and the small paper circuits,
//! where a straightforward well-tested dense implementation is the right
//! tool. For the large benchmark interconnect nets (tens of thousands of
//! unknowns, a handful of nonzeros per row) there is a *sparse* backend: a
//! compressed-sparse-column [`SparseMatrix`] assembled directly from circuit
//! stamps and a [`SparseLu`] factorization with a symbolic/numeric phase
//! split, so per-sample refactors reuse the elimination pattern. The
//! [`LinearSolver`] trait and [`AnySolver`] wrapper select between them at
//! runtime (automatically by size, or pinned via `LINVAR_SOLVER`).
//!
//! # Example
//!
//! ```
//! use linvar_numeric::{Matrix, LuFactor};
//!
//! # fn main() -> Result<(), linvar_numeric::NumericError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
//! let lu = LuFactor::new(&a)?;
//! let x = lu.solve(&[1.0, 2.0])?;
//! assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

// Dense matrix kernels index rows/columns explicitly; iterator
// adaptors would obscure the classic algorithm shapes.
#![allow(clippy::needless_range_loop)]
// The Monte-Carlo hot path must not clone what a borrow (or a
// workspace buffer) can serve; keep the lint a hard error here.
#![deny(clippy::redundant_clone)]

pub mod cmatrix;
pub mod complex;
pub mod csolver;
pub mod eigen;
pub mod error;
pub mod lu;
pub mod matrix;
pub mod qr;
pub mod solver;
pub mod sparse;
pub mod sparse_lu;
pub mod sym_eigen;
pub mod vector;
pub mod workspace;

pub use cmatrix::{CLuFactor, CMatrix};
pub use complex::Complex;
pub use csolver::{embed_triplets, CAnySolver};
pub use eigen::{eigen_decompose, eigen_decompose_recovering, eigenvalues, EigenDecomposition};
pub use error::NumericError;
pub use lu::{FactorRecovery, LuFactor};
pub use matrix::Matrix;
pub use qr::{gram_schmidt_orthonormalize, householder_qr, QrFactor};
pub use solver::{AnySolver, LinearSolver, SolverBackend, SolverChoice, SPARSE_AUTO_MIN_DIM};
pub use sparse::SparseMatrix;
pub use sparse_lu::{analyze_cached, SparseLu, SparseSymbolic};
pub use sym_eigen::{cholesky, generalized_sym_eigen, jacobi_eigen, SymEigen};
pub use workspace::{with_workspace, Workspace, WsStats};
