//! Dense complex matrix with LU solve.
//!
//! Used for two jobs in the framework: inverting the eigenvector matrix `S`
//! in the pole/residue transformation (paper eq. 16–19), and the complex
//! inverse-iteration solves inside the eigenvector computation.

use crate::complex::Complex;
use crate::error::NumericError;
use crate::matrix::Matrix;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of [`Complex`] values.
///
/// # Example
///
/// ```
/// use linvar_numeric::{CMatrix, Complex};
///
/// let mut m = CMatrix::zeros(2, 2);
/// m[(0, 0)] = Complex::new(1.0, 1.0);
/// assert_eq!(m[(0, 0)].im, 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl CMatrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Creates the `n x n` complex identity.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex::ONE;
        }
        m
    }

    /// Promotes a real matrix to a complex one.
    pub fn from_real(a: &Matrix) -> Self {
        let mut m = CMatrix::zeros(a.rows(), a.cols());
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                m[(i, j)] = Complex::from_real(a[(i, j)]);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[Complex]) -> Vec<Complex> {
        assert_eq!(x.len(), self.cols, "complex matvec dimension mismatch");
        let mut y = vec![Complex::ZERO; self.rows];
        for i in 0..self.rows {
            let mut acc = Complex::ZERO;
            for j in 0..self.cols {
                acc += self[(i, j)] * x[j];
            }
            y[i] = acc;
        }
        y
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions differ.
    pub fn mul_mat(&self, other: &CMatrix) -> CMatrix {
        assert_eq!(self.cols, other.rows, "complex matmul dimension mismatch");
        let mut out = CMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == Complex::ZERO {
                    continue;
                }
                for j in 0..other.cols {
                    let v = aik * other[(k, j)];
                    out[(i, j)] += v;
                }
            }
        }
        out
    }

    /// Returns column `j` as an owned vector.
    pub fn col(&self, j: usize) -> Vec<Complex> {
        assert!(j < self.cols, "column index out of bounds");
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Overwrites column `j` with `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.rows()`.
    pub fn set_col(&mut self, j: usize, v: &[Complex]) {
        assert_eq!(v.len(), self.rows, "column length mismatch");
        for (i, &x) in v.iter().enumerate() {
            self[(i, j)] = x;
        }
    }

    /// Maximum modulus over all entries.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, z| m.max(z.abs()))
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = Complex;
    fn index(&self, (i, j): (usize, usize)) -> &Complex {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

/// LU factorization with partial pivoting of a complex matrix.
///
/// Mirrors [`crate::LuFactor`] for [`CMatrix`]; pivoting compares moduli.
#[derive(Debug, Clone)]
pub struct CLuFactor {
    lu: CMatrix,
    perm: Vec<usize>,
}

impl CLuFactor {
    /// Factors the square complex matrix `a`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] for non-square input and
    /// [`NumericError::SingularMatrix`] if a pivot modulus underflows.
    pub fn new(a: &CMatrix) -> Result<Self, NumericError> {
        if a.rows() != a.cols() {
            return Err(NumericError::DimensionMismatch {
                expected: "square matrix".into(),
                found: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            let mut p = k;
            let mut pmax = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pmax < 1e-300 || !pmax.is_finite() {
                return Err(NumericError::SingularMatrix {
                    pivot: k,
                    condition: None,
                });
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                perm.swap(k, p);
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                for j in (k + 1)..n {
                    let ukj = lu[(k, j)];
                    let v = m * ukj;
                    lu[(i, j)] -= v;
                }
            }
        }
        Ok(CLuFactor { lu, perm })
    }

    /// Matrix order.
    pub fn order(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] on a wrong-length `b`.
    pub fn solve(&self, b: &[Complex]) -> Result<Vec<Complex>, NumericError> {
        let n = self.order();
        if b.len() != n {
            return Err(NumericError::DimensionMismatch {
                expected: format!("vector of length {n}"),
                found: format!("length {}", b.len()),
            });
        }
        let mut x: Vec<Complex> = self.perm.iter().map(|&pi| b[pi]).collect();
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc;
        }
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Computes the inverse matrix.
    ///
    /// # Errors
    ///
    /// Propagates solve errors.
    pub fn inverse(&self) -> Result<CMatrix, NumericError> {
        let n = self.order();
        let mut inv = CMatrix::zeros(n, n);
        for j in 0..n {
            let mut e = vec![Complex::ZERO; n];
            e[j] = Complex::ONE;
            inv.set_col(j, &self.solve(&e)?);
        }
        Ok(inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_is_identity() {
        let i = CMatrix::identity(3);
        let lu = CLuFactor::new(&i).unwrap();
        let b = vec![
            Complex::new(1.0, 2.0),
            Complex::new(-1.0, 0.5),
            Complex::new(0.0, -3.0),
        ];
        let x = lu.solve(&b).unwrap();
        for (xi, bi) in x.iter().zip(&b) {
            assert!((*xi - *bi).abs() < 1e-15);
        }
    }

    #[test]
    fn complex_solve_residual() {
        let mut a = CMatrix::zeros(3, 3);
        a[(0, 0)] = Complex::new(2.0, 1.0);
        a[(0, 1)] = Complex::new(0.0, -1.0);
        a[(1, 0)] = Complex::new(1.0, 0.0);
        a[(1, 1)] = Complex::new(3.0, 0.5);
        a[(1, 2)] = Complex::new(0.2, 0.0);
        a[(2, 1)] = Complex::new(-0.5, 0.25);
        a[(2, 2)] = Complex::new(1.5, -2.0);
        let b = vec![
            Complex::new(1.0, 0.0),
            Complex::new(0.0, 1.0),
            Complex::new(2.0, -1.0),
        ];
        let lu = CLuFactor::new(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        let r = a.mul_vec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((*ri - *bi).abs() < 1e-12);
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let mut a = CMatrix::identity(2);
        a[(0, 1)] = Complex::new(0.0, 2.0);
        a[(1, 0)] = Complex::new(-1.0, 0.0);
        let inv = CLuFactor::new(&a).unwrap().inverse().unwrap();
        let prod = a.mul_mat(&inv);
        let mut err = 0.0_f64;
        for i in 0..2 {
            for j in 0..2 {
                let expect = if i == j { Complex::ONE } else { Complex::ZERO };
                err = err.max((prod[(i, j)] - expect).abs());
            }
        }
        assert!(err < 1e-13);
    }

    #[test]
    fn singular_complex_matrix_detected() {
        let a = CMatrix::zeros(2, 2);
        assert!(matches!(
            CLuFactor::new(&a),
            Err(NumericError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn from_real_promotion() {
        let r = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let c = CMatrix::from_real(&r);
        assert_eq!(c[(1, 0)], Complex::from_real(3.0));
        assert_eq!(c[(1, 0)].im, 0.0);
    }
}
