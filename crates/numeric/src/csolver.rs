//! Complex linear solves through the real solver stack.
//!
//! The AC small-signal system `(G + jωC) x = b` is solved by embedding
//! the complex `n×n` operator `A = Ar + j·Ai` into the real `2n×2n`
//! block form
//!
//! ```text
//!   [ Ar  -Ai ] [ Re(x) ]   [ Re(b) ]
//!   [ Ai   Ar ] [ Im(x) ] = [ Im(b) ]
//! ```
//!
//! which routes every complex solve through the existing [`AnySolver`]
//! machinery rather than a parallel complex implementation: dense/sparse
//! backend selection (`LINVAR_SOLVER`, size heuristic on the *embedded*
//! order `2n`), the diagonal-perturbation recovery ladder, sparse
//! pattern-reuse refactorization across a frequency sweep, and workspace
//! pooling for the per-solve real scratch.
//!
//! Pattern invariance is deliberate: [`embed_triplets`] emits all four
//! block entries for every complex triplet, zero components included, so
//! the embedded sparsity pattern depends only on the stamped structure —
//! not on the frequency. A sweep can therefore factor once and walk the
//! remaining points through [`CAnySolver::refactor_triplets`], which on
//! the sparse backend is the numeric-only fast path.

use crate::complex::Complex;
use crate::error::NumericError;
use crate::lu::FactorRecovery;
use crate::solver::{AnySolver, LinearSolver, SolverBackend, SolverChoice};
use crate::workspace::with_workspace;

/// Embeds complex triplets for an `n×n` system into real triplets for
/// the `2n×2n` block form `[[Ar, -Ai], [Ai, Ar]]`.
///
/// Every complex triplet emits its four real block entries (zeros
/// included) so the embedded sparsity pattern is identical for every
/// value assignment — the invariant the sweep-refactor fast path relies
/// on. Emission order is deterministic (triplet order, then Ar/-Ai/Ai/Ar
/// block order), so dense replay and sparse CSC duplicate-summing both
/// accumulate in a reproducible order.
///
/// # Errors
///
/// Returns [`NumericError::InvalidInput`] for triplets outside the
/// complex system's range.
pub fn embed_triplets(
    n: usize,
    triplets: &[(usize, usize, Complex)],
) -> Result<Vec<(usize, usize, f64)>, NumericError> {
    let mut out = Vec::with_capacity(4 * triplets.len());
    for &(i, j, z) in triplets {
        if i >= n || j >= n {
            return Err(NumericError::InvalidInput(format!(
                "complex triplet ({i}, {j}) out of range for a {n}x{n} system"
            )));
        }
        out.push((i, j, z.re));
        out.push((i, j + n, -z.im));
        out.push((i + n, j, z.im));
        out.push((i + n, j + n, z.re));
    }
    Ok(out)
}

/// A complex factorization living on whichever real backend selection
/// picked for the embedded order.
#[derive(Debug, Clone)]
pub struct CAnySolver {
    inner: AnySolver,
    n: usize,
}

impl CAnySolver {
    /// Factors the complex system described by `triplets` on the backend
    /// `choice` resolves to for the embedded order `2n`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidInput`] for out-of-range triplets
    /// and [`NumericError::SingularMatrix`] on factorization breakdown.
    pub fn factor_triplets(
        n: usize,
        triplets: &[(usize, usize, Complex)],
        choice: SolverChoice,
    ) -> Result<Self, NumericError> {
        let _span = linvar_metrics::timer(linvar_metrics::Phase::AcFactor);
        let real = embed_triplets(n, triplets)?;
        let inner = AnySolver::factor_triplets(2 * n, &real, choice)?;
        Ok(CAnySolver { inner, n })
    }

    /// Like [`CAnySolver::factor_triplets`] but walking the
    /// diagonal-perturbation recovery ladder on breakdown — the same
    /// one-retry `A + εI` policy as the real path, applied to the
    /// embedded operator.
    ///
    /// # Errors
    ///
    /// Returns the underlying error if even the perturbed embedding
    /// fails.
    pub fn factor_triplets_recovering(
        n: usize,
        triplets: &[(usize, usize, Complex)],
        choice: SolverChoice,
    ) -> Result<(Self, FactorRecovery), NumericError> {
        let _span = linvar_metrics::timer(linvar_metrics::Phase::AcFactor);
        let real = embed_triplets(n, triplets)?;
        let (inner, recovery) = AnySolver::factor_triplets_recovering(2 * n, &real, choice)?;
        if recovery.perturbed {
            linvar_metrics::incr(linvar_metrics::Counter::AcFactorRecoveries);
        }
        Ok((CAnySolver { inner, n }, recovery))
    }

    /// Refactors with new values at the same sparsity pattern — the
    /// sweep fast path. On the sparse backend this reuses the pivot
    /// sequence (numeric-only refactorization, full factor as fallback);
    /// dense factors afresh.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::SingularMatrix`] if the new values are
    /// singular and [`NumericError::InvalidInput`] for out-of-range
    /// triplets.
    pub fn refactor_triplets(
        &mut self,
        n: usize,
        triplets: &[(usize, usize, Complex)],
    ) -> Result<(), NumericError> {
        let _span = linvar_metrics::timer(linvar_metrics::Phase::AcFactor);
        if n != self.n {
            return Err(NumericError::DimensionMismatch {
                expected: format!("complex order {}", self.n),
                found: format!("complex order {n}"),
            });
        }
        let real = embed_triplets(n, triplets)?;
        self.inner.refactor_triplets(2 * n, &real)?;
        linvar_metrics::incr(linvar_metrics::Counter::AcRefactors);
        Ok(())
    }

    /// Complex system order `n` (the embedded real order is `2n`).
    pub fn order(&self) -> usize {
        self.n
    }

    /// The real backend this factorization lives on.
    pub fn backend(&self) -> SolverBackend {
        self.inner.backend()
    }

    /// Condition estimate of the embedded real factorization.
    pub fn condition_estimate(&self) -> f64 {
        self.inner.condition_estimate()
    }

    /// Dense-backend fast path for repeated solves against one factor.
    pub fn optimize_for_solves(&mut self) {
        self.inner.optimize_for_solves();
    }

    /// Solves `A x = b` into `x` (overwritten; capacity reused). The
    /// real 2n scratch comes from the thread-local workspace arena, so
    /// a frequency sweep allocates its packing buffers once.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `b.len()` differs
    /// from the complex order.
    pub fn solve_into(&self, b: &[Complex], x: &mut Vec<Complex>) -> Result<(), NumericError> {
        let _span = linvar_metrics::timer(linvar_metrics::Phase::AcSolve);
        if b.len() != self.n {
            return Err(NumericError::DimensionMismatch {
                expected: format!("rhs of length {}", self.n),
                found: format!("length {}", b.len()),
            });
        }
        with_workspace(|ws| {
            let mut rb = ws.take_vec(2 * self.n);
            for (i, z) in b.iter().enumerate() {
                rb[i] = z.re;
                rb[i + self.n] = z.im;
            }
            let mut rx = ws.take_vec(2 * self.n);
            let result = self.inner.solve_into(&rb, &mut rx).map(|()| {
                x.clear();
                x.extend((0..self.n).map(|i| Complex::new(rx[i], rx[i + self.n])));
            });
            ws.recycle_vec(rb);
            ws.recycle_vec(rx);
            result
        })
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Same contract as [`CAnySolver::solve_into`].
    pub fn solve(&self, b: &[Complex]) -> Result<Vec<Complex>, NumericError> {
        let mut x = Vec::new();
        self.solve_into(b, &mut x)?;
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmatrix::{CLuFactor, CMatrix};

    /// A well-conditioned complex test system with duplicate stamps,
    /// mimicking `(G + jωC)` MNA emission.
    fn test_triplets(n: usize) -> Vec<(usize, usize, Complex)> {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, Complex::new(2.0, 0.3)));
            t.push((i, i, Complex::new(0.5 + i as f64 * 0.1, 0.05 * i as f64)));
            if i + 1 < n {
                t.push((i, i + 1, Complex::new(-1.0, -0.2)));
                t.push((i + 1, i, Complex::new(-1.0, -0.2)));
            }
        }
        t
    }

    fn test_rhs(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.7).cos()))
            .collect()
    }

    /// Sums the triplets into a dense complex matrix (oracle assembly).
    fn dense_of(n: usize, t: &[(usize, usize, Complex)]) -> CMatrix {
        let mut a = CMatrix::zeros(n, n);
        for &(i, j, z) in t {
            a[(i, j)] += z;
        }
        a
    }

    #[test]
    fn embedding_matches_native_complex_lu() {
        let n = 9;
        let t = test_triplets(n);
        let b = test_rhs(n);
        let embedded = CAnySolver::factor_triplets(n, &t, SolverChoice::Dense).unwrap();
        let x = embedded.solve(&b).unwrap();
        let native = CLuFactor::new(&dense_of(n, &t)).unwrap();
        let xref = native.solve(&b).unwrap();
        for (a, r) in x.iter().zip(&xref) {
            assert!((*a - *r).abs() < 1e-12 * r.abs().max(1.0), "{a:?} vs {r:?}");
        }
    }

    #[test]
    fn dense_and_sparse_backends_agree() {
        let n = 11;
        let t = test_triplets(n);
        let b = test_rhs(n);
        let dense = CAnySolver::factor_triplets(n, &t, SolverChoice::Dense).unwrap();
        let sparse = CAnySolver::factor_triplets(n, &t, SolverChoice::Sparse).unwrap();
        assert_eq!(dense.backend(), SolverBackend::Dense);
        assert_eq!(sparse.backend(), SolverBackend::Sparse);
        assert_eq!(dense.order(), n);
        let xd = dense.solve(&b).unwrap();
        let xs = sparse.solve(&b).unwrap();
        for (a, s) in xd.iter().zip(&xs) {
            assert!((*a - *s).abs() < 1e-12 * s.abs().max(1.0));
        }
        assert!(dense.condition_estimate().is_finite());
        assert!(sparse.condition_estimate().is_finite());
    }

    #[test]
    fn refactor_matches_fresh_factor_on_both_backends() {
        let n = 8;
        let t = test_triplets(n);
        let b = test_rhs(n);
        // Same pattern, different values: scale the imaginary part the
        // way ω scales the susceptance stamps.
        let scaled: Vec<_> = t
            .iter()
            .map(|&(i, j, z)| (i, j, Complex::new(z.re, 3.0 * z.im)))
            .collect();
        for choice in [SolverChoice::Dense, SolverChoice::Sparse] {
            let mut solver = CAnySolver::factor_triplets(n, &t, choice).unwrap();
            solver.refactor_triplets(n, &scaled).unwrap();
            let x = solver.solve(&b).unwrap();
            let fresh = CAnySolver::factor_triplets(n, &scaled, choice).unwrap();
            let xf = fresh.solve(&b).unwrap();
            for (a, f) in x.iter().zip(&xf) {
                assert!((*a - *f).abs() < 1e-10 * f.abs().max(1.0));
            }
        }
    }

    #[test]
    fn recovery_ladder_perturbs_singular_complex_systems() {
        // Row 1 is exactly zero: singular until the ladder adds εI.
        let n = 3;
        let t = vec![
            (0, 0, Complex::new(2.0, 0.5)),
            (2, 2, Complex::new(1.5, -0.25)),
            (0, 2, Complex::new(-0.5, 0.0)),
            (2, 0, Complex::new(-0.5, 0.0)),
        ];
        for choice in [SolverChoice::Dense, SolverChoice::Sparse] {
            let (solver, rec) = CAnySolver::factor_triplets_recovering(n, &t, choice).unwrap();
            assert!(rec.perturbed, "{choice:?} should need the ladder");
            assert!(rec.perturbation > 0.0);
            let x = solver.solve(&test_rhs(n)).unwrap();
            assert!(x.iter().all(|z| z.is_finite()));
        }
    }

    #[test]
    fn out_of_range_and_mismatched_inputs_are_typed_errors() {
        let n = 4;
        assert!(matches!(
            CAnySolver::factor_triplets(n, &[(4, 0, Complex::ONE)], SolverChoice::Dense),
            Err(NumericError::InvalidInput(_))
        ));
        let solver =
            CAnySolver::factor_triplets(n, &test_triplets(n), SolverChoice::Dense).unwrap();
        assert!(matches!(
            solver.solve(&test_rhs(n + 1)),
            Err(NumericError::DimensionMismatch { .. })
        ));
    }
}
