//! Backend-agnostic linear-solver selection.
//!
//! Two factorization backends live behind the [`LinearSolver`] trait:
//!
//! * **Dense** — the existing [`LuFactor`], right for the reduced-order
//!   model matrices (order 4–40) and the small paper circuits;
//! * **Sparse** — the CSC [`SparseLu`] with its symbolic/numeric phase
//!   split, right for the large benchmark interconnect nets where a
//!   dense factor would be O(n³) on a matrix that is almost all zeros.
//!
//! Callers that don't care pick [`SolverChoice::Auto`]: the
//! `LINVAR_SOLVER` environment variable (`dense` / `sparse` / `auto`) is
//! consulted first, then matrix order decides — at or above
//! [`SPARSE_AUTO_MIN_DIM`] unknowns the sparse backend wins. The
//! threshold sits above every existing paper workload on purpose, so
//! default-configuration results (and the table4/fig7 golden fixtures)
//! are bit-for-bit unchanged.

use crate::error::NumericError;
use crate::lu::{FactorRecovery, LuFactor};
use crate::matrix::Matrix;
use crate::sparse::SparseMatrix;
use crate::sparse_lu::{analyze_cached, SparseLu};

/// Matrix order at which [`SolverChoice::Auto`] switches to the sparse
/// backend. Every pre-existing workload sits far below this, so `Auto`
/// preserves historical dense results bit for bit.
pub const SPARSE_AUTO_MIN_DIM: usize = 4096;

/// Which backend a factorization ended up on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverBackend {
    /// Dense partial-pivoting LU ([`LuFactor`]).
    Dense,
    /// Compressed-sparse-column LU ([`SparseLu`]).
    Sparse,
}

impl SolverBackend {
    /// Stable lowercase name (used in logs and benchmark rows).
    pub fn name(self) -> &'static str {
        match self {
            SolverBackend::Dense => "dense",
            SolverBackend::Sparse => "sparse",
        }
    }
}

/// Caller-facing backend request.
///
/// `Auto` defers to the `LINVAR_SOLVER` environment variable and then to
/// the size heuristic; the explicit variants pin the backend regardless
/// of environment (which keeps parallel test binaries free of env
/// races).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverChoice {
    /// Environment override, then size heuristic.
    #[default]
    Auto,
    /// Always the dense backend.
    Dense,
    /// Always the sparse backend.
    Sparse,
}

impl SolverChoice {
    /// Parses a `LINVAR_SOLVER`-style string. Unknown values fall back
    /// to `Auto` (misspelling an env var must not silently change
    /// numerics — `Auto` reproduces the default).
    pub fn parse(s: &str) -> SolverChoice {
        match s.trim().to_ascii_lowercase().as_str() {
            "dense" => SolverChoice::Dense,
            "sparse" => SolverChoice::Sparse,
            _ => SolverChoice::Auto,
        }
    }

    /// Reads the `LINVAR_SOLVER` environment variable.
    pub fn from_env() -> SolverChoice {
        match std::env::var("LINVAR_SOLVER") {
            Ok(v) => SolverChoice::parse(&v),
            Err(_) => SolverChoice::Auto,
        }
    }

    /// Resolves this choice to a concrete backend for a system of order
    /// `n`. `Auto` consults `LINVAR_SOLVER` first; if that is also
    /// `auto` (or unset), size decides.
    pub fn backend_for(self, n: usize) -> SolverBackend {
        let effective = match self {
            SolverChoice::Auto => SolverChoice::from_env(),
            pinned => pinned,
        };
        match effective {
            SolverChoice::Dense => SolverBackend::Dense,
            SolverChoice::Sparse => SolverBackend::Sparse,
            SolverChoice::Auto => {
                if n >= SPARSE_AUTO_MIN_DIM {
                    SolverBackend::Sparse
                } else {
                    SolverBackend::Dense
                }
            }
        }
    }
}

/// Common interface over the dense and sparse LU backends.
///
/// Only the operations every consumer (SPICE engine, MOR projection,
/// benchmarks) needs are on the trait; backend-specific fast paths
/// (dense `optimize_for_solves`, sparse `refactor`) stay on the
/// concrete types and are reached by matching on [`AnySolver`].
pub trait LinearSolver {
    /// Matrix order.
    fn order(&self) -> usize;

    /// Which backend this factorization uses.
    fn backend(&self) -> SolverBackend;

    /// Cheap condition estimate (ratio of extreme pivot magnitudes).
    fn condition_estimate(&self) -> f64;

    /// Solves `A x = b` into `x` (overwritten; capacity reused).
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `b.len()` differs
    /// from the matrix order.
    fn solve_into(&self, b: &[f64], x: &mut Vec<f64>) -> Result<(), NumericError>;

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `b.len()` differs
    /// from the matrix order.
    fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericError> {
        let mut x = Vec::new();
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `b.rows()` differs
    /// from the matrix order.
    fn solve_mat(&self, b: &Matrix) -> Result<Matrix, NumericError>;
}

impl LinearSolver for LuFactor {
    fn order(&self) -> usize {
        LuFactor::order(self)
    }
    fn backend(&self) -> SolverBackend {
        SolverBackend::Dense
    }
    fn condition_estimate(&self) -> f64 {
        LuFactor::condition_estimate(self)
    }
    fn solve_into(&self, b: &[f64], x: &mut Vec<f64>) -> Result<(), NumericError> {
        LuFactor::solve_into(self, b, x)
    }
    fn solve_mat(&self, b: &Matrix) -> Result<Matrix, NumericError> {
        LuFactor::solve_mat(self, b)
    }
}

impl LinearSolver for SparseLu {
    fn order(&self) -> usize {
        SparseLu::order(self)
    }
    fn backend(&self) -> SolverBackend {
        SolverBackend::Sparse
    }
    fn condition_estimate(&self) -> f64 {
        SparseLu::condition_estimate(self)
    }
    fn solve_into(&self, b: &[f64], x: &mut Vec<f64>) -> Result<(), NumericError> {
        SparseLu::solve_into(self, b, x)
    }
    fn solve_mat(&self, b: &Matrix) -> Result<Matrix, NumericError> {
        SparseLu::solve_mat(self, b)
    }
}

/// A factorization on whichever backend selection picked.
#[derive(Debug, Clone)]
pub enum AnySolver {
    /// Dense backend.
    Dense(LuFactor),
    /// Sparse backend.
    Sparse(SparseLu),
}

impl AnySolver {
    /// Factors the stamped system described by `triplets` on the backend
    /// `choice` resolves to for order `n`. Dense assembly replays the
    /// triplets with `+=` in emission order, matching how sparse CSC
    /// assembly sums duplicates — both backends factor bitwise-identical
    /// coefficient values.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidInput`] for out-of-range triplets
    /// and [`NumericError::SingularMatrix`] on factorization breakdown.
    pub fn factor_triplets(
        n: usize,
        triplets: &[(usize, usize, f64)],
        choice: SolverChoice,
    ) -> Result<Self, NumericError> {
        match choice.backend_for(n) {
            SolverBackend::Dense => {
                let a = dense_from_triplets(n, triplets)?;
                Ok(AnySolver::Dense(LuFactor::new(&a)?))
            }
            SolverBackend::Sparse => {
                let a = SparseMatrix::from_triplets(n, n, triplets)?;
                Ok(AnySolver::Sparse(SparseLu::new(&a)?))
            }
        }
    }

    /// Like [`AnySolver::factor_triplets`] but walking the
    /// diagonal-perturbation recovery ladder on breakdown (one retry on
    /// `A + εI`), identical policy on both backends.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidInput`] for out-of-range triplets
    /// and the underlying error if even the perturbed matrix fails.
    pub fn factor_triplets_recovering(
        n: usize,
        triplets: &[(usize, usize, f64)],
        choice: SolverChoice,
    ) -> Result<(Self, FactorRecovery), NumericError> {
        match choice.backend_for(n) {
            SolverBackend::Dense => {
                let a = dense_from_triplets(n, triplets)?;
                let (lu, rec) = LuFactor::new_recovering(&a)?;
                Ok((AnySolver::Dense(lu), rec))
            }
            SolverBackend::Sparse => {
                let a = SparseMatrix::from_triplets(n, n, triplets)?;
                let symbolic = analyze_cached(&a)?;
                let (lu, rec) = SparseLu::new_recovering(&a, &symbolic)?;
                Ok((AnySolver::Sparse(lu), rec))
            }
        }
    }

    /// Factors a dense matrix on the chosen backend (converting to CSC
    /// when sparse is selected). Used by consumers that already hold a
    /// dense operator, e.g. the MOR projection path.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::SingularMatrix`] on breakdown and
    /// [`NumericError::DimensionMismatch`] for non-square input.
    pub fn factor_dense_matrix(a: &Matrix, choice: SolverChoice) -> Result<Self, NumericError> {
        match choice.backend_for(a.rows()) {
            SolverBackend::Dense => Ok(AnySolver::Dense(LuFactor::new(a)?)),
            SolverBackend::Sparse => {
                let s = SparseMatrix::from_dense(a);
                Ok(AnySolver::Sparse(SparseLu::new(&s)?))
            }
        }
    }

    /// Like [`AnySolver::factor_dense_matrix`] but walking the
    /// diagonal-perturbation recovery ladder on breakdown (one retry on
    /// `A + εI`), identical policy on both backends.
    ///
    /// # Errors
    ///
    /// Returns the underlying error if even the perturbed matrix fails.
    pub fn factor_dense_matrix_recovering(
        a: &Matrix,
        choice: SolverChoice,
    ) -> Result<(Self, FactorRecovery), NumericError> {
        match choice.backend_for(a.rows()) {
            SolverBackend::Dense => {
                let (lu, rec) = LuFactor::new_recovering(a)?;
                Ok((AnySolver::Dense(lu), rec))
            }
            SolverBackend::Sparse => {
                let s = SparseMatrix::from_dense(a);
                let symbolic = analyze_cached(&s)?;
                let (lu, rec) = SparseLu::new_recovering(&s, &symbolic)?;
                Ok((AnySolver::Sparse(lu), rec))
            }
        }
    }

    /// Refactors in place when the backend supports pattern reuse.
    ///
    /// On the sparse backend this is the fast numeric-only
    /// refactorization (with a full re-pivoting factor as fallback if
    /// the reused pivots break down); the dense backend has no
    /// pattern to reuse, so it simply factors afresh.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::SingularMatrix`] if the new values are
    /// singular and [`NumericError::InvalidInput`] for out-of-range
    /// triplets.
    pub fn refactor_triplets(
        &mut self,
        n: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<(), NumericError> {
        match self {
            AnySolver::Dense(lu) => {
                let a = dense_from_triplets(n, triplets)?;
                *lu = LuFactor::new(&a)?;
                Ok(())
            }
            AnySolver::Sparse(lu) => {
                let a = SparseMatrix::from_triplets(n, n, triplets)?;
                match lu.refactor(&a) {
                    Ok(()) => Ok(()),
                    // Pattern drift or pivot breakdown: re-pivot from
                    // scratch rather than failing the timestep.
                    Err(_) => {
                        *lu = SparseLu::new(&a)?;
                        Ok(())
                    }
                }
            }
        }
    }

    /// The backend this factorization lives on.
    pub fn backend(&self) -> SolverBackend {
        match self {
            AnySolver::Dense(_) => SolverBackend::Dense,
            AnySolver::Sparse(_) => SolverBackend::Sparse,
        }
    }

    /// Dense-backend fast path: build the compact solve index so
    /// repeated `solve` calls skip the permutation bookkeeping. No-op on
    /// the sparse backend (its factor is already compressed).
    pub fn optimize_for_solves(&mut self) {
        if let AnySolver::Dense(lu) = self {
            lu.optimize_for_solves();
        }
    }
}

impl LinearSolver for AnySolver {
    fn order(&self) -> usize {
        match self {
            AnySolver::Dense(lu) => lu.order(),
            AnySolver::Sparse(lu) => lu.order(),
        }
    }
    fn backend(&self) -> SolverBackend {
        AnySolver::backend(self)
    }
    fn condition_estimate(&self) -> f64 {
        match self {
            AnySolver::Dense(lu) => lu.condition_estimate(),
            AnySolver::Sparse(lu) => lu.condition_estimate(),
        }
    }
    fn solve_into(&self, b: &[f64], x: &mut Vec<f64>) -> Result<(), NumericError> {
        match self {
            AnySolver::Dense(lu) => lu.solve_into(b, x),
            AnySolver::Sparse(lu) => lu.solve_into(b, x),
        }
    }
    fn solve_mat(&self, b: &Matrix) -> Result<Matrix, NumericError> {
        match self {
            AnySolver::Dense(lu) => lu.solve_mat(b),
            AnySolver::Sparse(lu) => lu.solve_mat(b),
        }
    }
}

/// Replays triplets into a dense matrix with `+=` in emission order —
/// the exact accumulation order sparse CSC assembly uses for duplicates,
/// and the exact order the stamping loops used before the solver
/// abstraction existed (preserving historical bit patterns).
fn dense_from_triplets(n: usize, triplets: &[(usize, usize, f64)]) -> Result<Matrix, NumericError> {
    let mut a = Matrix::zeros(n, n);
    for &(i, j, v) in triplets {
        if i >= n || j >= n {
            return Err(NumericError::InvalidInput(format!(
                "triplet ({i}, {j}) out of range for a {n}x{n} system"
            )));
        }
        a[(i, j)] += v;
    }
    Ok(a)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_triplets(n: usize) -> Vec<(usize, usize, f64)> {
        let mut t = Vec::new();
        for i in 0..n {
            // Duplicate diagonal contributions, like two elements
            // stamping the same node.
            t.push((i, i, 2.0));
            t.push((i, i, 0.5 + i as f64 * 0.1));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.0));
            }
        }
        t
    }

    #[test]
    fn parse_and_default() {
        assert_eq!(SolverChoice::parse("dense"), SolverChoice::Dense);
        assert_eq!(SolverChoice::parse(" SPARSE\n"), SolverChoice::Sparse);
        assert_eq!(SolverChoice::parse("auto"), SolverChoice::Auto);
        assert_eq!(SolverChoice::parse("bogus"), SolverChoice::Auto);
        assert_eq!(SolverChoice::default(), SolverChoice::Auto);
    }

    #[test]
    fn explicit_choices_pin_the_backend() {
        assert_eq!(
            SolverChoice::Dense.backend_for(1 << 20),
            SolverBackend::Dense
        );
        assert_eq!(SolverChoice::Sparse.backend_for(2), SolverBackend::Sparse);
    }

    #[test]
    fn both_backends_agree_through_the_trait() {
        let n = 12;
        let t = test_triplets(n);
        let dense = AnySolver::factor_triplets(n, &t, SolverChoice::Dense).unwrap();
        let sparse = AnySolver::factor_triplets(n, &t, SolverChoice::Sparse).unwrap();
        assert_eq!(dense.backend(), SolverBackend::Dense);
        assert_eq!(sparse.backend(), SolverBackend::Sparse);
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let xd = dense.solve(&b).unwrap();
        let xs = sparse.solve(&b).unwrap();
        for (a, b) in xd.iter().zip(&xs) {
            assert!((a - b).abs() < 1e-12 * a.abs().max(1.0));
        }
        assert!(dense.condition_estimate().is_finite());
        assert!(sparse.condition_estimate().is_finite());
    }

    #[test]
    fn refactor_triplets_updates_values_on_both_backends() {
        let n = 10;
        let t = test_triplets(n);
        for choice in [SolverChoice::Dense, SolverChoice::Sparse] {
            let mut solver = AnySolver::factor_triplets(n, &t, choice).unwrap();
            let scaled: Vec<_> = t.iter().map(|&(i, j, v)| (i, j, 2.0 * v)).collect();
            solver.refactor_triplets(n, &scaled).unwrap();
            let b = vec![1.0; n];
            let x = solver.solve(&b).unwrap();
            // Doubling A halves the solution of the original system.
            let orig = AnySolver::factor_triplets(n, &t, choice).unwrap();
            let x0 = orig.solve(&b).unwrap();
            for (half, full) in x.iter().zip(&x0) {
                assert!((2.0 * half - full).abs() < 1e-10 * full.abs().max(1.0));
            }
        }
    }

    #[test]
    fn out_of_range_triplets_are_invalid_input() {
        assert!(matches!(
            AnySolver::factor_triplets(2, &[(2, 0, 1.0)], SolverChoice::Dense),
            Err(NumericError::InvalidInput(_) | NumericError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            AnySolver::factor_triplets(2, &[(0, 5, 1.0)], SolverChoice::Sparse),
            Err(NumericError::InvalidInput(_) | NumericError::DimensionMismatch { .. })
        ));
    }
}
