//! Compressed-sparse-column matrices assembled from circuit stamps.
//!
//! MNA matrices of large interconnect structures (long RC chains, clock
//! trees) are overwhelmingly sparse: a node couples only to its few
//! electrical neighbours, so the dense `Matrix` representation wastes
//! O(n²) memory and — worse — forces O(n²)–O(n³) factorization work on
//! systems whose true fill is O(n). [`SparseMatrix`] stores such systems
//! in compressed-sparse-column (CSC) form and is the input type of the
//! sparse LU backend in [`crate::sparse_lu`].
//!
//! # Assembly contract
//!
//! [`SparseMatrix::from_triplets`] consumes `(row, col, value)` stamps in
//! the order the stamping code emitted them and **sums duplicates in that
//! emission order**. This mirrors how the dense path accumulates stamps
//! with `+=` into a zeroed matrix, so for any entry the summation order —
//! and therefore the rounded f64 value — is identical between the dense
//! and sparse assemblies of the same stamp stream.

use crate::error::NumericError;
use crate::matrix::Matrix;

/// A real matrix in compressed-sparse-column (CSC) storage.
///
/// Within each column the stored row indices are strictly ascending and
/// duplicate-free; structural zeros may be stored explicitly (a stamp
/// stream can legitimately sum to `0.0`).
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    n_rows: usize,
    n_cols: usize,
    /// `col_ptr[j]..col_ptr[j+1]` indexes column `j`'s entries.
    col_ptr: Vec<usize>,
    /// Row index of each entry, ascending within a column.
    row_idx: Vec<usize>,
    /// Value of each entry.
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Builds a CSC matrix from `(row, col, value)` triplets.
    ///
    /// Duplicate `(row, col)` entries are summed **in triplet order**, so
    /// the accumulated value is bitwise identical to stamping the same
    /// stream into a zeroed dense matrix with `+=`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidInput`] if any triplet indexes out
    /// of range.
    pub fn from_triplets(
        n_rows: usize,
        n_cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self, NumericError> {
        for &(r, c, _) in triplets {
            if r >= n_rows || c >= n_cols {
                return Err(NumericError::InvalidInput(format!(
                    "triplet ({r}, {c}) out of range for {n_rows}x{n_cols} matrix"
                )));
            }
        }
        // Bucket triplets by column, preserving emission order within
        // each column (counting sort is stable).
        let mut counts = vec![0usize; n_cols + 1];
        for &(_, c, _) in triplets {
            counts[c + 1] += 1;
        }
        for j in 0..n_cols {
            counts[j + 1] += counts[j];
        }
        let mut next = counts.clone();
        let mut rows = vec![0usize; triplets.len()];
        let mut seqs = vec![0usize; triplets.len()];
        let mut vals = vec![0.0f64; triplets.len()];
        for (seq, &(r, c, v)) in triplets.iter().enumerate() {
            let slot = next[c];
            next[c] += 1;
            rows[slot] = r;
            seqs[slot] = seq;
            vals[slot] = v;
        }
        // Per column: order by (row, emission sequence), then fold
        // duplicates left-to-right so summation follows emission order.
        let mut col_ptr = Vec::with_capacity(n_cols + 1);
        let mut out_rows = Vec::with_capacity(triplets.len());
        let mut out_vals = Vec::with_capacity(triplets.len());
        col_ptr.push(0);
        let mut scratch: Vec<(usize, usize, f64)> = Vec::new();
        for j in 0..n_cols {
            scratch.clear();
            for k in counts[j]..counts[j + 1] {
                scratch.push((rows[k], seqs[k], vals[k]));
            }
            scratch.sort_unstable_by_key(|&(r, s, _)| (r, s));
            for &(r, _, v) in scratch.iter() {
                if out_rows.last() == Some(&r) && out_rows.len() > *col_ptr.last().expect("pushed")
                {
                    let last = out_vals.len() - 1;
                    out_vals[last] += v;
                } else {
                    out_rows.push(r);
                    out_vals.push(v);
                }
            }
            col_ptr.push(out_rows.len());
        }
        Ok(SparseMatrix {
            n_rows,
            n_cols,
            col_ptr,
            row_idx: out_rows,
            values: out_vals,
        })
    }

    /// Converts a dense matrix, keeping only its nonzero entries.
    pub fn from_dense(a: &Matrix) -> Self {
        let (n_rows, n_cols) = (a.rows(), a.cols());
        let mut col_ptr = Vec::with_capacity(n_cols + 1);
        let mut row_idx = Vec::new();
        let mut values = Vec::new();
        col_ptr.push(0);
        for j in 0..n_cols {
            for i in 0..n_rows {
                let v = a[(i, j)];
                if v != 0.0 {
                    row_idx.push(i);
                    values.push(v);
                }
            }
            col_ptr.push(row_idx.len());
        }
        SparseMatrix {
            n_rows,
            n_cols,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Expands to a dense matrix (tests and small-system fallbacks).
    pub fn to_dense(&self) -> Matrix {
        let mut a = Matrix::zeros(self.n_rows, self.n_cols);
        for j in 0..self.n_cols {
            let (rows, vals) = self.col(j);
            for (&i, &v) in rows.iter().zip(vals) {
                a[(i, j)] += v;
            }
        }
        a
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.n_rows == self.n_cols
    }

    /// Number of stored entries (explicit zeros included).
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Fraction of stored entries over the full `rows × cols` grid.
    pub fn density(&self) -> f64 {
        let cells = self.n_rows as f64 * self.n_cols as f64;
        if cells > 0.0 {
            self.nnz() as f64 / cells
        } else {
            0.0
        }
    }

    /// Column `j` as parallel `(row_indices, values)` slices.
    pub fn col(&self, j: usize) -> (&[usize], &[f64]) {
        let (lo, hi) = (self.col_ptr[j], self.col_ptr[j + 1]);
        (&self.row_idx[lo..hi], &self.values[lo..hi])
    }

    /// Entry `(i, j)`, `0.0` when not stored. O(log nnz_col) lookup.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (rows, vals) = self.col(j);
        match rows.binary_search(&i) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// The column-pointer array (length `n_cols + 1`).
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// The row-index array, columns concatenated.
    pub fn row_indices(&self) -> &[usize] {
        &self.row_idx
    }

    /// The value array, parallel to [`SparseMatrix::row_indices`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// `true` if `other` stores exactly the same nonzero pattern.
    pub fn pattern_eq(&self, other: &SparseMatrix) -> bool {
        self.n_rows == other.n_rows
            && self.n_cols == other.n_cols
            && self.col_ptr == other.col_ptr
            && self.row_idx == other.row_idx
    }

    /// Largest entry magnitude (`0.0` for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.values.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }

    /// `self + eps·I`, extending the pattern with any missing diagonal
    /// entries. Used by the diagonal-perturbation recovery ladder; for
    /// entries already present the accumulation order (`value + eps`)
    /// matches the dense ladder's `a[(i,i)] += eps`.
    pub fn add_diagonal(&self, eps: f64) -> SparseMatrix {
        let n = self.n_rows.min(self.n_cols);
        let mut triplets = Vec::with_capacity(self.nnz() + n);
        for j in 0..self.n_cols {
            let (rows, vals) = self.col(j);
            for (&i, &v) in rows.iter().zip(vals) {
                triplets.push((i, j, v));
            }
        }
        for i in 0..n {
            triplets.push((i, i, eps));
        }
        SparseMatrix::from_triplets(self.n_rows, self.n_cols, &triplets)
            .expect("indices come from a valid matrix")
    }

    /// `A·x`, accumulated column-major (deterministic order).
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `x.len() != n_cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, NumericError> {
        if x.len() != self.n_cols {
            return Err(NumericError::DimensionMismatch {
                expected: format!("vector of length {}", self.n_cols),
                found: format!("length {}", x.len()),
            });
        }
        let mut y = vec![0.0; self.n_rows];
        for j in 0..self.n_cols {
            let xj = x[j];
            let (rows, vals) = self.col(j);
            for (&i, &v) in rows.iter().zip(vals) {
                y[i] += v * xj;
            }
        }
        Ok(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_assemble_and_sum_duplicates_in_order() {
        // The same (0,0) cell stamped three times must accumulate exactly
        // like `+=` into a dense zero matrix.
        let t = [
            (0, 0, 1e16),
            (1, 1, 2.0),
            (0, 0, 1.0),
            (0, 1, -3.0),
            (0, 0, -1e16),
        ];
        let a = SparseMatrix::from_triplets(2, 2, &t).unwrap();
        let mut dense = Matrix::zeros(2, 2);
        for &(i, j, v) in &t {
            dense[(i, j)] += v;
        }
        assert_eq!(a.get(0, 0).to_bits(), dense[(0, 0)].to_bits());
        assert_eq!(a.get(0, 1), -3.0);
        assert_eq!(a.get(1, 0), 0.0);
        assert_eq!(a.nnz(), 3);
    }

    #[test]
    fn row_indices_sorted_within_columns() {
        let t = [(3, 0, 1.0), (0, 0, 2.0), (2, 0, 3.0), (1, 1, 4.0)];
        let a = SparseMatrix::from_triplets(4, 2, &t).unwrap();
        let (rows, _) = a.col(0);
        assert_eq!(rows, &[0, 2, 3]);
    }

    #[test]
    fn out_of_range_triplet_rejected() {
        assert!(matches!(
            SparseMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]),
            Err(NumericError::InvalidInput(_))
        ));
        assert!(matches!(
            SparseMatrix::from_triplets(2, 2, &[(0, 5, 1.0)]),
            Err(NumericError::InvalidInput(_))
        ));
    }

    #[test]
    fn dense_roundtrip() {
        let d = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 0.0, 3.0], &[4.0, 5.0, 0.0]]);
        let s = SparseMatrix::from_dense(&d);
        assert_eq!(s.nnz(), 5);
        let back = s.to_dense();
        assert_eq!(back.as_slice(), d.as_slice());
    }

    #[test]
    fn mul_vec_matches_dense() {
        let d = Matrix::from_rows(&[&[2.0, -1.0, 0.0], &[-1.0, 2.0, -1.0], &[0.0, -1.0, 2.0]]);
        let s = SparseMatrix::from_dense(&d);
        let x = [1.0, 2.0, 3.0];
        let want = d.mul_vec(&x);
        let got = s.mul_vec(&x).unwrap();
        assert_eq!(got, want);
        assert!(s.mul_vec(&[1.0]).is_err());
    }

    #[test]
    fn add_diagonal_extends_pattern() {
        // (1,1) missing from the pattern: add_diagonal must create it.
        let t = [(0, 0, 2.0), (1, 0, 1.0)];
        let a = SparseMatrix::from_triplets(2, 2, &t).unwrap();
        let b = a.add_diagonal(0.5);
        assert_eq!(b.get(0, 0), 2.5);
        assert_eq!(b.get(1, 1), 0.5);
        assert_eq!(b.get(1, 0), 1.0);
    }

    #[test]
    fn density_and_shape() {
        let a = SparseMatrix::from_triplets(4, 4, &[(0, 0, 1.0), (3, 3, 1.0)]).unwrap();
        assert!(a.is_square());
        assert_eq!(a.n_rows(), 4);
        assert!((a.density() - 2.0 / 16.0).abs() < 1e-15);
    }
}
