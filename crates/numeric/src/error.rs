//! Error type shared by all numerical kernels.

use std::fmt;

/// Error produced by the dense linear-algebra kernels.
///
/// Every fallible public function in [`crate`] returns this type so that
/// callers can propagate failures with `?` and report a meaningful message.
#[derive(Debug, Clone, PartialEq)]
pub enum NumericError {
    /// A factorization encountered a pivot below the singularity threshold.
    SingularMatrix {
        /// Index of the pivot (row/column) where the factorization broke down.
        pivot: usize,
        /// Rough condition estimate at breakdown — the ratio of the largest
        /// pivot magnitude accepted so far to the failing pivot magnitude —
        /// when the factorization can provide one. Recovery layers use this
        /// to distinguish "structurally singular" (∞ or absent) from
        /// "near-singular, worth a perturbed retry".
        condition: Option<f64>,
    },
    /// The operands of a matrix/vector operation have incompatible shapes.
    DimensionMismatch {
        /// Human-readable description of the expected shape.
        expected: String,
        /// Human-readable description of the shape that was provided.
        found: String,
    },
    /// An iterative algorithm failed to converge within its iteration budget.
    ConvergenceFailure {
        /// Name of the algorithm that failed (e.g. `"francis-qr"`).
        algorithm: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// The input violates a documented precondition (e.g. an empty matrix).
    InvalidInput(String),
}

impl fmt::Display for NumericError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericError::SingularMatrix { pivot, condition } => {
                write!(f, "matrix is singular to working precision (pivot {pivot}")?;
                if let Some(cond) = condition {
                    write!(f, ", condition estimate {cond:.3e}")?;
                }
                write!(f, ")")
            }
            NumericError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            NumericError::ConvergenceFailure {
                algorithm,
                iterations,
            } => write!(
                f,
                "{algorithm} failed to converge after {iterations} iterations"
            ),
            NumericError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl std::error::Error for NumericError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = NumericError::SingularMatrix {
            pivot: 3,
            condition: None,
        };
        assert!(e.to_string().contains("singular"));
        assert!(e.to_string().contains('3'));

        let e = NumericError::SingularMatrix {
            pivot: 3,
            condition: Some(1e18),
        };
        assert!(e.to_string().contains("condition estimate"));

        let e = NumericError::DimensionMismatch {
            expected: "3x3".into(),
            found: "2x3".into(),
        };
        assert!(e.to_string().contains("3x3"));

        let e = NumericError::ConvergenceFailure {
            algorithm: "francis-qr",
            iterations: 30,
        };
        assert!(e.to_string().contains("francis-qr"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumericError>();
    }
}
