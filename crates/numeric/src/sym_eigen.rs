//! Symmetric eigensolver (cyclic Jacobi rotation method).
//!
//! Used for two jobs: the internal-block eigenanalysis of PACT (the pencil
//! `(G_ii, C_ii)` of a reciprocal RC network is symmetric) and Principal
//! Component Analysis of parameter covariance matrices.

use crate::error::NumericError;
use crate::matrix::Matrix;

/// Eigendecomposition `A = V Λ Vᵀ` of a real symmetric matrix.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues in descending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors; column `k` corresponds to `values[k]`.
    pub vectors: Matrix,
}

/// Computes all eigenvalues and eigenvectors of a symmetric matrix by the
/// cyclic Jacobi method.
///
/// The Jacobi method is unconditionally stable for symmetric input and
/// delivers small relative errors for the well-conditioned covariance and
/// RC-pencil matrices used in this workspace.
///
/// # Errors
///
/// Returns [`NumericError::DimensionMismatch`] if `a` is not square,
/// [`NumericError::InvalidInput`] if `a` is not symmetric (within a scaled
/// tolerance) or non-finite, and [`NumericError::ConvergenceFailure`] if the
/// off-diagonal norm fails to vanish.
///
/// # Example
///
/// ```
/// use linvar_numeric::{jacobi_eigen, Matrix};
///
/// # fn main() -> Result<(), linvar_numeric::NumericError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
/// let eig = jacobi_eigen(&a)?;
/// assert!((eig.values[0] - 3.0).abs() < 1e-12);
/// assert!((eig.values[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn jacobi_eigen(a: &Matrix) -> Result<SymEigen, NumericError> {
    if !a.is_square() {
        return Err(NumericError::DimensionMismatch {
            expected: "square matrix".into(),
            found: format!("{}x{}", a.rows(), a.cols()),
        });
    }
    if a.as_slice().iter().any(|x| !x.is_finite()) {
        return Err(NumericError::InvalidInput(
            "matrix contains non-finite entries".into(),
        ));
    }
    let scale = a.max_abs().max(1e-300);
    if !a.is_symmetric(1e-10 * scale) {
        return Err(NumericError::InvalidInput("matrix is not symmetric".into()));
    }
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    const MAX_SWEEPS: usize = 100;

    for sweep in 0..MAX_SWEEPS {
        let mut off = 0.0_f64;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() <= 1e-14 * scale {
            let mut idx: Vec<usize> = (0..n).collect();
            idx.sort_by(|&x, &y| {
                m[(y, y)]
                    .partial_cmp(&m[(x, x)])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let values: Vec<f64> = idx.iter().map(|&i| m[(i, i)]).collect();
            let mut vectors = Matrix::zeros(n, n);
            for (col, &i) in idx.iter().enumerate() {
                vectors.set_col(col, &v.col(i));
            }
            return Ok(SymEigen { values, vectors });
        }
        let _ = sweep;
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation J(p, q, θ) on both sides.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    Err(NumericError::ConvergenceFailure {
        algorithm: "jacobi",
        iterations: MAX_SWEEPS,
    })
}

/// Solves the symmetric-definite generalized eigenproblem `A x = λ B x`
/// with `B` symmetric positive definite, via the Cholesky reduction
/// `B = L Lᵀ`, `C = L⁻¹ A L⁻ᵀ`, `C y = λ y`, `x = L⁻ᵀ y`.
///
/// This is the eigenanalysis PACT performs on the internal pencil.
///
/// # Errors
///
/// Returns [`NumericError::InvalidInput`] if `B` is not positive definite,
/// plus all [`jacobi_eigen`] error conditions for the reduced problem.
pub fn generalized_sym_eigen(a: &Matrix, b: &Matrix) -> Result<SymEigen, NumericError> {
    let n = a.rows();
    if b.rows() != n || b.cols() != n || a.cols() != n {
        return Err(NumericError::DimensionMismatch {
            expected: format!("two {n}x{n} matrices"),
            found: format!("{}x{} and {}x{}", a.rows(), a.cols(), b.rows(), b.cols()),
        });
    }
    let l = cholesky(b)?;
    // C = L⁻¹ A L⁻ᵀ computed with two triangular solves.
    // First: W = L⁻¹ A (solve L W = A column by column).
    let mut w = Matrix::zeros(n, n);
    for j in 0..n {
        let col = forward_solve(&l, &a.col(j));
        w.set_col(j, &col);
    }
    // Then: C = W L⁻ᵀ ⇔ Cᵀ = L⁻¹ Wᵀ.
    let wt = w.transpose();
    let mut ct = Matrix::zeros(n, n);
    for j in 0..n {
        let col = forward_solve(&l, &wt.col(j));
        ct.set_col(j, &col);
    }
    let mut c = ct.transpose();
    // Symmetrize tiny asymmetry from rounding.
    for i in 0..n {
        for j in (i + 1)..n {
            let avg = 0.5 * (c[(i, j)] + c[(j, i)]);
            c[(i, j)] = avg;
            c[(j, i)] = avg;
        }
    }
    let eig = jacobi_eigen(&c)?;
    // Back-transform eigenvectors: x = L⁻ᵀ y.
    let mut vectors = Matrix::zeros(n, n);
    for k in 0..n {
        let y = eig.vectors.col(k);
        let x = backward_solve_transposed(&l, &y);
        vectors.set_col(k, &x);
    }
    Ok(SymEigen {
        values: eig.values,
        vectors,
    })
}

/// Cholesky factorization `A = L Lᵀ` (lower triangular).
///
/// # Errors
///
/// Returns [`NumericError::InvalidInput`] if `a` is not positive definite.
pub fn cholesky(a: &Matrix) -> Result<Matrix, NumericError> {
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(NumericError::InvalidInput(format!(
                        "matrix is not positive definite (pivot {i})"
                    )));
                }
                l[(i, i)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Ok(l)
}

/// Solves `L x = b` for lower-triangular `L`.
fn forward_solve(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = b.len();
    let mut x = b.to_vec();
    for i in 0..n {
        let mut acc = x[i];
        for j in 0..i {
            acc -= l[(i, j)] * x[j];
        }
        x[i] = acc / l[(i, i)];
    }
    x
}

/// Solves `Lᵀ x = b` for lower-triangular `L`.
fn backward_solve_transposed(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = b.len();
    let mut x = b.to_vec();
    for i in (0..n).rev() {
        let mut acc = x[i];
        for j in (i + 1)..n {
            acc -= l[(j, i)] * x[j];
        }
        x[i] = acc / l[(i, i)];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_2x2_known() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let eig = jacobi_eigen(&a).unwrap();
        assert!((eig.values[0] - 3.0).abs() < 1e-12);
        assert!((eig.values[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vectors_are_orthonormal_and_satisfy_equation() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.25], &[0.5, 0.25, 2.0]]);
        let eig = jacobi_eigen(&a).unwrap();
        let vtv = eig.vectors.transpose().mul_mat(&eig.vectors);
        assert!((&vtv - &Matrix::identity(3)).max_abs() < 1e-12);
        for k in 0..3 {
            let v = eig.vectors.col(k);
            let av = a.mul_vec(&v);
            for i in 0..3 {
                assert!((av[i] - eig.values[k] * v[i]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn values_sorted_descending() {
        let a = Matrix::from_diagonal(&[1.0, 5.0, 3.0]);
        let eig = jacobi_eigen(&a).unwrap();
        assert_eq!(eig.values, vec![5.0, 3.0, 1.0]);
    }

    #[test]
    fn asymmetric_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!(jacobi_eigen(&a).is_err());
    }

    #[test]
    fn cholesky_roundtrip() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let l = cholesky(&a).unwrap();
        let rec = l.mul_mat(&l.transpose());
        assert!((&rec - &a).max_abs() < 1e-13);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(cholesky(&a).is_err());
    }

    #[test]
    fn generalized_problem_rc_pencil() {
        // G x = λ C x with G the ladder conductance and C capacitances:
        // eigenvalues are positive (RC time constants are 1/λ).
        let g = Matrix::from_rows(&[&[2.0, -1.0], &[-1.0, 2.0]]);
        let c = Matrix::from_diagonal(&[1.0, 2.0]);
        let eig = generalized_sym_eigen(&g, &c).unwrap();
        assert_eq!(eig.values.len(), 2);
        for (k, &lam) in eig.values.iter().enumerate() {
            assert!(lam > 0.0);
            // Verify G v = λ C v.
            let v = eig.vectors.col(k);
            let gv = g.mul_vec(&v);
            let cv = c.mul_vec(&v);
            for i in 0..2 {
                assert!((gv[i] - lam * cv[i]).abs() < 1e-10, "pair {k} fails");
            }
        }
    }

    #[test]
    fn identity_eigen() {
        let eig = jacobi_eigen(&Matrix::identity(4)).unwrap();
        assert!(eig.values.iter().all(|&v| (v - 1.0).abs() < 1e-14));
    }
}
