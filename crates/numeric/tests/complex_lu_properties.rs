//! Complex (AC) solver property battery.
//!
//! Property tests drive the real-embedded complex solver ([`CAnySolver`])
//! over randomly generated diagonally-dominant complex systems and demand
//! dense/sparse agreement, bitwise determinism when the same system is
//! solved concurrently from 1/2/8 threads (the workspace arenas are
//! thread-local; nothing about the factorization may depend on what other
//! threads are doing), and recovery-ladder parity between the backends on
//! injected exactly-singular complex systems.

use linvar_numeric::{CAnySolver, Complex, SolverChoice};
use proptest::prelude::*;
use std::sync::Arc;

/// Deterministic complex triplet stream: a few off-diagonal entries per
/// row drawn from the seed slice (real and imaginary parts offset into
/// the seed differently), every 5th entry echoed as a duplicate (the
/// embedding must sum duplicates exactly like the dense `+=` replay),
/// and the diagonal boosted to dominance.
fn random_ctriplets(n: usize, seed: &[f64], fill: usize) -> Vec<(usize, usize, Complex)> {
    let mut t = Vec::new();
    for i in 0..n {
        for k in 0..fill {
            let idx = i * fill + k;
            let re = seed[idx % seed.len()];
            let im = seed[(idx * 3 + 1) % seed.len()];
            let j = (i + 1 + (idx * 7 + 3) % (n - 1).max(1)) % n;
            let z = Complex::new(re, im);
            t.push((i, j, z));
            if idx.is_multiple_of(5) {
                t.push((i, j, Complex::new(re * 0.5, im * -0.5)));
            }
        }
        t.push((
            i,
            i,
            Complex::new(
                8.0 + fill as f64 + seed[i % seed.len()].abs(),
                2.0 + seed[(i * 2 + 1) % seed.len()],
            ),
        ));
    }
    t
}

fn rhs_of(n: usize, seed: &[f64]) -> Vec<Complex> {
    (0..n)
        .map(|i| {
            Complex::new(
                seed[i % seed.len()] + 1.0,
                seed[(i * 2 + 3) % seed.len()] - 0.5,
            )
        })
        .collect()
}

fn max_rel_err(x: &[Complex], y: &[Complex]) -> f64 {
    x.iter()
        .zip(y)
        .map(|(a, b)| {
            let d = ((a.re - b.re).powi(2) + (a.im - b.im).powi(2)).sqrt();
            let m = (a.re.powi(2) + a.im.powi(2)).sqrt().max(1e-30);
            d / m
        })
        .fold(0.0, f64::max)
}

fn bits_of(x: &[Complex]) -> Vec<(u64, u64)> {
    x.iter().map(|z| (z.re.to_bits(), z.im.to_bits())).collect()
}

/// Factors and solves on the given backend, returning the solution.
fn solve_once(
    n: usize,
    t: &[(usize, usize, Complex)],
    b: &[Complex],
    c: SolverChoice,
) -> Vec<Complex> {
    CAnySolver::factor_triplets(n, t, c)
        .expect("dominant system factors")
        .solve(b)
        .expect("factored system solves")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random duplicate-bearing complex systems: the dense and sparse
    /// embeddings solve to a tight relative tolerance of each other, and
    /// the residual of each is small in its own right.
    #[test]
    fn complex_dense_and_sparse_backends_agree(
        n in 3usize..28,
        fill in 1usize..4,
        seed in prop::collection::vec(-2.0f64..2.0, 64),
    ) {
        let t = random_ctriplets(n, &seed, fill);
        let b = rhs_of(n, &seed);
        let xd = solve_once(n, &t, &b, SolverChoice::Dense);
        let xs = solve_once(n, &t, &b, SolverChoice::Sparse);
        prop_assert!(
            max_rel_err(&xd, &xs) < 1e-10,
            "backends disagree: rel err {:e}", max_rel_err(&xd, &xs)
        );
        // Residual check through the raw triplets (duplicates summed).
        let mut r = vec![Complex::ZERO; n];
        for &(i, j, z) in &t {
            r[i] = Complex::new(
                r[i].re + z.re * xd[j].re - z.im * xd[j].im,
                r[i].im + z.re * xd[j].im + z.im * xd[j].re,
            );
        }
        for i in 0..n {
            prop_assert!((r[i].re - b[i].re).abs() < 1e-8 * (1.0 + b[i].re.abs()));
            prop_assert!((r[i].im - b[i].im).abs() < 1e-8 * (1.0 + b[i].im.abs()));
        }
    }

    /// Solving the same complex system concurrently from 1, 2 and 8
    /// threads is bitwise identical to the serial solve on both backends:
    /// no global state (workspace arenas, symbolic caches) may leak into
    /// the numerics.
    #[test]
    fn complex_solves_are_bitwise_across_1_2_8_threads(
        n in 3usize..20,
        seed in prop::collection::vec(-2.0f64..2.0, 48),
    ) {
        let t = Arc::new(random_ctriplets(n, &seed, 2));
        let b = Arc::new(rhs_of(n, &seed));
        for choice in [SolverChoice::Dense, SolverChoice::Sparse] {
            let reference = bits_of(&solve_once(n, &t, &b, choice));
            for threads in [1usize, 2, 8] {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        let (t, b) = (Arc::clone(&t), Arc::clone(&b));
                        std::thread::spawn(move || bits_of(&solve_once(n, &t, &b, choice)))
                    })
                    .collect();
                for h in handles {
                    let got = h.join().expect("no panic in worker");
                    prop_assert_eq!(
                        &got, &reference,
                        "{:?} at {} threads drifted from the serial solve", choice, threads
                    );
                }
            }
        }
    }

    /// Recovery-ladder parity on injected singular complex systems: zero
    /// out one row entirely (real and imaginary) and both backends must
    /// recover by diagonal perturbation, report it, and produce finite
    /// solutions — the same evidence shape as the real-valued ladder.
    #[test]
    fn recovery_ladder_parity_on_singular_complex_systems(
        n in 3usize..16,
        victim_pick in 0usize..64,
        seed in prop::collection::vec(-2.0f64..2.0, 48),
    ) {
        let victim = victim_pick % n;
        let t: Vec<(usize, usize, Complex)> = random_ctriplets(n, &seed, 2)
            .into_iter()
            .map(|(i, j, z)| if i == victim { (i, j, Complex::ZERO) } else { (i, j, z) })
            .collect();
        let b = rhs_of(n, &seed);
        let mut perturbations = Vec::new();
        for choice in [SolverChoice::Dense, SolverChoice::Sparse] {
            let (solver, rec) = CAnySolver::factor_triplets_recovering(n, &t, choice)
                .expect("perturbation recovers the zero row");
            prop_assert!(rec.perturbed, "{:?}: must report the perturbation", choice);
            prop_assert!(rec.perturbation > 0.0);
            prop_assert!(rec.condition_estimate.is_finite());
            let x = solver.solve(&b).expect("recovered factorization solves");
            prop_assert!(x.iter().all(|z| z.re.is_finite() && z.im.is_finite()));
            perturbations.push(rec.perturbation);
        }
        // Both ladders perturb by the same ε rule over the same embedded
        // matrix, so the recovery evidence must be bitwise identical —
        // the deliberately ill-conditioned recovered *solutions* are not
        // comparable across pivot orders, but the rung taken is.
        prop_assert_eq!(perturbations[0].to_bits(), perturbations[1].to_bits());
    }
}

/// Deterministic anchor for the families above: one fixed complex system
/// solved on both backends, byte-compared through the `%.6e` rounding the
/// benchmark rows use.
#[test]
fn fixed_complex_anchor_case() {
    let seed: Vec<f64> = (0..48)
        .map(|k| ((k * 37 + 11) % 19) as f64 / 9.5 - 1.0)
        .collect();
    let t = random_ctriplets(8, &seed, 3);
    let b = rhs_of(8, &seed);
    let xd = solve_once(8, &t, &b, SolverChoice::Dense);
    let xs = solve_once(8, &t, &b, SolverChoice::Sparse);
    for (d, s) in xd.iter().zip(&xs) {
        assert_eq!(format!("{:.6e}", d.re), format!("{:.6e}", s.re));
        assert_eq!(format!("{:.6e}", d.im), format!("{:.6e}", s.im));
    }
}
