//! Sparse-vs-dense solver equivalence battery.
//!
//! Property tests drive both backends over the same randomly generated
//! systems (random sparse patterns with duplicate entries, and real
//! MNA-style stamped matrices with voltage-source branch rows) and demand
//! agreement to a tight relative tolerance. A second family pins the
//! reuse contract: numeric refactorization on a cached symbolic pattern
//! must be *bitwise* identical to the factorization it replaces — that
//! is what lets the transient engine swap refactors in mid-run without
//! perturbing golden waveforms.

use linvar_numeric::{
    analyze_cached, AnySolver, LinearSolver, LuFactor, Matrix, SolverChoice, SparseLu, SparseMatrix,
};
use proptest::prelude::*;

/// Deterministic sparse triplet stream: ~`fill` off-diagonal entries per
/// row drawn from the seed slice, full diagonal boosted to dominance,
/// plus a duplicate echo of every 5th entry (CSC assembly must sum them
/// exactly like dense `+=` replay).
fn random_triplets(n: usize, seed: &[f64], fill: usize) -> Vec<(usize, usize, f64)> {
    let mut t = Vec::new();
    for i in 0..n {
        for k in 0..fill {
            let idx = i * fill + k;
            let v = seed[idx % seed.len()];
            let j = (i + 1 + (idx * 7 + 3) % (n - 1).max(1)) % n;
            t.push((i, j, v));
            if idx.is_multiple_of(5) {
                t.push((i, j, v * 0.5));
            }
        }
        t.push((i, i, 8.0 + fill as f64 + seed[i % seed.len()].abs()));
    }
    t
}

/// Dense replay of a triplet stream in emission order (the engine's own
/// assembly rule).
fn dense_of(n: usize, triplets: &[(usize, usize, f64)]) -> Matrix {
    let mut a = Matrix::zeros(n, n);
    for &(i, j, v) in triplets {
        a[(i, j)] += v;
    }
    a
}

/// MNA stamp of an RC-ladder-with-source: `n` nodes chained by
/// conductances, every node grounded through a leak, one voltage-source
/// branch row/column pinning node 0 — the indefinite saddle shape that
/// forces real pivoting (zero diagonal at the branch).
fn mna_ladder_triplets(n_nodes: usize, g: f64, leak: f64) -> Vec<(usize, usize, f64)> {
    let mut t = Vec::new();
    for i in 1..n_nodes {
        t.push((i, i, g));
        t.push((i - 1, i - 1, g));
        t.push((i, i - 1, -g));
        t.push((i - 1, i, -g));
    }
    for i in 0..n_nodes {
        t.push((i, i, leak));
    }
    let b = n_nodes; // branch row: zero diagonal
    t.push((0, b, 1.0));
    t.push((b, 0, 1.0));
    t
}

fn max_rel_err(x: &[f64], y: &[f64]) -> f64 {
    x.iter()
        .zip(y)
        .map(|(a, b)| (a - b).abs() / a.abs().max(b.abs()).max(1e-30))
        .fold(0.0, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random duplicate-bearing sparse systems: both backends solve to a
    /// tight relative tolerance of each other.
    #[test]
    fn random_sparse_systems_agree_with_dense(
        n in 3usize..40,
        fill in 1usize..4,
        seed in prop::collection::vec(-2.0f64..2.0, 64),
        rhs_seed in prop::collection::vec(-5.0f64..5.0, 32),
    ) {
        let triplets = random_triplets(n, &seed, fill);
        let a_sparse = SparseMatrix::from_triplets(n, n, &triplets).expect("in range");
        let a_dense = dense_of(n, &triplets);
        // CSC assembly sums duplicates exactly like the dense += replay.
        prop_assert_eq!(a_sparse.to_dense().max_abs().to_bits(), a_dense.max_abs().to_bits());
        let b: Vec<f64> = (0..n).map(|i| rhs_seed[i % rhs_seed.len()]).collect();
        let xs = SparseLu::new(&a_sparse).expect("dominant").solve(&b).expect("solves");
        let xd = LuFactor::new(&a_dense).expect("dominant").solve(&b).expect("solves");
        prop_assert!(
            max_rel_err(&xs, &xd) < 1e-10,
            "backends disagree: rel err {:e}", max_rel_err(&xs, &xd)
        );
        // And the sparse residual is small in its own right.
        let r = a_sparse.mul_vec(&xs).expect("square");
        for i in 0..n {
            prop_assert!((r[i] - b[i]).abs() < 1e-8 * (1.0 + b[i].abs()));
        }
    }

    /// Real stamped MNA saddle systems (zero diagonal at the source
    /// branch): both backends pivot their way through and agree.
    #[test]
    fn stamped_mna_matrices_agree_with_dense(
        n_nodes in 2usize..60,
        g_exp in 0usize..5,
        leak_exp in 0usize..4,
    ) {
        let g = 10f64.powi(g_exp as i32 - 2);
        let leak = 10f64.powi(leak_exp as i32 - 6);
        let triplets = mna_ladder_triplets(n_nodes, g, leak);
        let dim = n_nodes + 1;
        let a_sparse = SparseMatrix::from_triplets(dim, dim, &triplets).expect("in range");
        let a_dense = dense_of(dim, &triplets);
        let mut b = vec![0.0; dim];
        b[dim - 1] = 1.0; // drive the source branch
        let xs = SparseLu::new(&a_sparse).expect("pivots").solve(&b).expect("solves");
        let xd = LuFactor::new(&a_dense).expect("pivots").solve(&b).expect("solves");
        prop_assert!(
            max_rel_err(&xs, &xd) < 1e-9,
            "rel err {:e}", max_rel_err(&xs, &xd)
        );
        // Node 0 is pinned to the 1 V source through the branch row.
        prop_assert!((xs[0] - 1.0).abs() < 1e-9);
    }

    /// The AnySolver front door gives the same answers whichever backend
    /// the caller picks, and reports the backend it picked.
    #[test]
    fn any_solver_dispatch_is_backend_transparent(
        n in 3usize..25,
        seed in prop::collection::vec(-1.0f64..1.0, 48),
    ) {
        let triplets = random_triplets(n, &seed, 2);
        let b: Vec<f64> = (0..n).map(|i| seed[i % seed.len()] + 2.0).collect();
        let dense = AnySolver::factor_triplets(n, &triplets, SolverChoice::Dense).expect("factors");
        let sparse = AnySolver::factor_triplets(n, &triplets, SolverChoice::Sparse).expect("factors");
        prop_assert_eq!(dense.backend().name(), "dense");
        prop_assert_eq!(sparse.backend().name(), "sparse");
        let xd = dense.solve(&b).expect("solves");
        let xs = sparse.solve(&b).expect("solves");
        prop_assert!(max_rel_err(&xs, &xd) < 1e-10);
    }

    /// Numeric refactorization on a reused symbolic pattern is bitwise
    /// identical to a from-scratch factorization of the same values —
    /// solves, condition estimate, everything.
    #[test]
    fn refactor_on_reused_pattern_is_bitwise_self_consistent(
        n in 3usize..30,
        fill in 1usize..4,
        seed in prop::collection::vec(-2.0f64..2.0, 64),
        scale in 0.25f64..4.0,
    ) {
        let t0 = random_triplets(n, &seed, fill);
        let a0 = SparseMatrix::from_triplets(n, n, &t0).expect("in range");
        // Same pattern, different values (a timestep change rescales the
        // companion stamps without touching the sparsity structure).
        let t1: Vec<(usize, usize, f64)> = t0.iter().map(|&(i, j, v)| (i, j, v * scale)).collect();
        let a1 = SparseMatrix::from_triplets(n, n, &t1).expect("in range");
        let b: Vec<f64> = (0..n).map(|i| seed[i % seed.len()] * 3.0 + 1.0).collect();

        let symbolic = analyze_cached(&a0).expect("analyzes");
        let fresh1 = SparseLu::factor(&a1, &symbolic).expect("factors");
        let mut reused = SparseLu::factor(&a0, &symbolic).expect("factors");
        reused.refactor(&a1).expect("same pattern refactors");

        let x_fresh = fresh1.solve(&b).expect("solves");
        let x_reused = reused.solve(&b).expect("solves");
        let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<u64>>();
        prop_assert_eq!(bits(&x_fresh), bits(&x_reused));
        prop_assert_eq!(
            fresh1.condition_estimate().to_bits(),
            reused.condition_estimate().to_bits()
        );

        // Refactoring repeatedly with the same values is idempotent at
        // the bit level (steady-state transient loop contract).
        reused.refactor(&a1).expect("refactors again");
        prop_assert_eq!(bits(&x_reused), bits(&reused.solve(&b).expect("solves")));
    }
}

/// One fixed MNA case exercised across both front doors and a round-trip
/// through `factor_dense_matrix`, as a deterministic anchor for the
/// proptest families above.
#[test]
fn fixed_mna_anchor_case() {
    let triplets = mna_ladder_triplets(12, 1e-3, 1e-9);
    let dim = 13;
    let a_dense = dense_of(dim, &triplets);
    let mut b = vec![0.0; dim];
    b[dim - 1] = 1.0;
    let xd = LuFactor::new(&a_dense).unwrap().solve(&b).unwrap();
    let via_dense_door = AnySolver::factor_dense_matrix(&a_dense, SolverChoice::Sparse)
        .unwrap()
        .solve(&b)
        .unwrap();
    assert!(max_rel_err(&via_dense_door, &xd) < 1e-10);
    // Every node floats at the source voltage (no DC path to ground
    // except the leaks): the solution is physically sensible.
    for v in &xd[..12] {
        assert!((v - 1.0).abs() < 1e-3, "node at {v}");
    }
}
