//! Variational coupled-line netlist builder.
//!
//! Builds the paper's Example-2 structures: `n` parallel lines of a given
//! length, divided into coupled RC segments at each micron, with element
//! values from the Sakurai formulas and element *sensitivities* computed by
//! central differences across each parameter's tolerance range. The result
//! is a [`Netlist`] whose [`VariationalMna`] assembly yields exactly the
//! paper's `G(w) = G0 + Σ dGi·wi`, `C(w) = C0 + Σ dCi·wi` (eqs. 3–4).
//!
//! [`VariationalMna`]: linvar_circuit::VariationalMna

use crate::sakurai::{
    coupling_cap_per_meter, ground_cap_per_meter, inductance_per_meter, resistance_per_meter,
};
use crate::tech::{WireParam, WireTech};
use linvar_circuit::{CircuitError, Netlist, NodeId, VariationalValue};

/// Specification of a bundle of parallel coupled lines.
#[derive(Debug, Clone)]
pub struct CoupledLineSpec {
    /// Number of parallel lines (≥ 1).
    pub n_lines: usize,
    /// Line length in meters.
    pub length: f64,
    /// RC segment length in meters (the paper uses 1 µm).
    pub seg_len: f64,
    /// Wire technology (geometry + tolerances).
    pub tech: WireTech,
    /// Include per-segment self-inductance (RLC line instead of RC).
    pub with_inductance: bool,
}

impl CoupledLineSpec {
    /// Creates a spec with the paper's 1 µm segmentation.
    pub fn new(n_lines: usize, length: f64, tech: WireTech) -> Self {
        CoupledLineSpec {
            n_lines,
            length,
            seg_len: 1e-6,
            tech,
            with_inductance: false,
        }
    }

    /// Enables per-segment self-inductance (builder style).
    pub fn with_inductance(mut self) -> Self {
        self.with_inductance = true;
        self
    }

    /// Number of segments per line (at least 1).
    pub fn segments(&self) -> usize {
        ((self.length / self.seg_len).round() as usize).max(1)
    }
}

/// A built bundle of coupled lines inside a netlist.
#[derive(Debug, Clone)]
pub struct CoupledLines {
    /// The variational netlist.
    pub netlist: Netlist,
    /// Near-end (driven) node of each line.
    pub inputs: Vec<NodeId>,
    /// Far-end node of each line.
    pub outputs: Vec<NodeId>,
    /// Count of linear elements (R + C) created.
    pub element_count: usize,
}

/// Computes a variational value for one electrical quantity by evaluating
/// `f` at the nominal geometry and at ±tolerance of each parameter.
pub(crate) fn variational_from<F>(tech: &WireTech, params: &[usize; 5], f: F) -> VariationalValue
where
    F: Fn(f64, f64, f64, f64, f64) -> f64,
{
    let nom = f(tech.w0, tech.t0, tech.s0, tech.h0, tech.rho0);
    let mut v = VariationalValue::new(nom);
    for p in WireParam::ALL {
        let mut lo = [tech.w0, tech.t0, tech.s0, tech.h0, tech.rho0];
        let mut hi = lo;
        let idx = p.index();
        lo[idx] -= tech.tolerance(p);
        hi[idx] += tech.tolerance(p);
        let f_lo = f(lo[0], lo[1], lo[2], lo[3], lo[4]);
        let f_hi = f(hi[0], hi[1], hi[2], hi[3], hi[4]);
        // Central difference per unit of the normalized parameter
        // (w = ±1 ↔ ±tolerance).
        let sens = (f_hi - f_lo) / 2.0;
        if sens != 0.0 {
            v = v.with_sensitivity(params[idx], sens);
        }
    }
    v
}

/// Builds the coupled-line bundle into a fresh netlist.
///
/// Node names are `l{line}_s{segment}`; the near end of line `i` is
/// `l{i}_s0`. Wire parameters are declared as `W`, `T`, `S`, `H`, `rho` in
/// [`WireParam::ALL`] order. All line inputs and outputs are marked as
/// ports (near ends first), matching the multiport-load view of a logic
/// stage.
///
/// # Errors
///
/// Returns [`CircuitError`] if the spec is degenerate (zero lines or
/// non-positive length).
pub fn build_coupled_lines(spec: &CoupledLineSpec) -> Result<CoupledLines, CircuitError> {
    let mut nl = Netlist::new();
    build_coupled_lines_into(spec, &mut nl, "")
}

/// Builds the bundle into an existing netlist with a node-name prefix.
///
/// # Errors
///
/// Returns [`CircuitError`] if the spec is degenerate.
pub fn build_coupled_lines_into(
    spec: &CoupledLineSpec,
    nl: &mut Netlist,
    prefix: &str,
) -> Result<CoupledLines, CircuitError> {
    if spec.n_lines == 0 {
        return Err(CircuitError::InvalidValue {
            element: "coupled-lines".into(),
            value: 0.0,
            requirement: "need at least one line",
        });
    }
    if !(spec.length > 0.0 && spec.length.is_finite()) {
        return Err(CircuitError::InvalidValue {
            element: "coupled-lines".into(),
            value: spec.length,
            requirement: "length must be positive",
        });
    }
    let mut params = [0usize; 5];
    for p in WireParam::ALL {
        params[p.index()] = nl.params.declare(p.name());
    }
    let tech = &spec.tech;
    let segs = spec.segments();
    let seg_len = spec.length / segs as f64;

    // Per-segment electrical values (variational).
    let r_seg = variational_from(tech, &params, |w, t, _s, _h, rho| {
        resistance_per_meter(rho, w, t) * seg_len
    });
    let cg_seg = variational_from(tech, &params, |w, t, _s, h, _rho| {
        ground_cap_per_meter(w, t, h) * seg_len
    });
    let cc_seg = variational_from(tech, &params, |w, t, s, h, _rho| {
        coupling_cap_per_meter(w, t, s, h) * seg_len
    });
    let l_seg = variational_from(tech, &params, |w, _t, _s, h, _rho| {
        inductance_per_meter(w, h) * seg_len
    });

    let node = |nl: &mut Netlist, line: usize, seg: usize| -> NodeId {
        nl.node(&format!("{prefix}l{line}_s{seg}"))
    };

    let mut inputs = Vec::with_capacity(spec.n_lines);
    let mut outputs = Vec::with_capacity(spec.n_lines);
    let mut element_count = 0usize;

    for line in 0..spec.n_lines {
        let first = node(nl, line, 0);
        inputs.push(first);
        let mut prev = first;
        for seg in 1..=segs {
            let next = node(nl, line, seg);
            if spec.with_inductance {
                // Series R + L per segment: R to a midpoint, L onward.
                let mid = nl.node(&format!("{prefix}l{line}_m{seg}"));
                nl.add_variational_resistor(
                    &format!("{prefix}R_l{line}_s{seg}"),
                    prev,
                    mid,
                    r_seg.clone(),
                )?;
                nl.add_variational_inductor(
                    &format!("{prefix}L_l{line}_s{seg}"),
                    mid,
                    next,
                    l_seg.clone(),
                )?;
                element_count += 1;
            } else {
                nl.add_variational_resistor(
                    &format!("{prefix}R_l{line}_s{seg}"),
                    prev,
                    next,
                    r_seg.clone(),
                )?;
            }
            nl.add_variational_capacitor(
                &format!("{prefix}Cg_l{line}_s{seg}"),
                next,
                Netlist::GROUND,
                cg_seg.clone(),
            )?;
            element_count += 2;
            prev = next;
        }
        outputs.push(prev);
    }
    // Coupling between adjacent lines, segment by segment.
    for line in 0..spec.n_lines.saturating_sub(1) {
        for seg in 1..=segs {
            let a = node(nl, line, seg);
            let b = node(nl, line + 1, seg);
            nl.add_variational_capacitor(
                &format!("{prefix}Cc_l{line}_{}_s{seg}", line + 1),
                a,
                b,
                cc_seg.clone(),
            )?;
            element_count += 1;
        }
    }
    for &n in inputs.iter().chain(&outputs) {
        nl.mark_port(n)?;
    }
    Ok(CoupledLines {
        netlist: nl.clone(),
        inputs,
        outputs,
        element_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(n: usize, len_um: f64) -> CoupledLineSpec {
        CoupledLineSpec::new(n, len_um * 1e-6, WireTech::m018())
    }

    #[test]
    fn segment_count_follows_micron_rule() {
        assert_eq!(spec(1, 10.0).segments(), 10);
        assert_eq!(spec(1, 0.4).segments(), 1, "short lines get one segment");
        assert_eq!(spec(1, 100.0).segments(), 100);
    }

    #[test]
    fn two_lines_ten_microns() {
        let built = build_coupled_lines(&spec(2, 10.0)).unwrap();
        assert_eq!(built.inputs.len(), 2);
        assert_eq!(built.outputs.len(), 2);
        // Per line: 10 R + 10 Cg; coupling: 10 Cc.
        assert_eq!(built.element_count, 2 * 20 + 10);
        assert_eq!(built.netlist.ports().len(), 4);
        // Nodes: 2 lines × 11 nodes.
        assert_eq!(built.netlist.node_count(), 22);
    }

    #[test]
    fn variational_assembly_has_five_params() {
        let built = build_coupled_lines(&spec(2, 5.0)).unwrap();
        let var = built.netlist.assemble_variational().unwrap();
        assert_eq!(var.param_count(), 5);
        assert_eq!(var.param_names, vec!["W", "T", "S", "H", "rho"]);
    }

    #[test]
    fn widening_metal_lowers_resistance_raises_cap() {
        let built = build_coupled_lines(&spec(1, 10.0)).unwrap();
        let var = built.netlist.assemble_variational().unwrap();
        // +1 unit of W (= +tolerance): conductance up, capacitance up.
        let (g_hi, c_hi) = var.eval(&[1.0, 0.0, 0.0, 0.0, 0.0]).unwrap();
        let (g0, c0) = var.eval(&[0.0; 5]).unwrap();
        assert!(g_hi[(0, 0)] > g0[(0, 0)], "wider wire conducts better");
        // Compare total grounded capacitance at far-end node.
        let last = var.order() - 1;
        assert!(
            c_hi[(last, last)] > c0[(last, last)],
            "wider wire has more cap"
        );
    }

    #[test]
    fn resistivity_only_affects_g() {
        let built = build_coupled_lines(&spec(1, 5.0)).unwrap();
        let var = built.netlist.assemble_variational().unwrap();
        let rho_idx = WireParam::Resistivity.index();
        assert!(var.dg[rho_idx].max_abs() > 0.0);
        assert_eq!(var.dc[rho_idx].max_abs(), 0.0);
        // Spacing only affects coupling C (needs ≥ 2 lines to matter).
        let s_idx = WireParam::Spacing.index();
        assert_eq!(var.dg[s_idx].max_abs(), 0.0);
    }

    #[test]
    fn spacing_affects_coupling_with_two_lines() {
        let built = build_coupled_lines(&spec(2, 5.0)).unwrap();
        let var = built.netlist.assemble_variational().unwrap();
        let s_idx = WireParam::Spacing.index();
        assert!(var.dc[s_idx].max_abs() > 0.0, "spacing changes coupling");
        // Increasing spacing must *reduce* coupling: the off-diagonal C
        // entry (negative) shrinks in magnitude.
        let (_, c0) = var.eval(&[0.0; 5]).unwrap();
        let mut w = [0.0; 5];
        w[s_idx] = 1.0;
        let (_, c_wide) = var.eval(&w).unwrap();
        // Find a coupled pair: node of line0 seg1 and line1 seg1.
        let a = built
            .netlist
            .find_node("l0_s1")
            .unwrap()
            .mna_index()
            .unwrap();
        let b = built
            .netlist
            .find_node("l1_s1")
            .unwrap()
            .mna_index()
            .unwrap();
        assert!(c_wide[(a, b)].abs() < c0[(a, b)].abs());
    }

    #[test]
    fn degenerate_specs_rejected() {
        assert!(build_coupled_lines(&spec(0, 10.0)).is_err());
        let mut s = spec(1, 10.0);
        s.length = -1.0;
        assert!(build_coupled_lines(&s).is_err());
    }

    #[test]
    fn prefix_isolates_instances() {
        let mut nl = Netlist::new();
        let s = spec(1, 3.0);
        let a = build_coupled_lines_into(&s, &mut nl, "x_").unwrap();
        let b = build_coupled_lines_into(&s, &mut nl, "y_").unwrap();
        assert_ne!(a.inputs[0], b.inputs[0]);
        assert!(nl.find_node("x_l0_s0").is_some());
        assert!(nl.find_node("y_l0_s0").is_some());
    }
}
