//! Benchmark-circuit generator: large RC chains and H-tree clock nets.
//!
//! The RC long-chain equivalence workload (arXiv:2508.13159) and the
//! clock-tree variability studies behind the paper both need structures
//! 10–100× larger than the paper's examples — exactly the regime where
//! the dense MNA factorization is hopeless and the sparse backend earns
//! its keep. This module parameterizes the two shapes:
//!
//! * **Coupled RC chains** — the Example-2 bundle stretched to
//!   millimeter/centimeter lengths (thousands of segments per line), a
//!   driven victim with one quiet aggressor;
//! * **H-tree clock nets** — deeper trees with finer segmentation than
//!   the unit-test shapes, driven at the root, observed at a sink.
//!
//! Every case carries a ready-to-run netlist (driver source + driver
//! resistance included), the probe node, and analytically estimated
//! transient settings (`tstop`, `dt`) derived from the nominal Elmore
//! delay so the `chains` bench bin and the golden tests never tune
//! timesteps by hand. The same W/T/S/H/ρ fluctuations as the paper apply:
//! the underlying elements are variational, so `Netlist::frozen_at`
//! yields one Monte-Carlo sample.

use crate::builder::{build_coupled_lines_into, CoupledLineSpec};
use crate::htree::{build_htree, HTreeSpec};
use crate::sakurai::{coupling_cap_per_meter, ground_cap_per_meter, resistance_per_meter};
use crate::tech::WireTech;
use linvar_circuit::{CircuitError, Netlist, SourceWaveform};

/// Driver resistance in front of every benchmark net (Ω).
const R_DRIVE: f64 = 100.0;

/// Termination from each quiet aggressor's near end to ground (Ω).
const R_AGGRESSOR: f64 = 100.0;

/// One generated benchmark circuit, ready for a transient run.
#[derive(Debug, Clone)]
pub struct ChainCase {
    /// Stable case name (appears in `mc` rows and golden fixtures).
    pub name: String,
    /// Variational netlist including the driver source and resistance.
    pub netlist: Netlist,
    /// Node whose 50 % crossing defines the measured delay.
    pub probe: String,
    /// MNA unknowns (nodes + source branches).
    pub dim: usize,
    /// Linear element count (diagnostic).
    pub element_count: usize,
    /// Suggested transient stop time (s).
    pub tstop: f64,
    /// Suggested transient timestep (s).
    pub dt: f64,
}

/// Builds a two-line coupled RC chain of `segments` one-micron segments
/// per line: line 0 is the driven victim, line 1 a grounded aggressor.
///
/// `segments = 500` roughly matches the paper's largest Example-2 net;
/// the benchmark suite scales to 10 000 (a 1 cm line, ~20 000 unknowns).
///
/// # Errors
///
/// Returns [`CircuitError`] for a degenerate size.
pub fn rc_chain_case(segments: usize) -> Result<ChainCase, CircuitError> {
    let tech = WireTech::m018();
    let length = segments as f64 * 1e-6;
    let spec = CoupledLineSpec::new(2, length, tech.clone());
    let mut nl = Netlist::new();
    let built = build_coupled_lines_into(&spec, &mut nl, "")?;
    let drv = nl.node("drv");
    nl.add_resistor("Rdrv", drv, built.inputs[0], R_DRIVE)?;
    nl.add_resistor("Ragg", built.inputs[1], Netlist::GROUND, R_AGGRESSOR)?;

    // Nominal Elmore estimate sizes the transient window: the driver sees
    // the whole load, the distributed line contributes R·C/2.
    let r_m = resistance_per_meter(tech.rho0, tech.w0, tech.t0);
    let cg_m = ground_cap_per_meter(tech.w0, tech.t0, tech.h0);
    let cc_m = coupling_cap_per_meter(tech.w0, tech.t0, tech.s0, tech.h0);
    let c_line = (cg_m + cc_m) * length;
    let tau = R_DRIVE * 2.0 * c_line + 0.5 * (r_m * length) * c_line;
    let tstop = 8.0 * tau;
    let dt = tstop / 256.0;

    nl.add_vsource(
        "Vdrv",
        drv,
        Netlist::GROUND,
        SourceWaveform::Ramp {
            v0: 0.0,
            v1: 1.0,
            t0: 0.0,
            tr: tstop / 100.0,
        },
    )?;
    let probe = nl
        .node_name(built.outputs[0])
        .expect("line builder names its nodes")
        .to_string();
    let dim = nl.node_count() + nl.vsource_count();
    Ok(ChainCase {
        name: format!("chain2x{segments}"),
        probe,
        dim,
        element_count: built.element_count + 2,
        tstop,
        dt,
        netlist: nl,
    })
}

/// Builds an H-tree clock net with `levels` binary levels, driven at the
/// root; the probe is the last (most heavily loaded) sink.
///
/// # Errors
///
/// Returns [`CircuitError`] for a degenerate spec.
pub fn htree_case(levels: usize) -> Result<ChainCase, CircuitError> {
    let tech = WireTech::m018();
    let n_sinks = 1usize << levels;
    let root_length = 512e-6;
    let seg_len = 2e-6;
    let sink_loads: Vec<f64> = (0..n_sinks)
        .map(|k| 5e-15 * (1.0 + k as f64 * 0.1))
        .collect();
    let total_sink_load: f64 = sink_loads.iter().sum();
    let spec = HTreeSpec {
        levels,
        root_length,
        seg_len,
        sink_loads,
        tech: tech.clone(),
    };
    let tree = build_htree(&spec)?;
    let mut nl = tree.netlist;
    let root = nl.find_node("clk_root").expect("htree names its root");
    let probe = nl
        .node_name(*tree.sinks.last().expect("levels >= 1 means sinks exist"))
        .expect("htree sinks are named")
        .to_string();
    let drv = nl.node("drv");
    nl.add_resistor("Rdrv", drv, root, R_DRIVE)?;

    // Elmore budget: wire R along the root-to-sink path times the total
    // capacitance (a deliberate over-estimate — the window must contain
    // the 50 % crossing under every variation sample).
    let r_m = resistance_per_meter(tech.rho0, tech.w0, tech.t0);
    let cg_m = ground_cap_per_meter(tech.w0, tech.t0, tech.h0);
    let mut r_path = R_DRIVE;
    let mut wire_len_total = 0.0;
    for level in 0..levels {
        let len = (root_length / 2f64.powi(level as i32)).max(seg_len);
        r_path += r_m * len;
        wire_len_total += len * 2f64.powi(level as i32 + 1);
    }
    let c_all = cg_m * wire_len_total + total_sink_load;
    let tau = r_path * c_all;
    let tstop = 8.0 * tau;
    let dt = tstop / 256.0;

    nl.add_vsource(
        "Vdrv",
        drv,
        Netlist::GROUND,
        SourceWaveform::Ramp {
            v0: 0.0,
            v1: 1.0,
            t0: 0.0,
            tr: tstop / 100.0,
        },
    )?;
    let dim = nl.node_count() + nl.vsource_count();
    Ok(ChainCase {
        name: format!("htree{levels}"),
        probe,
        dim,
        element_count: tree.element_count + 1,
        tstop,
        dt,
        netlist: nl,
    })
}

/// The standard benchmark suite: `quick` keeps the two smallest shapes
/// (golden-fixture and CI-smoke sized); the full set adds the 10–100×
/// sizes where only the sparse backend is feasible.
///
/// # Errors
///
/// Propagates builder failures (none for these fixed sizes).
pub fn standard_cases(quick: bool) -> Result<Vec<ChainCase>, CircuitError> {
    let mut cases = vec![rc_chain_case(500)?, htree_case(4)?];
    if !quick {
        cases.push(rc_chain_case(2500)?);
        cases.push(htree_case(6)?);
        cases.push(rc_chain_case(10_000)?);
    }
    Ok(cases)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_sizes_scale_as_specified() {
        let small = rc_chain_case(500).unwrap();
        // 2 lines × 501 nodes + drv + 1 source branch.
        assert_eq!(small.dim, 2 * 501 + 1 + 1);
        assert_eq!(small.name, "chain2x500");
        assert!(small.tstop > 0.0 && small.dt > 0.0);
        assert!(small.netlist.find_node(&small.probe).is_some());
        let large = rc_chain_case(10_000).unwrap();
        assert!(
            large.dim > 10 * small.dim,
            "largest case must be >= 10x the small one ({} vs {})",
            large.dim,
            small.dim
        );
    }

    #[test]
    fn htree_case_is_driveable() {
        let t = htree_case(4).unwrap();
        assert_eq!(t.name, "htree4");
        assert!(t.netlist.find_node("drv").is_some());
        assert!(t.netlist.find_node(&t.probe).is_some());
        assert!(t.dim > 100);
    }

    #[test]
    fn cases_freeze_into_plain_netlists() {
        let c = rc_chain_case(500).unwrap();
        let frozen = c.netlist.frozen_at(&[0.5, -0.5, 0.0, 0.25, -0.25]);
        assert_eq!(frozen.node_count(), c.netlist.node_count());
        // Different samples give different element values (delay will
        // fluctuate); same sample is deterministic.
        let again = c.netlist.frozen_at(&[0.5, -0.5, 0.0, 0.25, -0.25]);
        assert_eq!(frozen.node_count(), again.node_count());
    }

    #[test]
    fn standard_suite_spans_the_size_range() {
        let quick = standard_cases(true).unwrap();
        assert_eq!(quick.len(), 2);
        let full = standard_cases(false).unwrap();
        assert!(full.len() > quick.len());
        let max_dim = full.iter().map(|c| c.dim).max().unwrap();
        assert!(max_dim >= 20_000, "full suite reaches 100x: {max_dim}");
    }
}
