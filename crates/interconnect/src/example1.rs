//! The paper's Example-1 circuit (Figure 2 / Table 2).
//!
//! A symmetric two-port coupled RC line modeled in three segments. The
//! electrical model from Table 2, with every element varying linearly in a
//! normalized spatial parameter `p` (values at `p = 0` and `p = 0.1`):
//!
//! | element | p = 0 | p = 0.1 | sensitivity per unit p |
//! |---------|-------|---------|------------------------|
//! | R1      | 10 Ω  | 15 Ω    | 50 Ω                   |
//! | R2      | 2 Ω   | 2 Ω     | 0                      |
//! | R3      | 30 Ω  | 40 Ω    | 100 Ω                  |
//! | C1      | 2 pF  | 3 pF    | 10 pF                  |
//! | C2      | 2 pF  | 2 pF    | 0                      |
//! | C3      | 2 pF  | 3 pF    | 10 pF                  |
//! | CC1     | 2 pF  | 3 pF    | 10 pF                  |
//! | CC2     | 2 pF  | 2 pF    | 0                      |
//! | CC3     | 2 pF  | 3 pF    | 10 pF                  |
//!
//! Both lines are identical ("symmetric"); coupling capacitors CC1–CC3
//! connect the corresponding internal nodes. For the reduction experiment
//! the second port is shunted with 100 Ω, turning the structure into a
//! one-port load ([`example1_load`]).

use linvar_circuit::{CircuitError, Netlist, NodeId, VariationalValue};

/// Name of the spatial variation parameter declared by these builders.
pub const P: &str = "p";

/// Element values of Table 2 as `(nominal, sensitivity per unit p)` in
/// `(R1, R2, R3, C1, C2, C3, CC1, CC2, CC3)` order.
pub const TABLE2: [(f64, f64); 9] = [
    (10.0, 50.0),
    (2.0, 0.0),
    (30.0, 100.0),
    (2e-12, 10e-12),
    (2e-12, 0.0),
    (2e-12, 10e-12),
    (2e-12, 10e-12),
    (2e-12, 0.0),
    (2e-12, 10e-12),
];

/// Builds the two-port coupled RC line of Example 1.
///
/// Returns the netlist and the two port nodes `(port1, port2)` — the near
/// ends of line 1 and line 2. Both are marked as ports.
///
/// # Errors
///
/// Propagates netlist-construction errors (none occur for this fixed
/// topology).
pub fn example1_netlist() -> Result<(Netlist, NodeId, NodeId), CircuitError> {
    let mut nl = Netlist::new();
    let p = nl.params.declare(P);
    let val = |i: usize| -> VariationalValue {
        let (nom, sens) = TABLE2[i];
        let v = VariationalValue::new(nom);
        if sens != 0.0 {
            v.with_sensitivity(p, sens)
        } else {
            v
        }
    };

    for line in 0..2usize {
        let mut prev = nl.node(&format!("p{}", line + 1));
        for seg in 0..3usize {
            let next = nl.node(&format!("l{}n{}", line + 1, seg + 1));
            nl.add_variational_resistor(
                &format!("R{}_l{}", seg + 1, line + 1),
                prev,
                next,
                val(seg),
            )?;
            nl.add_variational_capacitor(
                &format!("C{}_l{}", seg + 1, line + 1),
                next,
                Netlist::GROUND,
                val(3 + seg),
            )?;
            prev = next;
        }
    }
    for seg in 0..3usize {
        let a = nl.node(&format!("l1n{}", seg + 1));
        let b = nl.node(&format!("l2n{}", seg + 1));
        nl.add_variational_capacitor(&format!("CC{}", seg + 1), a, b, val(6 + seg))?;
    }
    let p1 = nl.node("p1");
    let p2 = nl.node("p2");
    nl.mark_port(p1)?;
    nl.mark_port(p2)?;
    Ok((nl, p1, p2))
}

/// Builds the *one-port* Example-1 load: the two-port line with port 2
/// shunted by 100 Ω, leaving `port1` as the only port — exactly the
/// configuration reduced with fourth-order variational PACT in the paper.
///
/// # Errors
///
/// Propagates netlist-construction errors.
pub fn example1_load() -> Result<(Netlist, NodeId), CircuitError> {
    let (two_port, _, _) = example1_netlist()?;
    // Copy into a fresh netlist to reset the port list (ports are
    // append-only); the empty prefix preserves all node names.
    let mut nl = Netlist::new();
    nl.instantiate(&two_port, "", &[])?;
    let p1 = nl.find_node("p1").expect("copied node");
    let p2 = nl.find_node("p2").expect("copied node");
    nl.add_resistor("Rshunt", p2, Netlist::GROUND, 100.0)?;
    nl.mark_port(p1)?;
    Ok((nl, p1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_port_topology() {
        let (nl, p1, p2) = example1_netlist().unwrap();
        assert_ne!(p1, p2);
        // 2 ports + 6 internal nodes.
        assert_eq!(nl.node_count(), 8);
        // 6 R + 6 C + 3 CC.
        assert_eq!(nl.elements().len(), 15);
        assert_eq!(nl.ports().len(), 2);
        assert_eq!(nl.params.len(), 1);
    }

    #[test]
    fn table2_values_at_p0_and_p01() {
        let (nl, _, _) = example1_netlist().unwrap();
        let var = nl.assemble_variational().unwrap();
        let (g0, c0) = var.eval(&[0.0]).unwrap();
        let (g1, c1) = var.eval(&[0.1]).unwrap();
        // R1 = 10 Ω at p=0: conductance between p1 and l1n1 is 0.1 S.
        let p1 = nl.find_node("p1").unwrap().mna_index().unwrap();
        let n1 = nl.find_node("l1n1").unwrap().mna_index().unwrap();
        assert!((g0[(p1, n1)] + 0.1).abs() < 1e-12);
        // First-order G at p=0.1: g ≈ 1/10 - (50/100)·0.1 = 0.05 →
        // off-diagonal -0.05 (the exact value would be 1/15 ≈ 0.0667).
        assert!((g1[(p1, n1)] + 0.05).abs() < 1e-12);
        // C1 = 2 pF at p=0 and 3 pF at p=0.1 (exact, C stamps linearly).
        assert!((c0[(n1, n1)] - 4e-12).abs() < 1e-24, "C1 + CC1 on diagonal");
        assert!((c1[(n1, n1)] - 6e-12).abs() < 1e-24);
    }

    #[test]
    fn one_port_load_has_single_port_and_shunt() {
        let (nl, p1) = example1_load().unwrap();
        assert_eq!(nl.ports(), &[p1]);
        assert_eq!(nl.elements().len(), 16, "15 elements + shunt");
        // Shunt connects p2 to ground.
        assert!(nl.find_node("p2").is_some());
    }

    #[test]
    fn symmetry_between_lines() {
        let (nl, _, _) = example1_netlist().unwrap();
        let var = nl.assemble_variational().unwrap();
        let (g0, _) = var.eval(&[0.0]).unwrap();
        let p1 = nl.find_node("p1").unwrap().mna_index().unwrap();
        let p2 = nl.find_node("p2").unwrap().mna_index().unwrap();
        assert!(
            (g0[(p1, p1)] - g0[(p2, p2)]).abs() < 1e-15,
            "symmetric ports"
        );
    }
}
