//! Interconnect modeling: geometry, Sakurai closed-form electrical
//! parameters, and variational coupled-line netlist builders.
//!
//! The paper's Example 2 builds parallel coupled lines from minimum-width
//! geometries, computes R/C values with "Sakurai's formulas" [Sakurai,
//! IEEE T-ED 1993], divides the wires into coupled RC segments at each
//! micron, and fluctuates the five global wire parameters — width `W`,
//! thickness `T`, spacing `S`, inter-layer-dielectric height `H` and
//! resistivity `ρ` — with tolerances from [Nassif, CICC 2001].
//!
//! This crate reproduces that pipeline:
//!
//! * [`sakurai`] — the closed-form capacitance/resistance expressions;
//! * [`WireTech`] — nominal geometry plus 3σ tolerances (representative
//!   values; see substitution #3 in `DESIGN.md`);
//! * [`CoupledLineSpec`] — builds a variational [`Netlist`]
//!   whose element sensitivities are derived from the Sakurai formulas by
//!   central differences across the tolerance range;
//! * [`example1`] — the exact Table-2 circuit of the paper's Example 1.
//!
//! [`Netlist`]: linvar_circuit::Netlist

pub mod builder;
pub mod chains;
pub mod example1;
pub mod grid;
pub mod htree;
pub mod sakurai;
pub mod tech;

pub use builder::{CoupledLineSpec, CoupledLines};
pub use chains::{htree_case, rc_chain_case, standard_cases, ChainCase};
pub use example1::{example1_load, example1_netlist};
pub use grid::{
    ir_drop_for_sample, power_grid_case, standard_grid_cases, GridCase, GridError, PowerGridSpec,
};
pub use htree::{build_htree, HTree, HTreeSpec};
pub use sakurai::{
    coupling_cap_per_meter, ground_cap_per_meter, inductance_per_meter, resistance_per_meter,
};
pub use tech::{WireParam, WireTech, WIRE_PARAM_COUNT};
