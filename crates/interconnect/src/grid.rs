//! Stochastic power-grid generator for IR-drop analysis.
//!
//! The ROADMAP's power-grid workload (arXiv:0710.4649): a `rows × cols`
//! mesh of supply wires whose per-segment resistances carry W/T/ρ
//! fluctuation sensitivities through the same `variational_from`
//! machinery as the coupled-line builder, fed by a Vdd pad through
//! via/strap resistances at the four corners and loaded by a
//! deterministic non-uniform pattern of tile current sources. Freezing
//! the netlist at a fluctuation sample and solving the DC operating
//! point gives that sample's worst-case IR drop — the scalar whose
//! distribution the MC/Sobol/gPC engines characterize.

use crate::builder::variational_from;
use crate::sakurai::resistance_per_meter;
use crate::tech::{WireParam, WireTech};
use linvar_circuit::{CircuitError, Element, Netlist, SourceWaveform};
use linvar_numeric::{AnySolver, LinearSolver, NumericError, SolverChoice};
use std::fmt;

/// Specification of a rectangular power-grid mesh.
#[derive(Debug, Clone)]
pub struct PowerGridSpec {
    /// Grid nodes per column (≥ 2).
    pub rows: usize,
    /// Grid nodes per row (≥ 2).
    pub cols: usize,
    /// Wire length between adjacent grid nodes (m).
    pub pitch: f64,
    /// Wire technology (geometry + tolerances) of the grid straps.
    pub tech: WireTech,
    /// Supply voltage at the pad (V).
    pub vdd: f64,
    /// Nominal load current per tile (A); the builder modulates it with
    /// a deterministic non-uniform pattern.
    pub tile_current: f64,
    /// Via/strap resistance from the pad to each corner (Ω).
    pub via_resistance: f64,
}

impl PowerGridSpec {
    /// A `rows × cols` grid in the given technology with representative
    /// supply-network defaults: 50 µm pitch, 1.8 V pad, 60 µA tiles,
    /// 0.5 Ω corner vias — sized so the nominal worst drop of the quick
    /// grids lands in the few-percent-of-Vdd regime real sign-off cares
    /// about.
    pub fn new(rows: usize, cols: usize, tech: WireTech) -> Self {
        PowerGridSpec {
            rows,
            cols,
            pitch: 50e-6,
            tech,
            vdd: 1.8,
            tile_current: 60e-6,
            via_resistance: 0.5,
        }
    }

    /// Stable case name (`grid{rows}x{cols}`), used in benchmark rows
    /// and golden fixtures.
    pub fn name(&self) -> String {
        format!("grid{}x{}", self.rows, self.cols)
    }
}

/// A built power-grid case, ready for per-sample DC IR-drop evaluation.
#[derive(Debug, Clone)]
pub struct GridCase {
    /// Stable case name (appears in `mc` rows and golden fixtures).
    pub name: String,
    /// Variational netlist: mesh resistors with W/T/ρ sensitivities,
    /// the pad source, corner vias, and tile load current sources.
    pub netlist: Netlist,
    /// Pad supply voltage (V); drops are measured against it.
    pub vdd: f64,
    /// Names of the loaded grid nodes whose droop is observed.
    pub observe: Vec<String>,
    /// MNA unknowns (nodes + source branch).
    pub dim: usize,
    /// Linear element count (diagnostic).
    pub element_count: usize,
}

/// Why an IR-drop evaluation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum GridError {
    /// Netlist construction or assembly failed.
    Circuit(CircuitError),
    /// The DC solve failed (singular grid even after recovery).
    Numeric(NumericError),
    /// A solved node voltage is NaN/∞ — the drop cannot be trusted.
    NonFinite {
        /// Name of the offending node.
        node: String,
        /// The non-finite voltage.
        value: f64,
    },
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::Circuit(e) => write!(f, "grid circuit error: {e}"),
            GridError::Numeric(e) => write!(f, "grid solve error: {e}"),
            GridError::NonFinite { node, value } => {
                write!(f, "node {node} solved to non-finite voltage {value}")
            }
        }
    }
}

impl std::error::Error for GridError {}

impl From<CircuitError> for GridError {
    fn from(e: CircuitError) -> Self {
        GridError::Circuit(e)
    }
}

impl From<NumericError> for GridError {
    fn from(e: NumericError) -> Self {
        GridError::Numeric(e)
    }
}

/// Deterministic non-uniform tile load: the nominal current scaled by a
/// fixed per-tile factor in `[1, 2)`. A uniform load would make the
/// worst drop trivially the grid center; the modulation gives the
/// distribution a workload-shaped spatial profile without any RNG.
fn tile_load(spec: &PowerGridSpec, r: usize, c: usize) -> f64 {
    let key = (r * 31 + c * 17) % 8;
    spec.tile_current * (1.0 + key as f64 / 8.0)
}

/// Builds the power-grid case: mesh resistors (variational in W/T/ρ via
/// the Sakurai sheet resistance), a DC pad source, four corner via
/// straps, and one load current source per grid node.
///
/// Node names are `g{row}_{col}`; the pad is `vddpad`. Wire parameters
/// are declared as `W`, `T`, `S`, `H`, `rho` in [`WireParam::ALL`]
/// order (S and H carry no resistance sensitivity and exist so grid
/// samples share the five-parameter space of every other workload).
///
/// # Errors
///
/// Returns [`CircuitError::InvalidValue`] for a grid smaller than 2×2
/// or a non-positive pitch.
pub fn power_grid_case(spec: &PowerGridSpec) -> Result<GridCase, CircuitError> {
    if spec.rows < 2 || spec.cols < 2 {
        return Err(CircuitError::InvalidValue {
            element: "power-grid".into(),
            value: spec.rows.min(spec.cols) as f64,
            requirement: "need at least a 2x2 mesh",
        });
    }
    if !(spec.pitch > 0.0 && spec.pitch.is_finite()) {
        return Err(CircuitError::InvalidValue {
            element: "power-grid".into(),
            value: spec.pitch,
            requirement: "pitch must be positive",
        });
    }
    let mut nl = Netlist::new();
    let mut params = [0usize; 5];
    for p in WireParam::ALL {
        params[p.index()] = nl.params.declare(p.name());
    }
    let r_seg = variational_from(&spec.tech, &params, |w, t, _s, _h, rho| {
        resistance_per_meter(rho, w, t) * spec.pitch
    });

    let mut element_count = 0usize;
    let node_name = |r: usize, c: usize| format!("g{r}_{c}");
    // Grid nodes first, in row-major order.
    let ids: Vec<Vec<_>> = (0..spec.rows)
        .map(|r| (0..spec.cols).map(|c| nl.node(&node_name(r, c))).collect())
        .collect();
    // Mesh straps: horizontal then vertical, row-major.
    for r in 0..spec.rows {
        for c in 0..spec.cols {
            if c + 1 < spec.cols {
                nl.add_variational_resistor(
                    &format!("Rh_{r}_{c}"),
                    ids[r][c],
                    ids[r][c + 1],
                    r_seg.clone(),
                )?;
                element_count += 1;
            }
            if r + 1 < spec.rows {
                nl.add_variational_resistor(
                    &format!("Rv_{r}_{c}"),
                    ids[r][c],
                    ids[r + 1][c],
                    r_seg.clone(),
                )?;
                element_count += 1;
            }
        }
    }
    // Pad and corner vias (fixed — via stacks don't share the wire
    // fluctuations).
    let pad = nl.node("vddpad");
    nl.add_vsource("Vdd", pad, Netlist::GROUND, SourceWaveform::Dc(spec.vdd))?;
    for (k, &(r, c)) in [
        (0, 0),
        (0, spec.cols - 1),
        (spec.rows - 1, 0),
        (spec.rows - 1, spec.cols - 1),
    ]
    .iter()
    .enumerate()
    {
        nl.add_resistor(&format!("Rvia{k}"), pad, ids[r][c], spec.via_resistance)?;
        element_count += 1;
    }
    // Tile loads: current drawn out of every grid node (into `pos` =
    // ground), deterministically non-uniform.
    let mut observe = Vec::with_capacity(spec.rows * spec.cols);
    for (r, row_ids) in ids.iter().enumerate() {
        for (c, &node) in row_ids.iter().enumerate() {
            nl.add_isource(
                &format!("I_{r}_{c}"),
                Netlist::GROUND,
                node,
                SourceWaveform::Dc(tile_load(spec, r, c)),
            )?;
            observe.push(node_name(r, c));
        }
    }
    let dim = nl.node_count() + nl.vsource_count();
    Ok(GridCase {
        name: spec.name(),
        netlist: nl,
        vdd: spec.vdd,
        observe,
        dim,
        element_count,
    })
}

/// Evaluates one fluctuation sample: freeze the grid at `w`, solve the
/// DC operating point on the requested backend (through the recovery
/// ladder), and return the worst IR drop `Vdd − min(v)` over the loaded
/// nodes.
///
/// # Errors
///
/// Returns [`GridError`] on assembly failure, an unrecoverably singular
/// grid, or a non-finite solved voltage.
pub fn ir_drop_for_sample(
    case: &GridCase,
    w: &[f64],
    choice: SolverChoice,
) -> Result<f64, GridError> {
    let frozen = case.netlist.frozen_at(w);
    let mna = frozen.assemble_mna()?;
    let dim = mna.g.rows();
    // DC right-hand side: voltage sources pin their branch rows, current
    // sources enter the KCL rows (into `pos`, out of `neg`).
    let mut rhs = vec![0.0; dim];
    let mut branch = mna.node_count;
    for e in frozen.elements() {
        match e {
            Element::VSource { waveform, .. } => {
                rhs[branch] = waveform.eval(0.0);
                branch += 1;
            }
            Element::ISource {
                pos, neg, waveform, ..
            } => {
                let i = waveform.eval(0.0);
                if let Some(p) = pos.mna_index() {
                    rhs[p] += i;
                }
                if let Some(n) = neg.mna_index() {
                    rhs[n] -= i;
                }
            }
            _ => {}
        }
    }
    let (solver, _recovery) = AnySolver::factor_dense_matrix_recovering(&mna.g, choice)?;
    let v = solver.solve(&rhs)?;
    let mut worst = 0.0f64;
    for name in &case.observe {
        let idx = frozen
            .find_node(name)
            .and_then(|n| n.mna_index())
            .expect("observed nodes are non-ground grid nodes");
        if !v[idx].is_finite() {
            return Err(GridError::NonFinite {
                node: name.clone(),
                value: v[idx],
            });
        }
        worst = worst.max(case.vdd - v[idx]);
    }
    Ok(worst)
}

/// The benchmark grid suite: one compact mesh for `--quick`, plus a
/// denser mesh for the full run.
///
/// # Errors
///
/// Propagates builder errors (impossible for these fixed specs).
pub fn standard_grid_cases(quick: bool) -> Result<Vec<GridCase>, CircuitError> {
    let tech = WireTech::m018();
    let mut cases = vec![power_grid_case(&PowerGridSpec::new(8, 8, tech.clone()))?];
    if !quick {
        cases.push(power_grid_case(&PowerGridSpec::new(16, 16, tech))?);
    }
    Ok(cases)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_case() -> GridCase {
        power_grid_case(&PowerGridSpec::new(8, 8, WireTech::m018())).unwrap()
    }

    #[test]
    fn grid_has_expected_shape() {
        let case = quick_case();
        assert_eq!(case.name, "grid8x8");
        // 64 grid nodes + pad, one source branch.
        assert_eq!(case.dim, 65 + 1);
        // Straps: 8×7 horizontal + 7×8 vertical; 4 vias.
        assert_eq!(case.element_count, 2 * 56 + 4);
        assert_eq!(case.observe.len(), 64);
        let var = case.netlist.assemble_variational().unwrap();
        assert_eq!(var.param_names, vec!["W", "T", "S", "H", "rho"]);
    }

    #[test]
    fn nominal_drop_is_positive_and_sane() {
        let case = quick_case();
        let drop = ir_drop_for_sample(&case, &[0.0; 5], SolverChoice::Dense).unwrap();
        assert!(drop > 0.0, "loaded grid must droop");
        assert!(
            drop < 0.5 * case.vdd,
            "drop {drop} V is implausibly large for the default spec"
        );
    }

    #[test]
    fn backends_agree_on_the_drop() {
        let case = quick_case();
        let w = [0.3, -0.2, 0.1, 0.0, 0.4];
        let dense = ir_drop_for_sample(&case, &w, SolverChoice::Dense).unwrap();
        let sparse = ir_drop_for_sample(&case, &w, SolverChoice::Sparse).unwrap();
        assert!(
            (dense - sparse).abs() <= 1e-9 * dense,
            "dense {dense:e} vs sparse {sparse:e}"
        );
        assert_eq!(format!("{dense:.6e}"), format!("{sparse:.6e}"));
    }

    #[test]
    fn narrower_or_more_resistive_wires_droop_more() {
        let case = quick_case();
        let nominal = ir_drop_for_sample(&case, &[0.0; 5], SolverChoice::Dense).unwrap();
        // -1σ width (narrower wires) and +1σ resistivity both raise R.
        let narrow =
            ir_drop_for_sample(&case, &[-1.0, 0.0, 0.0, 0.0, 0.0], SolverChoice::Dense).unwrap();
        let resistive =
            ir_drop_for_sample(&case, &[0.0, 0.0, 0.0, 0.0, 1.0], SolverChoice::Dense).unwrap();
        assert!(narrow > nominal, "narrow {narrow} vs nominal {nominal}");
        assert!(resistive > nominal, "rho+ {resistive} vs nominal {nominal}");
        // Spacing and ILD height must not move a pure-R grid.
        let spaced =
            ir_drop_for_sample(&case, &[0.0, 0.0, 1.0, 1.0, 0.0], SolverChoice::Dense).unwrap();
        assert_eq!(spaced.to_bits(), nominal.to_bits());
    }

    #[test]
    fn loads_are_non_uniform_and_deterministic() {
        let spec = PowerGridSpec::new(4, 4, WireTech::m018());
        let loads: Vec<f64> = (0..4)
            .flat_map(|r| (0..4).map(move |c| (r, c)))
            .map(|(r, c)| tile_load(&spec, r, c))
            .collect();
        assert!(loads.iter().any(|&l| l != loads[0]), "pattern is flat");
        assert!(loads.iter().all(|&l| l >= spec.tile_current));
        let again: Vec<f64> = (0..4)
            .flat_map(|r| (0..4).map(move |c| (r, c)))
            .map(|(r, c)| tile_load(&spec, r, c))
            .collect();
        assert_eq!(loads, again);
    }

    #[test]
    fn degenerate_specs_rejected() {
        let tech = WireTech::m018();
        assert!(power_grid_case(&PowerGridSpec::new(1, 8, tech.clone())).is_err());
        let mut s = PowerGridSpec::new(4, 4, tech);
        s.pitch = 0.0;
        assert!(power_grid_case(&s).is_err());
    }
}
