//! Sakurai's closed-form interconnect expressions.
//!
//! From T. Sakurai, "Closed-form expressions for interconnection delay,
//! coupling, and crosstalk in VLSIs", IEEE Trans. Electron Devices, vol. 40,
//! Jan 1993 (the paper's reference \[15\]):
//!
//! * ground capacitance per unit length of a line of width `W`, thickness
//!   `T` at height `H` over the plane:
//!   `C_g = ε · (1.15·(W/H) + 2.80·(T/H)^0.222)`
//! * coupling capacitance per unit length between two parallel lines with
//!   spacing `S`:
//!   `C_c = ε · (0.03·(W/H) + 0.83·(T/H) − 0.07·(T/H)^0.222) · (S/H)^−1.34`
//!
//! Resistance per unit length is the elementary `ρ / (W·T)`.
//!
//! All dimensions in meters, results in F/m and Ω/m. The dielectric is
//! SiO₂ (ε_r = 3.9).

/// SiO₂ permittivity (F/m).
pub const EPS_OX: f64 = 3.9 * 8.854e-12;

/// Ground capacitance per meter of a line over the return plane.
///
/// # Panics
///
/// Panics (debug assertion) if any dimension is non-positive.
pub fn ground_cap_per_meter(w: f64, t: f64, h: f64) -> f64 {
    debug_assert!(w > 0.0 && t > 0.0 && h > 0.0, "dimensions must be positive");
    EPS_OX * (1.15 * (w / h) + 2.80 * (t / h).powf(0.222))
}

/// Coupling capacitance per meter between two parallel lines.
///
/// # Panics
///
/// Panics (debug assertion) if any dimension is non-positive.
pub fn coupling_cap_per_meter(w: f64, t: f64, s: f64, h: f64) -> f64 {
    debug_assert!(
        w > 0.0 && t > 0.0 && s > 0.0 && h > 0.0,
        "dimensions must be positive"
    );
    let term = 0.03 * (w / h) + 0.83 * (t / h) - 0.07 * (t / h).powf(0.222);
    (EPS_OX * term * (s / h).powf(-1.34)).max(0.0)
}

/// Self-inductance per meter of a line over its return plane
/// (microstrip-style approximation: `L' = (µ0/2π)·ln(8h/w + w/(4h))`).
///
/// # Panics
///
/// Panics (debug assertion) if any dimension is non-positive.
pub fn inductance_per_meter(w: f64, h: f64) -> f64 {
    debug_assert!(w > 0.0 && h > 0.0, "dimensions must be positive");
    const MU0: f64 = 4.0e-7 * std::f64::consts::PI;
    MU0 / (2.0 * std::f64::consts::PI) * (8.0 * h / w + w / (4.0 * h)).ln()
}

/// Resistance per meter of a rectangular conductor.
///
/// # Panics
///
/// Panics (debug assertion) if any dimension is non-positive.
pub fn resistance_per_meter(rho: f64, w: f64, t: f64) -> f64 {
    debug_assert!(
        rho > 0.0 && w > 0.0 && t > 0.0,
        "dimensions must be positive"
    );
    rho / (w * t)
}

#[cfg(test)]
mod tests {
    use super::*;

    // 0.18 µm-era minimum geometry.
    const W: f64 = 0.28e-6;
    const T: f64 = 0.45e-6;
    const S: f64 = 0.28e-6;
    const H: f64 = 0.65e-6;
    const RHO: f64 = 2.2e-8;

    #[test]
    fn ground_cap_magnitude_is_physical() {
        // Minimum-width DSM wires run ~30–100 aF/µm to ground.
        let c = ground_cap_per_meter(W, T, H);
        let af_per_um = c * 1e12; // F/m == 1e-12 F/µm·1e12 → aF/µm×1e-18… compute directly
        let c_per_um = c * 1e-6; // F per µm
        assert!(
            c_per_um > 20e-18 && c_per_um < 200e-18,
            "C_g = {c_per_um} F/µm out of range"
        );
        let _ = af_per_um;
    }

    #[test]
    fn coupling_dominates_at_min_spacing() {
        // At minimum spacing with a tall conductor, coupling capacitance is
        // comparable to or larger than ground capacitance — the DSM regime
        // that motivates the paper.
        let cg = ground_cap_per_meter(W, T, H);
        let cc = coupling_cap_per_meter(W, T, S, H);
        assert!(cc > 0.5 * cg, "cc {cc} vs cg {cg}");
    }

    #[test]
    fn coupling_decays_with_spacing() {
        let c1 = coupling_cap_per_meter(W, T, S, H);
        let c2 = coupling_cap_per_meter(W, T, 2.0 * S, H);
        let c4 = coupling_cap_per_meter(W, T, 4.0 * S, H);
        assert!(c1 > c2 && c2 > c4);
        // Power-law decay with exponent 1.34.
        let ratio = (c1 / c2) / (c2 / c4);
        assert!((ratio - 1.0).abs() < 1e-9, "pure power law in S");
    }

    #[test]
    fn ground_cap_monotonic_in_geometry() {
        let base = ground_cap_per_meter(W, T, H);
        assert!(
            ground_cap_per_meter(1.5 * W, T, H) > base,
            "wider → more cap"
        );
        assert!(
            ground_cap_per_meter(W, 1.5 * T, H) > base,
            "thicker → more fringe"
        );
        assert!(
            ground_cap_per_meter(W, T, 1.5 * H) < base,
            "higher → less cap"
        );
    }

    #[test]
    fn resistance_formula() {
        let r = resistance_per_meter(RHO, W, T);
        // 2.2e-8 / (0.28e-6 · 0.45e-6) ≈ 1.746e5 Ω/m ≈ 0.175 Ω/µm.
        assert!((r - RHO / (W * T)).abs() < 1e-6 * r);
        let per_um = r * 1e-6;
        assert!(
            per_um > 0.05 && per_um < 1.0,
            "R = {per_um} Ω/µm out of range"
        );
    }

    #[test]
    fn inductance_magnitude_is_physical() {
        // On-chip wires run a few hundred pH/mm.
        let l = inductance_per_meter(W, H);
        let ph_per_mm = l * 1e-3 * 1e12;
        assert!(
            (100.0..2000.0).contains(&ph_per_mm),
            "L = {ph_per_mm} pH/mm out of range"
        );
        // Wider wire → lower inductance; higher above plane → more.
        assert!(inductance_per_meter(2.0 * W, H) < l);
        assert!(inductance_per_meter(W, 2.0 * H) > l);
    }

    #[test]
    fn resistance_monotonic() {
        let base = resistance_per_meter(RHO, W, T);
        assert!(resistance_per_meter(RHO, 1.2 * W, T) < base);
        assert!(resistance_per_meter(RHO, W, 1.2 * T) < base);
        assert!(resistance_per_meter(1.2 * RHO, W, T) > base);
    }
}
