//! Wire technology: nominal geometry and 3σ tolerances.
//!
//! The paper takes nominal values and tolerances "from \[14\]" (Nassif,
//! CICC 2001). That table is not publicly reproducible verbatim, so these
//! are representative 0.18 µm-generation values with the same relative
//! tolerance magnitudes (±15–20 % at 3σ) — substitution #3 in `DESIGN.md`.
//! The statistics pipeline only consumes (nominal, tolerance) pairs, so the
//! framework behaviour is unchanged by the exact numbers.

/// The five global wire variation parameters of the paper's Example 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireParam {
    /// Metal width `W`.
    Width,
    /// Metal thickness `T`.
    Thickness,
    /// Line-to-line spacing `S`.
    Spacing,
    /// Inter-layer-dielectric height `H`.
    IldHeight,
    /// Resistivity `ρ`.
    Resistivity,
}

/// Number of wire variation parameters.
pub const WIRE_PARAM_COUNT: usize = 5;

impl WireParam {
    /// All parameters in canonical order (the order of netlist parameter
    /// declaration).
    pub const ALL: [WireParam; WIRE_PARAM_COUNT] = [
        WireParam::Width,
        WireParam::Thickness,
        WireParam::Spacing,
        WireParam::IldHeight,
        WireParam::Resistivity,
    ];

    /// Canonical short name used in netlists and reports.
    pub fn name(self) -> &'static str {
        match self {
            WireParam::Width => "W",
            WireParam::Thickness => "T",
            WireParam::Spacing => "S",
            WireParam::IldHeight => "H",
            WireParam::Resistivity => "rho",
        }
    }

    /// Index in [`WireParam::ALL`].
    pub fn index(self) -> usize {
        WireParam::ALL
            .iter()
            .position(|p| *p == self)
            .expect("member of ALL")
    }
}

/// Nominal wire geometry plus 3σ tolerances.
///
/// The *normalized* variation parameters used throughout the workspace map
/// `w = ±1` to `±` one full 3σ tolerance, so uniform sampling in `[-1, 1]`
/// reproduces the paper's "uniform distributions with tolerances specified
/// in \[14\]".
#[derive(Debug, Clone, PartialEq)]
pub struct WireTech {
    /// Nominal width (m).
    pub w0: f64,
    /// Nominal thickness (m).
    pub t0: f64,
    /// Nominal spacing (m).
    pub s0: f64,
    /// Nominal ILD height (m).
    pub h0: f64,
    /// Nominal resistivity (Ω·m).
    pub rho0: f64,
    /// 3σ tolerance on width (m).
    pub w_tol: f64,
    /// 3σ tolerance on thickness (m).
    pub t_tol: f64,
    /// 3σ tolerance on spacing (m).
    pub s_tol: f64,
    /// 3σ tolerance on ILD height (m).
    pub h_tol: f64,
    /// 3σ tolerance on resistivity (Ω·m).
    pub rho_tol: f64,
}

impl WireTech {
    /// Representative 0.18 µm metal layer (minimum-width rules).
    pub fn m018() -> Self {
        WireTech {
            w0: 0.28e-6,
            t0: 0.45e-6,
            s0: 0.28e-6,
            h0: 0.65e-6,
            rho0: 2.2e-8,
            w_tol: 0.20 * 0.28e-6,
            t_tol: 0.20 * 0.45e-6,
            s_tol: 0.20 * 0.28e-6,
            h_tol: 0.20 * 0.65e-6,
            rho_tol: 0.15 * 2.2e-8,
        }
    }

    /// Nominal value of a parameter.
    pub fn nominal(&self, p: WireParam) -> f64 {
        match p {
            WireParam::Width => self.w0,
            WireParam::Thickness => self.t0,
            WireParam::Spacing => self.s0,
            WireParam::IldHeight => self.h0,
            WireParam::Resistivity => self.rho0,
        }
    }

    /// 3σ tolerance of a parameter.
    pub fn tolerance(&self, p: WireParam) -> f64 {
        match p {
            WireParam::Width => self.w_tol,
            WireParam::Thickness => self.t_tol,
            WireParam::Spacing => self.s_tol,
            WireParam::IldHeight => self.h_tol,
            WireParam::Resistivity => self.rho_tol,
        }
    }

    /// Physical parameter values at a normalized sample `w` (five entries
    /// in [`WireParam::ALL`] order; missing entries are nominal).
    ///
    /// Spacing narrows when width widens under fixed pitch; the paper
    /// treats `W` and `S` as independent sources, and so do we — callers
    /// that want the pitch constraint can correlate the samples instead.
    pub fn at(&self, w: &[f64]) -> WireGeometry {
        let get = |p: WireParam| {
            let wi = w.get(p.index()).copied().unwrap_or(0.0);
            self.nominal(p) + wi * self.tolerance(p)
        };
        WireGeometry {
            w: get(WireParam::Width).max(0.05 * self.w0),
            t: get(WireParam::Thickness).max(0.05 * self.t0),
            s: get(WireParam::Spacing).max(0.05 * self.s0),
            h: get(WireParam::IldHeight).max(0.05 * self.h0),
            rho: get(WireParam::Resistivity).max(0.05 * self.rho0),
        }
    }
}

impl Default for WireTech {
    fn default() -> Self {
        WireTech::m018()
    }
}

/// One concrete wire geometry sample (all SI units).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireGeometry {
    /// Width (m).
    pub w: f64,
    /// Thickness (m).
    pub t: f64,
    /// Spacing (m).
    pub s: f64,
    /// ILD height (m).
    pub h: f64,
    /// Resistivity (Ω·m).
    pub rho: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_order_and_names() {
        assert_eq!(WireParam::ALL.len(), WIRE_PARAM_COUNT);
        assert_eq!(WireParam::Width.index(), 0);
        assert_eq!(WireParam::Resistivity.index(), 4);
        assert_eq!(WireParam::IldHeight.name(), "H");
    }

    #[test]
    fn nominal_sample_is_nominal() {
        let t = WireTech::m018();
        let g = t.at(&[0.0; 5]);
        assert_eq!(g.w, t.w0);
        assert_eq!(g.rho, t.rho0);
        // Short sample vector: remaining params nominal.
        let g = t.at(&[1.0]);
        assert!((g.w - (t.w0 + t.w_tol)).abs() < 1e-18);
        assert_eq!(g.t, t.t0);
    }

    #[test]
    fn tolerances_are_relative_15_to_20_percent() {
        let t = WireTech::m018();
        for p in WireParam::ALL {
            let rel = t.tolerance(p) / t.nominal(p);
            assert!((0.1..=0.25).contains(&rel), "{}: rel tol {rel}", p.name());
        }
    }

    #[test]
    fn extreme_samples_stay_physical() {
        let t = WireTech::m018();
        let g = t.at(&[-10.0, -10.0, -10.0, -10.0, -10.0]);
        assert!(g.w > 0.0 && g.t > 0.0 && g.s > 0.0 && g.h > 0.0 && g.rho > 0.0);
    }
}
