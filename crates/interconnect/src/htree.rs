//! H-tree clock distribution builder.
//!
//! The variational interconnect methodology was first demonstrated on the
//! clock network of a gigahertz microprocessor (the paper's refs \[2\]\[3\]:
//! "Impact of interconnect variations on the clock skew …"). This module
//! builds a binary H-tree: the root is driven by the clock buffer, each
//! level halves the branch length, and the leaves are the clock sinks.
//!
//! Skew under *global* parameter variation requires an asymmetry to act
//! on; the builder therefore accepts per-sink load capacitances (latch
//! bank sizes differ across a real floorplan).

use crate::builder::{build_coupled_lines_into, CoupledLineSpec};
use crate::tech::WireTech;
use linvar_circuit::{CircuitError, Netlist, NodeId};

/// Specification of a binary H-tree clock net.
#[derive(Debug, Clone)]
pub struct HTreeSpec {
    /// Number of binary levels (`levels = 3` → 8 sinks).
    pub levels: usize,
    /// Root branch length (m); each level halves it.
    pub root_length: f64,
    /// RC segment length (m) — coarser than the 1 µm default keeps the
    /// node count manageable for deep trees.
    pub seg_len: f64,
    /// Load capacitance per sink (F), one entry per sink
    /// (`2^levels` entries); unequal loads model unequal latch banks.
    pub sink_loads: Vec<f64>,
    /// Wire technology.
    pub tech: WireTech,
}

/// A built H-tree.
#[derive(Debug, Clone)]
pub struct HTree {
    /// The variational netlist (ports: root first, then sinks in order).
    pub netlist: Netlist,
    /// Root (driven) node.
    pub root: NodeId,
    /// Sink nodes, left-to-right.
    pub sinks: Vec<NodeId>,
    /// Total linear element count.
    pub element_count: usize,
}

/// Builds the H-tree netlist.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidValue`] for a degenerate spec (zero
/// levels, wrong number of sink loads, non-positive lengths).
pub fn build_htree(spec: &HTreeSpec) -> Result<HTree, CircuitError> {
    let n_sinks = 1usize << spec.levels;
    if spec.levels == 0 {
        return Err(CircuitError::InvalidValue {
            element: "htree".into(),
            value: 0.0,
            requirement: "need at least one level",
        });
    }
    if spec.sink_loads.len() != n_sinks {
        return Err(CircuitError::InvalidValue {
            element: "htree".into(),
            value: spec.sink_loads.len() as f64,
            requirement: "one sink load per leaf (2^levels entries)",
        });
    }
    if !(spec.root_length > 0.0 && spec.seg_len > 0.0) {
        return Err(CircuitError::InvalidValue {
            element: "htree".into(),
            value: spec.root_length.min(spec.seg_len),
            requirement: "lengths must be positive",
        });
    }
    let mut nl = Netlist::new();
    let mut element_count = 0usize;
    // Breadth-first construction: frontier of (node, path-id) pairs.
    let root = nl.node("clk_root");
    let mut frontier = vec![(root, String::from("r"))];
    for level in 0..spec.levels {
        let length = (spec.root_length / 2f64.powi(level as i32)).max(spec.seg_len);
        let mut next = Vec::with_capacity(frontier.len() * 2);
        for (from, path) in frontier {
            for side in ["a", "b"] {
                let branch_path = format!("{path}{side}");
                let line_spec = CoupledLineSpec {
                    n_lines: 1,
                    length,
                    seg_len: spec.seg_len,
                    tech: spec.tech.clone(),
                    with_inductance: false,
                };
                let built =
                    build_coupled_lines_into(&line_spec, &mut nl, &format!("{branch_path}_"))?;
                element_count += built.element_count;
                // Splice the branch input onto `from` with a negligible
                // stitch resistor (ports created by the line builder stay
                // distinct nodes).
                nl.add_resistor(
                    &format!("Rstitch_{branch_path}"),
                    from,
                    built.inputs[0],
                    1e-3,
                )?;
                element_count += 1;
                next.push((built.outputs[0], branch_path));
            }
        }
        frontier = next;
    }
    let mut sinks = Vec::with_capacity(n_sinks);
    for (k, (node, path)) in frontier.into_iter().enumerate() {
        nl.add_capacitor(
            &format!("Csink_{path}"),
            node,
            Netlist::GROUND,
            spec.sink_loads[k],
        )?;
        element_count += 1;
        sinks.push(node);
    }
    // Reset the port list to root-then-sinks (the line builder marked its
    // own per-branch ports): copy into a fresh netlist.
    let mut fresh = Netlist::new();
    fresh.instantiate(&nl, "", &[])?;
    let root = fresh.find_node("clk_root").expect("copied");
    let sinks: Vec<NodeId> = sinks
        .iter()
        .map(|s| {
            let name = nl.node_name(*s).expect("named").to_string();
            fresh.find_node(&name).expect("copied")
        })
        .collect();
    fresh.mark_port(root)?;
    for &s in &sinks {
        fresh.mark_port(s)?;
    }
    Ok(HTree {
        netlist: fresh,
        root,
        sinks,
        element_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(levels: usize) -> HTreeSpec {
        let n = 1usize << levels;
        HTreeSpec {
            levels,
            root_length: 80e-6,
            seg_len: 4e-6,
            sink_loads: (0..n).map(|k| 5e-15 * (1.0 + k as f64 * 0.3)).collect(),
            tech: WireTech::m018(),
        }
    }

    #[test]
    fn tree_shape() {
        let t = build_htree(&spec(3)).unwrap();
        assert_eq!(t.sinks.len(), 8);
        assert_eq!(t.netlist.ports().len(), 9, "root + 8 sinks");
        assert!(t.element_count > 50);
    }

    #[test]
    fn dc_connectivity_root_to_all_sinks() {
        // Inject current at the root (with a grounding conductance) and
        // verify every sink sits at the root's DC potential.
        use linvar_numeric::LuFactor;
        let t = build_htree(&spec(2)).unwrap();
        let mut var = t.netlist.assemble_variational().unwrap();
        let root_idx = var.port_indices[0];
        var.add_grounded_conductance(root_idx, 1e-3).unwrap();
        let lu = LuFactor::new(&var.g0).unwrap();
        let mut rhs = vec![0.0; var.order()];
        rhs[root_idx] = 1e-3; // 1 mA
        let v = lu.solve(&rhs).unwrap();
        for (k, s) in t.sinks.iter().enumerate() {
            let idx = s.mna_index().unwrap();
            assert!(
                (v[idx] - v[root_idx]).abs() < 1e-6 * v[root_idx].abs(),
                "sink {k} disconnected at DC"
            );
        }
    }

    #[test]
    fn bad_specs_rejected() {
        let mut s = spec(2);
        s.sink_loads.pop();
        assert!(build_htree(&s).is_err());
        let mut s = spec(2);
        s.levels = 0;
        assert!(build_htree(&s).is_err());
        let mut s = spec(2);
        s.root_length = -1.0;
        assert!(build_htree(&s).is_err());
    }

    #[test]
    fn variational_params_declared() {
        let t = build_htree(&spec(2)).unwrap();
        assert_eq!(t.netlist.params.len(), 5);
    }
}
