//! Gate-level logic simulation.
//!
//! Evaluates a [`GateNetlist`] combinationally for given primary-input and
//! flip-flop-state values, and steps the sequential state. Used to
//! validate netlists (real and synthetic) functionally and to check path
//! sensitization assumptions.

use crate::netlist::{GateKind, GateNetlist};
use std::collections::HashMap;

/// Logic state of a sequential circuit: PI values plus DFF outputs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogicState {
    /// Primary-input values by signal name.
    pub inputs: HashMap<String, bool>,
    /// Flip-flop output values by DFF output name.
    pub flops: HashMap<String, bool>,
}

/// Result of one combinational evaluation.
#[derive(Debug, Clone)]
pub struct LogicValues {
    /// Value of every evaluated signal.
    pub signals: HashMap<String, bool>,
}

impl LogicValues {
    /// The value of a signal, if it was evaluated.
    pub fn get(&self, signal: &str) -> Option<bool> {
        self.signals.get(signal).copied()
    }
}

fn gate_function(kind: GateKind, inputs: &[bool]) -> bool {
    match kind {
        GateKind::And => inputs.iter().all(|&b| b),
        GateKind::Nand => !inputs.iter().all(|&b| b),
        GateKind::Or => inputs.iter().any(|&b| b),
        GateKind::Nor => !inputs.iter().any(|&b| b),
        GateKind::Not => !inputs[0],
        GateKind::Buff => inputs[0],
        GateKind::Dff => inputs[0], // used only when stepping state
    }
}

/// Evaluates all combinational signals of the netlist for the given state.
///
/// Unknown (undriven, non-input) signals default to `false`.
///
/// # Errors
///
/// Returns a message naming a combinational cycle if one exists.
pub fn evaluate(nl: &GateNetlist, state: &LogicState) -> Result<LogicValues, String> {
    let mut values: HashMap<String, bool> = HashMap::new();
    for (k, &v) in &state.inputs {
        values.insert(k.clone(), v);
    }
    for (k, &v) in &state.flops {
        values.insert(k.clone(), v);
    }

    fn eval_signal(
        sig: &str,
        nl: &GateNetlist,
        values: &mut HashMap<String, bool>,
        visiting: &mut Vec<String>,
    ) -> Result<bool, String> {
        if let Some(&v) = values.get(sig) {
            return Ok(v);
        }
        if visiting.iter().any(|s| s == sig) {
            return Err(format!("combinational cycle through {sig}"));
        }
        let gate = match nl.driver(sig) {
            Some(g) if !g.kind.is_dff() => g.clone(),
            // Undriven or DFF without a state entry: default low.
            _ => {
                values.insert(sig.to_string(), false);
                return Ok(false);
            }
        };
        visiting.push(sig.to_string());
        let mut ins = Vec::with_capacity(gate.inputs.len());
        for inp in &gate.inputs {
            ins.push(eval_signal(inp, nl, values, visiting)?);
        }
        visiting.pop();
        let v = gate_function(gate.kind, &ins);
        values.insert(sig.to_string(), v);
        Ok(v)
    }

    let mut visiting = Vec::new();
    // Evaluate every gate output and every primary output.
    let targets: Vec<String> = nl
        .gates
        .iter()
        .filter(|g| !g.kind.is_dff())
        .map(|g| g.output.clone())
        .chain(nl.outputs.iter().cloned())
        .chain(nl.timing_sinks())
        .collect();
    for t in targets {
        eval_signal(&t, nl, &mut values, &mut visiting)?;
    }
    Ok(LogicValues { signals: values })
}

/// Advances the sequential state by one clock: every DFF captures its
/// input's combinational value. Returns the next state (PIs unchanged).
///
/// # Errors
///
/// Propagates combinational-cycle errors from [`evaluate`].
pub fn step(nl: &GateNetlist, state: &LogicState) -> Result<LogicState, String> {
    let values = evaluate(nl, state)?;
    let mut next = state.clone();
    for g in &nl.gates {
        if g.kind.is_dff() {
            let d = values.get(&g.inputs[0]).unwrap_or(false);
            next.flops.insert(g.output.clone(), d);
        }
    }
    Ok(next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benches::benchmark;

    fn s27_state(g0: bool, g1: bool, g2: bool, g3: bool, q: [bool; 3]) -> LogicState {
        let mut st = LogicState::default();
        for (name, v) in [("G0", g0), ("G1", g1), ("G2", g2), ("G3", g3)] {
            st.inputs.insert(name.into(), v);
        }
        for (name, v) in [("G5", q[0]), ("G6", q[1]), ("G7", q[2])] {
            st.flops.insert(name.into(), v);
        }
        st
    }

    #[test]
    fn s27_combinational_relations_hold() {
        let nl = benchmark("s27").unwrap().netlist;
        // Exhaustive over all 4 PIs × 8 states: check structural relations.
        for pattern in 0..128u32 {
            let b = |k: u32| pattern & (1 << k) != 0;
            let st = s27_state(b(0), b(1), b(2), b(3), [b(4), b(5), b(6)]);
            let v = evaluate(&nl, &st).unwrap();
            let val = |s: &str| v.get(s).unwrap();
            assert_eq!(val("G14"), !b(0), "G14 = NOT(G0)");
            assert_eq!(val("G8"), val("G14") && b(5), "G8 = AND(G14, G6)");
            assert_eq!(val("G12"), !(b(1) || b(6)), "G12 = NOR(G1, G7)");
            assert_eq!(val("G15"), val("G12") || val("G8"));
            assert_eq!(val("G16"), b(3) || val("G8"));
            assert_eq!(val("G9"), !(val("G16") && val("G15")));
            assert_eq!(val("G11"), !(b(4) || val("G9")));
            assert_eq!(val("G17"), !val("G11"), "primary output");
            assert_eq!(val("G10"), !(val("G14") || val("G11")));
            assert_eq!(val("G13"), !(b(2) && val("G12")));
        }
    }

    #[test]
    fn s27_sequential_step_captures_dff_inputs() {
        let nl = benchmark("s27").unwrap().netlist;
        let st = s27_state(false, false, false, false, [false, false, false]);
        let v = evaluate(&nl, &st).unwrap();
        let next = step(&nl, &st).unwrap();
        assert_eq!(next.flops["G5"], v.get("G10").unwrap());
        assert_eq!(next.flops["G6"], v.get("G11").unwrap());
        assert_eq!(next.flops["G7"], v.get("G13").unwrap());
        // Run a few clocks; the state must stay well-defined.
        let mut s = next;
        for _ in 0..8 {
            s = step(&nl, &s).unwrap();
        }
        assert_eq!(s.flops.len(), 3);
    }

    #[test]
    fn synthetic_benchmarks_are_functional() {
        // Every synthetic netlist must evaluate without cycles and produce
        // state-dependent behaviour (not constants everywhere).
        for name in ["s208", "s444", "s832"] {
            let nl = benchmark(name).unwrap().netlist;
            let mut all_zero = LogicState::default();
            for pi in &nl.inputs {
                all_zero.inputs.insert(pi.clone(), false);
            }
            for g in &nl.gates {
                if g.kind.is_dff() {
                    all_zero.flops.insert(g.output.clone(), false);
                }
            }
            let mut all_one = all_zero.clone();
            for v in all_one.inputs.values_mut() {
                *v = true;
            }
            for v in all_one.flops.values_mut() {
                *v = true;
            }
            let v0 = evaluate(&nl, &all_zero).unwrap();
            let v1 = evaluate(&nl, &all_one).unwrap();
            let differing = nl
                .gates
                .iter()
                .filter(|g| !g.kind.is_dff())
                .filter(|g| v0.get(&g.output) != v1.get(&g.output))
                .count();
            assert!(
                differing > nl.combinational_count() / 4,
                "{name}: only {differing} gates respond to inputs"
            );
            // Stepping works.
            let _ = step(&nl, &all_zero).unwrap();
        }
    }

    #[test]
    fn gate_functions() {
        assert!(gate_function(GateKind::And, &[true, true]));
        assert!(!gate_function(GateKind::And, &[true, false]));
        assert!(!gate_function(GateKind::Nand, &[true, true]));
        assert!(gate_function(GateKind::Or, &[false, true]));
        assert!(!gate_function(GateKind::Nor, &[false, true]));
        assert!(gate_function(GateKind::Nor, &[false, false]));
        assert!(gate_function(GateKind::Not, &[false]));
        assert!(gate_function(GateKind::Buff, &[true]));
    }
}
