//! ISCAS-89 benchmark substrate: gate-level netlists, a unit-delay timing
//! analyzer, and latch-to-latch critical-path extraction.
//!
//! The paper's Example 3 runs on the ISCAS-89 set: "The gate-level
//! descriptions of the benchmarks are transformed into transistor level
//! circuit netlists. In the benchmark set, ten different logic cells are
//! used. The latch-to-latch paths are extracted and ordered by a
//! unit-delay based timing analyzer."
//!
//! * [`netlist`] — the `.bench` format parser and gate-level data model;
//! * [`benches`] — the real `s27` netlist (public benchmark, embedded
//!   verbatim) plus deterministic synthetic equivalents of the larger
//!   members (s208, s444, s832, s1423, s9234), generated to match the
//!   paper's reported critical-path stage counts (substitution #4 in
//!   `DESIGN.md`);
//! * [`timing`] — levelization and longest-path extraction under the
//!   unit-delay model;
//! * [`path`] — decomposition of the extracted gate path into primitive
//!   (single-stage) cells of the `linvar-devices` library.

pub mod benches;
pub mod logic;
pub mod netlist;
pub mod path;
pub mod timing;

pub use benches::{benchmark, benchmark_names, BenchmarkSpec};
pub use logic::{evaluate as logic_evaluate, step as logic_step, LogicState, LogicValues};
pub use netlist::{parse_bench, Gate, GateKind, GateNetlist};
pub use path::{decompose_to_primitives, PathStage};
pub use timing::{longest_path, TimingReport};
