//! The benchmark set: real `s27` plus synthetic equivalents.
//!
//! `s27` is the public ISCAS-89 benchmark, embedded verbatim. The larger
//! members are *deterministic synthetic equivalents* (substitution #4 in
//! `DESIGN.md`): seeded DAG generators that match each circuit's
//! approximate gate/DFF counts and — the property the path-delay
//! experiments actually consume — the paper's reported critical-path
//! stage count. The generator guarantees by construction that the intended
//! backbone is the unique longest latch-to-latch path.

use crate::netlist::{Gate, GateKind, GateNetlist};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The real s27 netlist (ISCAS-89).
pub const S27_BENCH: &str = "\
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
";

/// One benchmark circuit plus its provenance metadata.
#[derive(Debug, Clone)]
pub struct BenchmarkSpec {
    /// Gate-level netlist.
    pub netlist: GateNetlist,
    /// `false` only for the embedded real s27.
    pub synthetic: bool,
    /// Critical-path stage count the paper reports for this circuit
    /// (Table 5, or Table 4 for s9234).
    pub paper_stages: usize,
}

/// Names of the available benchmarks, in the paper's order.
pub fn benchmark_names() -> &'static [&'static str] {
    &["s27", "s208", "s832", "s444", "s1423", "s9234"]
}

/// Loads a benchmark by name.
pub fn benchmark(name: &str) -> Option<BenchmarkSpec> {
    match name {
        "s27" => Some(BenchmarkSpec {
            netlist: crate::netlist::parse_bench("s27", S27_BENCH).expect("embedded s27 parses"),
            synthetic: false,
            paper_stages: 5,
        }),
        // (gates, dffs, path depth) sized after the real circuits; depths
        // from the paper's Tables 4/5.
        "s208" => Some(synthetic("s208", 96, 8, 9, 0x5208)),
        "s832" => Some(synthetic("s832", 287, 5, 9, 0x5832)),
        "s444" => Some(synthetic("s444", 181, 21, 12, 0x5444)),
        "s1423" => Some(synthetic("s1423", 657, 74, 21, 0x51423)),
        "s9234" => Some(synthetic("s9234", 2000, 135, 58, 0x59234)),
        _ => None,
    }
}

/// Builds a synthetic sequential benchmark: a backbone chain of
/// `path_depth` inverting gates (the intended critical path) plus filler
/// logic of strictly smaller depth, `n_dff` flip-flops and a handful of
/// primary inputs/outputs.
fn synthetic(
    name: &str,
    n_comb_gates: usize,
    n_dff: usize,
    path_depth: usize,
    seed: u64,
) -> BenchmarkSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_pi = 8.max(n_comb_gates / 40);
    let inputs: Vec<String> = (0..n_pi).map(|k| format!("PI{k}")).collect();
    let mut gates: Vec<Gate> = Vec::new();
    // DFF outputs are sources; their inputs get wired at the end.
    let dff_outs: Vec<String> = (0..n_dff).map(|k| format!("Q{k}")).collect();
    // Depth-0 signals available as side inputs.
    let sources: Vec<String> = inputs.iter().chain(dff_outs.iter()).cloned().collect();
    let pick = |rng: &mut StdRng, pool: &[String]| -> String {
        pool[rng.random_range(0..pool.len())].clone()
    };
    // Backbone kinds: single-primitive inverting gates only, so the
    // primitive stage count equals the backbone length.
    let backbone_kinds = [
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Not,
        GateKind::Nand,
        GateKind::Nor,
    ];
    let mut prev = pick(&mut rng, &sources);
    let mut backbone_last = String::new();
    for d in 0..path_depth {
        let out = format!("B{d}");
        let kind = backbone_kinds[rng.random_range(0..backbone_kinds.len())];
        let mut ins = vec![prev.clone()];
        if kind != GateKind::Not {
            // Side inputs come from depth-0 sources only, keeping the
            // backbone the strict longest path.
            ins.push(pick(&mut rng, &sources));
            if rng.random_bool(0.3) {
                ins.push(pick(&mut rng, &sources));
            }
        }
        gates.push(Gate {
            output: out.clone(),
            kind,
            inputs: ins,
        });
        prev = out.clone();
        backbone_last = out;
    }
    // Filler gates: depth strictly below the backbone.
    let max_filler_depth = path_depth.saturating_sub(1).max(1);
    // (signal, depth) pools.
    let mut pool: Vec<(String, usize)> = sources.iter().map(|s| (s.clone(), 0)).collect();
    let n_filler = n_comb_gates.saturating_sub(path_depth);
    let filler_kinds = [
        GateKind::Nand,
        GateKind::Nor,
        GateKind::And,
        GateKind::Or,
        GateKind::Not,
        GateKind::Buff,
        GateKind::Nand,
        GateKind::Nor,
    ];
    let mut filler_outs: Vec<String> = Vec::new();
    for k in 0..n_filler {
        let kind = filler_kinds[rng.random_range(0..filler_kinds.len())];
        let n_in = if matches!(kind, GateKind::Not | GateKind::Buff) {
            1
        } else if rng.random_bool(0.25) {
            3
        } else {
            2
        };
        // Candidates must leave room to stay under the depth cap. The
        // filler's multi-primitive kinds (AND/OR) count as 2 primitives —
        // stay conservative with a -2 margin.
        let cap = max_filler_depth.saturating_sub(2);
        let candidates: Vec<usize> = (0..pool.len()).filter(|&i| pool[i].1 <= cap).collect();
        let mut ins = Vec::with_capacity(n_in);
        let mut depth = 0usize;
        for _ in 0..n_in {
            let idx = candidates[rng.random_range(0..candidates.len())];
            ins.push(pool[idx].0.clone());
            depth = depth.max(pool[idx].1);
        }
        let out = format!("F{k}");
        gates.push(Gate {
            output: out.clone(),
            kind,
            inputs: ins,
        });
        pool.push((out.clone(), depth + 1));
        filler_outs.push(out);
    }
    // DFF inputs: the backbone end plus random filler outputs.
    let mut dff_gates: Vec<Gate> = Vec::new();
    for (k, q) in dff_outs.iter().enumerate() {
        let d_in = if k == 0 || filler_outs.is_empty() {
            backbone_last.clone()
        } else {
            filler_outs[rng.random_range(0..filler_outs.len())].clone()
        };
        dff_gates.push(Gate {
            output: q.clone(),
            kind: GateKind::Dff,
            inputs: vec![d_in],
        });
    }
    gates.extend(dff_gates);
    // Primary outputs: a few filler outputs.
    let mut outputs = Vec::new();
    for k in 0..4.min(filler_outs.len()) {
        outputs.push(filler_outs[k * filler_outs.len() / 4].clone());
    }
    if outputs.is_empty() {
        outputs.push(backbone_last);
    }
    let netlist = GateNetlist::new(name, inputs, outputs, gates);
    BenchmarkSpec {
        netlist,
        synthetic: true,
        paper_stages: path_depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::longest_path;

    #[test]
    fn s27_is_the_real_netlist() {
        let b = benchmark("s27").unwrap();
        assert!(!b.synthetic);
        assert_eq!(b.netlist.dff_count(), 3);
        assert_eq!(b.netlist.combinational_count(), 10);
        assert_eq!(b.netlist.inputs.len(), 4);
    }

    #[test]
    fn all_names_resolve() {
        for name in benchmark_names() {
            assert!(benchmark(name).is_some(), "missing {name}");
        }
        assert!(benchmark("s99999").is_none());
    }

    #[test]
    fn synthetic_path_depths_match_paper() {
        for (name, depth) in [
            ("s208", 9),
            ("s832", 9),
            ("s444", 12),
            ("s1423", 21),
            ("s9234", 58),
        ] {
            let b = benchmark(name).unwrap();
            assert!(b.synthetic);
            assert_eq!(b.paper_stages, depth);
            let rep = longest_path(&b.netlist).unwrap();
            assert_eq!(
                rep.depth(),
                depth,
                "{name}: analyzer found depth {} (path {:?})",
                rep.depth(),
                rep.critical_path
            );
        }
    }

    #[test]
    fn synthetic_sizes_are_plausible() {
        let b = benchmark("s1423").unwrap();
        assert!(b.netlist.combinational_count() > 500);
        assert_eq!(b.netlist.dff_count(), 74);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = benchmark("s444").unwrap();
        let b = benchmark("s444").unwrap();
        assert_eq!(a.netlist.gates, b.netlist.gates);
    }

    #[test]
    fn critical_path_ends_at_backbone_dff() {
        let b = benchmark("s208").unwrap();
        let rep = longest_path(&b.netlist).unwrap();
        // The backbone feeds Q0's input; the path must run through B gates.
        assert!(rep.critical_path.iter().all(|g| g.starts_with('B')));
    }
}
