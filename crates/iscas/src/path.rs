//! Critical-path decomposition into primitive (single-stack) cells.
//!
//! The TETA stage abstraction evaluates one inverting CMOS stage at a
//! time. Multi-stage gate kinds decompose: `AND → NAND + INV`,
//! `OR → NOR + INV`, `BUFF → INV + INV`. Fan-in above three decomposes
//! into trees of 2/3-input primitives, keeping the longest branch on the
//! path input.

use crate::netlist::{GateKind, GateNetlist};
use crate::timing::TimingReport;

/// One primitive stage on a critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathStage {
    /// Primitive cell name in the `linvar-devices` library
    /// (`inv`, `nand2`, `nand3`, `nor2`, `nor3`).
    pub cell: String,
    /// Name of the gate (in the gate-level netlist) this stage belongs to.
    pub gate: String,
}

/// Decomposes one gate kind with the given fan-in into primitive stages,
/// path input first.
pub fn decompose_kind(kind: GateKind, fanin: usize) -> Vec<&'static str> {
    match kind {
        GateKind::Not => vec!["inv"],
        GateKind::Buff => vec!["inv", "inv"],
        GateKind::Nand => nary("nand", fanin),
        GateKind::Nor => nary("nor", fanin),
        GateKind::And => {
            let mut v = nary("nand", fanin);
            v.push("inv");
            v
        }
        GateKind::Or => {
            let mut v = nary("nor", fanin);
            v.push("inv");
            v
        }
        GateKind::Dff => vec![],
    }
}

/// N-ary NAND/NOR as a primitive chain along the path input: the path
/// input enters a 2- or 3-input primitive; additional inputs beyond three
/// are reduced by preceding (off-path) gates, which contribute no stages
/// to the *path*. On-path we therefore need a single primitive, except
/// that fan-in > 3 inserts one extra inverting pair to restore polarity of
/// the reduction tree.
fn nary(base: &'static str, fanin: usize) -> Vec<&'static str> {
    match (base, fanin) {
        (_, 0 | 1) => vec!["inv"],
        ("nand", 2) => vec!["nand2"],
        ("nand", 3) => vec!["nand3"],
        ("nor", 2) => vec!["nor2"],
        ("nor", 3) => vec!["nor3"],
        // Wide gates: the path input goes through a 3-input primitive and
        // an inverter pair that merges the off-path reduction tree.
        ("nand", _) => vec!["nand3", "inv", "inv"],
        ("nor", _) => vec!["nor3", "inv", "inv"],
        _ => vec!["inv"],
    }
}

/// Decomposes a critical path (from [`crate::timing::longest_path`]) into
/// primitive stages.
///
/// # Errors
///
/// Returns a message if a path gate is missing from the netlist.
pub fn decompose_to_primitives(
    nl: &GateNetlist,
    report: &TimingReport,
) -> Result<Vec<PathStage>, String> {
    let mut stages = Vec::new();
    for gname in &report.critical_path {
        let gate = nl
            .driver(gname)
            .ok_or_else(|| format!("path gate {gname} not found"))?;
        for cell in decompose_kind(gate.kind, gate.inputs.len()) {
            stages.push(PathStage {
                cell: cell.to_string(),
                gate: gname.clone(),
            });
        }
    }
    Ok(stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benches::benchmark;
    use crate::timing::longest_path;

    #[test]
    fn kind_decomposition() {
        assert_eq!(decompose_kind(GateKind::Not, 1), vec!["inv"]);
        assert_eq!(decompose_kind(GateKind::Buff, 1), vec!["inv", "inv"]);
        assert_eq!(decompose_kind(GateKind::Nand, 2), vec!["nand2"]);
        assert_eq!(decompose_kind(GateKind::Nor, 3), vec!["nor3"]);
        assert_eq!(decompose_kind(GateKind::And, 2), vec!["nand2", "inv"]);
        assert_eq!(decompose_kind(GateKind::Or, 2), vec!["nor2", "inv"]);
        assert_eq!(
            decompose_kind(GateKind::Nand, 5),
            vec!["nand3", "inv", "inv"]
        );
        assert!(decompose_kind(GateKind::Dff, 1).is_empty());
    }

    #[test]
    fn s27_path_decomposes() {
        let b = benchmark("s27").unwrap();
        let rep = longest_path(&b.netlist).unwrap();
        let stages = decompose_to_primitives(&b.netlist, &rep).unwrap();
        // 6 gates: NOT, AND, OR, NAND, NOR, NOR → AND and OR add one INV
        // each → 8 primitive stages.
        assert_eq!(stages.len(), 8, "stages {stages:?}");
        assert_eq!(stages[0].cell, "inv");
        assert!(stages
            .iter()
            .all(|s| ["inv", "nand2", "nand3", "nor2", "nor3"].contains(&s.cell.as_str())));
    }

    #[test]
    fn synthetic_path_decomposes_to_exactly_paper_stages() {
        // Synthetic backbones use only single-primitive kinds.
        for name in ["s208", "s444", "s832"] {
            let b = benchmark(name).unwrap();
            let rep = longest_path(&b.netlist).unwrap();
            let stages = decompose_to_primitives(&b.netlist, &rep).unwrap();
            assert_eq!(stages.len(), b.paper_stages, "{name}");
        }
    }
}
