//! Unit-delay timing analysis and critical-path extraction.
//!
//! Every combinational gate costs one delay unit; DFF outputs and primary
//! inputs are timing sources (arrival 0); DFF inputs and primary outputs
//! are sinks. The longest source-to-sink path is the critical path the
//! paper's Example 3 analyzes.

use crate::netlist::GateNetlist;
use std::collections::HashMap;

/// Result of the unit-delay analysis.
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// Unit-delay arrival time per signal.
    pub arrival: HashMap<String, usize>,
    /// Sink signal terminating the critical path.
    pub critical_sink: String,
    /// Gates on the critical path, source side first (gate output names).
    pub critical_path: Vec<String>,
}

impl TimingReport {
    /// Length (number of gates) of the critical path.
    pub fn depth(&self) -> usize {
        self.critical_path.len()
    }
}

/// Runs the unit-delay analysis and extracts the longest path.
///
/// # Errors
///
/// Returns a message if the combinational graph has a cycle (a netlist
/// bug) or no sinks.
pub fn longest_path(nl: &GateNetlist) -> Result<TimingReport, String> {
    // Arrival times by memoized DFS over the combinational fan-in cones.
    let mut arrival: HashMap<String, usize> = HashMap::new();
    let mut best_pred: HashMap<String, Option<String>> = HashMap::new();
    for s in nl.timing_sources() {
        arrival.insert(s.clone(), 0);
        best_pred.insert(s, None);
    }

    // Iterative DFS with an explicit stack and a visiting set for cycle
    // detection.
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        Visiting,
        Done,
    }
    let mut marks: HashMap<String, Mark> = HashMap::new();
    for s in arrival.keys() {
        marks.insert(s.clone(), Mark::Done);
    }

    fn visit(
        sig: &str,
        nl: &GateNetlist,
        arrival: &mut HashMap<String, usize>,
        best_pred: &mut HashMap<String, Option<String>>,
        marks: &mut HashMap<String, Mark>,
    ) -> Result<usize, String> {
        if let Some(&a) = arrival.get(sig) {
            return Ok(a);
        }
        match marks.get(sig) {
            Some(Mark::Visiting) => {
                return Err(format!("combinational cycle through {sig}"));
            }
            Some(Mark::Done) => {}
            None => {}
        }
        let gate = match nl.driver(sig) {
            Some(g) if !g.kind.is_dff() => g.clone(),
            // Undriven signal (dangling input) or DFF handled as source.
            _ => {
                arrival.insert(sig.to_string(), 0);
                best_pred.insert(sig.to_string(), None);
                return Ok(0);
            }
        };
        marks.insert(sig.to_string(), Mark::Visiting);
        let mut best = 0usize;
        let mut pred = None;
        for inp in &gate.inputs {
            let a = visit(inp, nl, arrival, best_pred, marks)?;
            if a >= best {
                best = a;
                pred = Some(inp.clone());
            }
        }
        let a = best + 1;
        marks.insert(sig.to_string(), Mark::Done);
        arrival.insert(sig.to_string(), a);
        best_pred.insert(sig.to_string(), pred);
        Ok(a)
    }

    let sinks = nl.timing_sinks();
    if sinks.is_empty() {
        return Err("netlist has no timing sinks".into());
    }
    let mut critical_sink = String::new();
    let mut critical_arrival = 0usize;
    for sink in &sinks {
        let a = visit(sink, nl, &mut arrival, &mut best_pred, &mut marks)?;
        if a > critical_arrival || critical_sink.is_empty() {
            critical_arrival = a;
            critical_sink = sink.clone();
        }
    }
    // Trace back the path of gates.
    let mut path = Vec::new();
    let mut cur = critical_sink.clone();
    loop {
        if nl.driver(&cur).map(|g| !g.kind.is_dff()) == Some(true) {
            path.push(cur.clone());
        }
        match best_pred.get(&cur).and_then(|p| p.clone()) {
            Some(p) => cur = p,
            None => break,
        }
    }
    path.reverse();
    Ok(TimingReport {
        arrival,
        critical_sink,
        critical_path: path,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benches::benchmark;
    use crate::netlist::parse_bench;

    #[test]
    fn chain_depth() {
        let nl = parse_bench(
            "chain",
            "\
INPUT(a)
OUTPUT(y)
n1 = NOT(a)
n2 = NOT(n1)
n3 = NOT(n2)
y = NOT(n3)
",
        )
        .unwrap();
        let rep = longest_path(&nl).unwrap();
        assert_eq!(rep.depth(), 4);
        assert_eq!(rep.critical_path, vec!["n1", "n2", "n3", "y"]);
        assert_eq!(rep.critical_sink, "y");
    }

    #[test]
    fn dff_breaks_paths() {
        let nl = parse_bench(
            "latch",
            "\
INPUT(a)
OUTPUT(y)
n1 = NOT(a)
q = DFF(n1)
n2 = NOT(q)
n3 = NOT(n2)
y = NOT(n3)
",
        )
        .unwrap();
        let rep = longest_path(&nl).unwrap();
        // Longest latch-to-latch segment: q → n2 → n3 → y (3 gates).
        assert_eq!(rep.depth(), 3);
    }

    #[test]
    fn s27_critical_path() {
        let nl = benchmark("s27").unwrap().netlist;
        let rep = longest_path(&nl).unwrap();
        // Known structure: G0 → G14 → G8 → G15/G16 → G9 → G11 → G10.
        assert_eq!(rep.depth(), 6, "path {:?}", rep.critical_path);
        assert_eq!(rep.critical_sink, "G10");
        assert_eq!(rep.critical_path.first().map(String::as_str), Some("G14"));
    }

    #[test]
    fn cycle_detected() {
        let nl = parse_bench(
            "cyc",
            "\
INPUT(a)
OUTPUT(y)
n1 = NAND(a, n2)
n2 = NAND(a, n1)
y = NOT(n2)
",
        )
        .unwrap();
        assert!(longest_path(&nl).unwrap_err().contains("cycle"));
    }

    #[test]
    fn undriven_signal_is_source() {
        let nl = parse_bench(
            "dangling",
            "\
INPUT(a)
OUTPUT(y)
y = NAND(a, floating)
",
        )
        .unwrap();
        let rep = longest_path(&nl).unwrap();
        assert_eq!(rep.depth(), 1);
    }
}
