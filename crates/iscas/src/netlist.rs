//! Gate-level netlists and the ISCAS-89 `.bench` format parser.

use std::collections::HashMap;
use std::fmt;

/// Gate function in a gate-level netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Logical AND (any fan-in ≥ 2).
    And,
    /// Logical NAND.
    Nand,
    /// Logical OR.
    Or,
    /// Logical NOR.
    Nor,
    /// Inverter (fan-in 1).
    Not,
    /// Buffer (fan-in 1).
    Buff,
    /// D flip-flop (fan-in 1) — the latch boundary of timing analysis.
    Dff,
}

impl GateKind {
    fn parse(s: &str) -> Option<GateKind> {
        match s.to_ascii_uppercase().as_str() {
            "AND" => Some(GateKind::And),
            "NAND" => Some(GateKind::Nand),
            "OR" => Some(GateKind::Or),
            "NOR" => Some(GateKind::Nor),
            "NOT" | "INV" => Some(GateKind::Not),
            "BUF" | "BUFF" => Some(GateKind::Buff),
            "DFF" => Some(GateKind::Dff),
            _ => None,
        }
    }

    /// `true` for the sequential element.
    pub fn is_dff(self) -> bool {
        self == GateKind::Dff
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Not => "NOT",
            GateKind::Buff => "BUFF",
            GateKind::Dff => "DFF",
        };
        write!(f, "{s}")
    }
}

/// One gate instance: `output = kind(inputs…)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// Output signal name (also the gate's name).
    pub output: String,
    /// Gate function.
    pub kind: GateKind,
    /// Input signal names.
    pub inputs: Vec<String>,
}

/// A gate-level netlist in the ISCAS-89 sense.
#[derive(Debug, Clone, Default)]
pub struct GateNetlist {
    /// Circuit name.
    pub name: String,
    /// Primary inputs.
    pub inputs: Vec<String>,
    /// Primary outputs.
    pub outputs: Vec<String>,
    /// All gates including DFFs, in file order.
    pub gates: Vec<Gate>,
    by_output: HashMap<String, usize>,
}

impl GateNetlist {
    /// Builds the netlist and its output index.
    pub fn new(name: &str, inputs: Vec<String>, outputs: Vec<String>, gates: Vec<Gate>) -> Self {
        let by_output = gates
            .iter()
            .enumerate()
            .map(|(i, g)| (g.output.clone(), i))
            .collect();
        GateNetlist {
            name: name.to_string(),
            inputs,
            outputs,
            gates,
            by_output,
        }
    }

    /// The gate driving a signal, if any (primary inputs have none).
    pub fn driver(&self, signal: &str) -> Option<&Gate> {
        self.by_output.get(signal).map(|&i| &self.gates[i])
    }

    /// Number of combinational gates (excluding DFFs).
    pub fn combinational_count(&self) -> usize {
        self.gates.iter().filter(|g| !g.kind.is_dff()).count()
    }

    /// Number of DFFs.
    pub fn dff_count(&self) -> usize {
        self.gates.iter().filter(|g| g.kind.is_dff()).count()
    }

    /// Signals that act as combinational *sources*: primary inputs and DFF
    /// outputs.
    pub fn timing_sources(&self) -> Vec<String> {
        let mut out = self.inputs.clone();
        for g in &self.gates {
            if g.kind.is_dff() {
                out.push(g.output.clone());
            }
        }
        out
    }

    /// Signals that act as combinational *sinks*: primary outputs and DFF
    /// inputs.
    pub fn timing_sinks(&self) -> Vec<String> {
        let mut out = self.outputs.clone();
        for g in &self.gates {
            if g.kind.is_dff() {
                out.extend(g.inputs.iter().cloned());
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

/// Parses an ISCAS-89 `.bench` description.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
///
/// # Example
///
/// ```
/// let nl = linvar_iscas::parse_bench("demo", "\
/// INPUT(a)
/// OUTPUT(y)
/// y = NAND(a, a)
/// ").map_err(|e| e.to_string())?;
/// assert_eq!(nl.gates.len(), 1);
/// # Ok::<(), String>(())
/// ```
pub fn parse_bench(name: &str, text: &str) -> Result<GateNetlist, String> {
    let mut inputs = Vec::new();
    let mut outputs = Vec::new();
    let mut gates = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |msg: &str| format!("{name}.bench line {}: {msg}", lineno + 1);
        if let Some(rest) = line.strip_prefix("INPUT(") {
            let sig = rest.strip_suffix(')').ok_or_else(|| err("missing )"))?;
            inputs.push(sig.trim().to_string());
        } else if let Some(rest) = line.strip_prefix("OUTPUT(") {
            let sig = rest.strip_suffix(')').ok_or_else(|| err("missing )"))?;
            outputs.push(sig.trim().to_string());
        } else if let Some((lhs, rhs)) = line.split_once('=') {
            let output = lhs.trim().to_string();
            let rhs = rhs.trim();
            let open = rhs.find('(').ok_or_else(|| err("missing ("))?;
            let kind = GateKind::parse(rhs[..open].trim())
                .ok_or_else(|| err(&format!("unknown gate kind {}", &rhs[..open])))?;
            let body = rhs[open + 1..]
                .strip_suffix(')')
                .ok_or_else(|| err("missing )"))?;
            let ins: Vec<String> = body
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            if ins.is_empty() {
                return Err(err("gate with no inputs"));
            }
            let expected_single = matches!(kind, GateKind::Not | GateKind::Buff | GateKind::Dff);
            if expected_single && ins.len() != 1 {
                return Err(err("single-input gate with multiple inputs"));
            }
            if !expected_single && ins.len() < 2 {
                return Err(err("multi-input gate with one input"));
            }
            gates.push(Gate {
                output,
                kind,
                inputs: ins,
            });
        } else {
            return Err(err("unrecognized line"));
        }
    }
    Ok(GateNetlist::new(name, inputs, outputs, gates))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = "\
# comment
INPUT(a)
INPUT(b)
OUTPUT(y)
q = DFF(d)
n1 = NAND(a, q)
d = NOR(n1, b)
y = NOT(d)
";

    #[test]
    fn parse_small_bench() {
        let nl = parse_bench("small", SMALL).unwrap();
        assert_eq!(nl.inputs, vec!["a", "b"]);
        assert_eq!(nl.outputs, vec!["y"]);
        assert_eq!(nl.gates.len(), 4);
        assert_eq!(nl.dff_count(), 1);
        assert_eq!(nl.combinational_count(), 3);
        let d = nl.driver("d").unwrap();
        assert_eq!(d.kind, GateKind::Nor);
        assert!(nl.driver("a").is_none(), "primary inputs have no driver");
    }

    #[test]
    fn timing_sources_and_sinks() {
        let nl = parse_bench("small", SMALL).unwrap();
        let sources = nl.timing_sources();
        assert!(sources.contains(&"a".to_string()));
        assert!(sources.contains(&"q".to_string()), "dff output is a source");
        let sinks = nl.timing_sinks();
        assert!(sinks.contains(&"y".to_string()));
        assert!(sinks.contains(&"d".to_string()), "dff input is a sink");
    }

    #[test]
    fn parse_errors_name_lines() {
        assert!(parse_bench("x", "junk line")
            .unwrap_err()
            .contains("line 1"));
        assert!(parse_bench("x", "y = XYZ(a, b)")
            .unwrap_err()
            .contains("unknown gate"));
        assert!(parse_bench("x", "y = NOT(a, b)")
            .unwrap_err()
            .contains("single-input"));
        assert!(parse_bench("x", "y = NAND(a)")
            .unwrap_err()
            .contains("multi-input"));
        assert!(parse_bench("x", "INPUT(a").is_err());
    }

    #[test]
    fn gate_kind_display_roundtrip() {
        for k in [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Not,
            GateKind::Buff,
            GateKind::Dff,
        ] {
            assert_eq!(GateKind::parse(&k.to_string()), Some(k));
        }
    }
}
