//! Piecewise-linear waveforms and the saturated-ramp abstraction.
//!
//! The framework propagates "a fine resolution waveform model which
//! captures almost the exact waveform … represented by a piece-wise linear
//! model that adaptively selects the breakpoints" (paper §4.3.1). The
//! Gradient Analysis flow abstracts waveforms further to the saturated
//! ramp with the 50 % arrival point `M` and transition time `S`
//! (paper eq. 29).

use crate::error::TetaError;

/// A piecewise-linear waveform: `(time, value)` samples with constant
/// extrapolation outside the sampled range.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Waveform {
    points: Vec<(f64, f64)>,
}

impl Waveform {
    /// Creates a waveform from `(time, value)` samples.
    ///
    /// # Panics
    ///
    /// Panics if times are not strictly increasing.
    pub fn from_points(points: Vec<(f64, f64)>) -> Self {
        for w in points.windows(2) {
            assert!(
                w[0].0 < w[1].0,
                "waveform times must be strictly increasing"
            );
        }
        Waveform { points }
    }

    /// Creates a saturated-ramp waveform from `v0` to `v1` starting at
    /// `t0` with transition time `tr`.
    pub fn ramp(v0: f64, v1: f64, t0: f64, tr: f64) -> Self {
        Waveform {
            points: vec![(t0, v0), (t0 + tr.max(1e-18), v1)],
        }
    }

    /// Constant waveform.
    pub fn constant(v: f64) -> Self {
        Waveform {
            points: vec![(0.0, v)],
        }
    }

    /// The sample points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Value at time `t` (linear interpolation, constant extrapolation).
    pub fn eval(&self, t: f64) -> f64 {
        let p = &self.points;
        if p.is_empty() {
            return 0.0;
        }
        if t <= p[0].0 {
            return p[0].1;
        }
        if t >= p[p.len() - 1].0 {
            return p[p.len() - 1].1;
        }
        let mut lo = 0;
        let mut hi = p.len() - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if p[mid].0 <= t {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let (t0, v0) = p[lo];
        let (t1, v1) = p[hi];
        v0 + (v1 - v0) * (t - t0) / (t1 - t0)
    }

    /// First and last values.
    pub fn initial_value(&self) -> f64 {
        self.points.first().map_or(0.0, |p| p.1)
    }

    /// Value after the last breakpoint.
    pub fn final_value(&self) -> f64 {
        self.points.last().map_or(0.0, |p| p.1)
    }

    /// Time of the last breakpoint.
    pub fn end_time(&self) -> f64 {
        self.points.last().map_or(0.0, |p| p.0)
    }

    /// `true` if the waveform ends higher than it starts.
    pub fn is_rising(&self) -> bool {
        self.final_value() > self.initial_value()
    }

    /// Adaptive breakpoint selection: drops samples that a linear
    /// interpolation of their neighbours reproduces within `tol` (absolute).
    /// This is the "adaptively selects the breakpoints" compression of the
    /// paper; typical savings are 5–20x on smooth stage outputs.
    pub fn compress(&self, tol: f64) -> Waveform {
        if self.points.len() <= 2 {
            return self.clone();
        }
        let mut kept = vec![self.points[0]];
        let mut anchor = 0;
        for k in 1..self.points.len() - 1 {
            // Check all points between anchor and k+1 against the chord.
            let (t0, v0) = self.points[anchor];
            let (t1, v1) = self.points[k + 1];
            let mut ok = true;
            for p in &self.points[anchor + 1..=k] {
                let interp = v0 + (v1 - v0) * (p.0 - t0) / (t1 - t0);
                if (interp - p.1).abs() > tol {
                    ok = false;
                    break;
                }
            }
            if !ok {
                kept.push(self.points[k]);
                anchor = k;
            }
        }
        kept.push(*self.points.last().expect("nonempty"));
        Waveform { points: kept }
    }

    /// Returns the waveform translated in time by `dt` (positive shifts
    /// later). Stage-by-stage path analysis uses this to rebase each
    /// stage's input near the time origin so simulation windows stay short.
    pub fn shifted(&self, dt: f64) -> Waveform {
        Waveform {
            points: self.points.iter().map(|&(t, v)| (t + dt, v)).collect(),
        }
    }

    /// Returns the waveform truncated after `t_max` (constant extrapolation
    /// continues from the last kept sample). Path analysis trims each stage
    /// output after it settles, so downstream simulation windows do not
    /// inherit the full upstream time span.
    pub fn truncated(&self, t_max: f64) -> Waveform {
        let mut points: Vec<(f64, f64)> = self
            .points
            .iter()
            .copied()
            .take_while(|&(t, _)| t <= t_max)
            .collect();
        if points.is_empty() {
            if let Some(&first) = self.points.first() {
                points.push(first);
            }
        }
        Waveform { points }
    }

    /// Time of the first crossing of `level` in the given direction, or
    /// `None`.
    pub fn crossing(&self, level: f64, rising: bool) -> Option<f64> {
        for w in self.points.windows(2) {
            let ((t0, v0), (t1, v1)) = (w[0], w[1]);
            let crossed = if rising {
                v0 < level && v1 >= level
            } else {
                v0 > level && v1 <= level
            };
            if crossed {
                if (v1 - v0).abs() < 1e-300 {
                    return Some(t1);
                }
                return Some(t0 + (t1 - t0) * (level - v0) / (v1 - v0));
            }
        }
        None
    }

    /// Extracts the saturated-ramp abstraction `(M, S)` between the given
    /// rails: `M` is the 50 % arrival time, `S` the full-swing transition
    /// time inferred from the 10–90 % interval.
    ///
    /// # Errors
    ///
    /// Returns [`TetaError::IncompleteTransition`] if the waveform does not
    /// cross the required levels.
    pub fn to_saturated_ramp(&self, v_low: f64, v_high: f64) -> Result<SaturatedRamp, TetaError> {
        let swing = v_high - v_low;
        let rising = self.is_rising();
        let m = self
            .crossing(v_low + 0.5 * swing, rising)
            .ok_or(TetaError::IncompleteTransition { what: "50% point" })?;
        let (l10, l90) = (v_low + 0.1 * swing, v_low + 0.9 * swing);
        let (first, second) = if rising { (l10, l90) } else { (l90, l10) };
        let t_first = self
            .crossing(first, rising)
            .ok_or(TetaError::IncompleteTransition { what: "10% point" })?;
        let t_second = self
            .crossing(second, rising)
            .ok_or(TetaError::IncompleteTransition { what: "90% point" })?;
        let s = (t_second - t_first) / 0.8;
        Ok(SaturatedRamp { m, s, rising })
    }
}

/// Saturated-ramp waveform parameters `(M, S)` — the 50 % arrival point and
/// the (full-swing-equivalent) transition time (paper eq. 29).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaturatedRamp {
    /// 50 % arrival time (s).
    pub m: f64,
    /// Full-swing transition time (s).
    pub s: f64,
    /// Transition direction.
    pub rising: bool,
}

impl SaturatedRamp {
    /// Materializes the ramp as a waveform between the given rails.
    pub fn to_waveform(&self, v_low: f64, v_high: f64) -> Waveform {
        let (v0, v1) = if self.rising {
            (v_low, v_high)
        } else {
            (v_high, v_low)
        };
        let t0 = self.m - self.s / 2.0;
        Waveform::ramp(v0, v1, t0, self.s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_eval_and_extrapolation() {
        let w = Waveform::ramp(0.0, 1.8, 1e-9, 2e-9);
        assert_eq!(w.eval(0.0), 0.0);
        assert!((w.eval(2e-9) - 0.9).abs() < 1e-12);
        assert_eq!(w.eval(9e-9), 1.8);
        assert!(w.is_rising());
        assert_eq!(w.initial_value(), 0.0);
        assert_eq!(w.final_value(), 1.8);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotonic_times_panic() {
        let _ = Waveform::from_points(vec![(1.0, 0.0), (0.5, 1.0)]);
    }

    #[test]
    fn compress_straight_line() {
        // 100 collinear samples compress to 2 points.
        let points: Vec<(f64, f64)> = (0..100).map(|k| (k as f64, 2.0 * k as f64)).collect();
        let w = Waveform::from_points(points).compress(1e-9);
        assert_eq!(w.points().len(), 2);
        assert!((w.eval(50.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn compress_keeps_corners() {
        let w = Waveform::from_points(vec![
            (0.0, 0.0),
            (1.0, 0.0),
            (2.0, 1.0),
            (3.0, 1.0),
            (4.0, 1.0),
        ]);
        let c = w.compress(1e-6);
        // The two corner points must survive.
        assert!(c.points().len() >= 4 - 1);
        for t in [0.5, 1.5, 2.5, 3.5] {
            assert!((c.eval(t) - w.eval(t)).abs() < 1e-6);
        }
    }

    #[test]
    fn crossing_detection() {
        let w = Waveform::ramp(0.0, 1.0, 0.0, 2.0);
        let t = w.crossing(0.5, true).unwrap();
        assert!((t - 1.0).abs() < 1e-12);
        assert!(w.crossing(0.5, false).is_none());
    }

    #[test]
    fn saturated_ramp_roundtrip() {
        let sr = SaturatedRamp {
            m: 5e-9,
            s: 2e-9,
            rising: true,
        };
        let w = sr.to_waveform(0.0, 1.8);
        let back = w.to_saturated_ramp(0.0, 1.8).unwrap();
        assert!((back.m - sr.m).abs() < 1e-12);
        assert!((back.s - sr.s).abs() < 1e-12);
        assert!(back.rising);
    }

    #[test]
    fn falling_ramp_extraction() {
        let w = Waveform::ramp(1.8, 0.0, 1e-9, 4e-9);
        let sr = w.to_saturated_ramp(0.0, 1.8).unwrap();
        assert!(!sr.rising);
        assert!((sr.m - 3e-9).abs() < 1e-12);
        assert!((sr.s - 4e-9).abs() < 1e-11);
    }

    #[test]
    fn incomplete_transition_is_error() {
        let w = Waveform::ramp(0.0, 0.4, 0.0, 1e-9); // never reaches 0.9 V
        assert!(matches!(
            w.to_saturated_ramp(0.0, 1.8),
            Err(TetaError::IncompleteTransition { .. })
        ));
    }

    #[test]
    fn constant_waveform() {
        let w = Waveform::constant(1.8);
        assert_eq!(w.eval(-1.0), 1.8);
        assert_eq!(w.eval(100.0), 1.8);
        assert!(!w.is_rising());
    }
}
