//! TETA: the linear-centric transistor-level waveform evaluation engine.
//!
//! Reimplementation of the engine the framework embeds (paper §3.2,
//! refs \[6\]\[7\]\[9\]): nonlinear drivers are linearized once with *Successive
//! Chords* (fixed chord conductances, computed at nominal parameters and
//! folded into the linear load before reduction — paper eq. 12), and the
//! multiport load, given as a stabilized pole/residue macromodel, is
//! evaluated by **recursive convolution**. Each time point solves a small
//! fixed-point iteration between the chord Norton sources and the
//! instantaneous impedance; no matrix factorizations of the full network
//! ever occur during simulation, which is where the orders-of-magnitude
//! speedup over the SPICE baseline comes from.
//!
//! Because the chord conductances do not depend on the fluctuating wire and
//! device parameters, one macromodel characterization serves an entire
//! Monte-Carlo run — the framework's key efficiency property.
//!
//! * [`waveform`] — piecewise-linear waveforms with adaptive breakpoints
//!   and the saturated-ramp (M, S) abstraction of paper §4.2;
//! * [`conv`] — recursive convolution of a pole/residue multiport;
//! * [`engine`] — the successive-chords stage solver;
//! * [`stage`] — logic-stage assembly: equivalent driver + effective load.

// Dense matrix kernels index rows/columns explicitly; iterator
// adaptors would obscure the classic algorithm shapes.
#![allow(clippy::needless_range_loop)]
// The per-sample hot path (stage evaluation, SC iteration, recursive
// convolution) must not clone what a borrow or a workspace buffer can serve.
#![deny(clippy::redundant_clone)]

pub mod conv;
pub mod engine;
pub mod error;
pub mod stage;
pub mod waveform;

pub use conv::RecursiveConvolution;
pub use engine::{StageSolver, StageSolverOptions, StageStats};
pub use error::TetaError;
pub use stage::{StageModel, StageRecovery, StageResult};
pub use waveform::{SaturatedRamp, Waveform};
