//! The successive-chords stage solver.
//!
//! Each time point solves the fixed point between the chord Norton sources
//! of the nonlinear drivers and the instantaneous impedance of the
//! (stabilized) pole/residue load:
//!
//! ```text
//! v⁽ᵐ⁾ = Z_inst · i_eq(v⁽ᵐ⁻¹⁾) + hist,
//! i_eq(v)_j = I_driver,j(v_in,j(t), v_j) + G_out,j · v_j
//! ```
//!
//! The chord conductances `G_out` were folded into the load *before*
//! reduction (paper eq. 12), so the macromodel already sees them; the
//! Norton source is the residual nonlinearity. Because the chord bounds
//! the device slope, the map is a contraction for reasonable timesteps.
//! No full-matrix factorization occurs anywhere in the time loop.

use crate::conv::RecursiveConvolution;
use crate::error::TetaError;
use crate::waveform::Waveform;
use linvar_devices::{DeviceVariation, MosParams};
use linvar_mor::PoleResidueModel;

/// One nonlinear driver bound to a load port: a CMOS equivalent inverter
/// (NMOS pull-down + PMOS pull-up) driven by a known input waveform.
#[derive(Debug, Clone)]
pub struct DriverSpec {
    /// Port index of the load the driver output connects to.
    pub port: usize,
    /// Gate input waveform.
    pub input: Waveform,
    /// NMOS model.
    pub nmos: MosParams,
    /// PMOS model.
    pub pmos: MosParams,
    /// NMOS width (m).
    pub wn: f64,
    /// PMOS width (m).
    pub wp: f64,
    /// Drawn channel length (m).
    pub length: f64,
    /// Chord output conductance folded into the load (S). Must equal the
    /// value used when the effective load was built.
    pub g_out: f64,
}

/// Options of the stage solver.
#[derive(Debug, Clone)]
pub struct StageSolverOptions {
    /// Timestep (s).
    pub h: f64,
    /// Stop time (s).
    pub t_end: f64,
    /// Supply voltage (V).
    pub vdd: f64,
    /// SC convergence tolerance on port voltages (V).
    pub vtol: f64,
    /// SC iteration limit per time point.
    pub max_iterations: usize,
    /// Device variation sample (ΔL, ΔV_T). The chords stay nominal.
    pub variation: DeviceVariation,
    /// Adaptive-breakpoint compression tolerance for the recorded
    /// waveforms (V); 0 disables compression.
    pub compress_tol: f64,
    /// SC under-relaxation factor in `(0, 1]`. `1.0` is the plain chord
    /// fixed point; smaller values damp the update
    /// `v ← v + λ·(v_new − v)`, trading iterations for contraction — the
    /// recovery ladder's "chord re-selection" analog when the plain
    /// iteration diverges.
    pub sc_damping: f64,
}

impl StageSolverOptions {
    /// Reasonable defaults for the given supply and horizon.
    pub fn new(vdd: f64, t_end: f64, h: f64) -> Self {
        StageSolverOptions {
            h,
            t_end,
            vdd,
            vtol: 1e-6,
            max_iterations: 400,
            variation: DeviceVariation::nominal(),
            compress_tol: 0.0,
            sc_damping: 1.0,
        }
    }
}

/// Performance counters of one stage evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Accepted time points.
    pub steps: usize,
    /// Total SC iterations.
    pub sc_iterations: usize,
}

/// The stage solver: load + drivers, ready to run.
#[derive(Debug)]
pub struct StageSolver {
    conv: RecursiveConvolution,
    drivers: Vec<DriverSpec>,
    opts: StageSolverOptions,
}

impl StageSolver {
    /// Creates a solver for the given stabilized load model and drivers.
    ///
    /// # Errors
    ///
    /// Returns [`TetaError::BadStage`] if a driver references a port out of
    /// range, two drivers share a port, or the model is unstable (run the
    /// stability filter first).
    pub fn new(
        load: &PoleResidueModel,
        drivers: Vec<DriverSpec>,
        opts: StageSolverOptions,
    ) -> Result<Self, TetaError> {
        let np = load.port_count();
        let mut seen = vec![false; np];
        for d in &drivers {
            if d.port >= np {
                return Err(TetaError::BadStage(format!(
                    "driver port {} out of range ({} ports)",
                    d.port, np
                )));
            }
            if seen[d.port] {
                return Err(TetaError::BadStage(format!(
                    "two drivers on port {}",
                    d.port
                )));
            }
            seen[d.port] = true;
        }
        if !load.is_stable() {
            return Err(TetaError::BadStage(
                "load model has unstable poles; apply the stability filter first".into(),
            ));
        }
        if !(opts.h > 0.0 && opts.t_end > opts.h) {
            return Err(TetaError::BadStage("bad time axis".into()));
        }
        if !(opts.sc_damping > 0.0 && opts.sc_damping <= 1.0) {
            return Err(TetaError::BadStage(format!(
                "sc_damping must be in (0, 1], got {}",
                opts.sc_damping
            )));
        }
        Ok(StageSolver {
            conv: RecursiveConvolution::new(load, opts.h),
            drivers,
            opts,
        })
    }

    /// Driver Norton source current at a port: residual device current plus
    /// the chord make-up term.
    fn i_eq(&self, d: &DriverSpec, vin: f64, vout: f64) -> f64 {
        let dl = self.opts.variation.delta_l();
        let dvt = self.opts.variation.delta_vt();
        let vdd = self.opts.vdd;
        let n = d.nmos.eval(vin, vout, 0.0, d.wn, d.length, dl, dvt);
        let p = d
            .pmos
            .eval(vin - vdd, vout - vdd, 0.0, d.wp, d.length, dl, dvt);
        // Injection into the port: -ids_n - ids_p; add back the chord
        // conductance that lives inside the load.
        -(n.ids + p.ids) + d.g_out * vout
    }

    /// Applies SC under-relaxation `v_new ← v + λ·(v_new − v)` in place.
    ///
    /// At `λ = 1.0` this is a no-op branch (not an algebraic identity):
    /// the undamped path must remain bitwise identical to the legacy
    /// iteration so determinism guarantees carry over.
    fn damp(&self, v_new: &mut [f64], v: &[f64]) {
        let lambda = self.opts.sc_damping;
        if lambda < 1.0 {
            for (a, b) in v_new.iter_mut().zip(v) {
                *a = *b + lambda * (*a - *b);
            }
        }
    }

    /// Runs the stage, returning one waveform per load port and the SC
    /// statistics.
    ///
    /// # Errors
    ///
    /// Returns [`TetaError::ScDivergence`] if the fixed point fails at any
    /// time point.
    pub fn run(mut self) -> Result<(Vec<Waveform>, StageStats), TetaError> {
        let np = self.conv.port_count();
        let h = self.opts.h;
        let steps = (self.opts.t_end / h).ceil() as usize;
        let mut stats = StageStats::default();

        // ---- DC initialization: v = Z(0)·i_eq(v) fixed point -----------
        let zdc = self.conv.dc_impedance();
        let mut v = vec![0.0; np];
        // Start from the logical quiescent levels: output of an inverting
        // driver with a low input is VDD, with a high input 0.
        for d in &self.drivers {
            let vin0 = d.input.initial_value();
            v[d.port] = if vin0 < self.opts.vdd / 2.0 {
                self.opts.vdd
            } else {
                0.0
            };
        }
        // Gate input values are iteration-invariant at a fixed time, so
        // they are evaluated once per time point, not once per chord
        // iteration (same values, same results, far fewer waveform
        // interpolations — the inputs of late path stages carry hundreds
        // of breakpoints).
        let mut vin_at: Vec<f64> = self.drivers.iter().map(|d| d.input.eval(0.0)).collect();
        let mut i = vec![0.0; np];
        let mut v_new: Vec<f64> = Vec::with_capacity(np);
        for iter in 0..self.opts.max_iterations * 2 {
            for x in i.iter_mut() {
                *x = 0.0;
            }
            for (d, &vin) in self.drivers.iter().zip(&vin_at) {
                i[d.port] = self.i_eq(d, vin, v[d.port]);
            }
            zdc.mul_vec_into(&i, &mut v_new);
            self.damp(&mut v_new, &v);
            // NaN-aware convergence check: `f64::max` ignores NaN, so an
            // exploding fixed point could otherwise masquerade as
            // converged.
            let mut delta = 0.0_f64;
            let mut finite = true;
            for (a, b) in v_new.iter().zip(&v) {
                finite &= a.is_finite();
                delta = delta.max((a - b).abs());
            }
            // Buffer rotation instead of a move: `v` receives the new
            // iterate, the stale contents parked in `v_new` are fully
            // overwritten at the top of the next iteration.
            std::mem::swap(&mut v, &mut v_new);
            if !finite || v.iter().any(|x| x.abs() > 1e6) {
                return Err(TetaError::ScDivergence {
                    time: 0.0,
                    iterations: iter + 1,
                });
            }
            if delta < self.opts.vtol {
                break;
            }
            if iter == self.opts.max_iterations * 2 - 1 {
                return Err(TetaError::ScDivergence {
                    time: 0.0,
                    iterations: iter + 1,
                });
            }
        }
        self.conv.initialize_dc(&i);

        // ---- time loop ---------------------------------------------------
        // Every buffer of the SC fixed point lives outside the loop: the
        // steady state runs allocation-free (`hist`/`i_new`/`v_new` are
        // fully overwritten each step, `recorded` is sized up front), and
        // each rewrite below is bitwise identical to the allocating
        // original — same values, same operation order, only the
        // allocator traffic is gone.
        let mut recorded: Vec<Vec<(f64, f64)>> = (0..np)
            .map(|p| {
                let mut rec = Vec::with_capacity(steps + 1);
                rec.push((0.0, v[p]));
                rec
            })
            .collect();
        let mut hist: Vec<f64> = Vec::with_capacity(np);
        let mut i_new: Vec<f64> = Vec::with_capacity(np);
        let mut t = 0.0;
        for _ in 0..steps {
            t += h;
            self.conv.history_into(&mut hist);
            // Gate inputs depend only on `t`: evaluate once per step.
            vin_at.clear();
            vin_at.extend(self.drivers.iter().map(|d| d.input.eval(t)));
            // SC fixed point, warm-started from the previous voltages.
            let mut converged = false;
            i_new.clear();
            i_new.extend_from_slice(&i);
            for iter in 0..self.opts.max_iterations {
                stats.sc_iterations += 1;
                linvar_metrics::incr(linvar_metrics::Counter::ScChordIterations);
                for x in i_new.iter_mut() {
                    *x = 0.0;
                }
                for (d, &vin) in self.drivers.iter().zip(&vin_at) {
                    i_new[d.port] = self.i_eq(d, vin, v[d.port]);
                }
                self.conv.voltages_into(&i_new, &hist, &mut v_new);
                self.damp(&mut v_new, &v);
                let mut delta = 0.0_f64;
                let mut finite = true;
                for (a, b) in v_new.iter().zip(&v) {
                    finite &= a.is_finite();
                    delta = delta.max((a - b).abs());
                }
                std::mem::swap(&mut v, &mut v_new);
                // Check for blow-up *before* declaring convergence:
                // `f64::max` ignores NaN, so an all-NaN iterate would
                // otherwise read as delta = 0.
                if !finite || v.iter().any(|x| x.abs() > 1e3) {
                    return Err(TetaError::ScDivergence {
                        time: t,
                        iterations: iter + 1,
                    });
                }
                if delta < self.opts.vtol {
                    converged = true;
                    break;
                }
            }
            if !converged {
                return Err(TetaError::ScDivergence {
                    time: t,
                    iterations: self.opts.max_iterations,
                });
            }
            self.conv.advance(&i_new);
            i.copy_from_slice(&i_new);
            stats.steps += 1;
            for (p, rec) in recorded.iter_mut().enumerate() {
                rec.push((t, v[p]));
            }
        }
        let waveforms = recorded
            .into_iter()
            .map(|pts| {
                let w = Waveform::from_points(pts);
                if self.opts.compress_tol > 0.0 {
                    w.compress(self.opts.compress_tol)
                } else {
                    w
                }
            })
            .collect();
        Ok((waveforms, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linvar_devices::{chord_conductance, tech_018};
    use linvar_mor::PoleResidueModel;
    use linvar_numeric::{CMatrix, Complex, Matrix};

    /// One-port load: parallel combination of the chord conductance and a
    /// capacitor — Z(s) = (1/C)/(s + G/C).
    fn chord_rc_load(g: f64, c: f64) -> PoleResidueModel {
        let mut r = CMatrix::zeros(1, 1);
        r[(0, 0)] = Complex::from_real(1.0 / c);
        PoleResidueModel {
            poles: vec![Complex::from_real(-g / c)],
            residues: vec![r],
            direct: Matrix::zeros(1, 1),
        }
    }

    fn unit_driver(input: Waveform, g_out: f64) -> DriverSpec {
        let tech = tech_018();
        DriverSpec {
            port: 0,
            input,
            nmos: tech.library.get(&tech.library.nmos_name()).unwrap().clone(),
            pmos: tech.library.get(&tech.library.pmos_name()).unwrap().clone(),
            wn: tech.wn,
            wp: tech.wp,
            length: tech.library.lmin,
            g_out,
        }
    }

    fn unit_gout() -> f64 {
        let tech = tech_018();
        let n = tech.library.get(&tech.library.nmos_name()).unwrap();
        let p = tech.library.get(&tech.library.pmos_name()).unwrap();
        chord_conductance(n, tech.wn, tech.library.lmin, 1.8)
            + chord_conductance(p, tech.wp, tech.library.lmin, 1.8)
    }

    #[test]
    fn inverter_discharges_capacitive_load() {
        let g_out = unit_gout();
        let cl = 20e-15;
        let load = chord_rc_load(g_out, cl);
        let input = Waveform::ramp(0.0, 1.8, 20e-12, 50e-12);
        let driver = unit_driver(input, g_out);
        let opts = StageSolverOptions::new(1.8, 2e-9, 1e-12);
        let (waves, stats) = StageSolver::new(&load, vec![driver], opts)
            .unwrap()
            .run()
            .unwrap();
        let out = &waves[0];
        assert!(
            out.initial_value() > 1.7,
            "starts at VDD: {}",
            out.initial_value()
        );
        assert!(out.final_value() < 0.05, "ends at 0: {}", out.final_value());
        assert!(!out.is_rising());
        assert!(stats.steps > 100);
        // SC converges in a handful of iterations per point on average.
        let avg = stats.sc_iterations as f64 / stats.steps as f64;
        assert!(avg < 30.0, "avg SC iterations {avg}");
    }

    #[test]
    fn falling_input_produces_rising_output() {
        let g_out = unit_gout();
        let load = chord_rc_load(g_out, 10e-15);
        let input = Waveform::ramp(1.8, 0.0, 20e-12, 60e-12);
        let driver = unit_driver(input, g_out);
        let opts = StageSolverOptions::new(1.8, 2e-9, 1e-12);
        let (waves, _) = StageSolver::new(&load, vec![driver], opts)
            .unwrap()
            .run()
            .unwrap();
        assert!(waves[0].initial_value() < 0.05);
        assert!(waves[0].final_value() > 1.75);
    }

    #[test]
    fn delta_vt_slows_the_stage() {
        let g_out = unit_gout();
        let load = chord_rc_load(g_out, 30e-15);
        let input = Waveform::ramp(0.0, 1.8, 10e-12, 40e-12);
        let mut opts = StageSolverOptions::new(1.8, 3e-9, 1e-12);
        let delay_at = |opts: &StageSolverOptions| -> f64 {
            let (waves, _) =
                StageSolver::new(&load, vec![unit_driver(input.clone(), g_out)], opts.clone())
                    .unwrap()
                    .run()
                    .unwrap();
            waves[0].crossing(0.9, false).expect("output falls")
        };
        let nominal = delay_at(&opts);
        opts.variation = DeviceVariation::new(0.0, 2.0); // +60 mV threshold
        let slowed = delay_at(&opts);
        assert!(
            slowed > nominal,
            "higher VT must slow the stage: {slowed} vs {nominal}"
        );
    }

    #[test]
    fn chords_stay_nominal_under_variation() {
        // The load (with folded chords) is identical across variation
        // samples; only the Norton sources change. This is structural in
        // the API: the same `load` object is reused. Smoke-check it runs.
        let g_out = unit_gout();
        let load = chord_rc_load(g_out, 10e-15);
        for vt in [-1.0, 0.0, 1.0] {
            let mut opts = StageSolverOptions::new(1.8, 1e-9, 1e-12);
            opts.variation = DeviceVariation::new(0.0, vt);
            let input = Waveform::ramp(0.0, 1.8, 10e-12, 30e-12);
            let (waves, _) = StageSolver::new(&load, vec![unit_driver(input, g_out)], opts)
                .unwrap()
                .run()
                .unwrap();
            assert!(waves[0].final_value() < 0.1);
        }
    }

    #[test]
    fn bad_configurations_rejected() {
        let g_out = unit_gout();
        let load = chord_rc_load(g_out, 1e-15);
        let input = Waveform::ramp(0.0, 1.8, 0.0, 1e-11);
        let mut d = unit_driver(input.clone(), g_out);
        d.port = 5;
        let opts = StageSolverOptions::new(1.8, 1e-9, 1e-12);
        assert!(StageSolver::new(&load, vec![d], opts.clone()).is_err());

        // Duplicate port.
        let d1 = unit_driver(input.clone(), g_out);
        let d2 = unit_driver(input.clone(), g_out);
        assert!(StageSolver::new(&load, vec![d1, d2], opts.clone()).is_err());

        // Unstable load.
        let mut unstable = chord_rc_load(g_out, 1e-15);
        unstable.poles[0] = Complex::from_real(1e12);
        assert!(StageSolver::new(&unstable, vec![unit_driver(input, g_out)], opts).is_err());
    }

    #[test]
    fn undriven_port_observes_coupling() {
        // Two-port load: driven port 0, observed port 1 coupled through
        // the residue matrix.
        let g_out = unit_gout();
        let c = 20e-15;
        let mut r = CMatrix::zeros(2, 2);
        r[(0, 0)] = Complex::from_real(1.0 / c);
        r[(1, 1)] = Complex::from_real(1.0 / c);
        r[(0, 1)] = Complex::from_real(0.8 / c);
        r[(1, 0)] = Complex::from_real(0.8 / c);
        let load = PoleResidueModel {
            poles: vec![Complex::from_real(-g_out / c)],
            residues: vec![r],
            direct: Matrix::zeros(2, 2),
        };
        let input = Waveform::ramp(0.0, 1.8, 20e-12, 50e-12);
        let driver = unit_driver(input, g_out);
        let opts = StageSolverOptions::new(1.8, 2e-9, 1e-12);
        let (waves, _) = StageSolver::new(&load, vec![driver], opts)
            .unwrap()
            .run()
            .unwrap();
        // The observed port must move with the driven one (transfer 0.8).
        let v0 = waves[0].final_value();
        let v1 = waves[1].final_value();
        assert!(
            (v1 - 0.8 * v0).abs() < 0.15 + 0.1 * v0.abs(),
            "v0={v0} v1={v1}"
        );
    }

    #[test]
    fn damped_iteration_still_converges() {
        let g_out = unit_gout();
        let load = chord_rc_load(g_out, 20e-15);
        let input = Waveform::ramp(0.0, 1.8, 20e-12, 50e-12);
        let mut opts = StageSolverOptions::new(1.8, 1e-9, 1e-12);
        opts.sc_damping = 0.6;
        let (waves, stats) = StageSolver::new(&load, vec![unit_driver(input.clone(), g_out)], opts)
            .unwrap()
            .run()
            .unwrap();
        assert!(waves[0].final_value() < 0.05);
        assert!(stats.steps > 0);
        // Out-of-range damping is a configuration error, not a panic.
        let mut bad = StageSolverOptions::new(1.8, 1e-9, 1e-12);
        bad.sc_damping = 0.0;
        assert!(StageSolver::new(&load, vec![unit_driver(input, g_out)], bad).is_err());
    }

    #[test]
    fn compression_reduces_points() {
        let g_out = unit_gout();
        let load = chord_rc_load(g_out, 10e-15);
        let input = Waveform::ramp(0.0, 1.8, 10e-12, 30e-12);
        let mut opts = StageSolverOptions::new(1.8, 2e-9, 1e-12);
        opts.compress_tol = 1e-3;
        let (waves, stats) = StageSolver::new(&load, vec![unit_driver(input, g_out)], opts)
            .unwrap()
            .run()
            .unwrap();
        assert!(
            waves[0].points().len() < stats.steps / 2,
            "compressed {} of {}",
            waves[0].points().len(),
            stats.steps
        );
    }
}
