//! Recursive convolution of a pole/residue multiport impedance.
//!
//! For each pole `p_k` with residue matrix `R_k`, the convolution state
//! advances exactly under piecewise-linear port currents:
//!
//! ```text
//! x_k(t+h) = e^{p_k h}·x_k(t) + c0(p_k, h)·i(t) + c1(p_k, h)·i(t+h)
//! v(t+h)   = direct·i(t+h) + Σ_k Re{ R_k x_k(t+h) }
//! ```
//!
//! which splits into a constant *instantaneous impedance*
//! `Z_inst = direct + Σ Re{c1·R_k}` acting on the new current and a
//! *history* term known before the new current is — the structure the
//! successive-chords fixed point exploits.

use linvar_mor::PoleResidueModel;
use linvar_numeric::{Complex, Matrix};

/// Exact PWL convolution coefficients for pole `p` and step `h`:
/// `(E, c0, c1)` with `E = e^{p·h}`.
fn coefficients(p: Complex, h: f64) -> (Complex, Complex, Complex) {
    let a = p;
    let ah = a.scale(h);
    let e = ah.exp();
    // For |a·h| very small, use series expansions to avoid cancellation.
    if ah.abs() < 1e-6 {
        // E ≈ 1 + ah + (ah)²/2
        // ∫₀ʰ e^{a(h-u)} du            = h(1 + ah/2 + (ah)²/6)
        // ∫₀ʰ e^{a(h-u)}(u/h) du       = h(1/2 + ah/6 + (ah)²/24)
        let c_total = (Complex::ONE + ah.scale(0.5) + (ah * ah).scale(1.0 / 6.0)).scale(h);
        let c1 =
            (Complex::from_real(0.5) + ah.scale(1.0 / 6.0) + (ah * ah).scale(1.0 / 24.0)).scale(h);
        return (e, c_total - c1, c1);
    }
    // c1 = (E - 1 - a·h)/(a²·h); c0 = (E - 1)/a - c1.
    let em1 = e - Complex::ONE;
    let c1 = (em1 - ah) / (a * a).scale(h);
    let c0 = em1 / a - c1;
    (e, c0, c1)
}

/// Streaming recursive-convolution evaluator for one pole/residue model at
/// a fixed timestep.
#[derive(Debug, Clone)]
pub struct RecursiveConvolution {
    np: usize,
    h: f64,
    direct: Matrix,
    /// Per pole: `(E, c0, c1, R_k)`.
    poles: Vec<(Complex, Complex, Complex, Vec<Complex>)>,
    /// Convolution state per pole, one complex entry per port.
    states: Vec<Vec<Complex>>,
    /// Port currents at the last accepted point.
    i_prev: Vec<f64>,
    /// Instantaneous impedance matrix (acts on the newest current sample).
    z_inst: Matrix,
}

impl RecursiveConvolution {
    /// Prepares the evaluator for timestep `h`.
    ///
    /// # Panics
    ///
    /// Panics if `h` is not positive (debug assertion).
    pub fn new(model: &PoleResidueModel, h: f64) -> Self {
        debug_assert!(h > 0.0, "timestep must be positive");
        let np = model.port_count();
        let mut poles = Vec::with_capacity(model.pole_count());
        let mut z_inst = model.direct.clone();
        for (p, r) in model.poles.iter().zip(&model.residues) {
            let (e, c0, c1) = coefficients(*p, h);
            // Flatten the residue matrix row-major for cache-friendly use.
            let mut rf = Vec::with_capacity(np * np);
            for i in 0..np {
                for j in 0..np {
                    rf.push(r[(i, j)]);
                }
            }
            for i in 0..np {
                for j in 0..np {
                    z_inst[(i, j)] += (rf[i * np + j] * c1).re;
                }
            }
            poles.push((e, c0, c1, rf));
        }
        RecursiveConvolution {
            np,
            h,
            direct: model.direct.clone(),
            poles,
            states: vec![vec![Complex::ZERO; np]; model.pole_count()],
            i_prev: vec![0.0; np],
            z_inst,
        }
    }

    /// Number of ports.
    pub fn port_count(&self) -> usize {
        self.np
    }

    /// Timestep the evaluator was built for.
    pub fn timestep(&self) -> f64 {
        self.h
    }

    /// The instantaneous impedance matrix `Z_inst` (real, `Np x Np`).
    pub fn instantaneous_impedance(&self) -> &Matrix {
        &self.z_inst
    }

    /// DC impedance of the underlying model (for initialization).
    pub fn dc_impedance(&self) -> Matrix {
        let mut z = self.direct.clone();
        for (e, _c0, _c1, rf) in &self.poles {
            // Recover p from E = e^{p h}: cheaper to store? Recompute from
            // state advance at steady state: at DC, x = -i/p, contribution
            // Re(R x). We kept only E; p = ln(E)/h.
            let p = Complex::new(e.abs().ln() / self.h, e.arg() / self.h);
            for i in 0..self.np {
                for j in 0..self.np {
                    z[(i, j)] += (-(rf[i * self.np + j] / p)).re;
                }
            }
        }
        z
    }

    /// Initializes the convolution states to the steady state consistent
    /// with constant port currents `i0` flowing since `t = -∞`.
    pub fn initialize_dc(&mut self, i0: &[f64]) {
        assert_eq!(i0.len(), self.np, "port-count mismatch");
        for (k, (e, _c0, _c1, _rf)) in self.poles.iter().enumerate() {
            let p = Complex::new(e.abs().ln() / self.h, e.arg() / self.h);
            for j in 0..self.np {
                self.states[k][j] = -(Complex::from_real(i0[j]) / p);
            }
        }
        self.i_prev.copy_from_slice(i0);
    }

    /// History contribution to the port voltages at the *next* time point,
    /// excluding the new current's instantaneous term:
    /// `hist = Σ_k Re{ R_k (E·x_k + c0·i_prev) }`.
    pub fn history(&self) -> Vec<f64> {
        let mut hist = Vec::new();
        self.history_into(&mut hist);
        hist
    }

    /// [`RecursiveConvolution::history`] into a reusable buffer (fully
    /// overwritten; resized if needed). The accumulation starts from a
    /// zeroed buffer and runs in the same pole/port order as the
    /// allocating form, so results are bitwise identical — this is the
    /// per-timestep call of the SC inner loop, where a fresh `Vec`
    /// per step was pure allocator traffic.
    pub fn history_into(&self, hist: &mut Vec<f64>) {
        hist.clear();
        hist.resize(self.np, 0.0);
        for (k, (e, c0, _c1, rf)) in self.poles.iter().enumerate() {
            for j in 0..self.np {
                let xe = *e * self.states[k][j] + *c0 * Complex::from_real(self.i_prev[j]);
                for i in 0..self.np {
                    hist[i] += (rf[i * self.np + j] * xe).re;
                }
            }
        }
    }

    /// Port voltages for a candidate new current vector, given the
    /// precomputed history: `v = Z_inst·i_new + hist`.
    pub fn voltages(&self, i_new: &[f64], hist: &[f64]) -> Vec<f64> {
        let mut v = Vec::new();
        self.voltages_into(i_new, hist, &mut v);
        v
    }

    /// [`RecursiveConvolution::voltages`] into a reusable buffer (fully
    /// overwritten). Each entry is the same row accumulation the
    /// allocating path's `mul_vec` produces, plus `hist[i]` as the
    /// final addend — exactly the `+=` the allocating path applied —
    /// so results are bitwise identical. This runs once per SC chord
    /// iteration: the hottest call in the framework.
    pub fn voltages_into(&self, i_new: &[f64], hist: &[f64], v: &mut Vec<f64>) {
        assert_eq!(i_new.len(), self.np, "port-count mismatch");
        assert_eq!(hist.len(), self.np, "history length mismatch");
        v.clear();
        v.extend((0..self.np).map(|i| {
            let mut acc = 0.0;
            for (a, b) in self.z_inst.row(i).iter().zip(i_new.iter()) {
                acc += a * b;
            }
            acc + hist[i]
        }));
    }

    /// Commits the step with the converged new currents, advancing all
    /// convolution states.
    pub fn advance(&mut self, i_new: &[f64]) {
        assert_eq!(i_new.len(), self.np, "port-count mismatch");
        for (k, (e, c0, c1, _rf)) in self.poles.iter().enumerate() {
            for j in 0..self.np {
                let x = self.states[k][j];
                self.states[k][j] = *e * x
                    + *c0 * Complex::from_real(self.i_prev[j])
                    + *c1 * Complex::from_real(i_new[j]);
            }
        }
        self.i_prev.copy_from_slice(i_new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linvar_numeric::CMatrix;

    fn one_pole_model(p: f64, r: f64) -> PoleResidueModel {
        let mut rm = CMatrix::zeros(1, 1);
        rm[(0, 0)] = Complex::from_real(r);
        PoleResidueModel {
            poles: vec![Complex::from_real(p)],
            residues: vec![rm],
            direct: Matrix::zeros(1, 1),
        }
    }

    /// Z(s) = (1/C)/(s + 1/RC): parallel RC driven by a current step must
    /// produce v(t) = R·I·(1 - e^{-t/RC}).
    #[test]
    fn current_step_into_parallel_rc() {
        let (r, c) = (1000.0, 1e-12);
        let model = one_pole_model(-1.0 / (r * c), 1.0 / c);
        let h = 5e-12;
        let mut conv = RecursiveConvolution::new(&model, h);
        let i = 1e-3;
        let mut t = 0.0;
        for step in 0..1000 {
            let hist = conv.history();
            let v = conv.voltages(&[i], &hist)[0];
            t += h;
            conv.advance(&[i]);
            if step < 3 {
                continue; // within the PWL turn-on ramp of the current
            }
            // The convolution sees the current rise linearly over the
            // first interval — equivalent to an ideal step delayed h/2.
            let expect = r * i * (1.0 - (-(t - h / 2.0) / (r * c)).exp());
            assert!(
                (v - expect).abs() < 2e-3 * (r * i),
                "t={t:.2e}: v={v} expect={expect}"
            );
        }
    }

    #[test]
    fn dc_initialization_gives_steady_state() {
        let (r, c) = (500.0, 2e-12);
        let model = one_pole_model(-1.0 / (r * c), 1.0 / c);
        let mut conv = RecursiveConvolution::new(&model, 1e-12);
        let i = 2e-3;
        conv.initialize_dc(&[i]);
        // With constant current, the voltage must stay at R·I.
        for _ in 0..100 {
            let hist = conv.history();
            let v = conv.voltages(&[i], &hist)[0];
            assert!(
                (v - r * i).abs() < 1e-6 * (r * i),
                "steady state drift: {v}"
            );
            conv.advance(&[i]);
        }
    }

    #[test]
    fn dc_impedance_matches_model() {
        let model = one_pole_model(-2e9, 3e12);
        let conv = RecursiveConvolution::new(&model, 1e-12);
        let z = conv.dc_impedance()[(0, 0)];
        assert!((z - 3e12 / 2e9).abs() < 1e-6 * (3e12 / 2e9));
    }

    #[test]
    fn complex_pair_is_real_response() {
        // Underdamped pair: response must be real and settle to Z(0)·i.
        let p = Complex::new(-5e8, 3e9);
        let r = Complex::new(1e12, 2e11);
        let mut r1 = CMatrix::zeros(1, 1);
        r1[(0, 0)] = r;
        let mut r2 = CMatrix::zeros(1, 1);
        r2[(0, 0)] = r.conj();
        let model = PoleResidueModel {
            poles: vec![p, p.conj()],
            residues: vec![r1, r2],
            direct: Matrix::zeros(1, 1),
        };
        let z0 = model.dc()[(0, 0)];
        let h = 10e-12;
        let mut conv = RecursiveConvolution::new(&model, h);
        let i = 1e-3;
        let mut last = 0.0;
        for _ in 0..3000 {
            let hist = conv.history();
            last = conv.voltages(&[i], &hist)[0];
            conv.advance(&[i]);
        }
        assert!(
            (last - z0 * i).abs() < 1e-3 * (z0 * i).abs(),
            "settled {last} vs {}",
            z0 * i
        );
    }

    #[test]
    fn small_ah_series_branch_is_accurate() {
        // Pole slow enough that |p·h| < 1e-6 exercises the series branch.
        let model = one_pole_model(-1e3, 1e6);
        let h = 1e-12;
        let mut conv = RecursiveConvolution::new(&model, h);
        conv.initialize_dc(&[1e-3]);
        let hist = conv.history();
        let v = conv.voltages(&[1e-3], &hist)[0];
        let z0 = 1e6 / 1e3;
        assert!((v - z0 * 1e-3).abs() < 1e-6 * z0 * 1e-3);
    }

    #[test]
    fn into_forms_match_allocating_forms_bitwise() {
        let p = Complex::new(-5e8, 3e9);
        let r = Complex::new(1e12, 2e11);
        let mut r1 = CMatrix::zeros(1, 1);
        r1[(0, 0)] = r;
        let mut r2 = CMatrix::zeros(1, 1);
        r2[(0, 0)] = r.conj();
        let model = PoleResidueModel {
            poles: vec![p, p.conj()],
            residues: vec![r1, r2],
            direct: Matrix::from_rows(&[&[7.5]]),
        };
        let mut conv = RecursiveConvolution::new(&model, 2e-12);
        let mut hist_buf = vec![99.0; 3]; // stale + wrong length
        let mut v_buf = Vec::new();
        for step in 0..50 {
            let i = [1e-3 * (step as f64 * 0.1).sin()];
            let hist = conv.history();
            conv.history_into(&mut hist_buf);
            assert_eq!(hist.len(), hist_buf.len());
            for (a, b) in hist.iter().zip(&hist_buf) {
                assert_eq!(a.to_bits(), b.to_bits(), "history step {step}");
            }
            let v = conv.voltages(&i, &hist);
            conv.voltages_into(&i, &hist_buf, &mut v_buf);
            for (a, b) in v.iter().zip(&v_buf) {
                assert_eq!(a.to_bits(), b.to_bits(), "voltages step {step}");
            }
            conv.advance(&i);
        }
    }

    #[test]
    fn two_port_coupling() {
        // Symmetric 2-port with an off-diagonal residue: current in port 0
        // must raise the port-1 voltage.
        let mut r = CMatrix::zeros(2, 2);
        r[(0, 0)] = Complex::from_real(1e12);
        r[(1, 1)] = Complex::from_real(1e12);
        r[(0, 1)] = Complex::from_real(4e11);
        r[(1, 0)] = Complex::from_real(4e11);
        let model = PoleResidueModel {
            poles: vec![Complex::from_real(-1e9)],
            residues: vec![r],
            direct: Matrix::zeros(2, 2),
        };
        let mut conv = RecursiveConvolution::new(&model, 1e-11);
        let i = [1e-3, 0.0];
        let mut v1_last = 0.0;
        for _ in 0..2000 {
            let hist = conv.history();
            let v = conv.voltages(&i, &hist);
            v1_last = v[1];
            conv.advance(&i);
        }
        // Settled coupling: Z(0)[1,0]·i0 = (4e11/1e9)·1e-3 = 0.4.
        assert!((v1_last - 0.4).abs() < 1e-3, "coupled voltage {v1_last}");
    }
}
