//! Error type of the TETA engine.

use linvar_numeric::NumericError;
use std::fmt;

/// Error produced by the TETA stage solver.
#[derive(Debug, Clone, PartialEq)]
pub enum TetaError {
    /// The successive-chords fixed point did not converge at a time point
    /// (chord too small for the device slope, or a grossly unstable load
    /// that survived stabilization).
    ScDivergence {
        /// Simulation time (s).
        time: f64,
        /// Iterations performed.
        iterations: usize,
    },
    /// The output waveform never completed its transition, so a delay or
    /// slew measurement was impossible.
    IncompleteTransition {
        /// Name of the measurement that failed.
        what: &'static str,
    },
    /// Configuration error (bad port counts, missing models, …).
    BadStage(String),
    /// Propagated linear-algebra failure.
    Numeric(NumericError),
}

impl fmt::Display for TetaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TetaError::ScDivergence { time, iterations } => write!(
                f,
                "successive-chords iteration diverged at t={time:.3e}s after {iterations} iterations"
            ),
            TetaError::IncompleteTransition { what } => {
                write!(f, "waveform did not complete its transition ({what})")
            }
            TetaError::BadStage(msg) => write!(f, "bad stage: {msg}"),
            TetaError::Numeric(e) => write!(f, "numeric error: {e}"),
        }
    }
}

impl std::error::Error for TetaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TetaError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumericError> for TetaError {
    fn from(e: NumericError) -> Self {
        TetaError::Numeric(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TetaError::ScDivergence {
            time: 1e-9,
            iterations: 200,
        };
        assert!(e.to_string().contains("200"));
        let e = TetaError::BadStage("no ports".into());
        assert!(e.to_string().contains("no ports"));
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<TetaError>();
    }
}
