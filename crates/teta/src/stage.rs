//! Logic-stage assembly: the Table-1 "construction" step.
//!
//! A [`StageModel`] packages everything the framework precharacterizes
//! once per stage:
//!
//! 1. the chord output conductances `G_out` of the nonlinear drivers;
//! 2. the *effective load* — the stage's linear interconnect with `G_out`
//!    folded onto the driven ports (paper eq. 12);
//! 3. the variational reduced-order model library of that effective load.
//!
//! Evaluating the model at a parameter sample performs the Table-1
//! "evaluation" steps: first-order ROM evaluation, pole/residue
//! transformation, stability filtering and the successive-chords transient.

use crate::engine::{DriverSpec, StageSolver, StageSolverOptions, StageStats};
use crate::error::TetaError;
use crate::waveform::Waveform;
use linvar_circuit::{Netlist, NodeId};
use linvar_devices::{chord_conductance, DeviceVariation, MosParams, Technology};
use linvar_mor::{
    extract_pole_residue, stabilize, ReductionMethod, StabilityReport, VariationalRom,
};

/// A precharacterized logic stage.
#[derive(Debug, Clone)]
pub struct StageModel {
    vrom: VariationalRom,
    /// The effective-load variational matrices (chords already folded),
    /// kept for the exact-reduction reference flow.
    var: linvar_circuit::VariationalMna,
    /// `(port index, g_out)` of each driven port, in driver order.
    driver_ports: Vec<(usize, f64)>,
    nmos: MosParams,
    pmos: MosParams,
    wn: f64,
    wp: f64,
    length: f64,
    /// Supply voltage (V).
    pub vdd: f64,
}

// Stage models are built once and evaluated read-only from many threads by
// the parallel Monte-Carlo engine; `Sync + Send` is part of the public
// contract and must not regress silently.
const _: () = {
    const fn assert_sync_send<T: Sync + Send>() {}
    assert_sync_send::<StageModel>();
};

/// Result of one stage evaluation.
#[derive(Debug, Clone)]
pub struct StageResult {
    /// Waveform at every load port (port-marking order).
    pub waveforms: Vec<Waveform>,
    /// What the stability filter did to this sample's macromodel.
    pub stability: StabilityReport,
    /// Solver statistics.
    pub stats: StageStats,
}

impl StageModel {
    /// Builds the stage model from the interconnect netlist.
    ///
    /// `driven` lists the netlist nodes that carry drivers (each must be a
    /// marked port of the netlist); every driver is the technology's unit
    /// equivalent inverter. `method`/`delta` configure the variational
    /// reduction (see [`VariationalRom::characterize`]).
    ///
    /// # Errors
    ///
    /// Returns [`TetaError::BadStage`] for nodes that are not ports or
    /// missing device models, and propagates characterization failures.
    pub fn build(
        netlist: &Netlist,
        driven: &[NodeId],
        tech: &Technology,
        method: ReductionMethod,
        delta: f64,
    ) -> Result<Self, TetaError> {
        let mut var = netlist
            .assemble_variational()
            .map_err(|e| TetaError::BadStage(e.to_string()))?;
        let nmos = tech
            .library
            .get(&tech.library.nmos_name())
            .ok_or_else(|| TetaError::BadStage("missing nmos model".into()))?
            .clone();
        let pmos = tech
            .library
            .get(&tech.library.pmos_name())
            .ok_or_else(|| TetaError::BadStage("missing pmos model".into()))?
            .clone();
        let vdd = tech.library.vdd;
        let g_out = chord_conductance(&nmos, tech.wn, tech.library.lmin, vdd)
            + chord_conductance(&pmos, tech.wp, tech.library.lmin, vdd);
        // Map driven nodes to port positions and fold the chords.
        let ports = netlist.ports();
        let mut driver_ports = Vec::with_capacity(driven.len());
        for node in driven {
            let port_pos = ports.iter().position(|p| p == node).ok_or_else(|| {
                TetaError::BadStage(format!(
                    "driven node {:?} is not a marked port",
                    netlist.node_name(*node)
                ))
            })?;
            let mna_idx = var.port_indices[port_pos];
            var.add_grounded_conductance(mna_idx, g_out)
                .map_err(|e| TetaError::BadStage(e.to_string()))?;
            driver_ports.push((port_pos, g_out));
        }
        let vrom = VariationalRom::characterize(&var, method, delta)?;
        Ok(StageModel {
            vrom,
            var,
            driver_ports,
            nmos,
            pmos,
            wn: tech.wn,
            wp: tech.wp,
            length: tech.library.lmin,
            vdd,
        })
    }

    /// Number of load ports.
    pub fn port_count(&self) -> usize {
        self.vrom.port_count()
    }

    /// Number of drivers.
    pub fn driver_count(&self) -> usize {
        self.driver_ports.len()
    }

    /// The underlying variational ROM (for diagnostics and benches).
    pub fn vrom(&self) -> &VariationalRom {
        &self.vrom
    }

    /// Evaluates the stage at an interconnect parameter sample `w` and a
    /// device variation sample, driving each driver port with the
    /// corresponding input waveform.
    ///
    /// # Errors
    ///
    /// Returns [`TetaError::BadStage`] if `inputs.len()` differs from the
    /// driver count, and propagates pole-extraction or SC-divergence
    /// failures.
    pub fn evaluate(
        &self,
        w: &[f64],
        variation: DeviceVariation,
        inputs: &[Waveform],
        h: f64,
        t_end: f64,
    ) -> Result<StageResult, TetaError> {
        let rom = self.vrom.evaluate(w);
        self.evaluate_with_rom(&rom, variation, inputs, h, t_end)
    }

    /// Reference evaluation: recomputes the *exact* reduction at the
    /// sample (fresh matrices, fresh basis) instead of the first-order
    /// variational model — what a non-variational flow would pay for every
    /// sample. Used by the Figure-6 accuracy comparison.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StageModel::evaluate`].
    pub fn evaluate_exact(
        &self,
        w: &[f64],
        variation: DeviceVariation,
        inputs: &[Waveform],
        h: f64,
        t_end: f64,
    ) -> Result<StageResult, TetaError> {
        let rom = self.vrom.evaluate_exact(&self.var, w)?;
        self.evaluate_with_rom(&rom, variation, inputs, h, t_end)
    }

    fn evaluate_with_rom(
        &self,
        rom: &linvar_mor::ReducedModel,
        variation: DeviceVariation,
        inputs: &[Waveform],
        h: f64,
        t_end: f64,
    ) -> Result<StageResult, TetaError> {
        if inputs.len() != self.driver_ports.len() {
            return Err(TetaError::BadStage(format!(
                "{} inputs for {} drivers",
                inputs.len(),
                self.driver_ports.len()
            )));
        }
        let pr = extract_pole_residue(rom)?;
        let (stable, stability) = stabilize(&pr);
        let drivers: Vec<DriverSpec> = self
            .driver_ports
            .iter()
            .zip(inputs)
            .map(|(&(port, g_out), input)| DriverSpec {
                port,
                input: input.clone(),
                nmos: self.nmos.clone(),
                pmos: self.pmos.clone(),
                wn: self.wn,
                wp: self.wp,
                length: self.length,
                g_out,
            })
            .collect();
        let mut opts = StageSolverOptions::new(self.vdd, t_end, h);
        opts.variation = variation;
        opts.compress_tol = 1e-4 * self.vdd;
        let (waveforms, stats) = StageSolver::new(&stable, drivers, opts)?.run()?;
        Ok(StageResult {
            waveforms,
            stability,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linvar_devices::tech_018;
    use linvar_interconnect::{CoupledLineSpec, WireTech};

    /// Single line, 20 µm, driver at the near end, observer at the far end.
    fn line_stage() -> (StageModel, usize) {
        let tech = tech_018();
        let spec = CoupledLineSpec::new(1, 20e-6, WireTech::m018());
        let built = linvar_interconnect::builder::build_coupled_lines(&spec).unwrap();
        let model = StageModel::build(
            &built.netlist,
            &[built.inputs[0]],
            &tech,
            ReductionMethod::Prima { order: 6 },
            0.02,
        )
        .unwrap();
        // Output port position: far end was marked after the near ends.
        let out_pos = built
            .netlist
            .ports()
            .iter()
            .position(|p| *p == built.outputs[0])
            .unwrap();
        (model, out_pos)
    }

    #[test]
    fn nominal_stage_switches() {
        let (model, out_pos) = line_stage();
        let input = Waveform::ramp(0.0, 1.8, 20e-12, 50e-12);
        let res = model
            .evaluate(
                &[0.0; 5],
                DeviceVariation::nominal(),
                &[input],
                1e-12,
                1.5e-9,
            )
            .unwrap();
        let out = &res.waveforms[out_pos];
        assert!(out.initial_value() > 1.7, "far end starts high");
        assert!(out.final_value() < 0.1, "far end discharges");
    }

    #[test]
    fn wire_variation_changes_delay() {
        let (model, out_pos) = line_stage();
        let input = Waveform::ramp(0.0, 1.8, 20e-12, 50e-12);
        let delay = |w: &[f64]| -> f64 {
            let res = model
                .evaluate(
                    w,
                    DeviceVariation::nominal(),
                    std::slice::from_ref(&input),
                    1e-12,
                    2e-9,
                )
                .unwrap();
            res.waveforms[out_pos].crossing(0.9, false).expect("falls")
        };
        let nominal = delay(&[0.0; 5]);
        // Thicker metal (+T) raises both R⁻¹… T up → R down but C up; use
        // resistivity which is unambiguous: +rho → slower.
        let slow = delay(&[0.0, 0.0, 0.0, 0.0, 1.0]);
        let fast = delay(&[0.0, 0.0, 0.0, 0.0, -1.0]);
        assert!(
            slow > nominal && nominal > fast,
            "rho ordering: {fast} < {nominal} < {slow}"
        );
    }

    #[test]
    fn wrong_input_count_rejected() {
        let (model, _) = line_stage();
        let res = model.evaluate(&[0.0; 5], DeviceVariation::nominal(), &[], 1e-12, 1e-9);
        assert!(res.is_err());
    }

    #[test]
    fn stability_report_is_returned() {
        let (model, _) = line_stage();
        let input = Waveform::ramp(0.0, 1.8, 10e-12, 40e-12);
        let res = model
            .evaluate(&[0.5; 5], DeviceVariation::nominal(), &[input], 1e-12, 1e-9)
            .unwrap();
        // Whether or not poles were removed, β must be finite and the
        // resulting run completed.
        assert!(res.stability.max_beta_deviation.is_finite());
    }
}
