//! Logic-stage assembly: the Table-1 "construction" step.
//!
//! A [`StageModel`] packages everything the framework precharacterizes
//! once per stage:
//!
//! 1. the chord output conductances `G_out` of the nonlinear drivers;
//! 2. the *effective load* — the stage's linear interconnect with `G_out`
//!    folded onto the driven ports (paper eq. 12);
//! 3. the variational reduced-order model library of that effective load.
//!
//! Evaluating the model at a parameter sample performs the Table-1
//! "evaluation" steps: first-order ROM evaluation, pole/residue
//! transformation, stability filtering and the successive-chords transient.

use crate::engine::{DriverSpec, StageSolver, StageSolverOptions, StageStats};
use crate::error::TetaError;
use crate::waveform::Waveform;
use linvar_circuit::{Netlist, NodeId};
use linvar_devices::{chord_conductance, DeviceVariation, MosParams, Technology};
use linvar_mor::{
    extract_pole_residue, extract_stabilized_degrading, stabilize, PoleResidueModel, ReducedModel,
    ReductionMethod, StabilityReport, VariationalRom, DEFAULT_BETA_TOL,
};
use linvar_numeric::with_workspace;

/// A precharacterized logic stage.
#[derive(Debug, Clone)]
pub struct StageModel {
    vrom: VariationalRom,
    /// The effective-load variational matrices (chords already folded),
    /// kept for the exact-reduction reference flow.
    var: linvar_circuit::VariationalMna,
    /// `(port index, g_out)` of each driven port, in driver order.
    driver_ports: Vec<(usize, f64)>,
    nmos: MosParams,
    pmos: MosParams,
    wn: f64,
    wp: f64,
    length: f64,
    /// Supply voltage (V).
    pub vdd: f64,
}

// Stage models are built once and evaluated read-only from many threads by
// the parallel Monte-Carlo engine; `Sync + Send` is part of the public
// contract and must not regress silently.
const _: () = {
    const fn assert_sync_send<T: Sync + Send>() {}
    assert_sync_send::<StageModel>();
};

/// Result of one stage evaluation.
#[derive(Debug, Clone)]
pub struct StageResult {
    /// Waveform at every load port (port-marking order).
    pub waveforms: Vec<Waveform>,
    /// What the stability filter did to this sample's macromodel.
    pub stability: StabilityReport,
    /// Solver statistics.
    pub stats: StageStats,
}

/// What [`StageModel::evaluate_recovering`] had to do to serve a sample.
///
/// The ladder, in order: first-order variational ROM with the MOR
/// order-degradation ladder, SC retry schedule (step refinement plus
/// under-relaxation, the chord re-selection analog), the exact per-sample
/// reduction, and finally the unreduced MNA load. A clean evaluation uses
/// the first rung at full order with the plain SC iteration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageRecovery {
    /// SC attempts that failed before one succeeded (0 = first try).
    pub sc_retries: usize,
    /// Reduced order of the variational ROM as characterized.
    pub original_order: usize,
    /// Order of the model that finally served the sample (full MNA
    /// dimension when `unreduced_fallback` is set).
    pub served_order: usize,
    /// Right-half-plane poles the stability filter removed.
    pub removed_poles: usize,
    /// `max |β - 1|` of the served model's DC rescale.
    pub max_beta_deviation: f64,
    /// The exact per-sample reduction replaced the variational ROM.
    pub exact_reduction: bool,
    /// The unreduced MNA load replaced every reduced model.
    pub unreduced_fallback: bool,
}

impl StageRecovery {
    /// `true` when the fast path served the sample unassisted.
    pub fn was_clean(&self) -> bool {
        self.sc_retries == 0
            && self.served_order == self.original_order
            && !self.exact_reduction
            && !self.unreduced_fallback
    }
}

/// SC retry schedule: `(timestep divisor, damping)` per attempt. The first
/// entry is the plain iteration; later entries refine the step and damp the
/// fixed point.
const SC_SCHEDULE: [(f64, f64); 3] = [(1.0, 1.0), (2.0, 0.7), (4.0, 0.5)];

/// Is this error worth another rung, or a configuration mistake that every
/// rung would repeat?
fn recoverable(e: &TetaError) -> bool {
    matches!(e, TetaError::ScDivergence { .. } | TetaError::Numeric(_))
}

impl StageModel {
    /// Builds the stage model from the interconnect netlist.
    ///
    /// `driven` lists the netlist nodes that carry drivers (each must be a
    /// marked port of the netlist); every driver is the technology's unit
    /// equivalent inverter. `method`/`delta` configure the variational
    /// reduction (see [`VariationalRom::characterize`]).
    ///
    /// # Errors
    ///
    /// Returns [`TetaError::BadStage`] for nodes that are not ports or
    /// missing device models, and propagates characterization failures.
    pub fn build(
        netlist: &Netlist,
        driven: &[NodeId],
        tech: &Technology,
        method: ReductionMethod,
        delta: f64,
    ) -> Result<Self, TetaError> {
        let mut var = netlist
            .assemble_variational()
            .map_err(|e| TetaError::BadStage(e.to_string()))?;
        let nmos = tech
            .library
            .get(&tech.library.nmos_name())
            .ok_or_else(|| TetaError::BadStage("missing nmos model".into()))?
            .clone();
        let pmos = tech
            .library
            .get(&tech.library.pmos_name())
            .ok_or_else(|| TetaError::BadStage("missing pmos model".into()))?
            .clone();
        let vdd = tech.library.vdd;
        let g_out = chord_conductance(&nmos, tech.wn, tech.library.lmin, vdd)
            + chord_conductance(&pmos, tech.wp, tech.library.lmin, vdd);
        // Map driven nodes to port positions and fold the chords.
        let ports = netlist.ports();
        let mut driver_ports = Vec::with_capacity(driven.len());
        for node in driven {
            let port_pos = ports.iter().position(|p| p == node).ok_or_else(|| {
                TetaError::BadStage(format!(
                    "driven node {:?} is not a marked port",
                    netlist.node_name(*node)
                ))
            })?;
            let mna_idx = var.port_indices[port_pos];
            var.add_grounded_conductance(mna_idx, g_out)
                .map_err(|e| TetaError::BadStage(e.to_string()))?;
            driver_ports.push((port_pos, g_out));
        }
        let vrom = VariationalRom::characterize(&var, method, delta)?;
        Ok(StageModel {
            vrom,
            var,
            driver_ports,
            nmos,
            pmos,
            wn: tech.wn,
            wp: tech.wp,
            length: tech.library.lmin,
            vdd,
        })
    }

    /// Number of load ports.
    pub fn port_count(&self) -> usize {
        self.vrom.port_count()
    }

    /// Number of drivers.
    pub fn driver_count(&self) -> usize {
        self.driver_ports.len()
    }

    /// The underlying variational ROM (for diagnostics and benches).
    pub fn vrom(&self) -> &VariationalRom {
        &self.vrom
    }

    /// Evaluates the stage at an interconnect parameter sample `w` and a
    /// device variation sample, driving each driver port with the
    /// corresponding input waveform.
    ///
    /// # Errors
    ///
    /// Returns [`TetaError::BadStage`] if `inputs.len()` differs from the
    /// driver count, and propagates pole-extraction or SC-divergence
    /// failures.
    pub fn evaluate(
        &self,
        w: &[f64],
        variation: DeviceVariation,
        inputs: &[Waveform],
        h: f64,
        t_end: f64,
    ) -> Result<StageResult, TetaError> {
        let _span = linvar_metrics::timer(linvar_metrics::Phase::StageEval);
        // Serve the per-sample reduced matrices from the worker's workspace
        // pool: `evaluate_into` writes the same values `evaluate` would
        // allocate (copy + identical AXPY accumulation), so results are
        // bitwise unchanged. The scope closes before `evaluate_with_rom`
        // so the pole/residue extraction can borrow the same pool.
        let rom = with_workspace(|ws| {
            let mut rom = ReducedModel::take_from(ws, self.vrom.order(), self.vrom.port_count());
            self.vrom.evaluate_into(w, &mut rom).map(|()| rom)
        })?;
        let result = self.evaluate_with_rom(&rom, variation, inputs, h, t_end);
        with_workspace(|ws| rom.recycle(ws));
        result
    }

    /// Evaluates the stage under the failure-recovery ladder.
    ///
    /// Rungs, in order; each reduced-model rung gets the full SC retry
    /// schedule (plain iteration, then step refinement with damping):
    ///
    /// 1. first-order variational ROM, passed through the MOR
    ///    order-degradation ladder ([`extract_stabilized_degrading`]);
    /// 2. exact per-sample reduction (fresh matrices, fresh basis);
    /// 3. the unreduced MNA load — no reduction at all, pole/residue
    ///    extraction straight from `(G(w), C(w))`.
    ///
    /// Configuration errors ([`TetaError::BadStage`]) abort immediately:
    /// every rung would repeat them. On success the [`StageRecovery`]
    /// records which rung and retry served the sample.
    ///
    /// # Errors
    ///
    /// Returns the last rung's error once the ladder is exhausted. Callers
    /// with access to a SPICE engine should treat that as "degrade to
    /// baseline SPICE".
    pub fn evaluate_recovering(
        &self,
        w: &[f64],
        variation: DeviceVariation,
        inputs: &[Waveform],
        h: f64,
        t_end: f64,
    ) -> Result<(StageResult, StageRecovery), TetaError> {
        let _span = linvar_metrics::timer(linvar_metrics::Phase::StageEval);
        let mut recovery = StageRecovery::default();
        let mut sc_retries = 0usize;
        let mut last_err: Option<TetaError> = None;

        // Rung 1: variational ROM + order-degradation ladder.
        let rung1 = self
            .vrom
            .evaluate(w)
            .map_err(TetaError::from)
            .and_then(|rom| {
                recovery.original_order = rom.order();
                extract_stabilized_degrading(&rom, DEFAULT_BETA_TOL).map_err(TetaError::from)
            });
        match rung1 {
            Ok((stable, stability, deg)) => {
                recovery.served_order = deg.served_order;
                recovery.removed_poles = deg.removed_poles;
                recovery.max_beta_deviation = deg.max_beta_deviation;
                match self.sc_attempts(
                    &stable,
                    &stability,
                    variation,
                    inputs,
                    h,
                    t_end,
                    &mut sc_retries,
                )? {
                    Ok(res) => {
                        recovery.sc_retries = sc_retries;
                        return Ok((res, recovery));
                    }
                    Err(e) => drop(last_err.get_or_insert(e)),
                }
            }
            Err(e) if recoverable(&e) => drop(last_err.get_or_insert(e)),
            Err(e) => return Err(e),
        }

        // Rung 2: exact reduction at the sample.
        let rung2 = self
            .vrom
            .evaluate_exact(&self.var, w)
            .map_err(TetaError::from)
            .and_then(|rom| {
                extract_stabilized_degrading(&rom, DEFAULT_BETA_TOL).map_err(TetaError::from)
            });
        match rung2 {
            Ok((stable, stability, deg)) => {
                match self.sc_attempts(
                    &stable,
                    &stability,
                    variation,
                    inputs,
                    h,
                    t_end,
                    &mut sc_retries,
                )? {
                    Ok(res) => {
                        recovery.exact_reduction = true;
                        recovery.served_order = deg.served_order;
                        recovery.removed_poles = deg.removed_poles;
                        recovery.max_beta_deviation = deg.max_beta_deviation;
                        recovery.sc_retries = sc_retries;
                        return Ok((res, recovery));
                    }
                    Err(e) => drop(last_err.get_or_insert(e)),
                }
            }
            Err(e) if recoverable(&e) => drop(last_err.get_or_insert(e)),
            Err(e) => return Err(e),
        }

        // Rung 3: the unreduced MNA load — stabilize the full node-space
        // pencil directly. Expensive (dense eigensolve at full dimension)
        // but the most faithful model short of baseline SPICE.
        let rung3 = self
            .var
            .eval(w)
            .map_err(TetaError::from)
            .and_then(|(g, c)| {
                let full = ReducedModel {
                    gr: g,
                    cr: c,
                    br: self.var.port_incidence(),
                };
                let pr = extract_pole_residue(&full)?;
                Ok((full.order(), stabilize(&pr)))
            });
        match rung3 {
            Ok((order, (stable, stability))) => {
                match self.sc_attempts(
                    &stable,
                    &stability,
                    variation,
                    inputs,
                    h,
                    t_end,
                    &mut sc_retries,
                )? {
                    Ok(res) => {
                        recovery.unreduced_fallback = true;
                        recovery.served_order = order;
                        recovery.removed_poles = stability.removed_poles.len();
                        recovery.max_beta_deviation = stability.max_beta_deviation;
                        recovery.sc_retries = sc_retries;
                        return Ok((res, recovery));
                    }
                    Err(e) => drop(last_err.get_or_insert(e)),
                }
            }
            Err(e) if recoverable(&e) => drop(last_err.get_or_insert(e)),
            Err(e) => return Err(e),
        }

        Err(last_err.unwrap_or_else(|| {
            TetaError::BadStage("stage recovery ladder exhausted with no recorded error".into())
        }))
    }

    /// Runs the SC retry schedule against one stabilized model. The outer
    /// `Result` carries unrecoverable configuration errors (abort the
    /// ladder); the inner one reports whether any attempt converged.
    #[allow(clippy::too_many_arguments)]
    fn sc_attempts(
        &self,
        stable: &PoleResidueModel,
        stability: &StabilityReport,
        variation: DeviceVariation,
        inputs: &[Waveform],
        h: f64,
        t_end: f64,
        sc_retries: &mut usize,
    ) -> Result<Result<StageResult, TetaError>, TetaError> {
        let mut last: Option<TetaError> = None;
        for &(refine, damping) in &SC_SCHEDULE {
            match self.run_sc(
                stable,
                stability,
                variation,
                inputs,
                h / refine,
                t_end,
                damping,
            ) {
                Ok(res) => return Ok(Ok(res)),
                Err(e) if recoverable(&e) => {
                    *sc_retries += 1;
                    linvar_metrics::incr(linvar_metrics::Counter::ScStageRetries);
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(Err(last.unwrap_or_else(|| {
            TetaError::BadStage("empty SC retry schedule".into())
        })))
    }

    /// Reference evaluation: recomputes the *exact* reduction at the
    /// sample (fresh matrices, fresh basis) instead of the first-order
    /// variational model — what a non-variational flow would pay for every
    /// sample. Used by the Figure-6 accuracy comparison.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StageModel::evaluate`].
    pub fn evaluate_exact(
        &self,
        w: &[f64],
        variation: DeviceVariation,
        inputs: &[Waveform],
        h: f64,
        t_end: f64,
    ) -> Result<StageResult, TetaError> {
        let rom = self.vrom.evaluate_exact(&self.var, w)?;
        self.evaluate_with_rom(&rom, variation, inputs, h, t_end)
    }

    fn evaluate_with_rom(
        &self,
        rom: &linvar_mor::ReducedModel,
        variation: DeviceVariation,
        inputs: &[Waveform],
        h: f64,
        t_end: f64,
    ) -> Result<StageResult, TetaError> {
        let pr = extract_pole_residue(rom)?;
        let (stable, stability) = stabilize(&pr);
        self.run_sc(&stable, &stability, variation, inputs, h, t_end, 1.0)
    }

    /// One successive-chords run against a stabilized load model. The
    /// stability report is borrowed so the SC retry schedule does not clone
    /// it per attempt; only the successful run materializes a copy into the
    /// returned [`StageResult`].
    #[allow(clippy::too_many_arguments)]
    fn run_sc(
        &self,
        stable: &PoleResidueModel,
        stability: &StabilityReport,
        variation: DeviceVariation,
        inputs: &[Waveform],
        h: f64,
        t_end: f64,
        sc_damping: f64,
    ) -> Result<StageResult, TetaError> {
        if inputs.len() != self.driver_ports.len() {
            return Err(TetaError::BadStage(format!(
                "{} inputs for {} drivers",
                inputs.len(),
                self.driver_ports.len()
            )));
        }
        let drivers: Vec<DriverSpec> = self
            .driver_ports
            .iter()
            .zip(inputs)
            .map(|(&(port, g_out), input)| DriverSpec {
                port,
                input: input.clone(),
                nmos: self.nmos.clone(),
                pmos: self.pmos.clone(),
                wn: self.wn,
                wp: self.wp,
                length: self.length,
                g_out,
            })
            .collect();
        let mut opts = StageSolverOptions::new(self.vdd, t_end, h);
        opts.variation = variation;
        opts.compress_tol = 1e-4 * self.vdd;
        opts.sc_damping = sc_damping;
        let (waveforms, stats) = StageSolver::new(stable, drivers, opts)?.run()?;
        Ok(StageResult {
            waveforms,
            stability: stability.clone(),
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linvar_devices::tech_018;
    use linvar_interconnect::{CoupledLineSpec, WireTech};

    /// Single line, 20 µm, driver at the near end, observer at the far end.
    fn line_stage() -> (StageModel, usize) {
        let tech = tech_018();
        let spec = CoupledLineSpec::new(1, 20e-6, WireTech::m018());
        let built = linvar_interconnect::builder::build_coupled_lines(&spec).unwrap();
        let model = StageModel::build(
            &built.netlist,
            &[built.inputs[0]],
            &tech,
            ReductionMethod::Prima { order: 6 },
            0.02,
        )
        .unwrap();
        // Output port position: far end was marked after the near ends.
        let out_pos = built
            .netlist
            .ports()
            .iter()
            .position(|p| *p == built.outputs[0])
            .unwrap();
        (model, out_pos)
    }

    #[test]
    fn nominal_stage_switches() {
        let (model, out_pos) = line_stage();
        let input = Waveform::ramp(0.0, 1.8, 20e-12, 50e-12);
        let res = model
            .evaluate(
                &[0.0; 5],
                DeviceVariation::nominal(),
                &[input],
                1e-12,
                1.5e-9,
            )
            .unwrap();
        let out = &res.waveforms[out_pos];
        assert!(out.initial_value() > 1.7, "far end starts high");
        assert!(out.final_value() < 0.1, "far end discharges");
    }

    #[test]
    fn wire_variation_changes_delay() {
        let (model, out_pos) = line_stage();
        let input = Waveform::ramp(0.0, 1.8, 20e-12, 50e-12);
        let delay = |w: &[f64]| -> f64 {
            let res = model
                .evaluate(
                    w,
                    DeviceVariation::nominal(),
                    std::slice::from_ref(&input),
                    1e-12,
                    2e-9,
                )
                .unwrap();
            res.waveforms[out_pos].crossing(0.9, false).expect("falls")
        };
        let nominal = delay(&[0.0; 5]);
        // Thicker metal (+T) raises both R⁻¹… T up → R down but C up; use
        // resistivity which is unambiguous: +rho → slower.
        let slow = delay(&[0.0, 0.0, 0.0, 0.0, 1.0]);
        let fast = delay(&[0.0, 0.0, 0.0, 0.0, -1.0]);
        assert!(
            slow > nominal && nominal > fast,
            "rho ordering: {fast} < {nominal} < {slow}"
        );
    }

    #[test]
    fn wrong_input_count_rejected() {
        let (model, _) = line_stage();
        let res = model.evaluate(&[0.0; 5], DeviceVariation::nominal(), &[], 1e-12, 1e-9);
        assert!(res.is_err());
    }

    #[test]
    fn clean_sample_recovering_matches_plain_evaluate() {
        let (model, out_pos) = line_stage();
        let input = Waveform::ramp(0.0, 1.8, 20e-12, 50e-12);
        let plain = model
            .evaluate(
                &[0.0; 5],
                DeviceVariation::nominal(),
                std::slice::from_ref(&input),
                1e-12,
                1.5e-9,
            )
            .unwrap();
        let (recovered, recovery) = model
            .evaluate_recovering(
                &[0.0; 5],
                DeviceVariation::nominal(),
                &[input],
                1e-12,
                1.5e-9,
            )
            .unwrap();
        assert!(recovery.was_clean(), "recovery: {recovery:?}");
        assert_eq!(recovery.sc_retries, 0);
        assert!(!recovery.exact_reduction && !recovery.unreduced_fallback);
        // The clean rung is the same computation as the plain flow:
        // identical waveforms, bitwise.
        assert_eq!(
            plain.waveforms[out_pos].points(),
            recovered.waveforms[out_pos].points()
        );
    }

    #[test]
    fn stability_report_is_returned() {
        let (model, _) = line_stage();
        let input = Waveform::ramp(0.0, 1.8, 10e-12, 40e-12);
        let res = model
            .evaluate(&[0.5; 5], DeviceVariation::nominal(), &[input], 1e-12, 1e-9)
            .unwrap();
        // Whether or not poles were removed, β must be finite and the
        // resulting run completed.
        assert!(res.stability.max_beta_deviation.is_finite());
    }
}
