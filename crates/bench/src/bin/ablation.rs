//! Ablation studies of the framework's design choices (the extensions
//! `DESIGN.md` calls out):
//!
//! 1. **ROM order sweep** — accuracy of the variational macromodel's delay
//!    vs reduction order (cost of each extra Krylov vector vs error);
//! 2. **Stability filter on/off** — fraction of Monte-Carlo samples whose
//!    raw variational model is unstable, and what the filter costs in
//!    waveform accuracy on stable samples;
//! 3. **LHS vs plain Monte-Carlo** — variance of the mean-delay estimator
//!    at equal sample counts;
//! 4. **Finite-difference step δ** — characterization robustness.
//!
//! Run with `cargo run --release -p linvar-bench --bin ablation`.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use linvar_bench::{render_table, BenchArgs, BenchError, BenchMeter};
use linvar_devices::{tech_018, DeviceVariation};
use linvar_interconnect::{builder::build_coupled_lines, CoupledLineSpec, WireTech};
use linvar_mor::{extract_pole_residue, ReductionMethod, VariationalRom};
use linvar_numeric::vector::{mean, std_dev};
use linvar_stats::{lhs_uniform, rng_from_seed, uniform_samples, SampleRng};
use linvar_teta::{StageModel, Waveform};

fn stage_delay(stage: &StageModel, out_port: usize, w: &[f64]) -> Result<f64, BenchError> {
    let input = Waveform::ramp(0.0, 1.8, 20e-12, 50e-12);
    let res = stage.evaluate(w, DeviceVariation::nominal(), &[input], 1e-12, 2e-9)?;
    res.waveforms[out_port]
        .crossing(0.9, false)
        .ok_or_else(|| "stage output did not fall".into())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("ablation: {e}");
        std::process::exit(e.exit_code());
    }
}

fn run() -> Result<(), BenchError> {
    let args = BenchArgs::parse(std::env::args().skip(1))?;
    args.reject_campaign_flags("ablation")?;
    args.reject_shard_flags("ablation")?;
    if args.quick {
        return Err(BenchError::Usage("ablation has no --quick mode".into()));
    }
    let meter = BenchMeter::start("ablation");
    let tech = tech_018();
    let spec = CoupledLineSpec::new(1, 60e-6, WireTech::m018());
    let built = build_coupled_lines(&spec)?;
    let out_pos = built
        .netlist
        .ports()
        .iter()
        .position(|p| *p == built.outputs[0])
        .ok_or("line far end is not a port")?;

    // ---------- 1. ROM order sweep --------------------------------------
    println!("==== Ablation 1: reduction order vs delay accuracy ====\n");
    let reference = {
        let stage = StageModel::build(
            &built.netlist,
            &[built.inputs[0]],
            &tech,
            ReductionMethod::Prima { order: 14 },
            0.02,
        )?;
        stage_delay(&stage, out_pos, &[0.5, -0.5, 0.5, -0.5, 0.5])?
    };
    let mut rows = Vec::new();
    for order in [2usize, 3, 4, 6, 8, 10] {
        let stage = StageModel::build(
            &built.netlist,
            &[built.inputs[0]],
            &tech,
            ReductionMethod::Prima { order },
            0.02,
        )?;
        let d = stage_delay(&stage, out_pos, &[0.5, -0.5, 0.5, -0.5, 0.5])?;
        rows.push(vec![
            format!("{order}"),
            format!("{:.3}", d * 1e12),
            format!("{:+.3}", (d - reference) * 1e12),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["ROM order", "delay (ps)", "error vs order-14 (ps)"],
            &rows
        )
    );

    // ---------- 2. Stability filter incidence ---------------------------
    println!("==== Ablation 2: raw-macromodel stability across samples ====\n");
    let var = {
        let mut v = built.netlist.assemble_variational()?;
        // Fold a unit-driver conductance like the stage builder does.
        let nmos = tech
            .library
            .get(&tech.library.nmos_name())
            .ok_or("nmos model missing from the library")?;
        let pmos = tech
            .library
            .get(&tech.library.pmos_name())
            .ok_or("pmos model missing from the library")?;
        let g_out = linvar_devices::chord_conductance(nmos, tech.wn, tech.library.lmin, 1.8)
            + linvar_devices::chord_conductance(pmos, tech.wp, tech.library.lmin, 1.8);
        let idx = v.port_indices[0];
        v.add_grounded_conductance(idx, g_out)?;
        v
    };
    let vrom = VariationalRom::characterize(&var, ReductionMethod::Prima { order: 6 }, 0.02)?;
    let mut rng = rng_from_seed(31);
    let mut rows = Vec::new();
    for &range in &[1.0, 2.0, 3.0] {
        let samples = lhs_uniform(&mut rng, 200, 5, -range, range);
        let mut unstable = 0usize;
        let mut worst_beta = 0.0_f64;
        for s in &samples {
            let pr = extract_pole_residue(&vrom.evaluate(s)?)?;
            if !pr.is_stable() {
                unstable += 1;
                let (_, rep) = linvar_mor::stabilize(&pr);
                worst_beta = worst_beta.max(rep.max_beta_deviation);
            }
        }
        rows.push(vec![
            format!("±{range}"),
            format!("{unstable}/200"),
            format!("{worst_beta:.2e}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "sample range (norm. units)",
                "unstable samples",
                "worst |beta-1|"
            ],
            &rows
        )
    );

    // ---------- 3. LHS vs plain MC estimator variance -------------------
    println!("==== Ablation 3: LHS vs plain MC (mean-delay estimator std) ====\n");
    let stage = StageModel::build(
        &built.netlist,
        &[built.inputs[0]],
        &tech,
        ReductionMethod::Prima { order: 6 },
        0.02,
    )?;
    let trials = 12;
    let n = 16;
    let mut lhs_means = Vec::new();
    let mut mc_means = Vec::new();
    for t in 0..trials {
        let mut rng: SampleRng = rng_from_seed(100 + t);
        let lhs = lhs_uniform(&mut rng, n, 5, -1.0, 1.0);
        let ds: Vec<f64> = lhs
            .iter()
            .map(|s| stage_delay(&stage, out_pos, s))
            .collect::<Result<_, _>>()?;
        lhs_means.push(mean(&ds));
        let mut plain = Vec::with_capacity(n);
        for _ in 0..n {
            let s = uniform_samples(&mut rng, 5, -1.0, 1.0);
            plain.push(stage_delay(&stage, out_pos, &s)?);
        }
        mc_means.push(mean(&plain));
    }
    println!("estimator std over {trials} trials of {n} samples:");
    println!("  LHS      : {:.4} ps", std_dev(&lhs_means) * 1e12);
    println!("  plain MC : {:.4} ps", std_dev(&mc_means) * 1e12);
    println!(
        "  variance reduction: {:.1}x\n",
        (std_dev(&mc_means) / std_dev(&lhs_means)).powi(2)
    );

    // ---------- 4. FD step robustness ------------------------------------
    println!("==== Ablation 4: characterization step delta ====\n");
    let mut rows = Vec::new();
    for &delta in &[0.002, 0.01, 0.02, 0.1, 0.3] {
        let stage = StageModel::build(
            &built.netlist,
            &[built.inputs[0]],
            &tech,
            ReductionMethod::Prima { order: 6 },
            delta,
        )?;
        let d = stage_delay(&stage, out_pos, &[0.8, 0.0, 0.0, -0.8, 0.0])?;
        rows.push(vec![format!("{delta}"), format!("{:.3}", d * 1e12)]);
    }
    println!(
        "{}",
        render_table(&["delta", "delay at test sample (ps)"], &rows)
    );
    println!("(delays should agree across delta — the basis sensitivities are");
    println!(" linear over a wide step range)");
    eprintln!("{}", linvar_bench::workspace_note());
    meter.finish(&args)?;
    Ok(())
}
