//! Regenerates the paper's Example 2: Figure 5 (CPU time vs wirelength)
//! and Figure 6 (delay histograms, full vs variational reduced model).
//!
//! A 4-port stage: four parallel coupled minimum-width lines, each driven
//! by an inverter; the delay is measured at the probe line's far end. Wire
//! parameters (W, T, S, H, ρ) fluctuate uniformly within their tolerances;
//! 100 Latin-Hypercube samples.
//!
//! Flags: `--checkpoint <prefix>` / `--resume <prefix>` /
//! `--deadline <secs>` run the two Figure-6 Monte-Carlo sweeps as durable
//! campaigns (snapshots `<prefix>.fig6-reduced.ckpt` and
//! `<prefix>.fig6-full.ckpt`). Completed sweeps print deterministic `mc …`
//! lines with the statistics as raw `f64` bit patterns.
//!
//! Run with `cargo run --release -p linvar-bench --bin example2`
//! (set `LINVAR_THREADS` to pin the Monte-Carlo worker count).

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use linvar_bench::{bits_hex, render_table, BenchArgs, BenchError, BenchMeter};
use linvar_circuit::{MosType, Netlist, SourceWaveform};
use linvar_devices::{tech_018, DeviceVariation};
use linvar_interconnect::{builder::build_coupled_lines, CoupledLineSpec, WireTech};
use linvar_mor::ReductionMethod;
use linvar_spice::{Transient, TransientOptions};
use linvar_stats::{
    fingerprint_str, fingerprint_words, lhs_uniform, monte_carlo_par, resolve_threads,
    rng_from_seed, run_campaign, CampaignFingerprint, CampaignResult, CampaignVerdict, Histogram,
    RecoveryPolicy, SampleStatus,
};
use linvar_teta::{StageModel, Waveform};
use std::time::Instant;

const N_LINES: usize = 4;
const PROBE_LINE: usize = 1;
const MASTER_SEED: u64 = 2;
const N_SAMPLES: usize = 100;
const FIG6_LENGTH_UM: f64 = 50.0;

struct FourPortStage {
    model: StageModel,
    netlist: Netlist,
    inputs: Vec<linvar_circuit::NodeId>,
    probe_far: linvar_circuit::NodeId,
    probe_port: usize,
}

fn build_stage(length_um: f64) -> Result<FourPortStage, BenchError> {
    let tech = tech_018();
    let spec = CoupledLineSpec::new(N_LINES, length_um * 1e-6, WireTech::m018());
    let built = build_coupled_lines(&spec)?;
    let model = StageModel::build(
        &built.netlist,
        &built.inputs,
        &tech,
        ReductionMethod::Prima { order: 8 },
        0.02,
    )?;
    let probe_far = built.outputs[PROBE_LINE];
    let probe_port = built
        .netlist
        .ports()
        .iter()
        .position(|p| *p == probe_far)
        .ok_or("probe far end is not a port")?;
    Ok(FourPortStage {
        model,
        netlist: built.netlist,
        inputs: built.inputs,
        probe_far,
        probe_port,
    })
}

/// TETA evaluation of the stage at a wire sample; returns the probe delay.
fn teta_delay(stage: &FourPortStage, w: &[f64]) -> Result<f64, BenchError> {
    let vdd = 1.8;
    let input = Waveform::ramp(0.0, vdd, 50e-12, 50e-12);
    let m_in = 75e-12;
    let inputs = vec![input; N_LINES];
    let res = stage
        .model
        .evaluate(w, DeviceVariation::nominal(), &inputs, 1e-12, 2e-9)?;
    let out = &res.waveforms[stage.probe_port];
    let m_out = out
        .crossing(vdd / 2.0, false)
        .ok_or("probe output did not switch")?;
    Ok(m_out - m_in)
}

/// Same evaluation through the exact (per-sample re-reduced) model.
fn teta_exact_delay(stage: &FourPortStage, w: &[f64]) -> Result<f64, BenchError> {
    let vdd = 1.8;
    let input = Waveform::ramp(0.0, vdd, 50e-12, 50e-12);
    let m_in = 75e-12;
    let inputs = vec![input; N_LINES];
    let res = stage
        .model
        .evaluate_exact(w, DeviceVariation::nominal(), &inputs, 1e-12, 2e-9)?;
    let out = &res.waveforms[stage.probe_port];
    let m_out = out
        .crossing(vdd / 2.0, false)
        .ok_or("probe output did not switch")?;
    Ok(m_out - m_in)
}

/// SPICE evaluation: four transistor inverters driving the frozen bundle.
fn spice_delay(stage: &FourPortStage, w: &[f64]) -> Result<f64, BenchError> {
    let tech = tech_018();
    let vdd = tech.library.vdd;
    let frozen = stage.netlist.frozen_at(w);
    let mut sim = Netlist::new();
    let vdd_node = sim.node("vdd");
    let in_node = sim.node("stage_in");
    sim.instantiate(&frozen, "", &[])?;
    sim.add_vsource("Vdd", vdd_node, Netlist::GROUND, SourceWaveform::Dc(vdd))?;
    sim.add_vsource(
        "Vin",
        in_node,
        Netlist::GROUND,
        SourceWaveform::Ramp {
            v0: 0.0,
            v1: vdd,
            t0: 50e-12,
            tr: 50e-12,
        },
    )?;
    for (k, near) in stage.inputs.iter().enumerate() {
        let name = frozen
            .node_name(*near)
            .ok_or("stage input is unnamed")?
            .to_string();
        let node = sim
            .find_node(&name)
            .ok_or("stage input missing after instantiation")?;
        sim.add_mosfet(
            &format!("MP{k}"),
            node,
            in_node,
            vdd_node,
            vdd_node,
            MosType::Pmos,
            &tech.library.pmos_name(),
            tech.wp,
            tech.library.lmin,
        )?;
        sim.add_mosfet(
            &format!("MN{k}"),
            node,
            in_node,
            Netlist::GROUND,
            Netlist::GROUND,
            MosType::Nmos,
            &tech.library.nmos_name(),
            tech.wn,
            tech.library.lmin,
        )?;
    }
    let probe_name = frozen
        .node_name(stage.probe_far)
        .ok_or("probe node is unnamed")?
        .to_string();
    let mut opts = TransientOptions::new(2e-9, 1e-12);
    opts.probes.push(probe_name.clone());
    let res =
        Transient::with_devices(&sim, &tech.library, DeviceVariation::nominal(), &opts)?.run()?;
    let times = &res.times;
    let vals = res.probe(&probe_name).ok_or("probe was not recorded")?;
    let m_out = linvar_spice::crossing_time(times, vals, vdd / 2.0, false, 0.0)
        .ok_or("spice probe did not switch")?;
    Ok(m_out - 75e-12)
}

/// Identity of one Figure-6 campaign: the sampling scheme (uniform LHS
/// over the 5 wire sources), the stage geometry, and which engine.
fn fig6_fingerprint(variant: &str) -> CampaignFingerprint {
    CampaignFingerprint {
        master_seed: MASTER_SEED,
        n_samples: N_SAMPLES,
        policy: RecoveryPolicy {
            max_retries: 0,
            allow_fallback: false,
            fail_fast: false,
        },
        model: fingerprint_words([
            fingerprint_str("example2-fig6"),
            fingerprint_str(variant),
            N_LINES as u64,
            FIG6_LENGTH_UM.to_bits(),
        ]),
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("example2: {e}");
        std::process::exit(e.exit_code());
    }
}

fn run() -> Result<(), BenchError> {
    let args = BenchArgs::parse(std::env::args().skip(1))?;
    args.reject_shard_flags("example2")?;
    if args.quick {
        return Err(BenchError::Usage("example2 has no --quick mode".into()));
    }
    let mut meter = BenchMeter::start("example2");
    let run_start = Instant::now();
    let threads = resolve_threads(0);
    println!("==== Example 2 (paper Figures 5-6) ====");
    println!("(TETA Monte-Carlo on {threads} worker thread(s); set LINVAR_THREADS to change)\n");
    let mut rng = rng_from_seed(MASTER_SEED);
    let samples = lhs_uniform(&mut rng, N_SAMPLES, 5, -1.0, 1.0);

    // ---------------- Figure 5: CPU time vs wirelength ----------------
    let mut rows = Vec::new();
    for &len in &[10.0, 25.0, 50.0, 100.0] {
        if args.deadline_exhausted(run_start) {
            eprintln!("deadline: skipping the Figure-5 {len} um measurement");
            continue;
        }
        let stage = build_stage(len)?;
        let n_teta = 20;
        let t0 = Instant::now();
        let mc = monte_carlo_par(&samples[..n_teta], threads, |s| teta_delay(&stage, s));
        let elapsed = t0.elapsed().as_secs_f64();
        if let Some(diag) = &mc.first_error {
            return Err(format!("TETA evaluation failed at {len} um: {diag}").into());
        }
        let teta_ms = elapsed * 1e3 / n_teta as f64;
        let sps = n_teta as f64 / elapsed;
        let n_spice = 3;
        let t0 = Instant::now();
        for s in samples.iter().take(n_spice) {
            spice_delay(&stage, s)?;
        }
        let spice_ms = t0.elapsed().as_secs_f64() * 1e3 / n_spice as f64;
        rows.push(vec![
            format!("{len:.0}"),
            format!("{}", N_LINES * (len as usize) * 3 - (len as usize)),
            format!("{teta_ms:.2}"),
            format!("{sps:.1}"),
            format!("{spice_ms:.2}"),
            format!("{:.1}", spice_ms / teta_ms),
        ]);
    }
    println!("Figure 5: CPU time per Monte-Carlo sample vs wirelength");
    println!(
        "{}",
        render_table(
            &[
                "length (um)",
                "lin. elements",
                "TETA ms",
                "TETA samples/s",
                "SPICE ms",
                "speedup"
            ],
            &rows
        )
    );

    // ---------------- Figure 6: delay histograms ----------------------
    let stage = build_stage(FIG6_LENGTH_UM)?;
    let fig6 = |variant: &str,
                eval: &(dyn Fn(&Vec<f64>) -> Result<f64, BenchError> + Sync)|
     -> Result<CampaignResult, BenchError> {
        let fp = fig6_fingerprint(variant);
        let config = args.campaign_config(&format!("fig6-{variant}"), run_start);
        let res = run_campaign(
            &samples,
            threads,
            fp.policy,
            &config,
            fp,
            |s: &Vec<f64>, _attempt| -> Result<(f64, SampleStatus), String> {
                eval(s)
                    .map(|d| (d, SampleStatus::Clean))
                    .map_err(|e| e.to_string())
            },
        )?;
        if res.verdict == CampaignVerdict::Complete {
            println!(
                "mc fig6-{variant}: n={} mean={} std={} failures={}",
                res.summary.n,
                bits_hex(res.summary.mean),
                bits_hex(res.summary.std),
                res.failures
            );
        }
        Ok(res)
    };
    let reduced_mc = fig6("reduced", &|s| teta_delay(&stage, s))?;
    let full_mc = fig6("full", &|s| teta_exact_delay(&stage, s))?;
    if reduced_mc.verdict != CampaignVerdict::Complete
        || full_mc.verdict != CampaignVerdict::Complete
    {
        println!(
            "note: the Figure-6 sweeps hit the deadline; rerun with --resume to \
             finish from the snapshots"
        );
        return Ok(());
    }
    if let Some(diag) = reduced_mc
        .first_error
        .as_ref()
        .or(full_mc.first_error.as_ref())
    {
        return Err(format!("Figure-6 evaluation failed: {diag}").into());
    }
    let reduced = reduced_mc.values;
    let full = full_mc.values;
    let rs = reduced_mc.summary;
    let fs = full_mc.summary;
    println!("Figure 6: probe delay over {N_SAMPLES} LHS samples (50 um lines)");
    println!(
        "  variational ROM : mean {:.3} ps, std {:.3} ps",
        rs.mean * 1e12,
        rs.std * 1e12
    );
    println!(
        "  exact reduction : mean {:.3} ps, std {:.3} ps",
        fs.mean * 1e12,
        fs.std * 1e12
    );
    println!(
        "  |mean error| = {:.3} ps, |std error| = {:.3} ps",
        (rs.mean - fs.mean).abs() * 1e12,
        (rs.std - fs.std).abs() * 1e12
    );
    let (h_red, h_full) = Histogram::pair(&reduced, &full, 12)?;
    print!(
        "{}",
        h_red.render_pair(&h_full, "variational ROM", "exact reduction", 1e12, "ps")
    );
    // SPICE cross-check on a few samples.
    if args.deadline_exhausted(run_start) {
        eprintln!("deadline: skipping the SPICE cross-check");
        eprintln!("{}", linvar_bench::workspace_note());
        meter.finish(&args)?;
        return Ok(());
    }
    let mut worst = 0.0_f64;
    for s in samples.iter().take(3) {
        let d_teta = teta_delay(&stage, s)?;
        let d_spice = spice_delay(&stage, s)?;
        worst = worst.max((d_teta - d_spice).abs() / d_spice.abs());
    }
    println!(
        "\nSPICE cross-check on 3 samples: worst relative delay error {:.2}%",
        worst * 100.0
    );
    meter.set("spice_crosscheck_worst_rel_error", worst);
    eprintln!("{}", linvar_bench::workspace_note());
    meter.finish(&args)?;
    Ok(())
}
