//! Regenerates the paper's Table 5: longest-path delay statistics
//! (mean, σ) from Gradient Analysis vs Monte-Carlo, under `std(DL) = 0.33`
//! alone and with `std(VT) = 0.33` added.
//!
//! Flags: `--quick` runs 30-sample Monte-Carlo; `--checkpoint <prefix>` /
//! `--resume <prefix>` / `--deadline <secs>` run the Monte-Carlo portions
//! as durable campaigns (one snapshot per circuit/configuration).
//! Completed configurations print a deterministic `mc …` line with the
//! statistics as raw `f64` bit patterns.
//!
//! Run with `cargo run --release -p linvar-bench --bin table5`
//! (set `LINVAR_THREADS` to pin the Monte-Carlo worker count).

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use linvar_bench::{bits_hex, render_table, BenchArgs, BenchError, BenchMeter};
use linvar_core::path::{PathModel, PathSpec, VariationSources};
use linvar_core::{CampaignVerdict, RecoveryPolicy};
use linvar_devices::tech_018;
use linvar_interconnect::WireTech;
use linvar_iscas::{benchmark, decompose_to_primitives, longest_path};
use linvar_stats::resolve_threads;
use std::time::Instant;

fn main() {
    if let Err(e) = run() {
        eprintln!("table5: {e}");
        std::process::exit(e.exit_code());
    }
}

fn run() -> Result<(), BenchError> {
    let args = BenchArgs::parse(std::env::args().skip(1))?;
    args.reject_shard_flags("table5")?;
    let mut meter = BenchMeter::start("table5");
    let run_start = Instant::now();
    let n_mc = if args.quick { 30 } else { 100 };
    let threads = resolve_threads(0);
    println!("==== Table 5: longest-path delay statistics (GA vs MC, {n_mc} samples) ====");
    println!("(Monte-Carlo on {threads} worker thread(s); set LINVAR_THREADS to change)\n");
    let tech = tech_018();
    let wire = WireTech::m018();
    let circuits = ["s27", "s208", "s832", "s444", "s1423"];
    let configs = [("0.33", "0", 0.33, 0.0), ("0.33", "0.33", 0.33, 0.33)];
    let mut rows = Vec::new();
    let mut truncated = 0usize;
    for (dl_label, vt_label, dl, vt) in configs {
        for circuit in circuits {
            if args.deadline_exhausted(run_start) {
                truncated += 1;
                eprintln!("deadline: skipping {circuit} DL={dl} VT={vt} (no budget left)");
                continue;
            }
            let bench = benchmark(circuit).ok_or("unknown benchmark")?;
            let report = longest_path(&bench.netlist)?;
            let stages = decompose_to_primitives(&bench.netlist, &report)?;
            let spec = PathSpec {
                cells: stages.into_iter().map(|s| s.cell).collect(),
                linear_elements_between_stages: 10,
                input_slew: 60e-12,
            };
            let model = PathModel::build(&spec, &tech, &wire)?;
            let sources = VariationSources::example3(dl, vt);
            let ga = model.gradient_analysis(&sources)?;
            let config =
                args.campaign_config(&format!("{circuit}.dl{dl_label}-vt{vt_label}"), run_start);
            let t0 = Instant::now();
            let mc = model.monte_carlo_campaign(
                &sources,
                n_mc,
                5,
                threads,
                RecoveryPolicy::default(),
                &config,
            )?;
            let elapsed = t0.elapsed().as_secs_f64();
            if let CampaignVerdict::Truncated { remaining } = mc.verdict {
                truncated += 1;
                eprintln!(
                    "deadline: {circuit} DL={dl_label} VT={vt_label} truncated with \
                     {remaining}/{n_mc} samples pending; resume with --resume to finish"
                );
                continue;
            }
            println!(
                "mc {circuit} DL={dl_label} VT={vt_label}: n={} mean={} std={} failures={}",
                mc.summary.n,
                bits_hex(mc.summary.mean),
                bits_hex(mc.summary.std),
                mc.failures
            );
            let n_stages = model.stage_count();
            rows.push(vec![
                format!("{circuit} ({n_stages} stages)"),
                dl_label.to_string(),
                vt_label.to_string(),
                "GA".to_string(),
                format!("{:.2}", ga.nominal_delay * 1e12),
                format!("{:.2}", ga.std * 1e12),
            ]);
            rows.push(vec![
                String::new(),
                String::new(),
                String::new(),
                "MC".to_string(),
                format!("{:.2}", mc.summary.mean * 1e12),
                format!("{:.2}", mc.summary.std * 1e12),
            ]);
            if mc.evaluated > 0 {
                eprintln!(
                    "done: {circuit} DL={dl} VT={vt} ({:.1} samples/sec)",
                    mc.evaluated as f64 / elapsed
                );
            } else {
                eprintln!("done: {circuit} DL={dl} VT={vt} (restored from snapshot)");
            }
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "circuit",
                "std(DL)",
                "std(VT)",
                "method",
                "mean (ps)",
                "std (ps)"
            ],
            &rows
        )
    );
    if truncated > 0 {
        println!(
            "note: {truncated} configuration(s) hit the deadline; rerun with \
             --resume to finish from the snapshots"
        );
    }
    meter.set("truncated_configs", truncated as u64);
    eprintln!("{}", linvar_bench::workspace_note());
    meter.finish(&args)?;
    Ok(())
}
