//! Regenerates the paper's Table 5: longest-path delay statistics
//! (mean, σ) from Gradient Analysis vs Monte-Carlo, under `std(DL) = 0.33`
//! alone and with `std(VT) = 0.33` added.
//!
//! Run with `cargo run --release -p linvar-bench --bin table5`
//! (append `--quick` for 30-sample Monte-Carlo runs; set `LINVAR_THREADS`
//! to pin the Monte-Carlo worker count).

use linvar_bench::render_table;
use linvar_core::path::{PathModel, PathSpec, VariationSources};
use linvar_devices::tech_018;
use linvar_interconnect::WireTech;
use linvar_iscas::{benchmark, decompose_to_primitives, longest_path};
use linvar_stats::resolve_threads;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let n_mc = if quick { 30 } else { 100 };
    let threads = resolve_threads(0);
    println!("==== Table 5: longest-path delay statistics (GA vs MC, {n_mc} samples) ====");
    println!("(Monte-Carlo on {threads} worker thread(s); set LINVAR_THREADS to change)\n");
    let tech = tech_018();
    let wire = WireTech::m018();
    let circuits = ["s27", "s208", "s832", "s444", "s1423"];
    let configs = [("0.33", "0", 0.33, 0.0), ("0.33", "0.33", 0.33, 0.33)];
    let mut rows = Vec::new();
    for (dl_label, vt_label, dl, vt) in configs {
        for circuit in circuits {
            let bench = benchmark(circuit).ok_or("unknown benchmark")?;
            let report = longest_path(&bench.netlist)?;
            let stages = decompose_to_primitives(&bench.netlist, &report)?;
            let spec = PathSpec {
                cells: stages.into_iter().map(|s| s.cell).collect(),
                linear_elements_between_stages: 10,
                input_slew: 60e-12,
            };
            let model = PathModel::build(&spec, &tech, &wire)?;
            let sources = VariationSources::example3(dl, vt);
            let ga = model.gradient_analysis(&sources)?;
            let t0 = Instant::now();
            let mc = model.monte_carlo_par(&sources, n_mc, 5, threads)?;
            let sps = n_mc as f64 / t0.elapsed().as_secs_f64();
            let n_stages = model.stage_count();
            rows.push(vec![
                format!("{circuit} ({n_stages} stages)"),
                dl_label.to_string(),
                vt_label.to_string(),
                "GA".to_string(),
                format!("{:.2}", ga.nominal_delay * 1e12),
                format!("{:.2}", ga.std * 1e12),
            ]);
            rows.push(vec![
                String::new(),
                String::new(),
                String::new(),
                "MC".to_string(),
                format!("{:.2}", mc.summary.mean * 1e12),
                format!("{:.2}", mc.summary.std * 1e12),
            ]);
            eprintln!("done: {circuit} DL={dl} VT={vt} ({sps:.1} samples/sec)");
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "circuit",
                "std(DL)",
                "std(VT)",
                "method",
                "mean (ps)",
                "std (ps)"
            ],
            &rows
        )
    );
    Ok(())
}
