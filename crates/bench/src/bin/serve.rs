//! The campaign service binary: server mode plus a tiny client so
//! ci.sh and operators need nothing beyond this workspace (no `curl`).
//!
//! ```text
//! serve serve    [--addr A] [--jobs-dir D] [--workers N] [--queue N]
//! serve submit   [--addr A] --model M --n N [--seed S] [--tenant T]
//!                [--max-retries R] [--no-fallback] [--budget B]
//! serve wait     [--addr A] --job ID [--timeout-secs S]
//! serve status   [--addr A] --job ID
//! serve list     [--addr A]
//! serve cancel   [--addr A] --job ID
//! serve health   [--addr A]
//! serve shutdown [--addr A]
//! ```
//!
//! Server mode resolves its defaults from `LINVAR_SERVE_ADDR`,
//! `LINVAR_SERVE_WORKERS`, `LINVAR_SERVE_QUEUE`, and
//! `LINVAR_SERVE_FAULT` (flags win), registers the built-in model
//! registry, runs the recovery scan, and serves until SIGTERM/ctrl-c or
//! `POST /shutdown` — then drains gracefully and exits 0.
//!
//! `submit` prints the job id on stdout (one token, script-friendly);
//! `wait` polls until the job is terminal and prints the deterministic
//! result line — the byte-identity anchor of the kill/restart smoke in
//! ci.sh.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use linvar_core::ModelRegistry;
use linvar_metrics::Json;
use linvar_serve::{
    install_signal_handlers, request, ClientResponse, JsonGet, ServeConfig, Server,
};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const CLIENT_TIMEOUT: Duration = Duration::from_secs(5);

fn main() {
    if let Err(e) = run() {
        eprintln!("serve: {e}");
        std::process::exit(1);
    }
}

struct Opts {
    addr: String,
    rest: std::collections::BTreeMap<String, String>,
    flags: std::collections::BTreeSet<String>,
}

fn parse_opts<I: Iterator<Item = String>>(mut argv: I) -> Result<Opts, String> {
    let mut rest = std::collections::BTreeMap::new();
    let mut flags = std::collections::BTreeSet::new();
    while let Some(arg) = argv.next() {
        let Some(name) = arg.strip_prefix("--") else {
            return Err(format!("unexpected argument {arg:?}"));
        };
        if matches!(name, "no-fallback" | "quick") {
            flags.insert(name.to_string());
            continue;
        }
        let value = argv
            .next()
            .ok_or_else(|| format!("--{name} requires a value"))?;
        rest.insert(name.to_string(), value);
    }
    let addr = rest
        .remove("addr")
        .unwrap_or_else(|| linvar_serve::config::DEFAULT_ADDR.to_string());
    Ok(Opts { addr, rest, flags })
}

impl Opts {
    fn take(&mut self, name: &str) -> Option<String> {
        self.rest.remove(name)
    }

    fn take_usize(&mut self, name: &str) -> Result<Option<usize>, String> {
        match self.rest.remove(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse::<usize>()
                .map(Some)
                .map_err(|_| format!("--{name} wants a non-negative integer, got {raw:?}")),
        }
    }

    fn finish(self) -> Result<(), String> {
        if let Some(unknown) = self.rest.keys().next() {
            return Err(format!("unknown option --{unknown}"));
        }
        Ok(())
    }
}

fn run() -> Result<(), String> {
    let mut argv = std::env::args().skip(1);
    let Some(cmd) = argv.next() else {
        return Err(
            "usage: serve <serve|submit|wait|status|list|cancel|health|shutdown> [options]".into(),
        );
    };
    let mut opts = parse_opts(argv)?;
    match cmd.as_str() {
        "serve" => serve_mode(opts),
        "submit" => {
            let model = opts.take("model").ok_or("submit requires --model")?;
            let n = opts
                .take_usize("n")?
                .ok_or("submit requires --n <samples>")?;
            let seed = opts
                .take("seed")
                .map(|s| s.parse::<u64>().map_err(|_| format!("bad --seed {s:?}")))
                .transpose()?
                .unwrap_or(0);
            let tenant = opts.take("tenant");
            let max_retries = opts.take_usize("max-retries")?;
            let budget = opts.take_usize("budget")?;
            let no_fallback = opts.flags.contains("no-fallback");
            let addr = opts.addr.clone();
            opts.finish()?;
            let mut body = Json::obj();
            body.set("model", model)
                .set("n", n as u64)
                .set("seed", seed);
            if let Some(t) = tenant {
                body.set("tenant", t);
            }
            if let Some(r) = max_retries {
                body.set("max_retries", r as u64);
            }
            if let Some(b) = budget {
                body.set("budget", b as u64);
            }
            if no_fallback {
                body.set("allow_fallback", false);
            }
            let resp = request(&addr, "POST", "/jobs", Some(&body), CLIENT_TIMEOUT)?;
            expect_ok(&resp)?;
            let id = resp
                .body
                .get_str("job")
                .ok_or("response has no \"job\" field")?;
            eprintln!(
                "job {id} state={} existing={}",
                resp.body.get_str("state").unwrap_or("?"),
                resp.body.get_bool("existing").unwrap_or(false)
            );
            println!("{id}");
            Ok(())
        }
        "wait" => {
            let job = opts.take("job").ok_or("wait requires --job <id>")?;
            let timeout = opts.take_usize("timeout-secs")?.unwrap_or(120);
            let addr = opts.addr.clone();
            opts.finish()?;
            let deadline = Instant::now() + Duration::from_secs(timeout as u64);
            loop {
                let resp = request(
                    &addr,
                    "GET",
                    &format!("/jobs/{job}/result"),
                    None,
                    CLIENT_TIMEOUT,
                )?;
                if resp.status == 200 {
                    let state = resp.body.get_str("state").unwrap_or("?");
                    if let Some(line) = resp.body.get_str("result") {
                        println!("{line}");
                    }
                    if let Some(err) = resp.body.get_str("error") {
                        return Err(format!("job {job} {state}: {err}"));
                    }
                    if state != "done" && state != "truncated" {
                        return Err(format!("job {job} finished as {state}"));
                    }
                    return Ok(());
                }
                if resp.status != 202 {
                    return Err(format!("wait: unexpected status {}", resp.status));
                }
                if Instant::now() >= deadline {
                    return Err(format!("job {job} not terminal after {timeout}s"));
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
        "status" | "cancel" => {
            let job = opts.take("job").ok_or("requires --job <id>")?;
            let addr = opts.addr.clone();
            opts.finish()?;
            let (method, path) = if cmd == "status" {
                ("GET", format!("/jobs/{job}"))
            } else {
                ("POST", format!("/jobs/{job}/cancel"))
            };
            let resp = request(&addr, method, &path, None, CLIENT_TIMEOUT)?;
            expect_ok(&resp)?;
            print!("{}", resp.body.render());
            Ok(())
        }
        "list" | "health" | "shutdown" => {
            let addr = opts.addr.clone();
            opts.finish()?;
            let (method, path) = match cmd.as_str() {
                "list" => ("GET", "/jobs"),
                "health" => ("GET", "/healthz"),
                _ => ("POST", "/shutdown"),
            };
            let resp = request(&addr, method, path, None, CLIENT_TIMEOUT)?;
            expect_ok(&resp)?;
            print!("{}", resp.body.render());
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn expect_ok(resp: &ClientResponse) -> Result<(), String> {
    if resp.ok() {
        return Ok(());
    }
    let detail = resp.body.get_str("error").unwrap_or("");
    Err(format!("server answered {}: {detail}", resp.status))
}

fn serve_mode(mut opts: Opts) -> Result<(), String> {
    let mut config = ServeConfig::from_env();
    config.addr = opts.addr.clone();
    if let Some(d) = opts.take("jobs-dir") {
        config.jobs_dir = PathBuf::from(d);
    }
    if let Some(w) = opts.take_usize("workers")? {
        config.workers = w.max(1);
    }
    if let Some(q) = opts.take_usize("queue")? {
        config.queue_cap = q.max(1);
    }
    opts.finish()?;

    linvar_metrics::reset();
    linvar_metrics::enable();
    install_signal_handlers();
    let registry = ModelRegistry::with_builtins();
    let handle = Server::start(config.clone(), registry).map_err(|e| e.to_string())?;
    eprintln!(
        "serve: listening on {} ({} worker(s), queue bound {}, jobs in {})",
        handle.addr(),
        config.workers,
        config.queue_cap,
        config.jobs_dir.display()
    );
    if let Some(fault) = config.fault {
        eprintln!("serve: fault armed: {fault:?}");
    }
    handle.join();
    eprintln!("serve: drained; exiting 0");
    Ok(())
}
