//! Load generator for the campaign service: spins up an in-process
//! server on an ephemeral port, hammers it over real TCP from
//! concurrent tenants, and records the robustness numbers of the
//! service contract in `BENCH_serve.json`:
//!
//! * submit→complete latency p50/p95/p99 (milliseconds) and job
//!   throughput under concurrent multi-tenant load;
//! * admission-control behaviour under deliberate overload — the bin
//!   saturates the bounded queue with slow jobs and asserts the server
//!   sheds with 429 + `Retry-After` while `/healthz` keeps answering.
//!
//! Everything runs in one process (server threads + client threads), so
//! the bin is self-contained for CI. `--quick` shrinks tenants × jobs.
//!
//! Run with `cargo run --release -p linvar-bench --bin loadgen [-- --quick]`.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use linvar_bench::{BenchArgs, BenchError, BenchMeter};
use linvar_core::{ModelRegistry, SyntheticModel};
use linvar_metrics::Json;
use linvar_serve::{request, JsonGet, ServeConfig, Server};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENT_TIMEOUT: Duration = Duration::from_secs(10);

fn main() {
    if let Err(e) = run() {
        eprintln!("loadgen: {e}");
        std::process::exit(e.exit_code());
    }
}

fn run() -> Result<(), BenchError> {
    let args = BenchArgs::parse(std::env::args().skip(1))?;
    args.reject_campaign_flags("loadgen")?;
    args.reject_shard_flags("loadgen")?;
    let mut meter = BenchMeter::start("serve");

    let (tenants, jobs_per_tenant, n_samples) = if args.quick { (4, 6, 8) } else { (8, 20, 16) };
    println!("==== loadgen: campaign-service latency and overload behaviour ====");
    println!(
        "({tenants} tenants x {jobs_per_tenant} jobs, {n_samples} samples/job, \
         in-process server on an ephemeral port)\n"
    );

    let jobs_dir = std::env::temp_dir().join(format!("linvar-loadgen-{}", std::process::id()));
    let mut registry = ModelRegistry::with_builtins();
    // A model slow enough that latency is dominated by service time,
    // not socket chatter — and that can back the queue up on demand.
    registry.register(Arc::new(SyntheticModel::new(
        "loadgen",
        Duration::from_millis(1),
    )));
    registry.register(Arc::new(SyntheticModel::new(
        "loadgen-blocker",
        Duration::from_millis(25),
    )));
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_cap: 8,
        jobs_dir: jobs_dir.clone(),
        ..ServeConfig::default()
    };
    let handle =
        Server::start(config, registry).map_err(|e| BenchError::Msg(format!("start: {e}")))?;
    let addr = handle.addr().to_string();

    let result = (|| -> Result<(), BenchError> {
        latency_phase(&addr, tenants, jobs_per_tenant, n_samples, &mut meter)?;
        overload_phase(&addr, &mut meter)
    })();

    handle.shutdown();
    handle.join();
    let _ = std::fs::remove_dir_all(&jobs_dir);
    result?;

    meter.set("loadgen.tenants", tenants as u64);
    meter.set("loadgen.jobs_per_tenant", jobs_per_tenant as u64);
    meter.finish(&args)?;
    Ok(())
}

/// Concurrent tenants submit and await distinct jobs; every
/// submit→terminal round trip is one latency sample.
fn latency_phase(
    addr: &str,
    tenants: usize,
    jobs_per_tenant: usize,
    n_samples: usize,
    meter: &mut BenchMeter,
) -> Result<(), BenchError> {
    let shed = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();
    let mut threads = Vec::new();
    for tenant in 0..tenants {
        let addr = addr.to_string();
        let shed = Arc::clone(&shed);
        threads.push(std::thread::spawn(move || -> Result<Vec<f64>, String> {
            let mut latencies = Vec::with_capacity(jobs_per_tenant);
            for k in 0..jobs_per_tenant {
                // Distinct seeds per (tenant, job): identical campaigns
                // dedup by design, and dedup is not what we measure here.
                let seed = (tenant * 100_000 + k) as u64 + 1;
                let mut body = Json::obj();
                body.set("model", "loadgen")
                    .set("n", n_samples as u64)
                    .set("seed", seed)
                    .set("tenant", format!("tenant{tenant}"));
                let start = Instant::now();
                let id = loop {
                    let resp = request(&addr, "POST", "/jobs", Some(&body), CLIENT_TIMEOUT)?;
                    if resp.status == 429 {
                        shed.fetch_add(1, Ordering::Relaxed);
                        let secs = resp.retry_after.unwrap_or(1);
                        std::thread::sleep(
                            Duration::from_millis(50).min(Duration::from_secs(secs)),
                        );
                        continue;
                    }
                    if !resp.ok() {
                        return Err(format!("submit: status {}", resp.status));
                    }
                    break resp
                        .body
                        .get_str("job")
                        .ok_or("submit: no job id")?
                        .to_string();
                };
                loop {
                    let resp = request(
                        &addr,
                        "GET",
                        &format!("/jobs/{id}/result"),
                        None,
                        CLIENT_TIMEOUT,
                    )?;
                    match resp.status {
                        200 => break,
                        202 => std::thread::sleep(Duration::from_millis(5)),
                        other => return Err(format!("result: status {other}")),
                    }
                }
                latencies.push(start.elapsed().as_secs_f64() * 1e3);
            }
            Ok(latencies)
        }));
    }
    let mut latencies = Vec::new();
    for t in threads {
        let per_tenant = t
            .join()
            .map_err(|_| BenchError::Msg("tenant thread panicked".into()))?
            .map_err(BenchError::Msg)?;
        latencies.extend(per_tenant);
    }
    let wall = t0.elapsed().as_secs_f64().max(1e-12);
    latencies.sort_by(|a, b| a.total_cmp(b));
    let total = latencies.len();
    let pct = |p: f64| latencies[((total as f64 * p) as usize).min(total - 1)];
    let (p50, p95, p99) = (pct(0.50), pct(0.95), pct(0.99));
    let throughput = total as f64 / wall;
    let shed_total = shed.load(Ordering::Relaxed);
    println!(
        "{total} jobs in {wall:.2}s: {throughput:.1} jobs/sec; latency p50 {p50:.1}ms \
         p95 {p95:.1}ms p99 {p99:.1}ms; {shed_total} submission(s) shed with 429"
    );
    meter.set("loadgen.jobs", total as u64);
    meter.set("loadgen.p50_ms", p50);
    meter.set("loadgen.p95_ms", p95);
    meter.set("loadgen.p99_ms", p99);
    meter.set("loadgen.throughput_jobs_per_sec", throughput);
    meter.set("loadgen.latency_shed_429", shed_total);
    Ok(())
}

/// Saturates the bounded queue with slow jobs until the server sheds,
/// asserting the backpressure contract: 429 + `Retry-After`, `/healthz`
/// still responsive, no unbounded growth.
fn overload_phase(addr: &str, meter: &mut BenchMeter) -> Result<(), BenchError> {
    let mut submitted = Vec::new();
    let mut shed = 0u64;
    let mut retry_after_seen = false;
    for k in 0..200u64 {
        let mut body = Json::obj();
        body.set("model", "loadgen-blocker")
            .set("n", 400u64)
            .set("seed", 1_000_000 + k)
            .set("tenant", "overload");
        let resp =
            request(addr, "POST", "/jobs", Some(&body), CLIENT_TIMEOUT).map_err(BenchError::Msg)?;
        match resp.status {
            429 => {
                shed += 1;
                retry_after_seen |= resp.retry_after.is_some();
                if shed >= 3 {
                    break;
                }
            }
            200 => {
                if let Some(id) = resp.body.get_str("job") {
                    submitted.push(id.to_string());
                }
            }
            other => return Err(BenchError::Msg(format!("overload submit: status {other}"))),
        }
    }
    if shed == 0 {
        return Err(BenchError::Msg(
            "queue never filled: admission control untested".into(),
        ));
    }
    if !retry_after_seen {
        return Err(BenchError::Msg(
            "429 responses carried no Retry-After".into(),
        ));
    }
    // The service must stay responsive while saturated.
    let health = request(addr, "GET", "/healthz", None, CLIENT_TIMEOUT).map_err(BenchError::Msg)?;
    if health.status != 200 || health.body.get_bool("ok") != Some(true) {
        return Err(BenchError::Msg(format!(
            "healthz under overload: status {}",
            health.status
        )));
    }
    let queued = health.body.get_u64("queued").unwrap_or(0);
    let cap = health.body.get_u64("queue_cap").unwrap_or(0);
    if queued > cap {
        return Err(BenchError::Msg(format!(
            "queue grew past its bound: {queued} > {cap}"
        )));
    }
    // Drain fast: cancel everything still pending.
    let mut cancelled = 0u64;
    for id in &submitted {
        let resp = request(
            addr,
            "POST",
            &format!("/jobs/{id}/cancel"),
            None,
            CLIENT_TIMEOUT,
        )
        .map_err(BenchError::Msg)?;
        if resp.status == 200 || resp.status == 202 {
            cancelled += 1;
        }
    }
    println!(
        "overload: {admitted} blocker(s) admitted, {shed} shed with 429 (Retry-After \
         present), healthz ok at queue {queued}/{cap}, {cancelled} cancelled to drain",
        admitted = submitted.len()
    );
    meter.set("overload.admitted", submitted.len() as u64);
    meter.set("overload.shed_429", shed);
    meter.set("overload.queued_at_saturation", queued);
    meter.set("overload.queue_cap", cap);
    Ok(())
}
