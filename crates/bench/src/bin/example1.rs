//! Regenerates the paper's Example 1: Table 2 (electrical model), Table 3
//! (unstable poles of the raw variational macromodel) and Figure 3
//! (nominal / extreme / reconstructed-macromodel waveforms).
//!
//! Run with `cargo run --release -p linvar-bench --bin example1`.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use linvar_bench::{render_table, BenchArgs, BenchError, BenchMeter};
use linvar_circuit::{MosType, Netlist, SourceWaveform};
use linvar_devices::{tech_06, DeviceVariation, Technology};
use linvar_interconnect::example1::{example1_load, TABLE2};
use linvar_mor::{extract_pole_residue, ReductionMethod, VariationalRom};
use linvar_spice::{OnePortPoleResidue, Transient, TransientOptions};
use linvar_teta::{StageModel, Waveform};

fn main() {
    if let Err(e) = run() {
        eprintln!("example1: {e}");
        std::process::exit(e.exit_code());
    }
}

fn run() -> Result<(), BenchError> {
    let args = BenchArgs::parse(std::env::args().skip(1))?;
    args.reject_campaign_flags("example1")?;
    args.reject_shard_flags("example1")?;
    if args.quick {
        return Err(BenchError::Usage("example1 has no --quick mode".into()));
    }
    let mut meter = BenchMeter::start("example1");
    println!("==== Example 1 (paper Tables 2-3, Figure 3) ====\n");

    // ---------------- Table 2 ----------------------------------------
    let names = ["R1", "R2", "R3", "C1", "C2", "C3", "CC1", "CC2", "CC3"];
    let mut rows = Vec::new();
    for p in [0.0, 0.1] {
        let mut row = vec![format!("{p}")];
        for (k, (nom, sens)) in TABLE2.iter().enumerate() {
            let v = nom + sens * p;
            row.push(if k < 3 {
                format!("{v:.0}")
            } else {
                format!("{:.0}pf", v * 1e12)
            });
        }
        rows.push(row);
    }
    let mut headers = vec!["p"];
    headers.extend(names);
    println!("Table 2: electrical model of the Example-1 circuit");
    println!("{}", render_table(&headers, &rows));

    // ---------------- Table 3 ----------------------------------------
    let (nl, port) = example1_load()?;
    let var = nl.assemble_variational()?;
    let raw =
        VariationalRom::characterize(&var, ReductionMethod::Pact { internal_modes: 3 }, 0.02)?;
    let mut rows = Vec::new();
    let mut worst: Option<(f64, f64)> = None;
    for &p in &[0.0, 0.02, 0.05, 0.06, 0.08, 0.09, 0.1] {
        let pr = extract_pole_residue(&raw.evaluate(&[p])?)?;
        let unstable = pr.unstable_poles();
        let cell = if unstable.is_empty() {
            "-".to_string()
        } else {
            unstable
                .iter()
                .map(|z| format!("{:+.2e}", z.re))
                .collect::<Vec<_>>()
                .join(" ")
        };
        for z in &unstable {
            if worst.is_none_or(|(_, w)| z.re > w) {
                worst = Some((p, z.re));
            }
        }
        rows.push(vec![format!("{p}"), cell]);
    }
    println!("Table 3: unstable poles of the raw variational PACT-4 model");
    println!("{}", render_table(&["p", "unstable poles (rad/s)"], &rows));

    // SPICE on the most unstable raw model → divergence, as in the paper.
    if let Some((p, _)) = worst {
        let pr = extract_pole_residue(&raw.evaluate(&[p])?)?;
        let outcome = spice_on_macromodel(&pr);
        println!("SPICE with the raw macromodel subcircuit at p={p}: {outcome}\n");
    }

    // ---------------- Figure 3 ---------------------------------------
    let tech = tech_06();
    let stage = StageModel::build(
        &nl,
        &[port],
        &tech,
        ReductionMethod::Prima { order: 4 },
        0.02,
    )?;
    let input = Waveform::ramp(tech.library.vdd, 0.0, 1e-9, 2e-9);
    let res = stage.evaluate(
        &[0.1],
        DeviceVariation::nominal(),
        std::slice::from_ref(&input),
        10e-12,
        40e-9,
    )?;
    let v_macro = &res.waveforms[0];
    let v_nom = spice_exact(&nl, port, &tech, 0.0)?;
    let v_ext = spice_exact(&nl, port, &tech, 0.1)?;
    let mut rows = Vec::new();
    let mut max_err = 0.0_f64;
    for k in 0..=20 {
        let t = 2e-9 * k as f64;
        max_err = max_err.max((v_ext.eval(t) - v_macro.eval(t)).abs());
        rows.push(vec![
            format!("{:.0}", t * 1e9),
            format!("{:.3}", v_nom.eval(t)),
            format!("{:.3}", v_ext.eval(t)),
            format!("{:.3}", v_macro.eval(t)),
        ]);
    }
    println!("Figure 3: port waveform, 0.6um inverter driving the load");
    println!(
        "{}",
        render_table(
            &["t (ns)", "nominal p=0", "extreme p=0.1", "macromodel p=0.1"],
            &rows
        )
    );
    println!("max |extreme - macromodel| = {max_err:.4} V (VDD = 5 V)");
    meter.set("fig3_max_macromodel_error_v", max_err);
    eprintln!("{}", linvar_bench::workspace_note());
    meter.finish(&args)?;
    Ok(())
}

fn spice_on_macromodel(pr: &linvar_mor::PoleResidueModel) -> String {
    let run = || -> Result<(), BenchError> {
        let mut drive = Netlist::new();
        let inp = drive.node("in");
        let out = drive.node("out");
        drive.add_vsource(
            "V1",
            inp,
            Netlist::GROUND,
            SourceWaveform::Ramp {
                v0: 0.0,
                v1: 5.0,
                t0: 1e-9,
                tr: 2e-9,
            },
        )?;
        drive.add_resistor("Rdrv", inp, out, 270.0)?;
        let idx = out.mna_index().ok_or("macromodel port is grounded")?;
        let load = OnePortPoleResidue::from_model(pr, idx)?;
        let mut opts = TransientOptions::new(50e-9, 20e-12);
        opts.probes.push("out".into());
        Transient::new(&drive, &opts)?
            .with_poleres_load(load)?
            .run()?;
        Ok(())
    };
    match run() {
        Err(e) => format!("FAILED as in the paper ({e})"),
        Ok(()) => "converged (instability too mild to diverge)".to_string(),
    }
}

fn spice_exact(
    nl: &Netlist,
    port: linvar_circuit::NodeId,
    tech: &Technology,
    p: f64,
) -> Result<Waveform, BenchError> {
    let frozen = nl.frozen_at(&[p]);
    let mut sim = Netlist::new();
    let vdd = sim.node("vdd");
    let inp = sim.node("in");
    sim.instantiate(&frozen, "", &[])?;
    let port_name = frozen
        .node_name(port)
        .ok_or("load port is unnamed")?
        .to_string();
    let out = sim
        .find_node(&port_name)
        .ok_or("load port missing after instantiation")?;
    sim.add_vsource(
        "Vdd",
        vdd,
        Netlist::GROUND,
        SourceWaveform::Dc(tech.library.vdd),
    )?;
    sim.add_vsource(
        "Vin",
        inp,
        Netlist::GROUND,
        SourceWaveform::Ramp {
            v0: tech.library.vdd,
            v1: 0.0,
            t0: 1e-9,
            tr: 2e-9,
        },
    )?;
    sim.add_mosfet(
        "MP",
        out,
        inp,
        vdd,
        vdd,
        MosType::Pmos,
        &tech.library.pmos_name(),
        tech.wp,
        tech.library.lmin,
    )?;
    sim.add_mosfet(
        "MN",
        out,
        inp,
        Netlist::GROUND,
        Netlist::GROUND,
        MosType::Nmos,
        &tech.library.nmos_name(),
        tech.wn,
        tech.library.lmin,
    )?;
    let mut opts = TransientOptions::new(40e-9, 10e-12);
    opts.probes.push(port_name.clone());
    let res =
        Transient::with_devices(&sim, &tech.library, DeviceVariation::nominal(), &opts)?.run()?;
    let probed = res.probe(&port_name).ok_or("probe was not recorded")?;
    let pts: Vec<(f64, f64)> = res
        .times
        .iter()
        .copied()
        .zip(probed.iter().copied())
        .collect();
    Ok(Waveform::from_points(pts).compress(1e-3))
}
