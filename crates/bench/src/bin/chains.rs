//! Large-circuit solver benchmark: Monte-Carlo delay campaigns over the
//! generated RC-chain / H-tree suite ([`linvar_interconnect::standard_cases`]),
//! run on both linear-solver backends where feasible.
//!
//! For every case the sparse backend always runs; the dense backend runs
//! only when the MNA dimension is small enough for an `O(n³)` dense
//! factorization to finish in reasonable time (the larger suite members
//! exist precisely because it cannot). Where both backends run, the bin
//! prints their `mc` statistic rows (byte-identical by construction — the
//! property `ci.sh` diffs) and the dense/sparse wall-time speedup.
//!
//! Setting `LINVAR_SOLVER=dense|sparse` pins a single backend instead;
//! `ci.sh` uses that to run the quick suite once per backend and compare.
//! `--shards <N>` routes every campaign through the shard supervisor
//! (in-memory, no checkpoints) — the `mc` rows are byte-identical either
//! way, which `ci.sh` also diffs.
//!
//! `--engine sobol` reruns the MC flow over the Sobol quasi-MC sample
//! stream (rows prefixed `sobol`); `--engine gpc` replaces the sample
//! campaign with the Smolyak spectral grid of
//! [`linvar_bench::chains::CHAINS_GPC_CONFIG`] — 11 transient solves
//! per case — printing `gpc` rows with surrogate moments and quantiles.
//! Neither spectral engine supports `--shards`.
//!
//! Phase timings (`symbolic`, `numeric_factor`, `solve`) and per-case
//! throughput land in `BENCH_chains.json`; `--metrics` additionally
//! prints the report, and `LINVAR_TRAJECTORY` appends a trajectory row.
//!
//! Run with `cargo run --release -p linvar-bench --bin chains [-- --quick]`
//! (set `LINVAR_THREADS` to pin the Monte-Carlo worker count).

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use linvar_bench::chains::{
    engine_line, gpc_line, run_case, run_case_sharded, run_case_spectral, sample_set,
    sample_set_sobol,
};
use linvar_bench::{workspace_note, BenchArgs, BenchError, BenchMeter, Engine};
use linvar_interconnect::standard_cases;
use linvar_numeric::{SolverBackend, SolverChoice};
use linvar_stats::{resolve_threads, ShardConfig, Summary};
use std::time::Instant;

/// Largest MNA dimension the dense backend is asked to time. Above this
/// the dense factorization is declared infeasible for a Monte-Carlo
/// campaign (cubic cost, quadratic memory) and only sparse runs — the
/// benchmark's escape clause for the 10–100× sizes.
const DENSE_MAX_DIM: usize = 4096;

fn main() {
    if let Err(e) = run() {
        eprintln!("chains: {e}");
        std::process::exit(e.exit_code());
    }
}

fn run() -> Result<(), BenchError> {
    let args = BenchArgs::parse(std::env::args().skip(1))?;
    args.reject_campaign_flags("chains")?;
    args.validate_engine("chains", true)?;
    let mut meter = BenchMeter::start("chains");
    let threads = resolve_threads(0);
    let engine = args.engine.name();
    let n_samples = if args.quick { 6 } else { 16 };
    let pinned = match SolverChoice::from_env() {
        SolverChoice::Auto => None,
        pick => Some(pick),
    };
    println!("==== chains: large-circuit solver benchmark ====");
    println!(
        "({} suite, {n_samples} samples/case, {threads} worker thread(s); \
         set LINVAR_THREADS to change)",
        if args.quick { "quick" } else { "full" }
    );
    match pinned {
        Some(choice) => println!("backend pinned via LINVAR_SOLVER: {}", name_of(choice)),
        None => println!("comparing backends (dense skipped above dim {DENSE_MAX_DIM})"),
    }
    if let Some(n_shards) = args.shards {
        println!("shard supervisor: {n_shards} shard(s) per campaign");
    }
    if args.engine != Engine::Mc {
        println!("statistics engine: {engine}");
    }
    println!();
    // The Sobol engine is the MC flow over the quasi-MC sample stream;
    // the gPC engine replaces the campaign with a spectral node grid.
    let samples = match args.engine {
        Engine::Sobol => sample_set_sobol(n_samples),
        _ => sample_set(n_samples),
    };
    let cases = standard_cases(args.quick)?;
    for case in &cases {
        println!(
            "-- {} (dim {}, {} elements, tstop {:.3e} s)",
            case.name, case.dim, case.element_count, case.tstop
        );
        if args.engine == Engine::Gpc {
            run_gpc_case(case, threads, pinned, &mut meter)?;
            meter.set(&format!("{}.dim", case.name), case.dim as u64);
            println!();
            continue;
        }
        // The `mc` rows stay byte-identical with and without shards —
        // the identity ci.sh's shard smoke diffs.
        let shard_cfg = args.shard_config(&case.name)?;
        match pinned {
            Some(choice) => {
                if backend_of(choice) == SolverBackend::Dense && case.dim > DENSE_MAX_DIM {
                    println!(
                        "dense {}: infeasible at dim {} (skipped; dense cap {DENSE_MAX_DIM})",
                        case.name, case.dim
                    );
                    continue;
                }
                let (summary, failures, rate) =
                    timed_campaign(case, &samples, threads, choice, shard_cfg.as_ref())?;
                println!("{}", engine_line(engine, &case.name, &summary, failures));
                eprintln!("{}: {} {rate:.2} samples/sec", case.name, name_of(choice));
                meter.set(
                    &format!("{}.{}.samples_per_sec", case.name, name_of(choice)),
                    rate,
                );
            }
            None => {
                let (sum_s, fail_s, rate_s) = timed_campaign(
                    case,
                    &samples,
                    threads,
                    SolverChoice::Sparse,
                    shard_cfg.as_ref(),
                )?;
                meter.set(&format!("{}.sparse.samples_per_sec", case.name), rate_s);
                if case.dim <= DENSE_MAX_DIM {
                    let (sum_d, fail_d, rate_d) = timed_campaign(
                        case,
                        &samples,
                        threads,
                        SolverChoice::Dense,
                        shard_cfg.as_ref(),
                    )?;
                    meter.set(&format!("{}.dense.samples_per_sec", case.name), rate_d);
                    let row_s = engine_line(engine, &case.name, &sum_s, fail_s);
                    let row_d = engine_line(engine, &case.name, &sum_d, fail_d);
                    if row_s != row_d {
                        return Err(BenchError::Msg(format!(
                            "backend mismatch on {}:\n  dense:  {row_d}\n  sparse: {row_s}",
                            case.name
                        )));
                    }
                    println!("{row_s}");
                    let speedup = rate_s / rate_d;
                    println!(
                        "{}: sparse {rate_s:.2} samples/sec, dense {rate_d:.2} samples/sec, \
                         speedup {speedup:.2}x",
                        case.name
                    );
                    meter.set(&format!("{}.speedup", case.name), speedup);
                } else {
                    println!("{}", engine_line(engine, &case.name, &sum_s, fail_s));
                    let dense_gib =
                        (case.dim as f64) * (case.dim as f64) * 8.0 / (1024.0 * 1024.0 * 1024.0);
                    println!(
                        "{}: sparse {rate_s:.2} samples/sec; dense infeasible at dim {} \
                         (~{dense_gib:.1} GiB per factor, cap {DENSE_MAX_DIM})",
                        case.name, case.dim
                    );
                    meter.set(&format!("{}.dense_infeasible", case.name), true);
                }
            }
        }
        meter.set(&format!("{}.dim", case.name), case.dim as u64);
        println!();
    }
    println!("{}", workspace_note());
    meter.finish(&args)
}

/// Runs one campaign — through the shard supervisor when a
/// [`ShardConfig`] is given — and returns its summary, failure count,
/// and samples/sec rate.
fn timed_campaign(
    case: &linvar_interconnect::ChainCase,
    samples: &[Vec<f64>],
    threads: usize,
    solver: SolverChoice,
    shard: Option<&ShardConfig>,
) -> Result<(Summary, usize, f64), BenchError> {
    let t0 = Instant::now();
    let (summary, failures) = match shard {
        Some(cfg) => {
            let r = run_case_sharded(case, samples, threads, solver, cfg)?;
            (r.summary, r.failures)
        }
        None => {
            let r = run_case(case, samples, threads, solver)?;
            (r.summary, r.failures)
        }
    };
    let rate = samples.len() as f64 / t0.elapsed().as_secs_f64().max(1e-12);
    Ok((summary, failures, rate))
}

/// Runs the gPC spectral analysis for one case: sparse backend always,
/// dense too when feasible — the `gpc` rows must match byte-for-byte
/// across backends, exactly like the `mc` rows.
fn run_gpc_case(
    case: &linvar_interconnect::ChainCase,
    threads: usize,
    pinned: Option<SolverChoice>,
    meter: &mut BenchMeter,
) -> Result<(), BenchError> {
    match pinned {
        Some(choice) => {
            if backend_of(choice) == SolverBackend::Dense && case.dim > DENSE_MAX_DIM {
                println!(
                    "dense {}: infeasible at dim {} (skipped; dense cap {DENSE_MAX_DIM})",
                    case.name, case.dim
                );
                return Ok(());
            }
            let t0 = Instant::now();
            let res = run_case_spectral(case, threads, choice)?;
            let rate = res.nodes_evaluated as f64 / t0.elapsed().as_secs_f64().max(1e-12);
            println!("{}", gpc_line(&case.name, &res));
            eprintln!("{}: {} {rate:.2} nodes/sec", case.name, name_of(choice));
            meter.set(
                &format!("{}.{}.nodes_per_sec", case.name, name_of(choice)),
                rate,
            );
            meter.set(
                &format!("{}.gpc_nodes", case.name),
                res.nodes_evaluated as u64,
            );
        }
        None => {
            let res_s = run_case_spectral(case, threads, SolverChoice::Sparse)?;
            let row_s = gpc_line(&case.name, &res_s);
            meter.set(
                &format!("{}.gpc_nodes", case.name),
                res_s.nodes_evaluated as u64,
            );
            if case.dim <= DENSE_MAX_DIM {
                let res_d = run_case_spectral(case, threads, SolverChoice::Dense)?;
                let row_d = gpc_line(&case.name, &res_d);
                if row_s != row_d {
                    return Err(BenchError::Msg(format!(
                        "backend mismatch on {}:\n  dense:  {row_d}\n  sparse: {row_s}",
                        case.name
                    )));
                }
                println!("{row_s}");
            } else {
                println!("{row_s}");
                println!(
                    "{}: dense infeasible at dim {} (cap {DENSE_MAX_DIM})",
                    case.name, case.dim
                );
            }
        }
    }
    Ok(())
}

fn backend_of(choice: SolverChoice) -> SolverBackend {
    match choice {
        SolverChoice::Dense => SolverBackend::Dense,
        _ => SolverBackend::Sparse,
    }
}

fn name_of(choice: SolverChoice) -> &'static str {
    backend_of(choice).name()
}
