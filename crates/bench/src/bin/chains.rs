//! Large-circuit solver benchmark: Monte-Carlo delay campaigns over the
//! generated RC-chain / H-tree suite ([`linvar_interconnect::standard_cases`]),
//! run on both linear-solver backends where feasible.
//!
//! For every case the sparse backend always runs; the dense backend runs
//! only when the MNA dimension is small enough for an `O(n³)` dense
//! factorization to finish in reasonable time (the larger suite members
//! exist precisely because it cannot). Where both backends run, the bin
//! prints their `mc` statistic rows (byte-identical by construction — the
//! property `ci.sh` diffs) and the dense/sparse wall-time speedup.
//!
//! Setting `LINVAR_SOLVER=dense|sparse` pins a single backend instead;
//! `ci.sh` uses that to run the quick suite once per backend and compare.
//! `--shards <N>` routes every campaign through the shard supervisor
//! (in-memory, no checkpoints) — the `mc` rows are byte-identical either
//! way, which `ci.sh` also diffs.
//!
//! Phase timings (`symbolic`, `numeric_factor`, `solve`) and per-case
//! throughput land in `BENCH_chains.json`; `--metrics` additionally
//! prints the report, and `LINVAR_TRAJECTORY` appends a trajectory row.
//!
//! Run with `cargo run --release -p linvar-bench --bin chains [-- --quick]`
//! (set `LINVAR_THREADS` to pin the Monte-Carlo worker count).

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use linvar_bench::chains::{mc_line, run_case, run_case_sharded, sample_set};
use linvar_bench::{workspace_note, BenchArgs, BenchError, BenchMeter};
use linvar_interconnect::standard_cases;
use linvar_numeric::{SolverBackend, SolverChoice};
use linvar_stats::{resolve_threads, ShardConfig, Summary};
use std::time::Instant;

/// Largest MNA dimension the dense backend is asked to time. Above this
/// the dense factorization is declared infeasible for a Monte-Carlo
/// campaign (cubic cost, quadratic memory) and only sparse runs — the
/// benchmark's escape clause for the 10–100× sizes.
const DENSE_MAX_DIM: usize = 4096;

fn main() {
    if let Err(e) = run() {
        eprintln!("chains: {e}");
        std::process::exit(e.exit_code());
    }
}

fn run() -> Result<(), BenchError> {
    let args = BenchArgs::parse(std::env::args().skip(1))?;
    args.reject_campaign_flags("chains")?;
    let mut meter = BenchMeter::start("chains");
    let threads = resolve_threads(0);
    let n_samples = if args.quick { 6 } else { 16 };
    let pinned = match SolverChoice::from_env() {
        SolverChoice::Auto => None,
        pick => Some(pick),
    };
    println!("==== chains: large-circuit solver benchmark ====");
    println!(
        "({} suite, {n_samples} samples/case, {threads} worker thread(s); \
         set LINVAR_THREADS to change)",
        if args.quick { "quick" } else { "full" }
    );
    match pinned {
        Some(choice) => println!("backend pinned via LINVAR_SOLVER: {}", name_of(choice)),
        None => println!("comparing backends (dense skipped above dim {DENSE_MAX_DIM})"),
    }
    if let Some(n_shards) = args.shards {
        println!("shard supervisor: {n_shards} shard(s) per campaign");
    }
    println!();
    let samples = sample_set(n_samples);
    let cases = standard_cases(args.quick)?;
    for case in &cases {
        println!(
            "-- {} (dim {}, {} elements, tstop {:.3e} s)",
            case.name, case.dim, case.element_count, case.tstop
        );
        // The `mc` rows stay byte-identical with and without shards —
        // the identity ci.sh's shard smoke diffs.
        let shard_cfg = args.shard_config(&case.name)?;
        match pinned {
            Some(choice) => {
                if backend_of(choice) == SolverBackend::Dense && case.dim > DENSE_MAX_DIM {
                    println!(
                        "dense {}: infeasible at dim {} (skipped; dense cap {DENSE_MAX_DIM})",
                        case.name, case.dim
                    );
                    continue;
                }
                let (summary, failures, rate) =
                    timed_campaign(case, &samples, threads, choice, shard_cfg.as_ref())?;
                println!("{}", mc_line(&case.name, &summary, failures));
                eprintln!("{}: {} {rate:.2} samples/sec", case.name, name_of(choice));
                meter.set(
                    &format!("{}.{}.samples_per_sec", case.name, name_of(choice)),
                    rate,
                );
            }
            None => {
                let (sum_s, fail_s, rate_s) = timed_campaign(
                    case,
                    &samples,
                    threads,
                    SolverChoice::Sparse,
                    shard_cfg.as_ref(),
                )?;
                meter.set(&format!("{}.sparse.samples_per_sec", case.name), rate_s);
                if case.dim <= DENSE_MAX_DIM {
                    let (sum_d, fail_d, rate_d) = timed_campaign(
                        case,
                        &samples,
                        threads,
                        SolverChoice::Dense,
                        shard_cfg.as_ref(),
                    )?;
                    meter.set(&format!("{}.dense.samples_per_sec", case.name), rate_d);
                    let row_s = mc_line(&case.name, &sum_s, fail_s);
                    let row_d = mc_line(&case.name, &sum_d, fail_d);
                    if row_s != row_d {
                        return Err(BenchError::Msg(format!(
                            "backend mismatch on {}:\n  dense:  {row_d}\n  sparse: {row_s}",
                            case.name
                        )));
                    }
                    println!("{row_s}");
                    let speedup = rate_s / rate_d;
                    println!(
                        "{}: sparse {rate_s:.2} samples/sec, dense {rate_d:.2} samples/sec, \
                         speedup {speedup:.2}x",
                        case.name
                    );
                    meter.set(&format!("{}.speedup", case.name), speedup);
                } else {
                    println!("{}", mc_line(&case.name, &sum_s, fail_s));
                    let dense_gib =
                        (case.dim as f64) * (case.dim as f64) * 8.0 / (1024.0 * 1024.0 * 1024.0);
                    println!(
                        "{}: sparse {rate_s:.2} samples/sec; dense infeasible at dim {} \
                         (~{dense_gib:.1} GiB per factor, cap {DENSE_MAX_DIM})",
                        case.name, case.dim
                    );
                    meter.set(&format!("{}.dense_infeasible", case.name), true);
                }
            }
        }
        meter.set(&format!("{}.dim", case.name), case.dim as u64);
        println!();
    }
    println!("{}", workspace_note());
    meter.finish(&args)
}

/// Runs one campaign — through the shard supervisor when a
/// [`ShardConfig`] is given — and returns its summary, failure count,
/// and samples/sec rate.
fn timed_campaign(
    case: &linvar_interconnect::ChainCase,
    samples: &[Vec<f64>],
    threads: usize,
    solver: SolverChoice,
    shard: Option<&ShardConfig>,
) -> Result<(Summary, usize, f64), BenchError> {
    let t0 = Instant::now();
    let (summary, failures) = match shard {
        Some(cfg) => {
            let r = run_case_sharded(case, samples, threads, solver, cfg)?;
            (r.summary, r.failures)
        }
        None => {
            let r = run_case(case, samples, threads, solver)?;
            (r.summary, r.failures)
        }
    };
    let rate = samples.len() as f64 / t0.elapsed().as_secs_f64().max(1e-12);
    Ok((summary, failures, rate))
}

fn backend_of(choice: SolverChoice) -> SolverBackend {
    match choice {
        SolverChoice::Dense => SolverBackend::Dense,
        _ => SolverBackend::Sparse,
    }
}

fn name_of(choice: SolverChoice) -> &'static str {
    backend_of(choice).name()
}
