//! Large-circuit solver benchmark: Monte-Carlo delay campaigns over the
//! generated RC-chain / H-tree suite ([`linvar_interconnect::standard_cases`]),
//! run on both linear-solver backends where feasible.
//!
//! For every case the sparse backend always runs; the dense backend runs
//! only when the MNA dimension is small enough for an `O(n³)` dense
//! factorization to finish in reasonable time (the larger suite members
//! exist precisely because it cannot). Where both backends run, the bin
//! prints their `mc` statistic rows (byte-identical by construction — the
//! property `ci.sh` diffs) and the dense/sparse wall-time speedup.
//!
//! Setting `LINVAR_SOLVER=dense|sparse` pins a single backend instead;
//! `ci.sh` uses that to run the quick suite once per backend and compare.
//! `--shards <N>` routes every campaign through the shard supervisor
//! (in-memory, no checkpoints) — the `mc` rows are byte-identical either
//! way, which `ci.sh` also diffs.
//!
//! `--engine sobol` reruns the MC flow over the Sobol quasi-MC sample
//! stream (rows prefixed `sobol`); `--engine gpc` replaces the sample
//! campaign with the Smolyak spectral grid of
//! [`linvar_bench::chains::CHAINS_GPC_CONFIG`] — 11 transient solves
//! per case — printing `gpc` rows with surrogate moments and quantiles.
//! Neither spectral engine supports `--shards`.
//!
//! `--analysis ac` swaps the per-sample metric from the transient 50 %
//! delay to the single-point AC gain |V(probe)| at each case's knee
//! frequency (complex MNA through the same backends — see
//! `linvar_spice::ac_analysis_with`). AC rows carry a `.ac`-suffixed
//! case name so they can never be confused with delay rows; AC shard
//! snapshots fold `AnalysisKind::Ac` into their fingerprint so the two
//! analyses refuse to resume each other. Supported for the sample
//! engines (`mc`, `sobol`); `--engine gpc` keeps its transient driver.
//!
//! Phase timings (`symbolic`, `numeric_factor`, `solve`) and per-case
//! throughput land in `BENCH_chains.json`; `--metrics` additionally
//! prints the report, and `LINVAR_TRAJECTORY` appends a trajectory row.
//!
//! Run with `cargo run --release -p linvar-bench --bin chains [-- --quick]`
//! (set `LINVAR_THREADS` to pin the Monte-Carlo worker count).

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use linvar_bench::chains::{
    ac_case_name, ac_frequency, engine_line, gpc_line, run_case, run_case_ac, run_case_ac_sharded,
    run_case_sharded, run_case_spectral, sample_set, sample_set_sobol,
};
use linvar_bench::{workspace_note, BenchArgs, BenchError, BenchMeter, Engine};
use linvar_interconnect::standard_cases;
use linvar_numeric::{SolverBackend, SolverChoice};
use linvar_stats::{resolve_threads, AnalysisKind, ShardConfig, Summary};
use std::time::Instant;

/// Largest MNA dimension the dense backend is asked to time. Above this
/// the dense factorization is declared infeasible for a Monte-Carlo
/// campaign (cubic cost, quadratic memory) and only sparse runs — the
/// benchmark's escape clause for the 10–100× sizes.
const DENSE_MAX_DIM: usize = 4096;

fn main() {
    if let Err(e) = run() {
        eprintln!("chains: {e}");
        std::process::exit(e.exit_code());
    }
}

fn run() -> Result<(), BenchError> {
    let args = BenchArgs::parse(std::env::args().skip(1))?;
    args.reject_campaign_flags("chains")?;
    args.validate_engine("chains", true)?;
    if args.analysis == AnalysisKind::Ac && args.engine == Engine::Gpc {
        return Err(BenchError::Usage(
            "--analysis ac supports --engine mc and sobol (no spectral AC driver)".into(),
        ));
    }
    let mut meter = BenchMeter::start("chains");
    let threads = resolve_threads(0);
    let engine = args.engine.name();
    let n_samples = if args.quick { 6 } else { 16 };
    let pinned = match SolverChoice::from_env() {
        SolverChoice::Auto => None,
        pick => Some(pick),
    };
    println!("==== chains: large-circuit solver benchmark ====");
    println!(
        "({} suite, {n_samples} samples/case, {threads} worker thread(s); \
         set LINVAR_THREADS to change)",
        if args.quick { "quick" } else { "full" }
    );
    match pinned {
        Some(choice) => println!("backend pinned via LINVAR_SOLVER: {}", name_of(choice)),
        None => println!("comparing backends (dense skipped above dim {DENSE_MAX_DIM})"),
    }
    if let Some(n_shards) = args.shards {
        println!("shard supervisor: {n_shards} shard(s) per campaign");
    }
    if args.engine != Engine::Mc {
        println!("statistics engine: {engine}");
    }
    if args.analysis == AnalysisKind::Ac {
        println!("analysis: ac (single-point |V(probe)| gain at each case's knee frequency)");
    }
    println!();
    // The Sobol engine is the MC flow over the quasi-MC sample stream;
    // the gPC engine replaces the campaign with a spectral node grid.
    let samples = match args.engine {
        Engine::Sobol => sample_set_sobol(n_samples),
        _ => sample_set(n_samples),
    };
    let cases = standard_cases(args.quick)?;
    for case in &cases {
        // AC rows carry a `.ac`-suffixed case name everywhere — output
        // rows, meter keys, shard snapshot tags — so the two analyses
        // can never collide.
        let row_name = match args.analysis {
            AnalysisKind::Ac => ac_case_name(case),
            _ => case.name.clone(),
        };
        match args.analysis {
            AnalysisKind::Ac => println!(
                "-- {} (dim {}, {} elements, f_c {:.3e} Hz)",
                row_name,
                case.dim,
                case.element_count,
                ac_frequency(case)
            ),
            _ => println!(
                "-- {} (dim {}, {} elements, tstop {:.3e} s)",
                case.name, case.dim, case.element_count, case.tstop
            ),
        }
        if args.engine == Engine::Gpc {
            run_gpc_case(case, threads, pinned, &mut meter)?;
            meter.set(&format!("{}.dim", case.name), case.dim as u64);
            println!();
            continue;
        }
        // The `mc` rows stay byte-identical with and without shards —
        // the identity ci.sh's shard smoke diffs.
        let shard_cfg = args.shard_config(&row_name)?;
        match pinned {
            Some(choice) => {
                if backend_of(choice) == SolverBackend::Dense && case.dim > DENSE_MAX_DIM {
                    println!(
                        "dense {row_name}: infeasible at dim {} (skipped; dense cap \
                         {DENSE_MAX_DIM})",
                        case.dim
                    );
                    continue;
                }
                let (summary, failures, rate) = timed_campaign(
                    case,
                    &samples,
                    threads,
                    choice,
                    shard_cfg.as_ref(),
                    args.analysis,
                )?;
                println!("{}", engine_line(engine, &row_name, &summary, failures));
                eprintln!("{row_name}: {} {rate:.2} samples/sec", name_of(choice));
                meter.set(
                    &format!("{row_name}.{}.samples_per_sec", name_of(choice)),
                    rate,
                );
            }
            None => {
                let (sum_s, fail_s, rate_s) = timed_campaign(
                    case,
                    &samples,
                    threads,
                    SolverChoice::Sparse,
                    shard_cfg.as_ref(),
                    args.analysis,
                )?;
                meter.set(&format!("{row_name}.sparse.samples_per_sec"), rate_s);
                if case.dim <= DENSE_MAX_DIM {
                    let (sum_d, fail_d, rate_d) = timed_campaign(
                        case,
                        &samples,
                        threads,
                        SolverChoice::Dense,
                        shard_cfg.as_ref(),
                        args.analysis,
                    )?;
                    meter.set(&format!("{row_name}.dense.samples_per_sec"), rate_d);
                    let row_s = engine_line(engine, &row_name, &sum_s, fail_s);
                    let row_d = engine_line(engine, &row_name, &sum_d, fail_d);
                    if row_s != row_d {
                        return Err(BenchError::Msg(format!(
                            "backend mismatch on {row_name}:\n  dense:  {row_d}\n  sparse: {row_s}"
                        )));
                    }
                    println!("{row_s}");
                    let speedup = rate_s / rate_d;
                    println!(
                        "{row_name}: sparse {rate_s:.2} samples/sec, dense {rate_d:.2} \
                         samples/sec, speedup {speedup:.2}x"
                    );
                    meter.set(&format!("{row_name}.speedup"), speedup);
                } else {
                    println!("{}", engine_line(engine, &row_name, &sum_s, fail_s));
                    let dense_gib =
                        (case.dim as f64) * (case.dim as f64) * 8.0 / (1024.0 * 1024.0 * 1024.0);
                    println!(
                        "{row_name}: sparse {rate_s:.2} samples/sec; dense infeasible at dim {} \
                         (~{dense_gib:.1} GiB per factor, cap {DENSE_MAX_DIM})",
                        case.dim
                    );
                    meter.set(&format!("{row_name}.dense_infeasible"), true);
                }
            }
        }
        meter.set(&format!("{row_name}.dim"), case.dim as u64);
        println!();
    }
    println!("{}", workspace_note());
    meter.finish(&args)
}

/// Runs one campaign — through the shard supervisor when a
/// [`ShardConfig`] is given, with the per-sample metric picked by
/// `analysis` (transient delay or AC gain) — and returns its summary,
/// failure count, and samples/sec rate.
fn timed_campaign(
    case: &linvar_interconnect::ChainCase,
    samples: &[Vec<f64>],
    threads: usize,
    solver: SolverChoice,
    shard: Option<&ShardConfig>,
    analysis: AnalysisKind,
) -> Result<(Summary, usize, f64), BenchError> {
    let t0 = Instant::now();
    let ac = analysis == AnalysisKind::Ac;
    let (summary, failures) = match (shard, ac) {
        (Some(cfg), false) => {
            let r = run_case_sharded(case, samples, threads, solver, cfg)?;
            (r.summary, r.failures)
        }
        (Some(cfg), true) => {
            let r = run_case_ac_sharded(case, samples, threads, solver, cfg)?;
            (r.summary, r.failures)
        }
        (None, false) => {
            let r = run_case(case, samples, threads, solver)?;
            (r.summary, r.failures)
        }
        (None, true) => {
            let r = run_case_ac(case, samples, threads, solver)?;
            (r.summary, r.failures)
        }
    };
    let rate = samples.len() as f64 / t0.elapsed().as_secs_f64().max(1e-12);
    Ok((summary, failures, rate))
}

/// Runs the gPC spectral analysis for one case: sparse backend always,
/// dense too when feasible — the `gpc` rows must match byte-for-byte
/// across backends, exactly like the `mc` rows.
fn run_gpc_case(
    case: &linvar_interconnect::ChainCase,
    threads: usize,
    pinned: Option<SolverChoice>,
    meter: &mut BenchMeter,
) -> Result<(), BenchError> {
    match pinned {
        Some(choice) => {
            if backend_of(choice) == SolverBackend::Dense && case.dim > DENSE_MAX_DIM {
                println!(
                    "dense {}: infeasible at dim {} (skipped; dense cap {DENSE_MAX_DIM})",
                    case.name, case.dim
                );
                return Ok(());
            }
            let t0 = Instant::now();
            let res = run_case_spectral(case, threads, choice)?;
            let rate = res.nodes_evaluated as f64 / t0.elapsed().as_secs_f64().max(1e-12);
            println!("{}", gpc_line(&case.name, &res));
            eprintln!("{}: {} {rate:.2} nodes/sec", case.name, name_of(choice));
            meter.set(
                &format!("{}.{}.nodes_per_sec", case.name, name_of(choice)),
                rate,
            );
            meter.set(
                &format!("{}.gpc_nodes", case.name),
                res.nodes_evaluated as u64,
            );
        }
        None => {
            let res_s = run_case_spectral(case, threads, SolverChoice::Sparse)?;
            let row_s = gpc_line(&case.name, &res_s);
            meter.set(
                &format!("{}.gpc_nodes", case.name),
                res_s.nodes_evaluated as u64,
            );
            if case.dim <= DENSE_MAX_DIM {
                let res_d = run_case_spectral(case, threads, SolverChoice::Dense)?;
                let row_d = gpc_line(&case.name, &res_d);
                if row_s != row_d {
                    return Err(BenchError::Msg(format!(
                        "backend mismatch on {}:\n  dense:  {row_d}\n  sparse: {row_s}",
                        case.name
                    )));
                }
                println!("{row_s}");
            } else {
                println!("{row_s}");
                println!(
                    "{}: dense infeasible at dim {} (cap {DENSE_MAX_DIM})",
                    case.name, case.dim
                );
            }
        }
    }
    Ok(())
}

fn backend_of(choice: SolverChoice) -> SolverBackend {
    match choice {
        SolverChoice::Dense => SolverBackend::Dense,
        _ => SolverBackend::Sparse,
    }
}

fn name_of(choice: SolverChoice) -> &'static str {
    backend_of(choice).name()
}
