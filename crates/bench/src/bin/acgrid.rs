//! Stochastic IR-drop benchmark: Monte-Carlo worst-drop campaigns over
//! the generated power-grid suite
//! ([`linvar_interconnect::standard_grid_cases`]), run on both
//! linear-solver backends.
//!
//! Every sample freezes the variational grid at one W/T/ρ fluctuation
//! draw and solves the DC operating point; the metric is the worst IR
//! drop over the loaded tiles. Both backends always run (grid MNA
//! dimensions are small), their `mc` rows must be byte-identical — the
//! property `ci.sh` diffs and `tests/golden_fixtures.rs` pins — and the
//! bin prints the dense/sparse throughput comparison.
//!
//! `LINVAR_SOLVER=dense|sparse` pins one backend instead. `--shards <N>`
//! routes the campaigns through the shard supervisor (rows byte-identical
//! either way). `--engine sobol` reruns the flow over the Sobol quasi-MC
//! stream; `--engine gpc` replaces the campaign with the Smolyak spectral
//! grid of [`linvar_bench::grid::GRID_GPC_CONFIG`] — 11 DC solves per
//! case. Neither spectral engine supports `--shards`.
//!
//! Per-case throughput lands in `BENCH_acgrid.json`; `--metrics`
//! additionally prints the report, and `LINVAR_TRAJECTORY` appends a
//! trajectory row.
//!
//! Run with `cargo run --release -p linvar-bench --bin acgrid [-- --quick]`
//! (set `LINVAR_THREADS` to pin the Monte-Carlo worker count).

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use linvar_bench::chains::{engine_line, gpc_line};
use linvar_bench::grid::{
    run_case, run_case_sharded, run_case_spectral, sample_set, sample_set_sobol,
};
use linvar_bench::{workspace_note, BenchArgs, BenchError, BenchMeter, Engine};
use linvar_interconnect::{standard_grid_cases, GridCase};
use linvar_numeric::SolverChoice;
use linvar_stats::{resolve_threads, ShardConfig, Summary};
use std::time::Instant;

fn main() {
    if let Err(e) = run() {
        eprintln!("acgrid: {e}");
        std::process::exit(e.exit_code());
    }
}

fn run() -> Result<(), BenchError> {
    let args = BenchArgs::parse(std::env::args().skip(1))?;
    args.reject_campaign_flags("acgrid")?;
    args.reject_analysis_flag("acgrid")?;
    args.validate_engine("acgrid", true)?;
    let mut meter = BenchMeter::start("acgrid");
    let threads = resolve_threads(0);
    let engine = args.engine.name();
    let n_samples = if args.quick { 8 } else { 24 };
    let pinned = match SolverChoice::from_env() {
        SolverChoice::Auto => None,
        pick => Some(pick),
    };
    println!("==== acgrid: stochastic power-grid IR-drop benchmark ====");
    println!(
        "({} suite, {n_samples} samples/case, {threads} worker thread(s); \
         set LINVAR_THREADS to change)",
        if args.quick { "quick" } else { "full" }
    );
    match pinned {
        Some(choice) => println!("backend pinned via LINVAR_SOLVER: {}", name_of(choice)),
        None => println!("comparing backends (grid MNA is small; both always run)"),
    }
    if let Some(n_shards) = args.shards {
        println!("shard supervisor: {n_shards} shard(s) per campaign");
    }
    if args.engine != Engine::Mc {
        println!("statistics engine: {engine}");
    }
    println!();
    let samples = match args.engine {
        Engine::Sobol => sample_set_sobol(n_samples),
        _ => sample_set(n_samples),
    };
    let cases = standard_grid_cases(args.quick)?;
    for case in &cases {
        println!(
            "-- {} (dim {}, {} wire elements, {} load tiles)",
            case.name,
            case.dim,
            case.element_count,
            case.observe.len()
        );
        if args.engine == Engine::Gpc {
            run_gpc_case(case, threads, pinned, &mut meter)?;
            meter.set(&format!("{}.dim", case.name), case.dim as u64);
            println!();
            continue;
        }
        let shard_cfg = args.shard_config(&case.name)?;
        match pinned {
            Some(choice) => {
                let (summary, failures, rate) =
                    timed_campaign(case, &samples, threads, choice, shard_cfg.as_ref())?;
                println!("{}", engine_line(engine, &case.name, &summary, failures));
                eprintln!("{}: {} {rate:.2} samples/sec", case.name, name_of(choice));
                meter.set(
                    &format!("{}.{}.samples_per_sec", case.name, name_of(choice)),
                    rate,
                );
            }
            None => {
                let (sum_s, fail_s, rate_s) = timed_campaign(
                    case,
                    &samples,
                    threads,
                    SolverChoice::Sparse,
                    shard_cfg.as_ref(),
                )?;
                let (sum_d, fail_d, rate_d) = timed_campaign(
                    case,
                    &samples,
                    threads,
                    SolverChoice::Dense,
                    shard_cfg.as_ref(),
                )?;
                meter.set(&format!("{}.sparse.samples_per_sec", case.name), rate_s);
                meter.set(&format!("{}.dense.samples_per_sec", case.name), rate_d);
                let row_s = engine_line(engine, &case.name, &sum_s, fail_s);
                let row_d = engine_line(engine, &case.name, &sum_d, fail_d);
                if row_s != row_d {
                    return Err(BenchError::Msg(format!(
                        "backend mismatch on {}:\n  dense:  {row_d}\n  sparse: {row_s}",
                        case.name
                    )));
                }
                println!("{row_s}");
                println!(
                    "{}: sparse {rate_s:.2} samples/sec, dense {rate_d:.2} samples/sec",
                    case.name
                );
            }
        }
        meter.set(&format!("{}.dim", case.name), case.dim as u64);
        println!();
    }
    println!("{}", workspace_note());
    meter.finish(&args)
}

/// Runs one IR-drop campaign — through the shard supervisor when a
/// [`ShardConfig`] is given — and returns its summary, failure count,
/// and samples/sec rate.
fn timed_campaign(
    case: &GridCase,
    samples: &[Vec<f64>],
    threads: usize,
    solver: SolverChoice,
    shard: Option<&ShardConfig>,
) -> Result<(Summary, usize, f64), BenchError> {
    let t0 = Instant::now();
    let (summary, failures) = match shard {
        Some(cfg) => {
            let r = run_case_sharded(case, samples, threads, solver, cfg)?;
            (r.summary, r.failures)
        }
        None => {
            let r = run_case(case, samples, threads, solver)?;
            (r.summary, r.failures)
        }
    };
    let rate = samples.len() as f64 / t0.elapsed().as_secs_f64().max(1e-12);
    Ok((summary, failures, rate))
}

/// Runs the gPC spectral IR-drop analysis for one case on both backends
/// (or the pinned one) — `gpc` rows must match byte-for-byte across
/// backends, exactly like the `mc` rows.
fn run_gpc_case(
    case: &GridCase,
    threads: usize,
    pinned: Option<SolverChoice>,
    meter: &mut BenchMeter,
) -> Result<(), BenchError> {
    match pinned {
        Some(choice) => {
            let t0 = Instant::now();
            let res = run_case_spectral(case, threads, choice)?;
            let rate = res.nodes_evaluated as f64 / t0.elapsed().as_secs_f64().max(1e-12);
            println!("{}", gpc_line(&case.name, &res));
            eprintln!("{}: {} {rate:.2} nodes/sec", case.name, name_of(choice));
            meter.set(
                &format!("{}.gpc_nodes", case.name),
                res.nodes_evaluated as u64,
            );
        }
        None => {
            let res_s = run_case_spectral(case, threads, SolverChoice::Sparse)?;
            let res_d = run_case_spectral(case, threads, SolverChoice::Dense)?;
            let row_s = gpc_line(&case.name, &res_s);
            let row_d = gpc_line(&case.name, &res_d);
            if row_s != row_d {
                return Err(BenchError::Msg(format!(
                    "backend mismatch on {}:\n  dense:  {row_d}\n  sparse: {row_s}",
                    case.name
                )));
            }
            println!("{row_s}");
            meter.set(
                &format!("{}.gpc_nodes", case.name),
                res_s.nodes_evaluated as u64,
            );
        }
    }
    Ok(())
}

fn name_of(choice: SolverChoice) -> &'static str {
    match choice {
        SolverChoice::Dense => "dense",
        _ => "sparse",
    }
}
