//! Shard-supervisor benchmark: scaling and fault-recovery overhead of
//! the sharded campaign driver on a chains delay campaign.
//!
//! Two measurements land in `BENCH_shards.json`:
//!
//! 1. **Scaling** — samples/sec of the same campaign at 1/2/4/8 shards
//!    (in-memory supervisor, no checkpoints), with the merged `mc` row
//!    asserted byte-identical to the unsharded baseline at every count.
//! 2. **Recovery overhead** — wall-time ratio of a checkpointed 4-shard
//!    run with one shard killed mid-checkpoint-write (retried and
//!    resumed from its own snapshot by the supervisor) over the clean
//!    checkpointed run. The faulted row must still be byte-identical.
//!
//! Checkpoints go to a process-unique directory under the system temp
//! dir and are removed on exit. `--quick` shrinks the circuit and the
//! sample count.
//!
//! Run with `cargo run --release -p linvar-bench --bin shards [-- --quick]`
//! (set `LINVAR_THREADS` to pin the per-shard worker count).

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use linvar_bench::chains::{mc_line, run_case, run_case_sharded, sample_set};
use linvar_bench::{BenchArgs, BenchError, BenchMeter};
use linvar_interconnect::rc_chain_case;
use linvar_numeric::SolverChoice;
use linvar_stats::{resolve_threads, ShardConfig, ShardFault, ShardOutcome};
use std::time::Instant;

fn main() {
    if let Err(e) = run() {
        eprintln!("shards: {e}");
        std::process::exit(e.exit_code());
    }
}

fn run() -> Result<(), BenchError> {
    let args = BenchArgs::parse(std::env::args().skip(1))?;
    args.reject_campaign_flags("shards")?;
    if args.shards.is_some() || args.shard_index.is_some() {
        return Err(BenchError::Usage(
            "shards sweeps shard counts itself (--shards/--shard-index unsupported)".into(),
        ));
    }
    let mut meter = BenchMeter::start("shards");
    let threads = resolve_threads(0);
    let (segments, n_samples) = if args.quick { (50, 6) } else { (500, 16) };
    println!("==== shards: supervisor scaling and fault-recovery overhead ====");
    println!(
        "(rc chain, {segments} segments, {n_samples} samples, {threads} worker thread(s) \
         per shard; set LINVAR_THREADS to change)\n"
    );
    let case = rc_chain_case(segments)?;
    let samples = sample_set(n_samples);
    let solver = SolverChoice::Sparse;

    // Unsharded baseline: the byte-identity reference for every
    // supervised run below.
    let t0 = Instant::now();
    let base = run_case(&case, &samples, threads, solver)?;
    let base_secs = t0.elapsed().as_secs_f64().max(1e-12);
    let base_line = mc_line(&case.name, &base.summary, base.failures);
    println!("{base_line}");
    println!("unsharded: {:.2} samples/sec", n_samples as f64 / base_secs);
    meter.set("unsharded.samples_per_sec", n_samples as f64 / base_secs);

    for n_shards in [1usize, 2, 4, 8] {
        let cfg = ShardConfig {
            n_shards,
            ..ShardConfig::default()
        };
        let t0 = Instant::now();
        let sharded = run_case_sharded(&case, &samples, threads, solver, &cfg)?;
        let secs = t0.elapsed().as_secs_f64().max(1e-12);
        let line = mc_line(&case.name, &sharded.summary, sharded.failures);
        if line != base_line {
            return Err(BenchError::Msg(format!(
                "merge identity broken at {n_shards} shards:\n  base:    {base_line}\n  \
                 sharded: {line}"
            )));
        }
        println!(
            "{n_shards} shard(s): {:.2} samples/sec (row identical)",
            n_samples as f64 / secs
        );
        meter.set(
            &format!("shards_{n_shards}.samples_per_sec"),
            n_samples as f64 / secs,
        );
    }

    // Fault-recovery overhead: checkpointed 4-shard runs, clean vs one
    // shard killed mid-checkpoint-write on its first attempt.
    let tmp = std::env::temp_dir().join(format!("linvar-shards-bench-{}", std::process::id()));
    std::fs::create_dir_all(&tmp)
        .map_err(|e| BenchError::Msg(format!("cannot create {}: {e}", tmp.display())))?;
    let result = recovery_overhead(
        &case, &samples, threads, solver, &tmp, &base_line, &mut meter,
    );
    let _ = std::fs::remove_dir_all(&tmp);
    result?;

    meter.finish(&args)?;
    Ok(())
}

fn recovery_overhead(
    case: &linvar_interconnect::ChainCase,
    samples: &[Vec<f64>],
    threads: usize,
    solver: SolverChoice,
    tmp: &std::path::Path,
    base_line: &str,
    meter: &mut BenchMeter,
) -> Result<(), BenchError> {
    let clean_cfg = ShardConfig {
        n_shards: 4,
        checkpoint: Some(tmp.join("clean")),
        ..ShardConfig::default()
    };
    let t0 = Instant::now();
    let clean = run_case_sharded(case, samples, threads, solver, &clean_cfg)?;
    let clean_secs = t0.elapsed().as_secs_f64().max(1e-12);
    let clean_line = mc_line(&case.name, &clean.summary, clean.failures);
    if clean_line != base_line {
        return Err(BenchError::Msg(format!(
            "checkpointed merge identity broken:\n  base:  {base_line}\n  clean: {clean_line}"
        )));
    }

    let faulted_cfg = ShardConfig {
        n_shards: 4,
        checkpoint: Some(tmp.join("faulted")),
        faults: vec![(1, ShardFault::KillMidWrite)],
        ..ShardConfig::default()
    };
    let t0 = Instant::now();
    let faulted = run_case_sharded(case, samples, threads, solver, &faulted_cfg)?;
    let faulted_secs = t0.elapsed().as_secs_f64().max(1e-12);
    let faulted_line = mc_line(&case.name, &faulted.summary, faulted.failures);
    if faulted_line != base_line {
        return Err(BenchError::Msg(format!(
            "post-fault merge identity broken:\n  base:    {base_line}\n  faulted: {faulted_line}"
        )));
    }
    let victim = faulted
        .shards
        .iter()
        .find(|v| v.shard == 1)
        .ok_or_else(|| BenchError::Msg("shard 1 verdict missing".into()))?;
    if victim.outcome != ShardOutcome::Completed || victim.attempts < 2 {
        return Err(BenchError::Msg(format!(
            "expected shard 1 to complete on a retry, got {:?} after {} attempt(s)",
            victim.outcome, victim.attempts
        )));
    }
    let overhead = faulted_secs / clean_secs;
    println!(
        "kill+resume overhead: {overhead:.2}x (clean {clean_secs:.3}s, faulted \
         {faulted_secs:.3}s, shard 1 completed on attempt {})",
        victim.attempts
    );
    meter.set("recovery.clean_secs", clean_secs);
    meter.set("recovery.faulted_secs", faulted_secs);
    meter.set("recovery.overhead_ratio", overhead);
    meter.set("recovery.victim_attempts", victim.attempts as u64);
    Ok(())
}
