//! Regenerates the paper's Figure 7: histograms of the longest-path delays
//! of s27 and s208 from the Monte-Carlo and Gradient-Analysis methods
//! (under DL and VT variations, std 0.33 each).
//!
//! The GA histogram is the normal distribution implied by the GA
//! (mean, σ), sampled on equal-probability strata so the two histograms
//! have the same sample count.
//!
//! Run with `cargo run --release -p linvar-bench --bin fig7`
//! (set `LINVAR_THREADS` to pin the Monte-Carlo worker count).

use linvar_core::path::{PathModel, PathSpec, VariationSources};
use linvar_devices::tech_018;
use linvar_interconnect::WireTech;
use linvar_iscas::{benchmark, decompose_to_primitives, longest_path};
use linvar_stats::sampling::inverse_normal_cdf;
use linvar_stats::{resolve_threads, Histogram};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let threads = resolve_threads(0);
    println!("==== Figure 7: MC vs GA delay histograms (DL, VT variations) ====");
    println!("(Monte-Carlo on {threads} worker thread(s); set LINVAR_THREADS to change)\n");
    let tech = tech_018();
    let wire = WireTech::m018();
    let sources = VariationSources::example3(0.33, 0.33);
    for circuit in ["s27", "s208"] {
        let bench = benchmark(circuit).ok_or("unknown benchmark")?;
        let report = longest_path(&bench.netlist)?;
        let stages = decompose_to_primitives(&bench.netlist, &report)?;
        let spec = PathSpec {
            cells: stages.into_iter().map(|s| s.cell).collect(),
            linear_elements_between_stages: 10,
            input_slew: 60e-12,
        };
        let model = PathModel::build(&spec, &tech, &wire)?;
        let t0 = Instant::now();
        let mc = model.monte_carlo_par(&sources, 100, 7, threads)?;
        eprintln!(
            "{circuit}: {:.1} samples/sec",
            100.0 / t0.elapsed().as_secs_f64()
        );
        let ga = model.gradient_analysis(&sources)?;
        // Stratified normal sample implied by the GA statistics.
        let n = mc.delays.len();
        let ga_sample: Vec<f64> = (0..n)
            .map(|k| {
                let u = (k as f64 + 0.5) / n as f64;
                ga.nominal_delay + ga.std * inverse_normal_cdf(u)
            })
            .collect();
        let (h_mc, h_ga) = Histogram::pair(&mc.delays, &ga_sample, 12);
        println!(
            "{circuit}: MC mean {:.2} ps std {:.2} ps | GA mean {:.2} ps std {:.2} ps",
            mc.summary.mean * 1e12,
            mc.summary.std * 1e12,
            ga.nominal_delay * 1e12,
            ga.std * 1e12
        );
        print!("{}", h_mc.render_pair(&h_ga, "MC", "GA", 1e12, "ps"));
        println!();
    }
    Ok(())
}
