//! Regenerates the paper's Figure 7: histograms of the longest-path delays
//! of s27 and s208 from the Monte-Carlo and Gradient-Analysis methods
//! (under DL and VT variations, std 0.33 each).
//!
//! The GA histogram is the normal distribution implied by the GA
//! (mean, σ), sampled on equal-probability strata so the two histograms
//! have the same sample count.
//!
//! Flags: `--checkpoint <prefix>` / `--resume <prefix>` /
//! `--deadline <secs>` run the Monte-Carlo portion as a durable campaign
//! (one snapshot per circuit). Completed circuits print a deterministic
//! `mc …` line with the statistics as raw `f64` bit patterns.
//! `--shards <N>` routes the campaigns through the shard supervisor
//! (`mc` lines byte-identical to the unsharded run); with
//! `--shard-index <K> --checkpoint <prefix>` this process evaluates
//! only shard K and leaves its snapshot for a later `--resume` merge.
//!
//! `--engine sobol` reruns the Monte-Carlo flow on the Sobol quasi-MC
//! stream (rows prefixed `sobol`); `--engine gpc` replaces the sample
//! campaign with a stochastic-testing gPC surrogate (order 2 over the
//! two active sources, 6 transient solves) whose implied normal is
//! histogrammed against GA on the same equal-probability strata. Both
//! spectral engines honor the campaign flags; neither combines with
//! `--shards`.
//!
//! Run with `cargo run --release -p linvar-bench --bin fig7`
//! (set `LINVAR_THREADS` to pin the Monte-Carlo worker count).

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use linvar_bench::{bits_hex, quantile_at, BenchArgs, BenchError, BenchMeter, Engine};
use linvar_core::path::{PathModel, PathSpec, VariationSources};
use linvar_core::{CampaignVerdict, RecoveryPolicy};
use linvar_devices::tech_018;
use linvar_interconnect::WireTech;
use linvar_iscas::{benchmark, decompose_to_primitives, longest_path};
use linvar_stats::sampling::inverse_normal_cdf;
use linvar_stats::{resolve_threads, Histogram, SpectralConfig};
use std::time::Instant;

/// Renders the engine-vs-GA comparison tail shared by every engine:
/// the stratified GA normal, the paired histogram, and the moment line.
fn render_vs_ga(
    model: &PathModel,
    sources: &VariationSources,
    circuit: &str,
    label: &str,
    mean: f64,
    std: f64,
    delays: &[f64],
) -> Result<(), BenchError> {
    let ga = model.gradient_analysis(sources)?;
    // Stratified normal sample implied by the GA statistics.
    let n = delays.len();
    let ga_sample: Vec<f64> = (0..n)
        .map(|k| {
            let u = (k as f64 + 0.5) / n as f64;
            ga.nominal_delay + ga.std * inverse_normal_cdf(u)
        })
        .collect();
    let (h_eng, h_ga) = Histogram::pair(delays, &ga_sample, 12)?;
    println!(
        "{circuit}: {label} mean {:.2} ps std {:.2} ps | GA mean {:.2} ps std {:.2} ps",
        mean * 1e12,
        std * 1e12,
        ga.nominal_delay * 1e12,
        ga.std * 1e12
    );
    print!("{}", h_eng.render_pair(&h_ga, label, "GA", 1e12, "ps"));
    println!();
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("fig7: {e}");
        std::process::exit(e.exit_code());
    }
}

fn run() -> Result<(), BenchError> {
    let args = BenchArgs::parse(std::env::args().skip(1))?;
    if args.quick {
        return Err(BenchError::Usage("fig7 has no --quick mode".into()));
    }
    args.validate_engine("fig7", true)?;
    let mut meter = BenchMeter::start("fig7");
    let run_start = Instant::now();
    let threads = resolve_threads(0);
    let engine = args.engine.name();
    println!("==== Figure 7: MC vs GA delay histograms (DL, VT variations) ====");
    println!("(Monte-Carlo on {threads} worker thread(s); set LINVAR_THREADS to change)");
    if args.engine != Engine::Mc {
        println!("statistics engine: {engine}");
    }
    println!();
    let tech = tech_018();
    let wire = WireTech::m018();
    let sources = VariationSources::example3(0.33, 0.33);
    let mut truncated = 0usize;
    for circuit in ["s27", "s208"] {
        if args.deadline_exhausted(run_start) {
            truncated += 1;
            eprintln!("deadline: skipping {circuit} (no budget left)");
            continue;
        }
        let bench = benchmark(circuit).ok_or("unknown benchmark")?;
        let report = longest_path(&bench.netlist)?;
        let stages = decompose_to_primitives(&bench.netlist, &report)?;
        let spec = PathSpec {
            cells: stages.into_iter().map(|s| s.cell).collect(),
            linear_elements_between_stages: 10,
            input_slew: 60e-12,
        };
        let model = PathModel::build(&spec, &tech, &wire)?;
        if args.engine == Engine::Gpc {
            let t0 = Instant::now();
            let config = args.campaign_config(circuit, run_start);
            let pc = model.polynomial_chaos_campaign(
                &sources,
                SpectralConfig::stochastic_testing(2),
                7,
                threads,
                RecoveryPolicy::default(),
                &config,
            )?;
            let Some(res) = pc.result else {
                truncated += 1;
                eprintln!(
                    "deadline: {circuit} truncated mid-grid ({} nodes done); resume with \
                     --resume to finish",
                    pc.completed
                );
                continue;
            };
            println!(
                "gpc {circuit}: nodes={} mean={} std={} q05={} q50={} q95={}",
                res.nodes_evaluated,
                bits_hex(res.mean),
                bits_hex(res.std),
                bits_hex(quantile_at(&res.quantiles, 0.05)),
                bits_hex(quantile_at(&res.quantiles, 0.5)),
                bits_hex(quantile_at(&res.quantiles, 0.95)),
            );
            if pc.evaluated > 0 {
                eprintln!(
                    "{circuit}: {:.1} nodes/sec",
                    pc.evaluated as f64 / t0.elapsed().as_secs_f64()
                );
            } else {
                eprintln!("{circuit}: restored from snapshot");
            }
            // Histogram the surrogate's implied normal on the same
            // equal-probability strata the GA histogram uses, so the
            // figure compares the two closed-form estimates directly.
            let delays: Vec<f64> = (0..100)
                .map(|k| {
                    let u = (k as f64 + 0.5) / 100.0;
                    res.mean + res.std * inverse_normal_cdf(u)
                })
                .collect();
            render_vs_ga(&model, &sources, circuit, "gPC", res.mean, res.std, &delays)?;
            continue;
        }
        let shard_cfg = args.shard_config(circuit)?;
        if let (Some(cfg), Some(k)) = (&shard_cfg, args.shard_index) {
            // Worker mode: evaluate only shard k, leave its snapshot as
            // the output (merged later by `--shards N --resume`).
            let worker = model.monte_carlo_shard_worker(
                &sources,
                100,
                7,
                threads,
                RecoveryPolicy::default(),
                cfg,
                k,
            )?;
            println!(
                "shard {k}/{}: {circuit} completed={} evaluated={} failures={}",
                cfg.n_shards, worker.completed, worker.evaluated, worker.failures
            );
            continue;
        }
        let t0 = Instant::now();
        // Sharded and unsharded drivers feed the same deterministic
        // `mc` line and histogram — byte-identical at any shard count.
        let (delays, summary, failures, evaluated) = match &shard_cfg {
            Some(cfg) => {
                let mc = model.monte_carlo_sharded(
                    &sources,
                    100,
                    7,
                    threads,
                    RecoveryPolicy::default(),
                    cfg,
                )?;
                (mc.delays, mc.summary, mc.failures, mc.evaluated)
            }
            None => {
                let config = args.campaign_config(circuit, run_start);
                // The Sobol engine is the identical campaign flow over
                // the quasi-MC sample stream.
                let mc = match args.engine {
                    Engine::Sobol => model.monte_carlo_campaign_sobol(
                        &sources,
                        100,
                        7,
                        threads,
                        RecoveryPolicy::default(),
                        &config,
                    )?,
                    _ => model.monte_carlo_campaign(
                        &sources,
                        100,
                        7,
                        threads,
                        RecoveryPolicy::default(),
                        &config,
                    )?,
                };
                if let CampaignVerdict::Truncated { remaining } = mc.verdict {
                    truncated += 1;
                    eprintln!(
                        "deadline: {circuit} truncated with {remaining}/100 samples pending; \
                         resume with --resume to finish"
                    );
                    continue;
                }
                (mc.delays, mc.summary, mc.failures, mc.evaluated)
            }
        };
        println!(
            "{engine} {circuit}: n={} mean={} std={} failures={}",
            summary.n,
            bits_hex(summary.mean),
            bits_hex(summary.std),
            failures
        );
        if evaluated > 0 {
            eprintln!(
                "{circuit}: {:.1} samples/sec",
                evaluated as f64 / t0.elapsed().as_secs_f64()
            );
        } else {
            eprintln!("{circuit}: restored from snapshot");
        }
        let label = if args.engine == Engine::Sobol {
            "Sobol"
        } else {
            "MC"
        };
        render_vs_ga(
            &model,
            &sources,
            circuit,
            label,
            summary.mean,
            summary.std,
            &delays,
        )?;
    }
    if truncated > 0 {
        println!(
            "note: {truncated} circuit(s) hit the deadline; rerun with --resume \
             to finish from the snapshots"
        );
    }
    meter.set("truncated_circuits", truncated as u64);
    eprintln!("{}", linvar_bench::workspace_note());
    meter.finish(&args)?;
    Ok(())
}
